#!/usr/bin/env bash
# End-to-end smoke test for the serving daemon (tools/cobra_serverd.cc).
#
# Exercises the full robustness loop against real processes over real TCP:
#   1. seed a snapshot directory and start cobra_serverd on an ephemeral
#      port (parsed from its READY line);
#   2. serve an AssignBatch through cobra_client;
#   3. drop a NEW snapshot version and assert the daemon hot-swaps to it;
#   4. drop a CORRUPTED snapshot (full-size, interior bytes flipped — a
#      checksum mismatch, i.e. permanent damage, not a torn write) and
#      assert it is quarantined as *.rejected, the rejection is logged, and
#      the daemon keeps serving the last good version;
#   5. SIGTERM the daemon and assert it drains and exits 0.
#
# A verifier-rejected artifact (structurally parseable, semantically bad)
# with its VerifyReport surfaced is covered by serve_watcher_test, which
# can build one in-process; producing one from shell would mean
# re-implementing the checksum, so this script sticks to byte corruption.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d)
SNAPDIR="$WORK/snapshots"
LOG="$WORK/serverd.log"
SERVERD_PID=""
cleanup() {
  [[ -n "$SERVERD_PID" ]] && kill -9 "$SERVERD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- serverd log ---" >&2
  cat "$LOG" >&2 || true
  exit 1
}

# Wait (up to ~5s) until the daemon's stderr log matches a pattern.
wait_for_log() {
  local pattern=$1
  for _ in $(seq 1 100); do
    grep -q "$pattern" "$LOG" 2>/dev/null && return 0
    sleep 0.05
  done
  return 1
}

mkdir -p "$SNAPDIR"

# 1. A known-good snapshot, produced by the snapshot bench's save mode
#    (core::SaveSnapshot — the exact format the watcher loads).
COBRA_A8_MODE=save COBRA_A8_PATH="$WORK/good.snap" COBRA_A8_SCENARIOS=8 \
  "$BUILD/bench_a8_snapshot" >/dev/null
cp "$WORK/good.snap" "$SNAPDIR/v001.snap"

"$BUILD/cobra_serverd" --dir "$SNAPDIR" --poll-ms 50 \
  >"$WORK/serverd.out" 2>"$LOG" &
SERVERD_PID=$!

# READY is printed after the initial load; parse the ephemeral port.
for _ in $(seq 1 100); do
  grep -q '^READY ' "$WORK/serverd.out" 2>/dev/null && break
  kill -0 "$SERVERD_PID" 2>/dev/null || fail "daemon exited before READY"
  sleep 0.05
done
grep -q '^READY ' "$WORK/serverd.out" || fail "no READY line"
PORT=$(sed -n 's/^READY port=\([0-9]*\).*/\1/p' "$WORK/serverd.out")
grep -q 'snapshot=v001.snap' "$WORK/serverd.out" \
  || fail "daemon did not load the seeded v001.snap"

# 2. A batch request serves values from v001. The snapshot's meta-variable
#    names are compression artifacts, so the smoke sends a baseline
#    (no-delta) scenario — the unit suites cover delta binding.
"$BUILD/cobra_client" --port "$PORT" batch baseline: >"$WORK/batch1.out" \
  || fail "batch against v001 failed"
grep -q '^ok version=1 ' "$WORK/batch1.out" \
  || fail "batch response did not come from version 1"
grep -q 'full=' "$WORK/batch1.out" || fail "batch response carried no values"

# 3. A new version appears (write-tmp-then-rename, the publish convention):
#    the watcher must verify it and hot-swap.
cp "$WORK/good.snap" "$SNAPDIR/.v002.tmp"
mv "$SNAPDIR/.v002.tmp" "$SNAPDIR/v002.snap"
wait_for_log 'watcher: swapped to v002.snap' || fail "no swap to v002"
"$BUILD/cobra_client" --port "$PORT" ping >"$WORK/ping.out" \
  || fail "ping after swap failed"
grep -q 'snapshot=v002.snap' "$WORK/ping.out" \
  || fail "daemon not serving v002 after swap"

# 4. A corrupted version appears: full size, eight interior bytes flipped,
#    so the checksum cannot match. It must be quarantined exactly once and
#    the daemon must keep serving v002.
SIZE=$(wc -c <"$WORK/good.snap")
cp "$WORK/good.snap" "$SNAPDIR/.v003.tmp"
printf 'CORRUPT!' | dd of="$SNAPDIR/.v003.tmp" bs=1 seek=$((SIZE / 2)) \
  count=8 conv=notrunc status=none
mv "$SNAPDIR/.v003.tmp" "$SNAPDIR/v003.snap"
wait_for_log 'watcher: rejected v003.snap' || fail "corrupt v003 not rejected"
grep -q 'quarantined as v003.snap.rejected' "$LOG" \
  || fail "rejection log does not name the quarantine file"
[[ -f "$SNAPDIR/v003.snap.rejected" ]] || fail "v003 not renamed to .rejected"
[[ ! -f "$SNAPDIR/v003.snap" ]] || fail "corrupt v003.snap left in place"
"$BUILD/cobra_client" --port "$PORT" ping >"$WORK/ping2.out" \
  || fail "ping after quarantine failed"
grep -q 'snapshot=v002.snap' "$WORK/ping2.out" \
  || fail "daemon fell off v002 after the corrupt drop"

# 5. SIGTERM: drain and exit 0.
kill -TERM "$SERVERD_PID"
EXIT=0
wait "$SERVERD_PID" || EXIT=$?
SERVERD_PID=""
[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT on SIGTERM"
grep -q 'serverd: drained and stopped' "$LOG" \
  || fail "daemon did not log a clean drain"

echo "serve_smoke: OK (port $PORT, swap + quarantine + drain verified)"
