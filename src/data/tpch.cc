#include "data/tpch.h"

#include <algorithm>

#include "data/dates.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/str.h"

namespace cobra::data {

namespace {

// The five regions and twenty-five nations fixed by the TPC-H schema.
constexpr const char* kRegions[kTpchNumRegions] = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

struct NationDef {
  const char* name;
  std::size_t region;
};
constexpr NationDef kNations[kTpchNumNations] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};

constexpr const char* kTypes[] = {
    "STANDARD ANODIZED TIN",  "SMALL BURNISHED COPPER",
    "MEDIUM POLISHED BRASS",  "LARGE PLATED STEEL",
    "ECONOMY BRUSHED NICKEL", "PROMO ANODIZED STEEL",
    "STANDARD PLATED COPPER", "SMALL POLISHED TIN",
    "MEDIUM BURNISHED NICKEL", "LARGE BRUSHED BRASS"};

constexpr const char* kNouns[] = {"almond", "antique", "aquamarine", "azure",
                                  "beige",  "bisque",  "blanched",   "blush",
                                  "burlywood", "chartreuse", "chiffon",
                                  "coral",  "cornflower", "cream", "dark"};

constexpr std::int64_t kStartDate = 19920101;  // o_orderdate low bound
constexpr std::int64_t kEndDate = 19980802;    // o_orderdate high bound
constexpr std::int64_t kCurrentDate = 19950617;  // l_linestatus split

}  // namespace

const char* TpchRegionName(std::size_t regionkey) {
  COBRA_CHECK(regionkey < kTpchNumRegions);
  return kRegions[regionkey];
}

const char* TpchNationName(std::size_t nationkey) {
  COBRA_CHECK(nationkey < kTpchNumNations);
  return kNations[nationkey].name;
}

std::size_t TpchNationRegion(std::size_t nationkey) {
  COBRA_CHECK(nationkey < kTpchNumNations);
  return kNations[nationkey].region;
}

rel::Database GenerateTpch(const TpchConfig& config) {
  rel::Database db;
  util::Rng rng(config.seed);
  const std::size_t num_suppliers = config.NumSuppliers();
  const std::size_t num_customers = config.NumCustomers();
  const std::size_t num_parts = config.NumParts();
  const std::size_t num_orders = config.NumOrders();
  const std::int64_t start_serial = SerialFromPack(kStartDate);
  const std::int64_t end_serial = SerialFromPack(kEndDate);

  // region
  {
    rel::Table t(rel::Schema("region", {{"r_regionkey", rel::Type::kInt64},
                                        {"r_name", rel::Type::kString}}));
    for (std::size_t r = 0; r < kTpchNumRegions; ++r) {
      t.AppendRow({rel::Value(static_cast<std::int64_t>(r)),
                   rel::Value(kRegions[r])});
    }
    db.AddTable("region", std::move(t)).CheckOK();
  }

  // nation
  {
    rel::Table t(rel::Schema("nation", {{"n_nationkey", rel::Type::kInt64},
                                        {"n_name", rel::Type::kString},
                                        {"n_regionkey", rel::Type::kInt64}}));
    for (std::size_t n = 0; n < kTpchNumNations; ++n) {
      t.AppendRow({rel::Value(static_cast<std::int64_t>(n)),
                   rel::Value(kNations[n].name),
                   rel::Value(static_cast<std::int64_t>(kNations[n].region))});
    }
    db.AddTable("nation", std::move(t)).CheckOK();
  }

  // supplier
  {
    rel::Table t(rel::Schema("supplier", {{"s_suppkey", rel::Type::kInt64},
                                          {"s_name", rel::Type::kString},
                                          {"s_nationkey", rel::Type::kInt64},
                                          {"s_acctbal", rel::Type::kDouble}}));
    util::Rng r = rng.Fork(11);
    t.Reserve(num_suppliers);
    for (std::size_t i = 1; i <= num_suppliers; ++i) {
      t.AppendRow({rel::Value(static_cast<std::int64_t>(i)),
                   rel::Value(util::StrFormat("Supplier#%09zu", i)),
                   rel::Value(static_cast<std::int64_t>(
                       r.NextBelow(kTpchNumNations))),
                   rel::Value(r.NextDoubleInRange(-999.99, 9999.99))});
    }
    db.AddTable("supplier", std::move(t)).CheckOK();
  }

  // customer
  {
    rel::Table t(rel::Schema("customer",
                             {{"c_custkey", rel::Type::kInt64},
                              {"c_name", rel::Type::kString},
                              {"c_nationkey", rel::Type::kInt64},
                              {"c_mktsegment", rel::Type::kString},
                              {"c_acctbal", rel::Type::kDouble}}));
    util::Rng r = rng.Fork(12);
    t.Reserve(num_customers);
    for (std::size_t i = 1; i <= num_customers; ++i) {
      t.AppendRow({rel::Value(static_cast<std::int64_t>(i)),
                   rel::Value(util::StrFormat("Customer#%09zu", i)),
                   rel::Value(static_cast<std::int64_t>(
                       r.NextBelow(kTpchNumNations))),
                   rel::Value(kSegments[r.NextBelow(5)]),
                   rel::Value(r.NextDoubleInRange(-999.99, 9999.99))});
    }
    db.AddTable("customer", std::move(t)).CheckOK();
  }

  // part; retail price follows the spec's deterministic formula.
  std::vector<double> retail_price(num_parts + 1, 0.0);
  {
    rel::Table t(rel::Schema("part", {{"p_partkey", rel::Type::kInt64},
                                      {"p_name", rel::Type::kString},
                                      {"p_brand", rel::Type::kString},
                                      {"p_type", rel::Type::kString},
                                      {"p_retailprice", rel::Type::kDouble}}));
    util::Rng r = rng.Fork(13);
    t.Reserve(num_parts);
    for (std::size_t i = 1; i <= num_parts; ++i) {
      double price =
          (90000.0 + static_cast<double>((i / 10) % 20001) +
           100.0 * static_cast<double>(i % 1000)) /
          100.0;
      retail_price[i] = price;
      std::string name = std::string(kNouns[r.NextBelow(15)]) + " " +
                         kNouns[r.NextBelow(15)];
      std::string brand = util::StrFormat("Brand#%zu%zu", r.NextBelow(5) + 1,
                                          r.NextBelow(5) + 1);
      t.AppendRow({rel::Value(static_cast<std::int64_t>(i)),
                   rel::Value(std::move(name)), rel::Value(std::move(brand)),
                   rel::Value(kTypes[r.NextBelow(10)]), rel::Value(price)});
    }
    db.AddTable("part", std::move(t)).CheckOK();
  }

  // partsupp: four suppliers per part, spread per the spec's stride rule.
  {
    rel::Table t(rel::Schema("partsupp",
                             {{"ps_partkey", rel::Type::kInt64},
                              {"ps_suppkey", rel::Type::kInt64},
                              {"ps_supplycost", rel::Type::kDouble}}));
    util::Rng r = rng.Fork(14);
    t.Reserve(num_parts * 4);
    const std::size_t s = num_suppliers;
    for (std::size_t p = 1; p <= num_parts; ++p) {
      for (std::size_t j = 0; j < 4; ++j) {
        std::size_t supp = (p + j * (s / 4 + (p - 1) / s)) % s + 1;
        t.AppendRow({rel::Value(static_cast<std::int64_t>(p)),
                     rel::Value(static_cast<std::int64_t>(supp)),
                     rel::Value(r.NextDoubleInRange(1.0, 1000.0))});
      }
    }
    db.AddTable("partsupp", std::move(t)).CheckOK();
  }

  // orders + lineitem
  {
    rel::Table orders(rel::Schema("orders",
                                  {{"o_orderkey", rel::Type::kInt64},
                                   {"o_custkey", rel::Type::kInt64},
                                   {"o_orderdate", rel::Type::kInt64},
                                   {"o_shippriority", rel::Type::kInt64}}));
    rel::Table lineitem(
        rel::Schema("lineitem", {{"l_orderkey", rel::Type::kInt64},
                                 {"l_linenumber", rel::Type::kInt64},
                                 {"l_partkey", rel::Type::kInt64},
                                 {"l_suppkey", rel::Type::kInt64},
                                 {"l_quantity", rel::Type::kInt64},
                                 {"l_extendedprice", rel::Type::kDouble},
                                 {"l_discount", rel::Type::kDouble},
                                 {"l_tax", rel::Type::kDouble},
                                 {"l_returnflag", rel::Type::kString},
                                 {"l_linestatus", rel::Type::kString},
                                 {"l_shipdate", rel::Type::kInt64},
                                 {"l_commitdate", rel::Type::kInt64},
                                 {"l_receiptdate", rel::Type::kInt64}}));
    util::Rng r = rng.Fork(15);
    orders.Reserve(num_orders);
    lineitem.Reserve(num_orders * 4);
    const std::size_t s = num_suppliers;
    std::size_t lines_total = 0;
    for (std::size_t o = 1; o <= num_orders; ++o) {
      std::int64_t order_serial =
          start_serial +
          r.NextInRange(0, end_serial - start_serial - 151);
      std::int64_t orderdate = PackFromSerial(order_serial);
      orders.AppendRow(
          {rel::Value(static_cast<std::int64_t>(o)),
           rel::Value(static_cast<std::int64_t>(r.NextBelow(num_customers) + 1)),
           rel::Value(orderdate), rel::Value(std::int64_t{0})});
      std::size_t num_lines = static_cast<std::size_t>(r.NextInRange(1, 7));
      for (std::size_t l = 1; l <= num_lines; ++l) {
        std::size_t partkey = r.NextBelow(num_parts) + 1;
        std::size_t j = r.NextBelow(4);
        std::size_t suppkey = (partkey + j * (s / 4 + (partkey - 1) / s)) % s + 1;
        std::int64_t quantity = r.NextInRange(1, 50);
        double extendedprice =
            static_cast<double>(quantity) * retail_price[partkey];
        double discount =
            static_cast<double>(r.NextInRange(0, 10)) / 100.0;
        double tax = static_cast<double>(r.NextInRange(0, 8)) / 100.0;
        std::int64_t ship_serial = order_serial + r.NextInRange(1, 121);
        std::int64_t commit_serial = order_serial + r.NextInRange(30, 90);
        std::int64_t receipt_serial = ship_serial + r.NextInRange(1, 30);
        std::int64_t shipdate = PackFromSerial(ship_serial);
        std::int64_t receiptdate = PackFromSerial(receipt_serial);
        const char* returnflag =
            receiptdate <= kCurrentDate ? (r.NextBool(0.5) ? "R" : "A") : "N";
        const char* linestatus = shipdate > kCurrentDate ? "O" : "F";
        lineitem.AppendRow(
            {rel::Value(static_cast<std::int64_t>(o)),
             rel::Value(static_cast<std::int64_t>(l)),
             rel::Value(static_cast<std::int64_t>(partkey)),
             rel::Value(static_cast<std::int64_t>(suppkey)),
             rel::Value(quantity), rel::Value(extendedprice),
             rel::Value(discount), rel::Value(tax), rel::Value(returnflag),
             rel::Value(linestatus), rel::Value(shipdate),
             rel::Value(PackFromSerial(commit_serial)),
             rel::Value(receiptdate)});
        ++lines_total;
      }
    }
    db.AddTable("orders", std::move(orders)).CheckOK();
    db.AddTable("lineitem", std::move(lineitem)).CheckOK();
  }

  return db;
}

}  // namespace cobra::data
