#ifndef COBRA_DATA_DATES_H_
#define COBRA_DATA_DATES_H_

#include <cstdint>

namespace cobra::data {

/// Minimal proleptic-Gregorian date arithmetic for the TPC-H generator.
/// Dates are stored in columns as INT64 `yyyymmdd` (comparison-friendly);
/// serial day numbers (days since 1970-01-01) support date + N days.

/// Days since 1970-01-01 for a civil date (standard civil-calendar
/// conversion, valid far beyond the TPC-H 1992–1998 window).
constexpr std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<std::int64_t>(doe) - 719468LL;
}

/// Inverse of DaysFromCivil.
constexpr void CivilFromDays(std::int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

/// Packs a civil date into `yyyymmdd`.
constexpr std::int64_t PackDate(int y, int m, int d) {
  return static_cast<std::int64_t>(y) * 10000 + m * 100 + d;
}

/// `yyyymmdd` for a serial day number.
constexpr std::int64_t PackFromSerial(std::int64_t serial) {
  int y = 0, m = 0, d = 0;
  CivilFromDays(serial, &y, &m, &d);
  return PackDate(y, m, d);
}

/// Serial day number for a packed `yyyymmdd`.
constexpr std::int64_t SerialFromPack(std::int64_t packed) {
  return DaysFromCivil(static_cast<int>(packed / 10000),
                       static_cast<int>((packed / 100) % 100),
                       static_cast<int>(packed % 100));
}

/// Adds `days` to a packed date.
constexpr std::int64_t AddDays(std::int64_t packed, std::int64_t days) {
  return PackFromSerial(SerialFromPack(packed) + days);
}

/// Year of a packed date.
constexpr int YearOf(std::int64_t packed) {
  return static_cast<int>(packed / 10000);
}

/// Month (1-12) of a packed date.
constexpr int MonthOf(std::int64_t packed) {
  return static_cast<int>((packed / 100) % 100);
}

}  // namespace cobra::data

#endif  // COBRA_DATA_DATES_H_
