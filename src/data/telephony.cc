#include "data/telephony.h"

#include "rel/instrument.h"
#include "util/rng.h"
#include "util/str.h"

namespace cobra::data {

const std::vector<PlanInfo>& DefaultPlans() {
  // Figure 1 gives month-1 prices for A, F1, Y1, V, SB1, SB2, E; the
  // remaining plans named in Example 1 (B, F2, Y2, Y3) get prices in the
  // same band as their siblings.
  static const std::vector<PlanInfo>* kPlans = new std::vector<PlanInfo>{
      {"A", "p1", 0.40},   {"B", "p2", 0.45},  {"F1", "f1", 0.35},
      {"F2", "f2", 0.32},  {"Y1", "y1", 0.30}, {"Y2", "y2", 0.28},
      {"Y3", "y3", 0.26},  {"V", "v", 0.25},   {"SB1", "b1", 0.10},
      {"SB2", "b2", 0.10}, {"E", "e", 0.05}};
  return *kPlans;
}

rel::Database GenerateTelephony(const TelephonyConfig& config) {
  COBRA_CHECK_MSG(config.num_customers > 0 && config.num_zips > 0 &&
                      config.num_months > 0,
                  "telephony config must be positive");
  rel::Database db;
  const std::vector<PlanInfo>& plans = DefaultPlans();
  util::Rng rng(config.seed);

  // Cust(ID, Plan, Zip): customers are dealt to zips round-robin; within a
  // zip, plans are assigned round-robin (guaranteed coverage) or uniformly.
  rel::Table cust(rel::Schema("Cust", {{"ID", rel::Type::kInt64},
                                       {"Plan", rel::Type::kString},
                                       {"Zip", rel::Type::kInt64}}));
  cust.Reserve(config.num_customers);
  {
    auto* ids = cust.mutable_column(0)->MutableInts();
    auto* plan_col = cust.mutable_column(1)->MutableStrings();
    auto* zips = cust.mutable_column(2)->MutableInts();
    std::vector<std::size_t> next_plan_in_zip(config.num_zips, 0);
    util::Rng plan_rng = rng.Fork(1);
    for (std::size_t i = 0; i < config.num_customers; ++i) {
      std::size_t zip = i % config.num_zips;
      std::size_t plan_index;
      if (config.round_robin_plans) {
        plan_index = next_plan_in_zip[zip]++ % plans.size();
      } else {
        plan_index = plan_rng.NextBelow(plans.size());
      }
      ids->push_back(static_cast<std::int64_t>(i + 1));
      plan_col->push_back(plans[plan_index].plan);
      zips->push_back(static_cast<std::int64_t>(10001 + zip));
    }
    cust.CommitAppendedRows(config.num_customers);
  }
  db.AddTable("Cust", std::move(cust)).CheckOK();

  // Calls(CID, Mo, Dur): one aggregate row per customer per month.
  rel::Table calls(rel::Schema("Calls", {{"CID", rel::Type::kInt64},
                                         {"Mo", rel::Type::kInt64},
                                         {"Dur", rel::Type::kInt64}}));
  std::size_t num_calls = config.num_customers * config.num_months;
  calls.Reserve(num_calls);
  {
    auto* cids = calls.mutable_column(0)->MutableInts();
    auto* months = calls.mutable_column(1)->MutableInts();
    auto* durs = calls.mutable_column(2)->MutableInts();
    util::Rng dur_rng = rng.Fork(2);
    for (std::size_t m = 1; m <= config.num_months; ++m) {
      for (std::size_t i = 0; i < config.num_customers; ++i) {
        cids->push_back(static_cast<std::int64_t>(i + 1));
        months->push_back(static_cast<std::int64_t>(m));
        durs->push_back(
            dur_rng.NextInRange(config.min_duration, config.max_duration));
      }
    }
    calls.CommitAppendedRows(num_calls);
  }
  db.AddTable("Calls", std::move(calls)).CheckOK();

  // Plans(Plan, Mo, Price): monthly prices drift ±10% around the base,
  // quantized to cents, never below one cent.
  rel::Table plan_table(rel::Schema("Plans", {{"Plan", rel::Type::kString},
                                              {"Mo", rel::Type::kInt64},
                                              {"Price", rel::Type::kDouble}}));
  util::Rng price_rng = rng.Fork(3);
  for (std::size_t m = 1; m <= config.num_months; ++m) {
    for (const PlanInfo& p : plans) {
      double drift = price_rng.NextDoubleInRange(0.9, 1.1);
      double price = p.base_price * drift;
      price = std::max(0.01, static_cast<double>(static_cast<int>(price * 100)) / 100.0);
      plan_table.AppendRow({rel::Value(p.plan),
                            rel::Value(static_cast<std::int64_t>(m)),
                            rel::Value(price)});
    }
  }
  db.AddTable("Plans", std::move(plan_table)).CheckOK();

  return db;
}

util::Status InstrumentTelephony(rel::Database* db) {
  std::vector<std::pair<std::string, std::string>> dict;
  for (const PlanInfo& p : DefaultPlans()) dict.emplace_back(p.plan, p.variable);
  COBRA_RETURN_IF_ERROR(
      rel::InstrumentByDictionary(db, "Plans", "Plan", dict));
  return rel::InstrumentByColumns(db, "Plans", {{"Mo", "m"}});
}

std::string TelephonyRevenueQuery() {
  return "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue "
         "FROM Calls, Cust, Plans "
         "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
         "AND Calls.Mo = Plans.Mo "
         "GROUP BY Cust.Zip";
}

std::string TelephonyPlanTreeText() {
  return "Plans\n"
         "  Business\n"
         "    SB\n"
         "      b1\n"
         "      b2\n"
         "    e\n"
         "  Special\n"
         "    F\n"
         "      f1\n"
         "      f2\n"
         "    Y\n"
         "      y1\n"
         "      y2\n"
         "      y3\n"
         "    v\n"
         "  Standard\n"
         "    p1\n"
         "    p2\n";
}

std::string MonthQuarterTreeText(std::size_t num_months) {
  COBRA_CHECK_MSG(num_months % 3 == 0,
                  "quarter tree needs a multiple of 3 months");
  std::string out = "Months\n";
  for (std::size_t q = 0; q < num_months / 3; ++q) {
    out += util::StrFormat("  q%zu\n", q + 1);
    for (std::size_t m = q * 3 + 1; m <= q * 3 + 3; ++m) {
      out += util::StrFormat("    m%zu\n", m);
    }
  }
  return out;
}

}  // namespace cobra::data
