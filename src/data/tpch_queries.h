#ifndef COBRA_DATA_TPCH_QUERIES_H_
#define COBRA_DATA_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "rel/database.h"
#include "util/status.h"

namespace cobra::data {

/// One TPC-H query prepared for provenance analysis: the SQL text (in the
/// engine's SPJA subset), the instrumentation that parameterizes it, and
/// the natural abstraction tree over the introduced variables.
struct TpchQuerySpec {
  std::string id;          ///< "Q1", "Q3", "Q5", "Q6", "Q10".
  std::string description; ///< What the query computes.
  std::string sql;
  std::string tree_text;   ///< Indented abstraction-tree format.
  /// Index of the aggregate column whose provenance is compressed.
  std::size_t provenance_agg = 0;
};

/// The supported subset of TPC-H queries (Q1, Q3, Q5, Q6, Q10), adapted to
/// the engine's SELECT-FROM-WHERE-GROUP BY dialect (dates as yyyymmdd
/// integers; no HAVING/EXISTS; ORDER BY/LIMIT kept where the original has
/// them).
std::vector<TpchQuerySpec> TpchQueries();

/// Returns the spec with the given id.
util::Result<TpchQuerySpec> TpchQueryById(const std::string& id);

/// Instruments the database for the date-parameterized queries (Q1, Q3,
/// Q6, Q10): every lineitem row is tagged with the ship-month variable
/// `m<yyyy>_<mm>`. The matching tree is `ShipDateTreeText()`.
util::Status InstrumentTpchByShipMonth(rel::Database* db);

/// Instruments the database for the geography-parameterized query (Q5):
/// every supplier row is tagged with its nation variable `n_<NATION>`.
/// The matching tree is `GeographyTreeText()`.
util::Status InstrumentTpchBySupplierNation(rel::Database* db);

/// A Q5-style volume query grouped by customer market segment instead of
/// nation. Q5 itself groups *by* nation, so each group polynomial contains
/// one nation variable and geography abstraction cannot shrink it; this
/// variant gives every segment a polynomial over all 25 nation variables,
/// which is the interesting case for the geography tree (used by the E4
/// bench and tests alongside the verbatim Q5).
std::string TpchSegmentVolumeQuery();

/// A brand-parameterized revenue query: discounted revenue per return flag
/// with a lineitem ⋈ part join, so part-brand variables flow into every
/// group (used with `InstrumentTpchByPartBrand` + `BrandTreeText`).
std::string TpchBrandRevenueQuery();

/// Instruments every part row with its brand variable `b_<x><y>`
/// (TPC-H brands are "Brand#xy" with x = manufacturer 1..5, y = 1..5).
/// The matching tree is `BrandTreeText()`.
util::Status InstrumentTpchByPartBrand(rel::Database* db);

/// Instruments every lineitem row with its *order* variable `o<orderkey>` —
/// the high-cardinality workload: one variable per order (tens of thousands
/// at bench scale factors) instead of one per ship month (~84). Used by
/// `bench_a7_highcard` to make per-scenario full-pool valuation copies
/// memory-bandwidth-bound. The matching tree is `OrderBucketTreeText()`.
util::Status InstrumentTpchByOrder(rel::Database* db);

/// Order hierarchy for the high-cardinality workload:
/// Orders → og<k> (buckets of `bucket_size` consecutive order keys) →
/// o<key>, covering keys 1..num_orders.
std::string OrderBucketTreeText(std::size_t num_orders,
                                std::size_t bucket_size);

/// Date hierarchy over ship months: Dates → y<year> → <year>q<q> → m<y>_<m>
/// for the TPC-H window 1992–1998.
std::string ShipDateTreeText();

/// Geography hierarchy: World → region → n_<NATION> (5 regions, 25 nations).
std::string GeographyTreeText();

/// Brand hierarchy: Brands → mfgr<x> → b_<x><y> (5 manufacturers, 25
/// brands), mirroring the TPC-H "Brand#xy = Manufacturer#x's brand y" rule.
std::string BrandTreeText();

}  // namespace cobra::data

#endif  // COBRA_DATA_TPCH_QUERIES_H_
