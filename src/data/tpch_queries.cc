#include "data/tpch_queries.h"

#include <algorithm>

#include "data/dates.h"
#include "data/tpch.h"
#include "rel/instrument.h"
#include "util/str.h"

namespace cobra::data {

std::vector<TpchQuerySpec> TpchQueries() {
  std::vector<TpchQuerySpec> out;

  // Q1 — pricing summary report. GROUP BY return flag and line status;
  // several symbolic SUM aggregates. Provenance on the discounted revenue.
  out.push_back(
      {"Q1",
       "Pricing summary: quantities, prices and discounted revenue per "
       "(returnflag, linestatus)",
       "SELECT l_returnflag, l_linestatus, "
       "SUM(l_quantity) AS sum_qty, "
       "SUM(l_extendedprice) AS sum_base_price, "
       "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
       "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
       "COUNT(*) AS count_order "
       "FROM lineitem "
       "WHERE l_shipdate <= 19980902 "
       "GROUP BY l_returnflag, l_linestatus",
       ShipDateTreeText(), 2});

  // Q3 — shipping-priority: top unshipped orders by revenue.
  out.push_back(
      {"Q3",
       "Shipping priority: revenue of building-segment orders not yet "
       "shipped, top 10",
       "SELECT l_orderkey, "
       "SUM(l_extendedprice * (1 - l_discount)) AS revenue, "
       "o_orderdate, o_shippriority "
       "FROM customer, orders, lineitem "
       "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
       "AND l_orderkey = o_orderkey AND o_orderdate < 19950315 "
       "AND l_shipdate > 19950315 "
       "GROUP BY l_orderkey, o_orderdate, o_shippriority "
       "ORDER BY revenue DESC, o_orderdate LIMIT 10",
       ShipDateTreeText(), 0});

  // Q5 — local supplier volume per nation inside one region.
  out.push_back(
      {"Q5",
       "Local supplier volume: revenue by nation for ASIA-region suppliers "
       "serving same-nation customers in 1994",
       "SELECT n_name, "
       "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM customer, orders, lineitem, supplier, nation, region "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
       "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
       "AND r_name = 'ASIA' "
       "AND o_orderdate >= 19940101 AND o_orderdate < 19950101 "
       "GROUP BY n_name "
       "ORDER BY revenue DESC",
       GeographyTreeText(), 0});

  // Q6 — forecasting revenue change: the canonical what-if query.
  out.push_back(
      {"Q6",
       "Forecast revenue change: discount revenue of mid-discount, "
       "low-quantity 1994 lineitems",
       "SELECT SUM(l_extendedprice * l_discount) AS revenue "
       "FROM lineitem "
       "WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 "
       "AND l_discount >= 0.05 AND l_discount <= 0.07 "
       "AND l_quantity < 24",
       ShipDateTreeText(), 0});

  // Q10 — returned-item reporting: top customers by lost revenue.
  out.push_back(
      {"Q10",
       "Returned items: revenue lost to returns per customer in 1993Q4, "
       "top 20",
       "SELECT c_custkey, c_name, "
       "SUM(l_extendedprice * (1 - l_discount)) AS revenue, n_name "
       "FROM customer, orders, lineitem, nation "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND o_orderdate >= 19931001 AND o_orderdate < 19940101 "
       "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
       "GROUP BY c_custkey, c_name, n_name "
       "ORDER BY revenue DESC LIMIT 20",
       ShipDateTreeText(), 0});

  return out;
}

util::Result<TpchQuerySpec> TpchQueryById(const std::string& id) {
  for (TpchQuerySpec& spec : TpchQueries()) {
    if (spec.id == id) return spec;
  }
  return util::Status::NotFound("unknown TPC-H query id: " + id);
}

std::string TpchSegmentVolumeQuery() {
  return "SELECT c_mktsegment, "
         "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
         "FROM customer, orders, lineitem, supplier, nation "
         "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
         "AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey "
         "GROUP BY c_mktsegment";
}

std::string TpchBrandRevenueQuery() {
  return "SELECT l_returnflag, "
         "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
         "FROM lineitem, part "
         "WHERE l_partkey = p_partkey "
         "GROUP BY l_returnflag";
}

util::Status InstrumentTpchByPartBrand(rel::Database* db) {
  util::Result<rel::AnnotatedTable*> part = db->GetMutableTable("part");
  if (!part.ok()) return part.status();
  util::Result<std::size_t> brand_col = (*part)->schema().Resolve("p_brand");
  if (!brand_col.ok()) return brand_col.status();
  std::size_t col = *brand_col;
  return rel::InstrumentTable(
      db, "part", [col](const rel::Table& t, std::size_t row) {
        // "Brand#xy" -> "b_xy".
        std::string brand = t.Get(row, col).AsString();
        std::string suffix = brand.substr(brand.find('#') + 1);
        return std::vector<std::string>{"b_" + suffix};
      });
}

util::Status InstrumentTpchByOrder(rel::Database* db) {
  util::Result<rel::AnnotatedTable*> lineitem = db->GetMutableTable("lineitem");
  if (!lineitem.ok()) return lineitem.status();
  util::Result<std::size_t> order_col =
      (*lineitem)->schema().Resolve("l_orderkey");
  if (!order_col.ok()) return order_col.status();
  std::size_t col = *order_col;
  return rel::InstrumentTable(
      db, "lineitem", [col](const rel::Table& t, std::size_t row) {
        return std::vector<std::string>{util::StrFormat(
            "o%lld", static_cast<long long>(t.Get(row, col).AsInt64()))};
      });
}

std::string OrderBucketTreeText(std::size_t num_orders,
                                std::size_t bucket_size) {
  if (bucket_size == 0) bucket_size = 1;
  std::string out = "Orders\n";
  for (std::size_t first = 1; first <= num_orders; first += bucket_size) {
    out += util::StrFormat("  og%zu\n", (first - 1) / bucket_size);
    const std::size_t last =
        std::min(num_orders, first + bucket_size - 1);
    for (std::size_t key = first; key <= last; ++key) {
      out += util::StrFormat("    o%zu\n", key);
    }
  }
  return out;
}

util::Status InstrumentTpchByShipMonth(rel::Database* db) {
  util::Result<rel::AnnotatedTable*> lineitem = db->GetMutableTable("lineitem");
  if (!lineitem.ok()) return lineitem.status();
  util::Result<std::size_t> ship_col =
      (*lineitem)->schema().Resolve("l_shipdate");
  if (!ship_col.ok()) return ship_col.status();
  std::size_t col = *ship_col;
  return rel::InstrumentTable(
      db, "lineitem", [col](const rel::Table& t, std::size_t row) {
        std::int64_t packed = t.Get(row, col).AsInt64();
        return std::vector<std::string>{util::StrFormat(
            "m%04d_%02d", YearOf(packed), MonthOf(packed))};
      });
}

util::Status InstrumentTpchBySupplierNation(rel::Database* db) {
  util::Result<rel::AnnotatedTable*> supplier = db->GetMutableTable("supplier");
  if (!supplier.ok()) return supplier.status();
  util::Result<std::size_t> nation_col =
      (*supplier)->schema().Resolve("s_nationkey");
  if (!nation_col.ok()) return nation_col.status();
  std::size_t col = *nation_col;
  return rel::InstrumentTable(
      db, "supplier", [col](const rel::Table& t, std::size_t row) {
        std::size_t key =
            static_cast<std::size_t>(t.Get(row, col).AsInt64());
        std::string name = TpchNationName(key);
        for (char& c : name) {
          if (c == ' ') c = '_';
        }
        return std::vector<std::string>{"n_" + name};
      });
}

std::string ShipDateTreeText() {
  std::string out = "Dates\n";
  // Orders run 1992..1998; shipments may spill into 1999 (orderdate + ~120d
  // against the 1998-08-02 ceiling stays in 1998, but Q1's 1998-09-02
  // threshold motivates covering 1998 fully). Months 1992-01 .. 1998-12.
  for (int year = 1992; year <= 1998; ++year) {
    out += util::StrFormat("  y%d\n", year);
    for (int q = 0; q < 4; ++q) {
      out += util::StrFormat("    %dq%d\n", year, q + 1);
      for (int m = q * 3 + 1; m <= q * 3 + 3; ++m) {
        out += util::StrFormat("      m%04d_%02d\n", year, m);
      }
    }
  }
  return out;
}

std::string BrandTreeText() {
  std::string out = "Brands\n";
  for (int mfgr = 1; mfgr <= 5; ++mfgr) {
    out += util::StrFormat("  mfgr%d\n", mfgr);
    for (int brand = 1; brand <= 5; ++brand) {
      out += util::StrFormat("    b_%d%d\n", mfgr, brand);
    }
  }
  return out;
}

std::string GeographyTreeText() {
  std::string out = "World\n";
  for (std::size_t r = 0; r < kTpchNumRegions; ++r) {
    std::string region = TpchRegionName(r);
    for (char& c : region) {
      if (c == ' ') c = '_';
    }
    out += "  " + region + "\n";
    for (std::size_t n = 0; n < kTpchNumNations; ++n) {
      if (TpchNationRegion(n) != r) continue;
      std::string nation = TpchNationName(n);
      for (char& c : nation) {
        if (c == ' ') c = '_';
      }
      out += "    n_" + nation + "\n";
    }
  }
  return out;
}

}  // namespace cobra::data
