#include "data/example_db.h"

#include "rel/instrument.h"

namespace cobra::data {

const char kExampleRevenueQuery[] =
    "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
    "FROM Calls, Cust, Plans "
    "WHERE Cust.Plan = Plans.Plan "
    "AND Cust.ID = Calls.CID "
    "AND Calls.Mo = Plans.Mo "
    "GROUP BY Cust.Zip";

const char kFigure2TreeText[] = R"(Plans
  Business
    SB
      b1
      b2
    e
  Special
    F
      f1
      f2
    Y
      y1
      y2
      y3
    v
  Standard
    p1
    p2
)";

const char kExamplePolynomialsText[] = R"(
P1 = 208.8 * p1 * m1 + 240 * p1 * m3 + 127.4 * f1 * m1 + 114.45 * f1 * m3 + 75.9 * y1 * m1 + 72.5 * y1 * m3 + 42 * v * m1 + 24.2 * v * m3
P2 = 77.9 * b1 * m1 + 80.5 * b1 * m3 + 52.2 * e * m1 + 56.5 * e * m3 + 69.7 * b2 * m1 + 100.65 * b2 * m3
)";

rel::Database BuildExampleDatabase() {
  rel::Database db;

  // Cust(ID, Plan, Zip) — Figure 1, left table.
  rel::Table cust(rel::Schema("Cust", {{"ID", rel::Type::kInt64},
                                       {"Plan", rel::Type::kString},
                                       {"Zip", rel::Type::kInt64}}));
  struct CustRow {
    std::int64_t id;
    const char* plan;
    std::int64_t zip;
  };
  constexpr CustRow kCust[] = {{1, "A", 10001},   {2, "F1", 10001},
                               {3, "SB1", 10002}, {4, "Y1", 10001},
                               {5, "V", 10001},   {6, "E", 10002},
                               {7, "SB2", 10002}};
  for (const CustRow& r : kCust) {
    cust.AppendRow({rel::Value(r.id), rel::Value(r.plan), rel::Value(r.zip)});
  }
  db.AddTable("Cust", std::move(cust)).CheckOK();

  // Calls(CID, Mo, Dur) — months 1 and 3, durations from Figure 1.
  rel::Table calls(rel::Schema("Calls", {{"CID", rel::Type::kInt64},
                                         {"Mo", rel::Type::kInt64},
                                         {"Dur", rel::Type::kInt64}}));
  struct CallRow {
    std::int64_t cid, mo, dur;
  };
  constexpr CallRow kCalls[] = {
      {1, 1, 522}, {2, 1, 364}, {3, 1, 779},  {4, 1, 253},
      {5, 1, 168}, {6, 1, 1044}, {7, 1, 697},
      {1, 3, 480}, {2, 3, 327}, {3, 3, 805},  {4, 3, 290},
      {5, 3, 121}, {6, 3, 1130}, {7, 3, 671}};
  for (const CallRow& r : kCalls) {
    calls.AppendRow({rel::Value(r.cid), rel::Value(r.mo), rel::Value(r.dur)});
  }
  db.AddTable("Calls", std::move(calls)).CheckOK();

  // Plans(Plan, Mo, Price) — price per minute, per month, from Figure 1.
  rel::Table plans(rel::Schema("Plans", {{"Plan", rel::Type::kString},
                                         {"Mo", rel::Type::kInt64},
                                         {"Price", rel::Type::kDouble}}));
  struct PlanRow {
    const char* plan;
    std::int64_t mo;
    double price;
  };
  constexpr PlanRow kPlans[] = {
      {"A", 1, 0.4},   {"F1", 1, 0.35}, {"Y1", 1, 0.3},  {"V", 1, 0.25},
      {"SB1", 1, 0.1}, {"SB2", 1, 0.1}, {"E", 1, 0.05},
      {"A", 3, 0.5},   {"F1", 3, 0.35}, {"Y1", 3, 0.25}, {"V", 3, 0.2},
      {"SB1", 3, 0.1}, {"SB2", 3, 0.15}, {"E", 3, 0.05}};
  for (const PlanRow& r : kPlans) {
    plans.AppendRow({rel::Value(r.plan), rel::Value(r.mo), rel::Value(r.price)});
  }
  db.AddTable("Plans", std::move(plans)).CheckOK();

  return db;
}

util::Status InstrumentExampleDb(rel::Database* db) {
  // Plan variables use the paper's names (Example 2).
  COBRA_RETURN_IF_ERROR(rel::InstrumentByDictionary(
      db, "Plans", "Plan",
      {{"A", "p1"}, {"B", "p2"}, {"F1", "f1"}, {"F2", "f2"}, {"Y1", "y1"},
       {"Y2", "y2"}, {"Y3", "y3"}, {"V", "v"}, {"SB1", "b1"}, {"SB2", "b2"},
       {"E", "e"}}));
  // Month variables m1, m3.
  return rel::InstrumentByColumns(db, "Plans", {{"Mo", "m"}});
}

}  // namespace cobra::data
