#ifndef COBRA_DATA_EXAMPLE_DB_H_
#define COBRA_DATA_EXAMPLE_DB_H_

#include <string>

#include "rel/database.h"
#include "util/status.h"

namespace cobra::data {

/// Builds the running-example telephony database of Figure 1: seven
/// customers in two zip codes, calls for months 1 and 3, and the Plans
/// table with the exact per-month prices printed in the paper. With the
/// standard instrumentation (`InstrumentExampleDb`) the revenue query of
/// Example 1 produces exactly the polynomials P1 and P2 of Example 2.
///
/// Tables:
///   Cust(ID INT64, Plan STRING, Zip INT64)
///   Calls(CID INT64, Mo INT64, Dur INT64)
///   Plans(Plan STRING, Mo INT64, Price DOUBLE)
rel::Database BuildExampleDatabase();

/// Instruments the Plans table of the example database per Example 2:
/// each row's annotation becomes `plan_var * month_var`, with plan
/// variables named as in the paper (A->p1, F1->f1, Y1->y1, V->v, SB1->b1,
/// SB2->b2, E->e) and month variables m1, m3.
util::Status InstrumentExampleDb(rel::Database* db);

/// The revenue query of Example 1 (verbatim modulo whitespace).
extern const char kExampleRevenueQuery[];

/// The abstraction tree of Figure 2 in the indented text format:
/// Plans / {Business {SB {b1,b2}, e}, Special {F {f1,f2}, Y {y1,y2,y3}, v},
/// Standard {p1,p2}}.
extern const char kFigure2TreeText[];

/// The polynomials P1 and P2 of Example 2 in the `label = poly` format,
/// byte-for-byte the coefficients printed in the paper.
extern const char kExamplePolynomialsText[];

}  // namespace cobra::data

#endif  // COBRA_DATA_EXAMPLE_DB_H_
