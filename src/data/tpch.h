#ifndef COBRA_DATA_TPCH_H_
#define COBRA_DATA_TPCH_H_

#include <cstdint>
#include <string>

#include "rel/database.h"

namespace cobra::data {

/// Configuration of the in-repo TPC-H-style data generator.
///
/// The official dbgen tool is an external dependency, so this repo ships a
/// deterministic substitute implementing the TPC-H schema, key structure
/// and (simplified) value distributions from the public specification. The
/// COBRA experiments depend only on the *provenance shape* — join fan-out,
/// number of groups, hierarchy sizes — which the substitute preserves; see
/// DESIGN.md §6 for the substitution rationale.
struct TpchConfig {
  /// Scale factor; 1.0 would mean ~6M lineitems. Tests use 0.01, the E4
  /// bench uses 0.1 by default.
  double scale_factor = 0.01;
  std::uint64_t seed = 7;

  std::size_t NumSuppliers() const { return Scaled(10'000); }
  std::size_t NumCustomers() const { return Scaled(150'000); }
  std::size_t NumParts() const { return Scaled(200'000); }
  std::size_t NumOrders() const { return Scaled(1'500'000); }

 private:
  std::size_t Scaled(std::size_t base) const {
    double n = static_cast<double>(base) * scale_factor;
    return n < 1.0 ? 1 : static_cast<std::size_t>(n);
  }
};

/// Generates the eight TPC-H tables:
///   region(r_regionkey, r_name)
///   nation(n_nationkey, n_name, n_regionkey)
///   supplier(s_suppkey, s_name, s_nationkey, s_acctbal)
///   customer(c_custkey, c_name, c_nationkey, c_mktsegment, c_acctbal)
///   part(p_partkey, p_name, p_brand, p_type, p_retailprice)
///   partsupp(ps_partkey, ps_suppkey, ps_supplycost)
///   orders(o_orderkey, o_custkey, o_orderdate, o_shippriority)
///   lineitem(l_orderkey, l_linenumber, l_partkey, l_suppkey, l_quantity,
///            l_extendedprice, l_discount, l_tax, l_returnflag,
///            l_linestatus, l_shipdate, l_commitdate, l_receiptdate)
/// Dates are packed INT64 yyyymmdd. All content is deterministic in
/// `config.seed`.
rel::Database GenerateTpch(const TpchConfig& config);

/// Number of regions (5) and nations (25) — fixed by the specification.
constexpr std::size_t kTpchNumRegions = 5;
constexpr std::size_t kTpchNumNations = 25;

/// Region name by key (0..4).
const char* TpchRegionName(std::size_t regionkey);

/// Nation name by key (0..24) and its region key.
const char* TpchNationName(std::size_t nationkey);
std::size_t TpchNationRegion(std::size_t nationkey);

}  // namespace cobra::data

#endif  // COBRA_DATA_TPCH_H_
