#ifndef COBRA_DATA_TELEPHONY_H_
#define COBRA_DATA_TELEPHONY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rel/database.h"
#include "util/status.h"

namespace cobra::data {

/// Configuration of the scalable telephony workload (Section 4).
///
/// The defaults are calibrated to the paper's headline experiment: with 11
/// plan variables (the leaves of the Figure 2 tree), 12 months and 1055 zip
/// codes, and guaranteed coverage of every (zip, plan, month) combination,
/// the revenue query yields exactly `1055 * 11 * 12 = 139,260` monomials —
/// the provenance size quoted in the paper. Coverage (and therefore the
/// polynomial counts) is independent of the customer count once every zip
/// holds at least one customer per plan; the paper uses 1,000,000 customers.
struct TelephonyConfig {
  std::size_t num_customers = 1'000'000;
  std::size_t num_zips = 1055;
  std::size_t num_months = 12;
  std::uint64_t seed = 42;

  /// Calls per customer per month (duration drawn uniformly).
  std::int64_t min_duration = 30;
  std::int64_t max_duration = 1200;

  /// When true (default), plans are assigned round-robin within each zip so
  /// that every zip is guaranteed to contain every plan — making the
  /// provenance size deterministic. When false, plans are drawn uniformly
  /// at random (coverage then holds with overwhelming probability at the
  /// default scale, but is not guaranteed).
  bool round_robin_plans = true;
};

/// One calling plan: display name, paper variable name, base price/min.
struct PlanInfo {
  std::string plan;      ///< e.g. "SB1".
  std::string variable;  ///< e.g. "b1".
  double base_price;     ///< Price per minute in month 1.
};

/// The eleven plans of the running example (Figure 2 leaves), with the
/// Figure 1 month-1 prices (plans missing from Figure 1 get plausible ones).
const std::vector<PlanInfo>& DefaultPlans();

/// Generates the telephony database:
///   Cust(ID, Plan, Zip), Calls(CID, Mo, Dur), Plans(Plan, Mo, Price).
/// Plans prices drift month over month deterministically from the seed.
rel::Database GenerateTelephony(const TelephonyConfig& config);

/// Instruments Plans rows with `plan_var * month_var` annotations (plan
/// variables from DefaultPlans(), month variables m1..m<num_months>), as in
/// Example 2.
util::Status InstrumentTelephony(rel::Database* db);

/// The revenue-per-zip SQL query of Example 1.
std::string TelephonyRevenueQuery();

/// The Figure 2 plan tree (11 leaves) in indented text format.
std::string TelephonyPlanTreeText();

/// A month→quarter abstraction tree (Section 4: q1..q4 group m1..m12) for
/// `num_months` months (must be a multiple of 3 for full quarters).
std::string MonthQuarterTreeText(std::size_t num_months);

}  // namespace cobra::data

#endif  // COBRA_DATA_TELEPHONY_H_
