#ifndef COBRA_SERVE_SERVER_H_
#define COBRA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "serve/wire.h"
#include "util/status.h"

/// cobra::serve server — the fault-tolerant what-if serving tier.
///
/// `CobraServer` owns one published `shared_ptr<const CompiledSession>` and
/// answers wire-protocol requests (serve/wire.h) against it. The design
/// invariants, in the order they matter:
///
///   1. **Verify-gated swap.** The server itself never loads anything: a
///      new session arrives through `Swap()` only after the caller (the
///      `SnapshotWatcher`) has taken it through parse → checksum → static
///      verifier. The swap is an atomic pointer publish; requests admitted
///      before the swap finish on the session they started with (the
///      shared_ptr keeps it alive), so every response is computed against
///      exactly one coherent version — never a mix.
///
///   2. **Bounded admission.** Accepted requests enter a fixed-capacity
///      queue; when it is full the server sheds instead of buffering
///      (kUnavailable + retry-after hint), so overload degrades to fast
///      failure rather than unbounded latency. Every request carries a
///      deadline; workers check it before execution and — for large
///      batches — between scenario chunks, so a stuck queue cannot make a
///      deadline overshoot unbounded. Chunking never changes answers:
///      scenarios are independent, so chunked results are bit-identical.
///
///   3. **Drain on stop.** `Stop()` closes the listener, half-closes every
///      connection (no new requests), lets the workers finish everything
///      already admitted, and only then tears down — an accepted request is
///      never abandoned.
///
/// Identical concurrent batches coalesce: requests whose scenario sets
/// share a content fingerprint (and that target the same snapshot version)
/// execute once and fan the result out.
namespace cobra::serve {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see `port()`).
  int port = 0;
  /// Worker threads executing requests.
  int num_workers = 4;
  /// Admission queue capacity; requests beyond it are shed.
  int queue_capacity = 128;
  /// Deadline applied when a request does not name one, and the ceiling
  /// applied when it does.
  int default_deadline_ms = 10000;
  int max_deadline_ms = 60000;
  /// The retry hint attached to shed responses.
  int retry_after_ms = 50;
  /// Batches larger than this run in chunks of this many scenarios with a
  /// cooperative deadline check between chunks (bit-identical: scenarios
  /// are independent). Batches at or under it run whole — the
  /// plan-cache-friendly and coalescible path.
  int deadline_check_scenarios = 256;
};

/// Monotonic serving counters, readable while the server runs.
struct ServerStats {
  std::uint64_t accepted = 0;        ///< Requests admitted to the queue.
  std::uint64_t completed = 0;       ///< OK responses.
  std::uint64_t shed = 0;            ///< Rejected: queue full.
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;          ///< Non-OK, non-deadline responses.
  std::uint64_t coalesced = 0;       ///< Served by another request's run.
  std::uint64_t swaps = 0;           ///< Snapshot versions published.
};

class CobraServer {
 public:
  explicit CobraServer(ServerOptions options);
  ~CobraServer();

  CobraServer(const CobraServer&) = delete;
  CobraServer& operator=(const CobraServer&) = delete;

  /// Publishes a verified session as the new serving version. Requests
  /// admitted afterwards see it; requests in flight finish on the version
  /// they started with. `name` labels the version in logs and stats.
  void Swap(std::shared_ptr<const core::CompiledSession> session,
            const std::string& name);

  /// Binds, listens, and starts the acceptor + worker threads. Serving
  /// without a session is legal (requests answer kFailedPrecondition until
  /// the first Swap).
  util::Status Start();

  /// Graceful shutdown: stop accepting, half-close connections, drain the
  /// queue, join everything. Idempotent; the destructor calls it.
  void Stop();

  /// The bound port (after Start; useful with options.port == 0).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  /// The served snapshot: version counter (0 = none yet) and name.
  std::uint64_t snapshot_version() const;
  std::string snapshot_name() const;

  /// Renders the stats + served version as text (the kStats response).
  std::string StatsText() const;

  /// Log sink (defaults to stderr via std::fprintf). Must be set before
  /// Start.
  using LogFn = std::function<void(const std::string&)>;
  void set_log(LogFn log) { log_ = std::move(log); }

 private:
  struct Connection;
  struct PendingRequest;
  struct Inflight;

  using Clock = std::chrono::steady_clock;

  /// What a request executes against: one coherent published version.
  struct ServedSnapshot {
    std::shared_ptr<const core::CompiledSession> session;
    std::uint64_t version = 0;
    std::string name;
  };
  ServedSnapshot CurrentSnapshot() const;

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();

  /// Admits one decoded request or answers with a shed/error response.
  void AdmitOrShed(const std::shared_ptr<Connection>& conn,
                   WireRequest request);

  /// Executes one admitted request and writes its response.
  void Execute(PendingRequest& pending);

  /// The AssignBatch path: coalescing, chunking, deadline checks.
  WireResponse RunAssignBatch(const PendingRequest& pending,
                              const ServedSnapshot& snapshot);

  void SendResponse(const std::shared_ptr<Connection>& conn,
                    const WireResponse& response);

  void Log(const std::string& line);

  ServerOptions options_;
  LogFn log_;

  int listen_fd_ = -1;
  int port_ = 0;
  /// Self-pipe: written on Stop to wake the acceptor's poll.
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  mutable std::shared_mutex snapshot_mu_;
  ServedSnapshot snapshot_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingRequest>> queue_;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Connection>> conns_;

  /// Coalescing table: (scenario fingerprint, snapshot version) → the
  /// in-flight execution other identical requests wait on.
  std::mutex inflight_mu_;
  std::map<std::pair<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>,
           std::shared_ptr<Inflight>>
      inflight_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> readers_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace cobra::serve

#endif  // COBRA_SERVE_SERVER_H_
