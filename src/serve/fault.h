#ifndef COBRA_SERVE_FAULT_H_
#define COBRA_SERVE_FAULT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>

/// cobra::serve fault-injection harness.
///
/// The serving daemon's robustness claims (never crashes, never serves a
/// half-trusted artifact, completes every accepted request) are only worth
/// anything if they are *tested under the faults they claim to survive*.
/// This header defines named injection points the serve-layer code probes
/// at its failure-prone seams. In a normal build the probes compile to
/// constant-false / no-op expressions — zero state, zero branches beyond
/// what the optimizer removes. A build with `COBRA_FAULT_INJECTION` defined
/// (the `serve_fault_test` target recompiles the serve sources that way)
/// turns each probe into a check of a tiny atomic registry the test arms:
///
///   ArmFault(FaultPoint::kSnapshotRead, /*count=*/2);
///   // ... the next two snapshot reads inside the watcher fail with
///   // Status::Unavailable("injected ...") and then behave normally.
///
/// The registry functions themselves are always compiled (they are trivial
/// and header-inline), so tests can link either build; the *probes* are
/// what the macro gates. `ServerBuildHasFaultInjection()` reports whether
/// the serve objects actually linked into this binary carry active probes —
/// tests skip fault scenarios when it returns false.
namespace cobra::serve {

/// Named injection points. Each names one failure-prone seam in the serve
/// layer; the two remaining faults of the harness — a torn snapshot write
/// and a mid-swap client burst — need no in-process hook (the test produces
/// them from outside: a truncated file, a thread pile-up).
enum class FaultPoint : int {
  kSnapshotRead = 0,  ///< The watcher's snapshot file read fails.
  kSlowLoad,          ///< The watcher's load stalls (sleeps) before reading.
  kQueueOverflow,     ///< Admission treats the request queue as full.
  kNumPoints,         ///< Sentinel; not an injection point.
};

namespace fault_internal {

struct PointState {
  /// How many more times this point fires. Decremented on each hit.
  std::atomic<int> remaining{0};
  /// For kSlowLoad-style points: how long one firing stalls.
  std::atomic<int> delay_ms{0};
  /// Total times this point has fired (test-side accounting).
  std::atomic<int> fired{0};
};

inline std::array<PointState,
                  static_cast<std::size_t>(FaultPoint::kNumPoints)>&
Registry() {
  static std::array<PointState,
                    static_cast<std::size_t>(FaultPoint::kNumPoints)>
      registry;
  return registry;
}

inline PointState& StateOf(FaultPoint point) {
  return Registry()[static_cast<std::size_t>(point)];
}

}  // namespace fault_internal

/// Arms `point` to fire on its next `count` probes. `delay_ms` applies to
/// stall-style points (how long each firing sleeps).
inline void ArmFault(FaultPoint point, int count, int delay_ms = 0) {
  fault_internal::PointState& state = fault_internal::StateOf(point);
  state.delay_ms.store(delay_ms, std::memory_order_relaxed);
  state.remaining.store(count, std::memory_order_release);
}

/// Disarms every point and clears the fired counters.
inline void ResetFaults() {
  for (fault_internal::PointState& state : fault_internal::Registry()) {
    state.remaining.store(0, std::memory_order_relaxed);
    state.delay_ms.store(0, std::memory_order_relaxed);
    state.fired.store(0, std::memory_order_relaxed);
  }
}

/// How many times `point` has fired since the last ResetFaults().
inline int FaultFireCount(FaultPoint point) {
  return fault_internal::StateOf(point).fired.load(std::memory_order_acquire);
}

/// Probe: consumes one armed firing of `point` if any remain. Called by the
/// COBRA_FAULT_FIRE macro — production code never calls this directly.
inline bool FaultShouldFire(FaultPoint point) {
  fault_internal::PointState& state = fault_internal::StateOf(point);
  int remaining = state.remaining.load(std::memory_order_acquire);
  while (remaining > 0) {
    if (state.remaining.compare_exchange_weak(remaining, remaining - 1,
                                              std::memory_order_acq_rel)) {
      state.fired.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

/// Probe: if `point` is armed, consumes one firing and sleeps its delay.
inline void FaultMaybeStall(FaultPoint point) {
  if (FaultShouldFire(point)) {
    const int delay =
        fault_internal::StateOf(point).delay_ms.load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

/// True iff the serve-layer objects linked into this binary were compiled
/// with COBRA_FAULT_INJECTION (i.e. the probes below are live). Defined in
/// server.cc so the answer reflects the *library's* build, not the caller's
/// translation unit.
bool ServerBuildHasFaultInjection();

}  // namespace cobra::serve

/// The probes the serve sources drop at their failure seams. Compiled out
/// entirely (constant false / no-op) unless COBRA_FAULT_INJECTION is
/// defined for the translation unit.
#ifdef COBRA_FAULT_INJECTION
#define COBRA_FAULT_FIRE(point) (::cobra::serve::FaultShouldFire(point))
#define COBRA_FAULT_STALL(point) (::cobra::serve::FaultMaybeStall(point))
#else
#define COBRA_FAULT_FIRE(point) (false)
#define COBRA_FAULT_STALL(point) ((void)0)
#endif

#endif  // COBRA_SERVE_FAULT_H_
