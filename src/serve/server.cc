#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/scenario.h"
#include "serve/fault.h"

namespace cobra::serve {

bool ServerBuildHasFaultInjection() {
#ifdef COBRA_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

/// One accepted TCP connection. The reader thread is the only reader of
/// `fd`; responses may come from any worker, so writes serialize on
/// `write_mu`. The fd closes when the last shared_ptr drops — which cannot
/// happen before every queued request holding the connection has answered.
struct CobraServer::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  std::mutex write_mu;
};

/// One admitted request: everything Execute needs, captured at admission.
/// The snapshot is pinned here — a Swap after admission does not move this
/// request off the version it was admitted against.
struct CobraServer::PendingRequest {
  std::shared_ptr<Connection> conn;
  WireRequest request;
  ServedSnapshot snapshot;
  Clock::time_point deadline;
};

/// One coalesced AssignBatch execution: the leader fills the shared result
/// and wakes the followers.
struct CobraServer::Inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  /// The leader's response minus per-request identity (request_id).
  WireResponse result;
};

CobraServer::CobraServer(ServerOptions options)
    : options_(std::move(options)) {}

CobraServer::~CobraServer() { Stop(); }

void CobraServer::Log(const std::string& line) {
  if (log_) {
    log_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void CobraServer::Swap(std::shared_ptr<const core::CompiledSession> session,
                       const std::string& name) {
  std::uint64_t version = 0;
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    snapshot_.session = std::move(session);
    snapshot_.version += 1;
    snapshot_.name = name;
    version = snapshot_.version;
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  Log("serverd: serving snapshot '" + name + "' as version " +
      std::to_string(version));
}

CobraServer::ServedSnapshot CobraServer::CurrentSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::uint64_t CobraServer::snapshot_version() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return snapshot_.version;
}

std::string CobraServer::snapshot_name() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return snapshot_.name;
}

util::Status CobraServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket() failed: ") +
                                 std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError("bind(port " +
                                 std::to_string(options_.port) +
                                 ") failed: " + error);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError("listen() failed: " + error);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(std::string("pipe() failed: ") +
                                 std::strerror(errno));
  }
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const int workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  Log("serverd: listening on 127.0.0.1:" + std::to_string(port_));
  return util::Status::OK();
}

void CobraServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);

  // Wake and join the acceptor: no new connections.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Half-close every connection: readers see EOF and stop admitting, but
  // the write side stays open for responses still in the queue.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::weak_ptr<Connection>& weak : conns_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RD);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::thread& reader : readers_) {
      if (reader.joinable()) reader.join();
    }
    readers_.clear();
  }

  // Drain: workers exit only once the queue is empty (WorkerLoop checks
  // draining_), so every admitted request still gets its response.
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  Log("serverd: drained and stopped");
}

void CobraServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Log(std::string("serverd: accept poll failed: ") +
          std::strerror(errno));
      return;
    }
    if (fds[1].revents != 0 || draining_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      Log(std::string("serverd: accept failed: ") + std::strerror(errno));
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back(
        [this, conn]() mutable { ConnectionLoop(std::move(conn)); });
  }
}

void CobraServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string payload;
    bool closed = false;
    util::Status read = ReadFrame(conn->fd, &payload, &closed);
    if (!read.ok()) {
      Log("serverd: connection dropped: " + read.ToString());
      return;
    }
    if (closed) return;
    util::Result<WireRequest> request = DecodeRequest(payload);
    if (!request.ok()) {
      WireResponse response;
      response.code = WireCode::kInvalidArgument;
      response.message = request.status().message();
      SendResponse(conn, response);
      continue;
    }
    switch (request->type) {
      case MsgType::kPing: {
        WireResponse response;
        response.type = MsgType::kPing;
        response.request_id = request->request_id;
        const ServedSnapshot snapshot = CurrentSnapshot();
        response.snapshot_version = snapshot.version;
        response.message = snapshot.name;
        SendResponse(conn, response);
        break;
      }
      case MsgType::kStats: {
        WireResponse response;
        response.type = MsgType::kStats;
        response.request_id = request->request_id;
        response.snapshot_version = snapshot_version();
        response.stats_text = StatsText();
        SendResponse(conn, response);
        break;
      }
      case MsgType::kAssignBatch:
        AdmitOrShed(conn, std::move(*request));
        break;
      default: {
        WireResponse response;
        response.request_id = request->request_id;
        response.code = WireCode::kInvalidArgument;
        response.message = "unknown message type";
        SendResponse(conn, response);
        break;
      }
    }
  }
}

void CobraServer::AdmitOrShed(const std::shared_ptr<Connection>& conn,
                              WireRequest request) {
  auto pending = std::make_unique<PendingRequest>();
  pending->conn = conn;
  pending->snapshot = CurrentSnapshot();
  int deadline_ms = request.deadline_ms == 0
                        ? options_.default_deadline_ms
                        : static_cast<int>(request.deadline_ms);
  if (deadline_ms > options_.max_deadline_ms) {
    deadline_ms = options_.max_deadline_ms;
  }
  pending->deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  const std::uint64_t request_id = request.request_id;
  pending->request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const bool full =
        queue_.size() >= static_cast<std::size_t>(options_.queue_capacity) ||
        COBRA_FAULT_FIRE(FaultPoint::kQueueOverflow);
    if (full || draining_.load(std::memory_order_acquire)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      WireResponse response;
      response.type = MsgType::kAssignBatch;
      response.request_id = request_id;
      response.code = WireCode::kUnavailable;
      response.message = full ? "request queue full" : "server draining";
      response.retry_after_ms =
          static_cast<std::uint32_t>(options_.retry_after_ms);
      SendResponse(conn, response);
      return;
    }
    queue_.push_back(std::move(pending));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
}

void CobraServer::WorkerLoop() {
  for (;;) {
    std::unique_ptr<PendingRequest> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        // Draining and nothing left: every accepted request has answered.
        return;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(*pending);
  }
}

void CobraServer::Execute(PendingRequest& pending) {
  WireResponse response = RunAssignBatch(pending, pending.snapshot);
  response.type = MsgType::kAssignBatch;
  response.request_id = pending.request.request_id;
  switch (response.code) {
    case WireCode::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  SendResponse(pending.conn, response);
}

namespace {

/// Copies one batch report into the response matrices (appending — the
/// chunked path calls this once per chunk).
void AppendBatchReport(const core::BatchAssignReport& report,
                       WireResponse* response) {
  for (const std::string& name : report.scenario_names) {
    response->scenario_names.push_back(name);
  }
  for (const core::AssignReport& scenario : report.reports) {
    for (const core::ResultDelta::Row& row : scenario.delta.rows) {
      response->full_values.push_back(row.full);
      response->compressed_values.push_back(row.compressed);
    }
  }
}

WireResponse ErrorResponse(WireCode code, std::string message) {
  WireResponse response;
  response.code = code;
  response.message = std::move(message);
  return response;
}

}  // namespace

WireResponse CobraServer::RunAssignBatch(const PendingRequest& pending,
                                         const ServedSnapshot& snapshot) {
  if (snapshot.session == nullptr) {
    return ErrorResponse(WireCode::kFailedPrecondition,
                         "no servable snapshot loaded yet");
  }
  const core::ScenarioSet& scenarios = pending.request.scenarios;
  if (scenarios.empty()) {
    return ErrorResponse(WireCode::kInvalidArgument, "empty scenario set");
  }
  if (Clock::now() >= pending.deadline) {
    return ErrorResponse(WireCode::kDeadlineExceeded,
                         "deadline expired before execution started");
  }

  const std::size_t chunk =
      options_.deadline_check_scenarios > 0
          ? static_cast<std::size_t>(options_.deadline_check_scenarios)
          : scenarios.size();

  if (scenarios.size() <= chunk) {
    // Whole-batch path: coalesce identical concurrent batches. The key is
    // the scenario set's content fingerprint plus the snapshot version —
    // requests pinned to different versions never share a result.
    const core::PlanFingerprint fp = core::FingerprintScenarios(scenarios);
    const auto key = std::make_pair(std::make_pair(fp.lo, fp.hi),
                                    snapshot.version);
    std::shared_ptr<Inflight> inflight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      auto it = inflight_.find(key);
      if (it == inflight_.end()) {
        inflight = std::make_shared<Inflight>();
        inflight_.emplace(key, inflight);
        leader = true;
      } else {
        inflight = it->second;
      }
    }
    if (!leader) {
      // Follower: wait for the leader's result (bounded by our deadline).
      std::unique_lock<std::mutex> lock(inflight->mu);
      if (!inflight->cv.wait_until(lock, pending.deadline,
                                   [&] { return inflight->done; })) {
        return ErrorResponse(WireCode::kDeadlineExceeded,
                             "deadline expired waiting for coalesced batch");
      }
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      return inflight->result;
    }
    // Leader: execute, publish, unregister.
    WireResponse response;
    util::Result<core::BatchAssignReport> report =
        snapshot.session->AssignBatch(scenarios);
    if (report.ok()) {
      response.snapshot_version = snapshot.version;
      response.labels = snapshot.session->labels();
      AppendBatchReport(*report, &response);
    } else {
      response.code = ToWireCode(report.status().code());
      response.message = report.status().message();
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> lock(inflight->mu);
      inflight->result = response;
      inflight->done = true;
    }
    inflight->cv.notify_all();
    return response;
  }

  // Chunked path: large batches run in sub-batches with a cooperative
  // deadline check between them. Scenarios are independent, so the
  // concatenated results are bit-identical to one whole-batch call.
  WireResponse response;
  response.snapshot_version = snapshot.version;
  response.labels = snapshot.session->labels();
  for (std::size_t offset = 0; offset < scenarios.size(); offset += chunk) {
    if (Clock::now() >= pending.deadline) {
      return ErrorResponse(
          WireCode::kDeadlineExceeded,
          "deadline expired after " + std::to_string(offset) + " of " +
              std::to_string(scenarios.size()) + " scenarios");
    }
    core::ScenarioSet sub;
    const std::size_t end = std::min(offset + chunk, scenarios.size());
    sub.Reserve(end - offset);
    for (std::size_t i = offset; i < end; ++i) {
      // Names were vetted unique by the decoder; a sub-batch of distinct
      // indices cannot collide.
      util::Result<core::ScenarioSet::Handle> added =
          sub.Add(scenarios.scenario(i));
      if (!added.ok()) {
        return ErrorResponse(WireCode::kInvalidArgument,
                             added.status().message());
      }
    }
    util::Result<core::BatchAssignReport> report =
        snapshot.session->AssignBatch(sub);
    if (!report.ok()) {
      return ErrorResponse(ToWireCode(report.status().code()),
                           report.status().message());
    }
    AppendBatchReport(*report, &response);
  }
  return response;
}

void CobraServer::SendResponse(const std::shared_ptr<Connection>& conn,
                               const WireResponse& response) {
  const std::string payload = EncodeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  util::Status written = WriteFrame(conn->fd, payload);
  if (!written.ok()) {
    Log("serverd: response write failed: " + written.ToString());
  }
}

ServerStats CobraServer::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  return stats;
}

std::string CobraServer::StatsText() const {
  const ServerStats s = stats();
  std::string text = "serving snapshot '" + snapshot_name() + "' version " +
                     std::to_string(snapshot_version()) + "\n";
  text += "accepted=" + std::to_string(s.accepted);
  text += " completed=" + std::to_string(s.completed);
  text += " coalesced=" + std::to_string(s.coalesced);
  text += " shed=" + std::to_string(s.shed);
  text += " deadline_exceeded=" + std::to_string(s.deadline_exceeded);
  text += " failed=" + std::to_string(s.failed);
  text += " swaps=" + std::to_string(s.swaps);
  return text;
}

}  // namespace cobra::serve
