#ifndef COBRA_SERVE_WIRE_H_
#define COBRA_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.h"
#include "util/status.h"

/// cobra::serve wire protocol — the length-prefixed binary framing
/// `cobra_serverd` speaks over TCP.
///
/// A connection carries a sequence of frames in each direction. One frame
/// is a 32-bit little-endian payload length followed by exactly that many
/// payload bytes; payloads above `kMaxFrameBytes` are rejected before any
/// allocation, so a corrupt or hostile length prefix cannot become an
/// allocation bomb. Requests and responses are matched by `request_id`
/// (the server echoes it back); a client may pipeline requests on one
/// connection and the server answers in completion order.
///
/// The payload encoding mirrors the snapshot format's conventions
/// (core/io.cc): little-endian integers, strings as u32 length + bytes,
/// doubles as IEEE-754 bit patterns — values round-trip exactly, which the
/// bit-identity contract of the serving tier depends on.
namespace cobra::serve {

/// Version of the wire payload layout. Bump on any change; servers reject
/// other versions with kInvalidArgument rather than guessing.
inline constexpr std::uint16_t kWireVersion = 1;

/// Hard ceiling on one frame's payload (requests and responses alike).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Hard ceiling on scenarios in one kAssignBatch request. Bulk spaces
/// beyond this belong to the streaming sweep API (AssignStream) on a local
/// snapshot, not to single-shot wire frames; the decoder rejects larger
/// requests with kInvalidArgument before any planning work runs.
inline constexpr std::uint32_t kMaxRequestScenarios = 65536;

/// Hard ceiling on the total override (delta) count summed across all
/// scenarios of one kAssignBatch request — bounds decoder memory the same
/// way kMaxFrameBytes bounds the raw payload.
inline constexpr std::uint32_t kMaxRequestDeltas = 1u << 20;

/// Request/response kinds.
enum class MsgType : std::uint16_t {
  kPing = 1,         ///< Liveness + served snapshot version.
  kAssignBatch = 2,  ///< Evaluate a ScenarioSet against the served snapshot.
  kStats = 3,        ///< Server counters, rendered as text.
};

/// Wire-stable status codes (never reuse or renumber). The subset of
/// util::StatusCode a server legitimately answers with; ToWireCode maps
/// everything else to kInternal.
enum class WireCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,    ///< Malformed request (also: version mismatch).
  kFailedPrecondition = 2, ///< No servable snapshot loaded yet.
  kUnavailable = 3,        ///< Load shed / draining; retry after the hint.
  kDeadlineExceeded = 4,   ///< The request ran past its deadline.
  kInternal = 5,           ///< Bug or unclassified failure.
};

/// Stable display name ("Ok", "Unavailable", ...).
const char* WireCodeName(WireCode code);

/// Maps a util::StatusCode onto the wire subset (lossy: unclassified codes
/// become kInternal).
WireCode ToWireCode(util::StatusCode code);

/// One request frame's decoded payload.
struct WireRequest {
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  /// Milliseconds the client is willing to wait, measured from admission;
  /// 0 means "use the server default". The server caps it at its
  /// configured maximum.
  std::uint32_t deadline_ms = 0;
  /// The scenario batch (kAssignBatch only).
  core::ScenarioSet scenarios;
};

/// One response frame's decoded payload. `code != kOk` carries `message`
/// (and `retry_after_ms` when the server sheds load); `code == kOk`
/// carries the type-specific result fields.
struct WireResponse {
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;
  /// When code == kUnavailable: how long the client should back off before
  /// retrying (0 = no hint).
  std::uint32_t retry_after_ms = 0;

  /// The snapshot version that served this response (all OK responses).
  std::uint64_t snapshot_version = 0;

  /// kAssignBatch results: output group labels, scenario names in request
  /// order, and the scenario-major (scenario × group) value matrices for
  /// both program sides — bit-identical to a direct
  /// CompiledSession::AssignBatch against the same snapshot version.
  std::vector<std::string> labels;
  std::vector<std::string> scenario_names;
  std::vector<double> full_values;
  std::vector<double> compressed_values;

  /// kStats result: the server's counters rendered as text.
  std::string stats_text;

  std::size_t num_scenarios() const { return scenario_names.size(); }
  std::size_t num_groups() const { return labels.size(); }
  double full_value(std::size_t scenario, std::size_t group) const {
    return full_values[scenario * labels.size() + group];
  }
  double compressed_value(std::size_t scenario, std::size_t group) const {
    return compressed_values[scenario * labels.size() + group];
  }
};

/// Encodes a request/response into one frame payload (no length prefix).
std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

/// Decodes a frame payload. Truncated, oversized-count, or wrong-version
/// payloads fail with InvalidArgument naming the offending field; nothing
/// is ever partially applied.
util::Result<WireRequest> DecodeRequest(std::string_view payload);
util::Result<WireResponse> DecodeResponse(std::string_view payload);

/// Writes one frame (length prefix + payload) to `fd`, handling partial
/// writes and EINTR. Fails with InvalidArgument if payload exceeds
/// kMaxFrameBytes, Unavailable if the peer closed, IoError otherwise.
util::Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. On a clean close at a frame boundary sets
/// `*closed` and returns OK with `*payload` empty; EOF mid-frame, an
/// oversized length prefix, or a read error fail with a descriptive
/// Status.
util::Status ReadFrame(int fd, std::string* payload, bool* closed);

/// A blocking client connection — what `cobra_client`, the CI smoke, and
/// the integration tests use to talk to a server.
class Client {
 public:
  Client() = default;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Connects over TCP. `timeout_ms` bounds each subsequent send/receive
  /// (0 = no timeout).
  static util::Result<Client> Connect(const std::string& host, int port,
                                      int timeout_ms = 10000);

  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and waits for its response. Fails if the connection
  /// drops or the response's request_id does not match.
  util::Result<WireResponse> Call(const WireRequest& request);

  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace cobra::serve

#endif  // COBRA_SERVE_WIRE_H_
