#ifndef COBRA_SERVE_SNAPSHOT_WATCHER_H_
#define COBRA_SERVE_SNAPSHOT_WATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "core/compiled_session.h"
#include "util/status.h"

/// cobra::serve snapshot watching — how the daemon picks up new snapshot
/// versions without ever serving a half-trusted artifact.
///
/// Directory convention: a serving directory holds binary snapshot files
/// named `<version>.snap`. Versions order lexicographically, so publishers
/// should zero-pad (`v000001.snap`, `v000002.snap`, ...); the watcher
/// always serves the lexicographically greatest eligible `.snap`.
/// Publishers must write to a temporary name (anything not ending in
/// `.snap` — by convention `<version>.snap.tmp`) and `rename(2)` into
/// place, so a candidate is normally complete the moment it is visible.
/// The watcher still survives torn writes: a truncated artifact classifies
/// as transient (`Unavailable`, core/io.h) and is retried with capped
/// exponential backoff, never quarantined.
///
/// Artifacts that are *permanently* bad — checksum mismatch, malformed
/// payload, or rejection by the static verifier (`cobra::verify`) — are
/// renamed to `<name>.rejected` (quarantine) so the watcher never loops on
/// them, and the serving session is left untouched: the daemon keeps
/// answering from the previous version. The same `QuarantineArtifact`
/// helper backs `cobra_verify --quarantine`.
namespace cobra::serve {

/// Suffixes of the directory convention.
inline constexpr char kSnapshotSuffix[] = ".snap";
inline constexpr char kRejectedSuffix[] = ".rejected";

/// Capped exponential backoff with deterministic jitter for transient load
/// failures: attempt k sleeps uniform([delay/2, delay]) where delay =
/// min(initial * multiplier^(k-1), max).
struct RetryPolicy {
  int max_attempts = 5;       ///< Total attempts per load (1 = no retry).
  int backoff_initial_ms = 10;
  int backoff_max_ms = 2000;
  double backoff_multiplier = 2.0;
  std::uint64_t jitter_seed = 0x5eed;  ///< Seeds the jitter Rng.
};

/// Renames `path` to `path + ".rejected"` so directory scans stop seeing
/// it. Fails with NotFound if `path` does not exist and IoError if the
/// rename fails; refuses (InvalidArgument) paths already quarantined.
util::Status QuarantineArtifact(const std::string& path);

/// Scans `dir` for the next snapshot to serve: the lexicographically
/// greatest file ending in `.snap` whose name is strictly greater than
/// `current_name` (pass "" when nothing is loaded yet). Returns the bare
/// file name; NotFound when no eligible candidate exists; IoError when the
/// directory cannot be listed.
util::Result<std::string> PickCandidate(const std::string& dir,
                                        const std::string& current_name);

/// The result of one (possibly retried) verify-gated snapshot load.
struct LoadOutcome {
  /// The servable session, or null on failure.
  std::shared_ptr<const core::CompiledSession> session;
  /// OK, or the final (post-retry) failure.
  util::Status status;
  /// When the static verifier rejected the artifact: the rendered
  /// `VerifyReport` finding table (empty otherwise). The daemon logs this
  /// verbatim — a quarantined file must be diagnosable from the log alone.
  std::string verify_report;
  /// Attempts actually made (1 = first try succeeded or failed permanent).
  int attempts = 0;
  /// Whether the artifact was renamed to `.rejected`.
  bool quarantined = false;
};

/// Loads `path` through the full trust pipeline — read, ParseSnapshot
/// (format/version/checksum), VerifySnapshot (static content audit),
/// FromSnapshot (serving-session rebuild, which re-verifies) — retrying
/// *transient* failures (`util::IsRetryable`) per `policy` and, when
/// `quarantine_on_permanent` is set, renaming permanently-bad artifacts to
/// `.rejected` exactly once. `sleep_ms` overrides how backoff waits are
/// slept (tests inject a recorder; the default really sleeps).
LoadOutcome LoadSnapshotWithRetry(
    const std::string& path, const RetryPolicy& policy,
    bool quarantine_on_permanent,
    const std::function<void(int)>& sleep_ms = {});

/// Watches a snapshot directory from its own thread and hands every
/// successfully verified new version to `swap`. All loading, verification,
/// retrying, and quarantining happens on the watcher thread — never on the
/// serving path.
class SnapshotWatcher {
 public:
  struct Options {
    std::string dir;
    int poll_interval_ms = 200;
    RetryPolicy retry;
    bool quarantine = true;
  };

  /// `swap` receives the verified session and the snapshot's file name.
  /// `log` receives one line per noteworthy event (swap, retry exhaustion,
  /// quarantine + verify report); it must be callable from the watcher
  /// thread.
  using SwapFn = std::function<void(
      std::shared_ptr<const core::CompiledSession>, const std::string&)>;
  using LogFn = std::function<void(const std::string&)>;

  SnapshotWatcher(Options options, SwapFn swap, LogFn log);
  ~SnapshotWatcher();

  SnapshotWatcher(const SnapshotWatcher&) = delete;
  SnapshotWatcher& operator=(const SnapshotWatcher&) = delete;

  /// Starts the polling thread (idempotent).
  void Start();

  /// Stops and joins the polling thread (idempotent; the destructor calls
  /// it). A load in progress finishes first — Swap is never interrupted.
  void Stop();

  /// Runs one scan-load-swap step synchronously on the caller's thread.
  /// Returns OK when there was nothing new to do or a swap succeeded; the
  /// load failure otherwise. Exposed for tests and for the daemon's
  /// synchronous initial load.
  util::Status PollOnce();

  /// Monotonic counters (readable from any thread).
  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t swaps = 0;
    std::uint64_t transient_giveups = 0;  ///< Retries exhausted this poll.
    std::uint64_t quarantines = 0;
  };
  Stats stats() const;

  /// The file name of the currently served snapshot ("" before the first
  /// swap).
  std::string current_name() const;

 private:
  void Loop();

  Options options_;
  SwapFn swap_;
  LogFn log_;

  mutable std::mutex mu_;          // guards current_name_ and skip_
  std::string current_name_;
  /// Names that failed permanently but could not be renamed away (e.g. a
  /// read-only directory): remembered so the watcher does not hot-loop.
  std::set<std::string> skip_;

  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> transient_giveups_{0};
  std::atomic<std::uint64_t> quarantines_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace cobra::serve

#endif  // COBRA_SERVE_SNAPSHOT_WATCHER_H_
