#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/str.h"

namespace cobra::serve {

namespace {

/// Little-endian payload writer (same conventions as the snapshot format).
class Writer {
 public:
  void U16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void StrVec(const std::vector<std::string>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (const std::string& s : v) Str(s);
  }
  void F64Vec(const std::vector<double>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) F64(x);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload reader. Every failure names the
/// field, so a malformed frame is diagnosable from the message alone.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  util::Status U16(std::uint16_t* out, const char* what) {
    COBRA_RETURN_IF_ERROR(Need(2, what));
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<unsigned char>(data_[pos_ + i]))
                  << (8 * i));
    }
    pos_ += 2;
    *out = v;
    return util::Status::OK();
  }

  util::Status U32(std::uint32_t* out, const char* what) {
    COBRA_RETURN_IF_ERROR(Need(4, what));
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return util::Status::OK();
  }

  util::Status U64(std::uint64_t* out, const char* what) {
    COBRA_RETURN_IF_ERROR(Need(8, what));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return util::Status::OK();
  }

  util::Status F64(double* out, const char* what) {
    std::uint64_t bits = 0;
    COBRA_RETURN_IF_ERROR(U64(&bits, what));
    *out = std::bit_cast<double>(bits);
    return util::Status::OK();
  }

  util::Status Str(std::string* out, const char* what) {
    std::uint32_t length = 0;
    COBRA_RETURN_IF_ERROR(U32(&length, what));
    COBRA_RETURN_IF_ERROR(Need(length, what));
    out->assign(data_.substr(pos_, length));
    pos_ += length;
    return util::Status::OK();
  }

  /// Reads a u32 element count, guarding against counts that cannot fit in
  /// the remaining bytes at `min_elem_size` bytes each.
  util::Status Count(std::size_t min_elem_size, std::size_t* out,
                     const char* what) {
    std::uint32_t count = 0;
    COBRA_RETURN_IF_ERROR(U32(&count, what));
    if (min_elem_size > 0 &&
        count > (data_.size() - pos_) / min_elem_size) {
      return Fail(util::StrFormat(
          "%s count %u larger than the remaining payload", what, count));
    }
    *out = count;
    return util::Status::OK();
  }

  util::Status StrVec(std::vector<std::string>* out, const char* what) {
    std::size_t count = 0;
    COBRA_RETURN_IF_ERROR(Count(4, &count, what));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      COBRA_RETURN_IF_ERROR(Str(&(*out)[i], what));
    }
    return util::Status::OK();
  }

  util::Status F64Vec(std::vector<double>* out, const char* what) {
    std::size_t count = 0;
    COBRA_RETURN_IF_ERROR(Count(8, &count, what));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      COBRA_RETURN_IF_ERROR(F64(&(*out)[i], what));
    }
    return util::Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

  util::Status Fail(const std::string& what) const {
    return util::Status::InvalidArgument(util::StrFormat(
        "wire payload: %s at byte %zu", what.c_str(), pos_));
  }

 private:
  util::Status Need(std::size_t bytes, const char* what) const {
    if (data_.size() - pos_ < bytes) {
      return Fail(util::StrFormat("truncated: expected %s", what));
    }
    return util::Status::OK();
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

util::Status CheckVersionAndType(Reader* reader, MsgType* type) {
  std::uint16_t version = 0;
  COBRA_RETURN_IF_ERROR(reader->U16(&version, "wire version"));
  if (version != kWireVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "wire payload: unsupported wire version %u (this build speaks %u)",
        version, kWireVersion));
  }
  std::uint16_t raw_type = 0;
  COBRA_RETURN_IF_ERROR(reader->U16(&raw_type, "message type"));
  if (raw_type != static_cast<std::uint16_t>(MsgType::kPing) &&
      raw_type != static_cast<std::uint16_t>(MsgType::kAssignBatch) &&
      raw_type != static_cast<std::uint16_t>(MsgType::kStats)) {
    return util::Status::InvalidArgument(util::StrFormat(
        "wire payload: unknown message type %u", raw_type));
  }
  *type = static_cast<MsgType>(raw_type);
  return util::Status::OK();
}

}  // namespace

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "Ok";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kFailedPrecondition:
      return "FailedPrecondition";
    case WireCode::kUnavailable:
      return "Unavailable";
    case WireCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireCode::kInternal:
      return "Internal";
  }
  return "?";
}

WireCode ToWireCode(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk:
      return WireCode::kOk;
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kNotFound:
    case util::StatusCode::kOutOfRange:
    case util::StatusCode::kParseError:
      return WireCode::kInvalidArgument;
    case util::StatusCode::kFailedPrecondition:
      return WireCode::kFailedPrecondition;
    case util::StatusCode::kUnavailable:
      return WireCode::kUnavailable;
    case util::StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    default:
      return WireCode::kInternal;
  }
}

std::string EncodeRequest(const WireRequest& request) {
  Writer w;
  w.U16(kWireVersion);
  w.U16(static_cast<std::uint16_t>(request.type));
  w.U64(request.request_id);
  w.U32(request.deadline_ms);
  if (request.type == MsgType::kAssignBatch) {
    w.U32(static_cast<std::uint32_t>(request.scenarios.size()));
    for (const core::Scenario& scenario : request.scenarios.scenarios()) {
      w.Str(scenario.name);
      w.U32(static_cast<std::uint32_t>(scenario.deltas.size()));
      for (const core::Scenario::Delta& delta : scenario.deltas) {
        w.Str(delta.var);
        w.F64(delta.value);
      }
    }
  }
  return w.Take();
}

util::Result<WireRequest> DecodeRequest(std::string_view payload) {
  Reader reader(payload);
  WireRequest request;
  COBRA_RETURN_IF_ERROR(CheckVersionAndType(&reader, &request.type));
  COBRA_RETURN_IF_ERROR(reader.U64(&request.request_id, "request id"));
  COBRA_RETURN_IF_ERROR(reader.U32(&request.deadline_ms, "deadline"));
  if (request.type == MsgType::kAssignBatch) {
    std::size_t num_scenarios = 0;
    // A scenario is at least a name length + delta count: 8 bytes.
    COBRA_RETURN_IF_ERROR(reader.Count(8, &num_scenarios, "scenario"));
    if (num_scenarios > kMaxRequestScenarios) {
      return util::Status::InvalidArgument(util::StrFormat(
          "wire: request carries %zu scenarios, over the "
          "kMaxRequestScenarios cap of %u",
          num_scenarios, kMaxRequestScenarios));
    }
    request.scenarios.Reserve(num_scenarios);
    std::size_t total_deltas = 0;
    for (std::size_t i = 0; i < num_scenarios; ++i) {
      std::string name;
      COBRA_RETURN_IF_ERROR(reader.Str(&name, "scenario name"));
      util::Result<core::ScenarioSet::Handle> handle =
          request.scenarios.Add(std::move(name));
      if (!handle.ok()) return handle.status();
      std::size_t num_deltas = 0;
      // A delta is at least a var length + value: 12 bytes.
      COBRA_RETURN_IF_ERROR(reader.Count(12, &num_deltas, "delta"));
      total_deltas += num_deltas;
      if (total_deltas > kMaxRequestDeltas) {
        return util::Status::InvalidArgument(util::StrFormat(
            "wire: request carries over %u total overrides "
            "(kMaxRequestDeltas cap)",
            kMaxRequestDeltas));
      }
      for (std::size_t d = 0; d < num_deltas; ++d) {
        std::string var;
        double value = 0.0;
        COBRA_RETURN_IF_ERROR(reader.Str(&var, "delta variable"));
        COBRA_RETURN_IF_ERROR(reader.F64(&value, "delta value"));
        handle->Set(std::move(var), value);
      }
    }
  }
  if (!reader.AtEnd()) {
    return reader.Fail("trailing bytes after the last field");
  }
  return request;
}

std::string EncodeResponse(const WireResponse& response) {
  Writer w;
  w.U16(kWireVersion);
  w.U16(static_cast<std::uint16_t>(response.type));
  w.U64(response.request_id);
  w.U16(static_cast<std::uint16_t>(response.code));
  w.U32(response.retry_after_ms);
  w.Str(response.message);
  if (response.code != WireCode::kOk) return w.Take();
  w.U64(response.snapshot_version);
  switch (response.type) {
    case MsgType::kPing:
      break;
    case MsgType::kAssignBatch:
      w.StrVec(response.labels);
      w.StrVec(response.scenario_names);
      w.F64Vec(response.full_values);
      w.F64Vec(response.compressed_values);
      break;
    case MsgType::kStats:
      w.Str(response.stats_text);
      break;
  }
  return w.Take();
}

util::Result<WireResponse> DecodeResponse(std::string_view payload) {
  Reader reader(payload);
  WireResponse response;
  COBRA_RETURN_IF_ERROR(CheckVersionAndType(&reader, &response.type));
  COBRA_RETURN_IF_ERROR(reader.U64(&response.request_id, "request id"));
  std::uint16_t raw_code = 0;
  COBRA_RETURN_IF_ERROR(reader.U16(&raw_code, "status code"));
  if (raw_code > static_cast<std::uint16_t>(WireCode::kInternal)) {
    return util::Status::InvalidArgument(util::StrFormat(
        "wire payload: unknown status code %u", raw_code));
  }
  response.code = static_cast<WireCode>(raw_code);
  COBRA_RETURN_IF_ERROR(reader.U32(&response.retry_after_ms, "retry hint"));
  COBRA_RETURN_IF_ERROR(reader.Str(&response.message, "message"));
  if (response.code != WireCode::kOk) {
    if (!reader.AtEnd()) return reader.Fail("trailing bytes after error");
    return response;
  }
  COBRA_RETURN_IF_ERROR(
      reader.U64(&response.snapshot_version, "snapshot version"));
  switch (response.type) {
    case MsgType::kPing:
      break;
    case MsgType::kAssignBatch: {
      COBRA_RETURN_IF_ERROR(reader.StrVec(&response.labels, "label"));
      COBRA_RETURN_IF_ERROR(
          reader.StrVec(&response.scenario_names, "scenario name"));
      COBRA_RETURN_IF_ERROR(
          reader.F64Vec(&response.full_values, "full value"));
      COBRA_RETURN_IF_ERROR(
          reader.F64Vec(&response.compressed_values, "compressed value"));
      const std::size_t cells =
          response.scenario_names.size() * response.labels.size();
      if (response.full_values.size() != cells ||
          response.compressed_values.size() != cells) {
        return reader.Fail(util::StrFormat(
            "value matrices hold %zu/%zu cells but %zu scenarios x %zu "
            "groups promise %zu",
            response.full_values.size(), response.compressed_values.size(),
            response.scenario_names.size(), response.labels.size(), cells));
      }
      break;
    }
    case MsgType::kStats:
      COBRA_RETURN_IF_ERROR(reader.Str(&response.stats_text, "stats text"));
      break;
  }
  if (!reader.AtEnd()) {
    return reader.Fail("trailing bytes after the last field");
  }
  return response;
}

// ---------------------------------------------------------------------------
// Frame I/O over a file descriptor.
// ---------------------------------------------------------------------------

namespace {

/// Writes all of `data`, retrying on EINTR and partial writes.
util::Status WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return util::Status::Unavailable("peer closed the connection");
      }
      return util::Status::IoError(
          util::StrFormat("write failed: %s", std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
  return util::Status::OK();
}

/// Reads exactly `size` bytes. `*closed` is set (with OK) only when EOF
/// lands before the first byte and `allow_clean_eof` is true.
util::Status ReadAll(int fd, char* data, std::size_t size,
                     bool allow_clean_eof, bool* closed) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::Status::DeadlineExceeded("read timed out");
      }
      if (errno == ECONNRESET) {
        return util::Status::Unavailable("peer reset the connection");
      }
      return util::Status::IoError(
          util::StrFormat("read failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0 && allow_clean_eof) {
        *closed = true;
        return util::Status::OK();
      }
      return util::Status::Unavailable(
          "peer closed the connection mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return util::Status::OK();
}

}  // namespace

util::Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument(util::StrFormat(
        "frame payload of %zu bytes exceeds the %u-byte frame limit",
        payload.size(), kMaxFrameBytes));
  }
  char prefix[4];
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<char>(size >> (8 * i));
  COBRA_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

util::Status ReadFrame(int fd, std::string* payload, bool* closed) {
  payload->clear();
  *closed = false;
  char prefix[4];
  COBRA_RETURN_IF_ERROR(
      ReadAll(fd, prefix, sizeof(prefix), /*allow_clean_eof=*/true, closed));
  if (*closed) return util::Status::OK();
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[i]))
            << (8 * i);
  }
  if (size > kMaxFrameBytes) {
    return util::Status::InvalidArgument(util::StrFormat(
        "frame length prefix %u exceeds the %u-byte frame limit", size,
        kMaxFrameBytes));
  }
  payload->resize(size);
  bool ignored = false;
  return ReadAll(fd, payload->data(), size, /*allow_clean_eof=*/false,
                 &ignored);
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::Connect(const std::string& host, int port,
                                     int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(
        util::StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument(
        "not an IPv4 address: " + host +
        " (cobra_serverd listens on a numeric loopback address)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::Unavailable(util::StrFormat(
        "cannot connect to %s:%d: %s", host.c_str(), port,
        std::strerror(err)));
  }
  return Client(fd);
}

util::Result<WireResponse> Client::Call(const WireRequest& request) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  COBRA_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(request)));
  std::string payload;
  bool closed = false;
  COBRA_RETURN_IF_ERROR(ReadFrame(fd_, &payload, &closed));
  if (closed) {
    return util::Status::Unavailable(
        "server closed the connection before responding");
  }
  util::Result<WireResponse> response = DecodeResponse(payload);
  if (!response.ok()) return response.status();
  if (response->request_id != request.request_id) {
    return util::Status::Internal(util::StrFormat(
        "response id %llu does not match request id %llu",
        static_cast<unsigned long long>(response->request_id),
        static_cast<unsigned long long>(request.request_id)));
  }
  return response;
}

}  // namespace cobra::serve
