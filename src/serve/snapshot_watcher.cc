#include "serve/snapshot_watcher.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/io.h"
#include "serve/fault.h"
#include "util/csv.h"
#include "util/rng.h"
#include "verify/verify.h"

namespace cobra::serve {

namespace {

bool EndsWith(const std::string& name, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return name.size() >= n &&
         name.compare(name.size() - n, n, suffix) == 0;
}

}  // namespace

util::Status QuarantineArtifact(const std::string& path) {
  if (EndsWith(path, kRejectedSuffix)) {
    return util::Status::InvalidArgument("already quarantined: " + path);
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return util::Status::NotFound("cannot quarantine missing file: " + path);
  }
  const std::string target = path + kRejectedSuffix;
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    return util::Status::IoError("quarantine rename of " + path + " to " +
                                 target + " failed: " +
                                 std::strerror(errno));
  }
  return util::Status::OK();
}

util::Result<std::string> PickCandidate(const std::string& dir,
                                        const std::string& current_name) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return util::Status::IoError("cannot list snapshot directory " + dir +
                                 ": " + std::strerror(errno));
  }
  std::string best;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (!EndsWith(name, kSnapshotSuffix)) continue;
    if (name <= current_name) continue;
    if (best.empty() || name > best) best = name;
  }
  ::closedir(handle);
  if (best.empty()) {
    return util::Status::NotFound("no snapshot newer than '" + current_name +
                                  "' in " + dir);
  }
  return best;
}

namespace {

/// One verify-gated load attempt. Implements the same pipeline as
/// core::LoadSnapshot but runs VerifySnapshot explicitly so a rejection's
/// finding table can be surfaced to the daemon log, and probes the
/// kSnapshotRead / kSlowLoad fault points.
util::Result<std::shared_ptr<const core::CompiledSession>> LoadOnce(
    const std::string& path, std::string* verify_report) {
  COBRA_FAULT_STALL(FaultPoint::kSlowLoad);
  if (COBRA_FAULT_FIRE(FaultPoint::kSnapshotRead)) {
    return util::Status::Unavailable("injected snapshot read fault: " + path);
  }
  util::Result<std::string> data = util::ReadFile(path);
  if (!data.ok()) {
    // A vanishing or unreadable file is transient from the watcher's seat:
    // the publisher may be mid-rename or the mount mid-hiccup.
    return util::Status::Unavailable(data.status().message());
  }
  util::Result<core::SnapshotPackage> snapshot =
      core::ParseSnapshot(*data, path);
  if (!snapshot.ok()) return snapshot.status();
  verify::VerifyReport report = verify::VerifySnapshot(*snapshot);
  if (!report.ok()) {
    *verify_report = report.ToString();
    return util::Status::DataLoss("snapshot file " + path +
                                  ": rejected by static verifier (" +
                                  report.FirstError()->ToString() + ")");
  }
  return core::CompiledSession::FromSnapshot(*snapshot);
}

}  // namespace

LoadOutcome LoadSnapshotWithRetry(const std::string& path,
                                  const RetryPolicy& policy,
                                  bool quarantine_on_permanent,
                                  const std::function<void(int)>& sleep_ms) {
  LoadOutcome outcome;
  util::Rng jitter(policy.jitter_seed);
  double delay = static_cast<double>(policy.backoff_initial_ms);
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    outcome.attempts = attempt;
    util::Result<std::shared_ptr<const core::CompiledSession>> loaded =
        LoadOnce(path, &outcome.verify_report);
    if (loaded.ok()) {
      outcome.session = *loaded;
      outcome.status = util::Status::OK();
      return outcome;
    }
    outcome.status = loaded.status();
    if (!util::IsRetryable(outcome.status)) break;
    if (attempt == attempts) break;
    const int capped = static_cast<int>(
        std::min(delay, static_cast<double>(policy.backoff_max_ms)));
    // Uniform jitter in [capped/2, capped] decorrelates replicas retrying
    // the same torn write.
    const int wait =
        capped <= 1
            ? capped
            : capped / 2 +
                  static_cast<int>(jitter.NextBelow(
                      static_cast<std::uint64_t>(capped - capped / 2) + 1));
    if (sleep_ms) {
      sleep_ms(wait);
    } else if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    delay *= policy.backoff_multiplier;
  }
  if (!util::IsRetryable(outcome.status) && quarantine_on_permanent) {
    outcome.quarantined = QuarantineArtifact(path).ok();
  }
  return outcome;
}

SnapshotWatcher::SnapshotWatcher(Options options, SwapFn swap, LogFn log)
    : options_(std::move(options)),
      swap_(std::move(swap)),
      log_(std::move(log)) {}

SnapshotWatcher::~SnapshotWatcher() { Stop(); }

void SnapshotWatcher::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SnapshotWatcher::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stopping_) return;
    }
    PollOnce();
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.poll_interval_ms),
                      [this] { return stopping_; });
    if (stopping_) return;
  }
}

util::Status SnapshotWatcher::PollOnce() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  std::string current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = current_name_;
  }
  util::Result<std::string> candidate = PickCandidate(options_.dir, current);
  if (!candidate.ok()) {
    // NotFound just means "nothing new": the steady state.
    if (candidate.status().code() == util::StatusCode::kNotFound) {
      return util::Status::OK();
    }
    if (log_) log_("watcher: " + candidate.status().ToString());
    return candidate.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (skip_.count(*candidate) != 0) return util::Status::OK();
  }
  const std::string path = options_.dir + "/" + *candidate;
  LoadOutcome outcome = LoadSnapshotWithRetry(path, options_.retry,
                                              options_.quarantine);
  if (outcome.status.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_name_ = *candidate;
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);
    if (log_) {
      log_("watcher: swapped to " + *candidate + " (attempts=" +
           std::to_string(outcome.attempts) + ")");
    }
    if (swap_) swap_(std::move(outcome.session), *candidate);
    return util::Status::OK();
  }
  if (util::IsRetryable(outcome.status)) {
    transient_giveups_.fetch_add(1, std::memory_order_relaxed);
    if (log_) {
      log_("watcher: transient failure on " + *candidate + " after " +
           std::to_string(outcome.attempts) +
           " attempts, will re-poll: " + outcome.status.ToString());
    }
    return outcome.status;
  }
  // Permanent: quarantined (or remembered if the rename failed). The
  // serving session is untouched either way.
  if (outcome.quarantined) {
    quarantines_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    skip_.insert(*candidate);
  }
  if (log_) {
    std::string line = "watcher: rejected " + *candidate + ": " +
                       outcome.status.ToString() +
                       (outcome.quarantined ? " (quarantined as " +
                                                  *candidate +
                                                  kRejectedSuffix + ")"
                                            : " (quarantine failed; skipping)");
    if (!outcome.verify_report.empty()) {
      line += "\n" + outcome.verify_report;
    }
    log_(line);
  }
  return outcome.status;
}

SnapshotWatcher::Stats SnapshotWatcher::stats() const {
  Stats stats;
  stats.polls = polls_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.transient_giveups =
      transient_giveups_.load(std::memory_order_relaxed);
  stats.quarantines = quarantines_.load(std::memory_order_relaxed);
  return stats;
}

std::string SnapshotWatcher::current_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_name_;
}

}  // namespace cobra::serve
