#ifndef COBRA_UTIL_STATUS_H_
#define COBRA_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace cobra::util {

/// Machine-readable error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a malformed or inconsistent input.
  kNotFound,          ///< A named entity (variable, table, node...) is absent.
  kAlreadyExists,     ///< A named entity would be created twice.
  kOutOfRange,        ///< An index or bound is outside the valid range.
  kFailedPrecondition,///< The object is not in a state that allows the call.
  kUnimplemented,     ///< The feature is recognized but not supported.
  kParseError,        ///< Textual input could not be parsed.
  kInfeasible,        ///< The optimization problem has no feasible solution.
  kInternal,          ///< An invariant was violated; indicates a bug.
  kIoError,           ///< Reading or writing an external resource failed.
  kUnavailable,       ///< Transient failure; retrying later may succeed.
  kDataLoss,          ///< Permanent corruption; the artifact is damaged.
  kDeadlineExceeded,  ///< The operation ran past its deadline.
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a diagnostic message.
///
/// COBRA follows the Arrow/RocksDB idiom: fallible public APIs return
/// `Status` (or `Result<T>`); internal invariant violations use
/// `COBRA_CHECK`. `Status` is cheap to move and to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }

  /// @name Factory helpers, one per error category.
  /// @{
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if the status is not OK.
  /// Returns `*this` on success so it can be chained in initializers.
  const Status& CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a failure `Status`.
///
/// A `Result<T>` is created implicitly from a `T` (success) or from a
/// non-OK `Status` (failure). `ValueOrDie()` aborts on failure and is
/// intended for tests and examples; production code should branch on `ok()`.
template <typename T>
class Result {
 public:
  /// Success: wraps `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure: wraps a non-OK `status`. Aborts if `status.ok()`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The failure status, or OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the value; aborts with the status message if this is a failure.
  const T& ValueOrDie() const& {
    EnsureOk();
    return *value_;
  }

  /// Move-returns the value; aborts with the status message on failure.
  T ValueOrDie() && {
    EnsureOk();
    return std::move(*value_);
  }

  /// Returns the value without checking; undefined if `!ok()`.
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// True iff a failure with `code` is worth retrying as-is: the operation
/// failed for a reason that can resolve on its own (a snapshot not yet
/// published, a torn write still in progress, a full queue). Everything
/// else — corruption, rejection by the verifier, malformed input — is
/// permanent: retrying reproduces the same failure, so callers should
/// quarantine or report instead. The retry loops in `serve/` branch on
/// this exact predicate.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}
inline bool IsRetryable(const Status& status) {
  return IsRetryable(status.code());
}

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

/// Aborts with a diagnostic when `cond` is false. For internal invariants.
#define COBRA_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::cobra::util::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                      \
  } while (false)

/// Like COBRA_CHECK but appends a custom message.
#define COBRA_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::cobra::util::internal::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                       \
  } while (false)

/// Propagates a non-OK Status from the enclosing function.
#define COBRA_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::cobra::util::Status _st = (expr);      \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace cobra::util

#endif  // COBRA_UTIL_STATUS_H_
