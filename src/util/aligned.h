#ifndef COBRA_UTIL_ALIGNED_H_
#define COBRA_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace cobra::util {

/// Cache-line size the execution-image arrays are aligned to. 64 bytes is
/// the line size on every x86-64 and the vast majority of AArch64 parts;
/// over-alignment on exotic targets is harmless.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std::allocator replacement that hands out `Alignment`-aligned
/// storage via the C++17 aligned operator new. Used for the plan-time SoA
/// execution images so the blocked kernels stream factor/coeff arrays from
/// cache-line boundaries (and so 16-lane stores never straddle a line).
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the natural alignment of T");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// Vector whose backing store starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cobra::util

#endif  // COBRA_UTIL_ALIGNED_H_
