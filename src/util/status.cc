#include "util/status.h"

namespace cobra::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

const Status& Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
    std::abort();
  }
  return *this;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "COBRA_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace cobra::util
