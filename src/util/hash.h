#ifndef COBRA_UTIL_HASH_H_
#define COBRA_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace cobra::util {

/// 64-bit mixing step (Murmur3 finalizer). Good avalanche; used to build the
/// monomial/triple hashes in `prov` and `core`.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines an existing hash with a new value, order-sensitively.
inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a hash of a byte string.
inline std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// 128-bit content-hash accumulator: two independently seeded HashCombine
/// chains advanced in lockstep, with every fed word entering *both* chains
/// (the second under a fixed xor mask) so no input is first collapsed to 64
/// bits. Used where a digest participates in cache-key *equality* — the
/// plan cache's scenario fingerprint and base-valuation hash — because an
/// equality collision silently replays the wrong cached result, and a
/// 64-bit digest would stake correctness on a birthday bound.
class Hash128 {
 public:
  Hash128(std::uint64_t seed_lo, std::uint64_t seed_hi)
      : lo_(seed_lo), hi_(seed_hi) {}

  /// Feeds one 64-bit word into both chains.
  void Feed(std::uint64_t value) {
    lo_ = HashCombine(lo_, value);
    hi_ = HashCombine(hi_, value ^ 0xa5a5a5a5a5a5a5a5ULL);
  }

  /// Feeds a length-prefixed byte string word-wise into both chains (the
  /// tail word is zero-padded; the length prefix keeps "ab","c" distinct
  /// from "a","bc").
  void FeedBytes(std::string_view bytes) {
    Feed(bytes.size());
    std::size_t i = 0;
    for (; i + 8 <= bytes.size(); i += 8) {
      std::uint64_t word;
      std::memcpy(&word, bytes.data() + i, 8);
      Feed(word);
    }
    if (i < bytes.size()) {
      std::uint64_t word = 0;
      std::memcpy(&word, bytes.data() + i, bytes.size() - i);
      Feed(word);
    }
  }

  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return hi_; }

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

}  // namespace cobra::util

#endif  // COBRA_UTIL_HASH_H_
