#ifndef COBRA_UTIL_HASH_H_
#define COBRA_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cobra::util {

/// 64-bit mixing step (Murmur3 finalizer). Good avalanche; used to build the
/// monomial/triple hashes in `prov` and `core`.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines an existing hash with a new value, order-sensitively.
inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a hash of a byte string.
inline std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cobra::util

#endif  // COBRA_UTIL_HASH_H_
