#include "util/csv.h"

#include <cstdio>

namespace cobra::util {

namespace {

// Consumes one CSV field starting at *pos; advances *pos past the field and
// any trailing separator. Sets *end_of_record when the field ends a record.
Result<std::string> ParseField(std::string_view text, std::size_t* pos,
                               bool* end_of_record, bool* end_of_input) {
  std::string field;
  std::size_t i = *pos;
  *end_of_record = false;
  *end_of_input = false;
  if (i < text.size() && text[i] == '"') {
    ++i;
    for (;;) {
      if (i >= text.size())
        return Status::ParseError("unterminated quoted CSV field");
      char c = text[i];
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          ++i;
          break;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    }
  } else {
    while (i < text.size() && text[i] != ',' && text[i] != '\n' &&
           text[i] != '\r') {
      field.push_back(text[i]);
      ++i;
    }
  }
  if (i >= text.size()) {
    *end_of_record = true;
    *end_of_input = true;
  } else if (text[i] == ',') {
    ++i;
  } else if (text[i] == '\r' || text[i] == '\n') {
    if (text[i] == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
    ++i;
    *end_of_record = true;
    if (i >= text.size()) *end_of_input = true;
  }
  *pos = i;
  return field;
}

Result<std::vector<std::string>> ParseRecord(std::string_view text,
                                             std::size_t* pos,
                                             bool* end_of_input) {
  std::vector<std::string> record;
  bool end_of_record = false;
  while (!end_of_record) {
    Result<std::string> field =
        ParseField(text, pos, &end_of_record, end_of_input);
    if (!field.ok()) return field.status();
    record.push_back(std::move(*field));
  }
  return record;
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text) {
  CsvDocument doc;
  if (text.empty()) return Status::ParseError("empty CSV input");
  std::size_t pos = 0;
  bool end_of_input = false;
  Result<std::vector<std::string>> header =
      ParseRecord(text, &pos, &end_of_input);
  if (!header.ok()) return header.status();
  doc.header = std::move(*header);
  while (!end_of_input) {
    Result<std::vector<std::string>> row =
        ParseRecord(text, &pos, &end_of_input);
    if (!row.ok()) return row.status();
    // A trailing newline produces one empty single-field record; skip it.
    if (row->size() == 1 && (*row)[0].empty() && end_of_input) break;
    if (row->size() != doc.header.size()) {
      return Status::ParseError(
          "CSV row has " + std::to_string(row->size()) + " fields, expected " +
          std::to_string(doc.header.size()));
    }
    doc.rows.push_back(std::move(*row));
  }
  return doc;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_record = [&out](const std::vector<std::string>& record) {
    for (std::size_t i = 0; i < record.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += CsvEscape(record[i]);
    }
    out.push_back('\n');
  };
  write_record(doc.header);
  for (const auto& row : doc.rows) write_record(row);
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open file: " + path);
  std::string content;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("error reading file: " + path);
  return content;
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open file for write: " + path);
  std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool failed = written != content.size();
  if (std::fclose(f) != 0) failed = true;
  if (failed) return Status::IoError("error writing file: " + path);
  return Status::OK();
}

}  // namespace cobra::util
