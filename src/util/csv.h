#ifndef COBRA_UTIL_CSV_H_
#define COBRA_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cobra::util {

/// A parsed CSV document: a header row plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC-4180-style CSV text: comma separated, `"` quoting with `""`
/// escapes, LF or CRLF line endings. The first record is the header. Every
/// data row must have exactly as many fields as the header.
Result<CsvDocument> ParseCsv(std::string_view text);

/// Serializes a document back to CSV, quoting fields that need it.
std::string WriteCsv(const CsvDocument& doc);

/// Quotes a single field if it contains a comma, quote or newline.
std::string CsvEscape(std::string_view field);

/// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace cobra::util

#endif  // COBRA_UTIL_CSV_H_
