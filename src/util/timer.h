#ifndef COBRA_UTIL_TIMER_H_
#define COBRA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cobra::util {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and by the
/// assignment-speedup measurement in `core/metrics`.
class Timer {
 public:
  /// Creates and starts the timer.
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or the last Reset().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cobra::util

#endif  // COBRA_UTIL_TIMER_H_
