#include "util/str.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cobra::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t b = 0;
  while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b])))
    ++b;
  std::size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<std::int64_t> ParseInt64(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty())
    return Status::ParseError("empty string is not an integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE)
    return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::ParseError("trailing characters in integer: " + buf);
  return static_cast<std::int64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty string is not a number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("number out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::ParseError("trailing characters in number: " + buf);
  return v;
}

std::string FormatDouble(double value, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    std::size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cobra::util
