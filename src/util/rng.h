#ifndef COBRA_UTIL_RNG_H_
#define COBRA_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cobra::util {

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// All data generators and property tests in COBRA use this generator with
/// explicit seeds, so every experiment and test run is reproducible bit for
/// bit across platforms. The generator passes basic avalanche criteria and is
/// more than adequate for workload synthesis (it is not cryptographic).
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed) : state_(seed + kGolden) {}

  /// Returns the next 64 pseudo-random bits.
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += kGolden);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniform integer in `[0, bound)`. `bound` must be positive.
  std::uint64_t NextBelow(std::uint64_t bound) {
    COBRA_CHECK_MSG(bound > 0, "Rng::NextBelow requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniform integer in the closed interval `[lo, hi]`.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    COBRA_CHECK_MSG(lo <= hi, "Rng::NextInRange requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBelow(span));
  }

  /// Returns a uniform double in `[0, 1)`.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in `[lo, hi)`.
  double NextDoubleInRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a derived generator; streams with distinct `stream` values are
  /// statistically independent of each other and of the parent.
  Rng Fork(std::uint64_t stream) {
    return Rng(NextU64() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567));
  }

 private:
  static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::uint64_t state_;
};

}  // namespace cobra::util

#endif  // COBRA_UTIL_RNG_H_
