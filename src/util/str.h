#ifndef COBRA_UTIL_STR_H_
#define COBRA_UTIL_STR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cobra::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on arbitrary whitespace runs, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lowercase copy of `text`.
std::string ToLower(std::string_view text);

/// ASCII uppercase copy of `text`.
std::string ToUpper(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep` ("a","b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a signed 64-bit integer; the full string must be consumed.
Result<std::int64_t> ParseInt64(std::string_view text);

/// Parses a double; the full string must be consumed.
Result<double> ParseDouble(std::string_view text);

/// Formats a double compactly: integral values print without a fractional
/// part ("240"), others with up to `max_decimals` digits and no trailing
/// zeros ("208.8", "100.65"). Used by the polynomial printer so that output
/// matches the paper's notation.
std::string FormatDouble(double value, int max_decimals = 6);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cobra::util

#endif  // COBRA_UTIL_STR_H_
