#ifndef COBRA_CORE_CUT_H_
#define COBRA_CORE_CUT_H_

#include <string>
#include <vector>

#include "core/tree.h"
#include "util/status.h"

namespace cobra::core {

/// A cut of an abstraction tree: a set of nodes such that every leaf has
/// exactly one ancestor-or-self in the set (an antichain covering all
/// leaves). The cut *is* the abstraction: each cut node becomes one
/// meta-variable replacing its descendant leaves (Example 4 of the paper).
class Cut {
 public:
  Cut() = default;

  /// Builds a cut from node ids (deduplicated, sorted).
  explicit Cut(std::vector<NodeId> nodes);

  /// The finest cut: all leaves (identity abstraction).
  static Cut Leaves(const AbstractionTree& tree);

  /// The coarsest cut: just the root (everything is one meta-variable).
  static Cut Root(const AbstractionTree& tree);

  /// Builds a cut from node names; fails on unknown names.
  static util::Result<Cut> FromNames(const AbstractionTree& tree,
                                     const std::vector<std::string>& names);

  /// The level cut at `depth`: every node at `depth`, plus every leaf
  /// shallower than `depth`.
  static Cut AtDepth(const AbstractionTree& tree, std::size_t depth);

  const std::vector<NodeId>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }

  /// True iff `id` belongs to the cut.
  bool Contains(NodeId id) const;

  /// Verifies the antichain-covering-all-leaves property against `tree`.
  util::Status Validate(const AbstractionTree& tree) const;

  /// For each leaf variable of the tree: the cut node covering it.
  /// Indexed by leaf NodeId; non-leaf entries are kNoNode.
  std::vector<NodeId> CoveringNode(const AbstractionTree& tree) const;

  /// Renders "{Business, Special, Standard}".
  std::string ToString(const AbstractionTree& tree) const;

  bool operator==(const Cut& other) const = default;

 private:
  std::vector<NodeId> nodes_;  // sorted, unique
};

/// Enumerates every cut of `tree` (product structure: a cut of node v is
/// {v} or a combination of cuts of its children). Exponential in general —
/// `limit` guards against blow-ups; fails with OutOfRange when the tree has
/// more than `limit` cuts. Intended for tests and the brute-force oracle.
util::Result<std::vector<Cut>> EnumerateCuts(const AbstractionTree& tree,
                                             std::uint64_t limit = 1u << 20);

}  // namespace cobra::core

#endif  // COBRA_CORE_CUT_H_
