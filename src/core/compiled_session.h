#ifndef COBRA_CORE_COMPILED_SESSION_H_
#define COBRA_CORE_COMPILED_SESSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/apply.h"
#include "core/batch_plan.h"
#include "core/metrics.h"
#include "core/scenario.h"
#include "prov/eval_program.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

struct SnapshotPackage;  // core/io.h

/// Outcome of one hypothetical-scenario assignment through the session:
/// everything the demo UI displays (result deltas, provenance sizes, and
/// the assignment speedup).
struct AssignReport {
  ResultDelta delta;         ///< Full-vs-compressed answers per group.
  AssignmentTiming timing;   ///< Measured assignment cost both ways.
  std::size_t full_size = 0;
  std::size_t compressed_size = 0;

  /// Renders the report as the demo's results panel.
  std::string ToString(std::size_t max_rows = 10) const;
};

/// Outcome of one `AssignBatch` call: per-scenario reports plus the
/// aggregate sweep timing. `reports[i]` corresponds to
/// `scenario_names[i]` and is result-identical to what a sequential
/// `Assign()` under that scenario would produce; its timing fields carry
/// the batch per-scenario average (repetitions = 1) rather than a
/// calibrated per-scenario microbenchmark.
struct BatchAssignReport {
  std::vector<std::string> scenario_names;
  std::vector<AssignReport> reports;

  /// Wall-clock seconds for evaluating every scenario on each side
  /// (includes the thread-parallel sweep, excludes program compilation —
  /// compiled programs live on the snapshot).
  double full_sweep_seconds = 0.0;
  double compressed_sweep_seconds = 0.0;

  /// Per-scenario averages over the sweeps (`full_sweep_seconds / N`, ...).
  AssignmentTiming aggregate;

  /// Worker threads actually used.
  std::size_t num_threads = 1;

  /// The engine the sweep actually ran (never kAuto — the plan resolves the
  /// adaptive policy before execution), its lane count (1 for the scalar
  /// engines), and the resolved execution layout (kAoS for the scalars).
  BatchOptions::Sweep engine = BatchOptions::Sweep::kSparseDelta;
  std::size_t block_lanes = 1;
  prov::EvalLayout layout = prov::EvalLayout::kAoS;

  /// Whether AssignBatch served this call from a fully cached BatchPlan —
  /// core *and* base overlay (always false for direct Execute() calls).
  bool plan_cache_hit = false;

  /// Whether at least the base-independent plan core came from the cache
  /// (true on every full hit, and also when only the cheap per-base overlay
  /// had to be materialized — the same-scenarios/different-base warm path).
  bool plan_core_hit = false;

  std::size_t size() const { return reports.size(); }

  /// Renders the batch summary plus the first `max_scenarios` scenarios
  /// (each truncated to `max_rows` result rows).
  std::string ToString(std::size_t max_scenarios = 5,
                       std::size_t max_rows = 3) const;
};

/// Outcome of one `AssignGrid` call: the full (scenario × base) result
/// matrix for both program sides, plus plan/overlay accounting and a
/// deterministic fixed-order error reduction.
///
/// Cell (b, s, g) — base b, scenario s, output group g — lives at flat
/// index `(b * num_scenarios() + s) * num_groups + g` in `full_values` /
/// `compressed_values`. Every cell is bit-identical to the corresponding
/// entry of `AssignBatch(scenarios, bases[b], options)`: the grid runs the
/// same kernels over the same plan, it only skips the per-base re-planning
/// and per-scenario report materialization. The error aggregates are
/// reduced in fixed (base, scenario, group) order, so they are
/// deterministic regardless of the thread schedule.
struct GridAssignReport {
  std::vector<std::string> scenario_names;
  std::vector<std::string> labels;  ///< Output group labels, in cell order.
  std::size_t num_bases = 0;
  std::size_t num_groups = 0;

  /// Row-major (base, scenario, group) result matrices; see the class
  /// comment for the cell layout.
  std::vector<double> full_values;
  std::vector<double> compressed_values;

  /// The engine the sweep ran (never kAuto), its lane count, the resolved
  /// execution layout, and the maximum worker threads any per-base sweep
  /// used.
  BatchOptions::Sweep engine = BatchOptions::Sweep::kSparseDelta;
  std::size_t block_lanes = 1;
  prov::EvalLayout layout = prov::EvalLayout::kAoS;
  std::size_t num_threads = 1;

  /// Whether the shared plan core came from the plan cache (no scenario
  /// re-lowering), and whether the first base's full plan did.
  bool plan_core_hit = false;
  bool plan_cache_hit = false;

  /// How many of the remaining bases found their overlay already attached
  /// to the cached core ([0, num_bases - 1]; the first base is accounted
  /// in plan_cache_hit).
  std::size_t overlay_cache_hits = 0;

  /// Planning cost of the shared core + first overlay, and of the
  /// remaining per-base overlay materializations.
  double plan_seconds = 0.0;
  double overlay_seconds = 0.0;

  /// Wall-clock seconds summed over every per-base sweep on each side.
  double full_sweep_seconds = 0.0;
  double compressed_sweep_seconds = 0.0;

  /// Fixed-order reductions over all cells: max and mean |full -
  /// compressed|.
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;

  std::size_t num_scenarios() const { return scenario_names.size(); }
  std::size_t cells() const {
    return num_bases * scenario_names.size() * num_groups;
  }

  double full_value(std::size_t base, std::size_t scenario,
                    std::size_t group) const {
    return full_values[(base * scenario_names.size() + scenario) * num_groups +
                       group];
  }
  double compressed_value(std::size_t base, std::size_t scenario,
                          std::size_t group) const {
    return compressed_values[(base * scenario_names.size() + scenario) *
                                 num_groups +
                             group];
  }

  /// Renders the grid summary (dimensions, engine, cache accounting,
  /// timings, error aggregates).
  std::string ToString() const;
};

/// Early-exit query for a streaming sweep (`CompiledSession::AssignStream`).
///
/// Every streamed scenario first gets a cheap per-scenario *metric* from the
/// compressed-side program — COBRA's whole premise is that the compressed
/// artifact is a fast proxy for the full provenance — and only scenarios the
/// query still cares about have their block's expensive full-side sweep run:
///
///   - `kAll`: no pruning; every scenario's full row is computed (and
///     delivered through the consumer). The mode whose streamed rows are
///     bit-identical to a materialized `AssignBatch` prefix.
///   - `kTopK`: keep the `k` scenarios with the LARGEST metric. A block's
///     full side runs only when one of its lanes beats the current k-th
///     best (ties keep the earlier scenario, so the result is deterministic
///     and order-independent of nothing — the stream order is fixed).
///   - `kThreshold`: keep scenarios with metric >= `cutoff`; blocks with no
///     qualifying lane skip the full side entirely.
struct StreamQuery {
  enum class Kind { kAll, kTopK, kThreshold };

  /// The per-scenario ranking metric, from the compressed row vs the base
  /// compressed row.
  enum class Metric {
    kSumAbsDelta,  ///< sum over groups of |value - base value|
    kMaxAbsDelta,  ///< max over groups of |value - base value|
    kGroupValue,   ///< the raw compressed value of group `group`
  };

  Kind kind = Kind::kAll;
  Metric metric = Metric::kSumAbsDelta;
  std::size_t k = 16;       ///< kTopK: how many scenarios to keep.
  double cutoff = 0.0;      ///< kThreshold: keep metric >= cutoff.
  std::size_t group = 0;    ///< kGroupValue: which output group.
  /// kThreshold: cap on materialized entries (0 = unbounded). Matches past
  /// the cap still count in `SweepSummary::matched`, they just don't carry
  /// result rows — the knob that keeps an unselective cutoff memory-safe.
  std::size_t max_entries = 0;
};

/// Everything `AssignStream` takes besides the source: the batch execution
/// knobs (engine, threads, `stream_block_scenarios` window) plus the query.
struct StreamOptions {
  BatchOptions batch;
  StreamQuery query;
};

/// One swept streamed block, as seen by a `StreamConsumer`. All pointers
/// borrow from per-chunk buffers owned by AssignStream and are valid only
/// during the callback — copy what you keep. Row `i` of the block is
/// scenario `begin + i` of the source.
struct StreamBlockView {
  std::uint64_t begin = 0;      ///< Source ordinal of row 0.
  std::size_t count = 0;        ///< Scenarios in this block.
  std::size_t num_groups = 0;   ///< Output groups per row.
  const std::vector<std::string>* names = nullptr;  ///< `count` names.
  const double* metrics = nullptr;       ///< `count` per-scenario metrics.
  /// Per-scenario flag: full row `i` was computed (its block survived the
  /// early-exit test). Always 1 under `StreamQuery::Kind::kAll`.
  const std::uint8_t* full_computed = nullptr;
  const double* full = nullptr;        ///< count × num_groups, row-major.
  const double* compressed = nullptr;  ///< count × num_groups, row-major.
};

/// Per-block callback; return false to stop the stream (the summary then
/// has `stopped_early = true`). An empty function is allowed.
using StreamConsumer = std::function<bool(const StreamBlockView&)>;

/// One scenario kept by a kTopK/kThreshold query: its source ordinal, name,
/// metric, and result rows (`full` is empty when the scenario's block was
/// pruned before its full side ran — possible only for kThreshold matches
/// past `max_entries`... which carry no entry at all; kept entries always
/// have both rows).
struct StreamEntry {
  std::uint64_t index = 0;
  std::string name;
  double metric = 0.0;
  std::vector<double> full;
  std::vector<double> compressed;
};

/// Outcome of one `AssignStream` call: fixed-order running aggregates over
/// the whole stream, per-group compressed-side extrema, the query's kept
/// entries, and pruning/timing accounting. Memory is O(groups + entries) —
/// never O(source size); per-scenario rows flow through the consumer.
struct SweepSummary {
  std::uint64_t scenarios = 0;     ///< Scenarios swept (== source_size
                                   ///  unless the consumer stopped early).
  std::uint64_t source_size = 0;
  std::uint64_t chunks = 0;        ///< Streamed blocks (windows) processed.
  SourceFingerprint source_fingerprint;

  BatchOptions::Sweep engine = BatchOptions::Sweep::kSparseDelta;
  std::size_t block_lanes = 1;
  prov::EvalLayout layout = prov::EvalLayout::kAoS;
  std::size_t num_threads = 1;
  std::size_t window = 0;          ///< Scenarios per streamed block.
  bool stopped_early = false;

  /// Early-exit accounting: how many scenarios' full-side rows actually ran
  /// vs were pruned. Under kAll, skipped == 0.
  std::uint64_t full_rows_computed = 0;
  std::uint64_t full_rows_skipped = 0;

  /// kThreshold: scenarios meeting the cutoff (including ones past
  /// `max_entries` that carry no entry).
  std::uint64_t matched = 0;

  /// Fixed-order (stream-order) aggregates of the per-scenario metric:
  /// deterministic regardless of thread count or chunking.
  double metric_sum = 0.0;
  double metric_min = 0.0;
  double metric_max = 0.0;
  std::uint64_t metric_argmin = 0;  ///< Source ordinal of metric_min.
  std::uint64_t metric_argmax = 0;  ///< Source ordinal of metric_max.

  /// Per-group extrema of the compressed-side values across the stream,
  /// aligned with `labels`.
  std::vector<std::string> labels;
  std::vector<double> group_min;
  std::vector<double> group_max;

  /// kTopK: the k best, metric-descending (ties by ascending ordinal);
  /// kThreshold: matches in stream order (truncated at `max_entries`);
  /// kAll: empty.
  std::vector<StreamEntry> entries;

  double generate_seconds = 0.0;   ///< Source Generate() time.
  double plan_seconds = 0.0;       ///< Per-chunk lowering/planning time.
  double full_sweep_seconds = 0.0;
  double compressed_sweep_seconds = 0.0;

  /// Renders the summary plus the first `max_rows` kept entries.
  std::string ToString(std::size_t max_rows = 10) const;
};

/// An immutable snapshot of a compressed session — the serving layer.
///
/// `Session` is the mutable authoring surface (load, set trees, compress,
/// tweak meta values) and is single-threaded by contract. A
/// `CompiledSession`, produced by `Session::Snapshot()` after `Compress()`,
/// freezes everything the assignment phase needs:
///
///   - the compiled `EvalProgram`s for the full and compressed provenance,
///     plus a full-side program whose factors are pre-translated through
///     the abstraction's leaf→meta mapping (so scenario sweeps never
///     materialize an expanded full-pool valuation);
///   - the default compressed-side (meta) valuation and its full-side
///     expansion;
///   - a shared reference to the (append-only, internally synchronized)
///     variable pool for name→id resolution, together with the pool size at
///     snapshot time — variables interned later are rejected by scenario
///     compilation, so the snapshot behaves as a frozen pool without paying
///     a deep copy per snapshot;
///   - the abstraction metadata (meta-variables, group labels, sizes).
///
/// The compiled state is deeply immutable after construction and every
/// method is `const`, so one snapshot may serve any number of threads
/// concurrently through a `std::shared_ptr<const CompiledSession>`. The
/// evaluation paths themselves are lock-free; the only synchronized state
/// is the batch *plan cache* (PlanBatch/AssignBatch), a fingerprint-keyed
/// map guarded by a `shared_mutex` so concurrent servers replaying
/// overlapping scenario sets share compiled plans instead of re-planning.
/// Results are bit-identical to the equivalent `Session` calls (tested), so
/// a serving tier can hand one snapshot to a fleet of workers while the
/// authoring session keeps evolving.
class CompiledSession
    : public std::enable_shared_from_this<CompiledSession> {
 public:
  /// Builds a snapshot from a compression result. `pool` is shared (not
  /// copied — `VarPool` is append-only and internally synchronized, and the
  /// snapshot captures its size, so the builder may keep interning into it);
  /// `default_meta_valuation` is copied; `full` and `abstraction.compressed`
  /// are compiled but not retained.
  static util::Result<std::shared_ptr<const CompiledSession>> Create(
      const prov::PolySet& full, const Abstraction& abstraction,
      std::shared_ptr<const prov::VarPool> pool,
      const prov::Valuation& default_meta_valuation);

  /// Reconstructs a serving session from a deserialized `SnapshotPackage`
  /// (core/io.h) — the replica-side factory. Nothing is recompiled: the
  /// pool is rebuilt by re-interning the frozen names in id order, the
  /// full/compressed programs are restored from their compiled arrays, and
  /// the sweep-side program is re-derived by the same deterministic
  /// `RemapFactors(leaf_to_meta)` the origin used — so `Assign` and
  /// `AssignBatch` results are bit-identical to the origin process under
  /// every `BatchOptions::Sweep` engine. Structural inconsistencies
  /// (duplicate pool names, ids outside the pool, label/program group-count
  /// mismatches, malformed program arrays) are rejected with a Status.
  static util::Result<std::shared_ptr<const CompiledSession>> FromSnapshot(
      const SnapshotPackage& snapshot);

  /// Returns a snapshot sharing this one's compiled programs and metadata
  /// but with a different default meta valuation (cheap: no recompilation).
  std::shared_ptr<const CompiledSession> WithDefaultMetaValuation(
      const prov::Valuation& meta) const;

  /// The shared variable pool (data + meta variables) used for scenario
  /// name→id resolution. Shared with the authoring `Session`, not copied;
  /// scenario compilation only accepts ids below `pool_size()`, so the
  /// snapshot's behavior is frozen at creation.
  const prov::VarPool& pool() const { return *artifacts_->pool; }

  /// The pool size captured when the snapshot was created. Variables
  /// interned afterwards are invisible to this snapshot.
  std::size_t pool_size() const { return artifacts_->frozen_pool_size; }

  /// The meta-variables offered to analysts.
  const std::vector<MetaVar>& meta_vars() const {
    return artifacts_->meta_vars;
  }

  /// Group labels, aligned with every evaluation's output order.
  const std::vector<std::string>& labels() const { return artifacts_->labels; }

  /// Compiled full-provenance program (original variable ids).
  const prov::EvalProgram& full_program() const {
    return artifacts_->full_program;
  }

  /// Compiled compressed-provenance program.
  const prov::EvalProgram& compressed_program() const {
    return artifacts_->compressed_program;
  }

  /// Full-provenance program with the leaf→meta indirection baked into the
  /// factor array: evaluating it under a compressed-side valuation is
  /// bit-identical to evaluating `full_program()` under that valuation's
  /// expansion. This is the sparse sweep's full side.
  const prov::EvalProgram& sweep_full_program() const {
    return artifacts_->sweep_full_program;
  }

  /// mapping[v] = the variable that replaced v (identity off the trees),
  /// extended by identity to the pool size.
  const std::vector<prov::VarId>& leaf_to_meta() const {
    return artifacts_->remap;
  }

  /// The default compressed-side valuation scenarios are applied on top of.
  const prov::Valuation& default_meta_valuation() const {
    return default_meta_;
  }

  /// The full-side expansion of the default meta valuation.
  const prov::Valuation& default_full_valuation() const {
    return default_full_;
  }

  /// Monomial counts (the sizes `AssignReport` carries).
  std::size_t full_size() const { return artifacts_->full_monomials; }
  std::size_t compressed_size() const {
    return artifacts_->compressed_monomials;
  }

  /// Expands a compressed-side valuation to full-side semantics: every
  /// original variable under a meta-variable takes that meta-variable's
  /// value; everything else keeps its value from `meta`.
  prov::Valuation ExpandValuation(const prov::Valuation& meta) const;

  /// Evaluates `meta_valuation` on both sides, measures the speedup, and
  /// reports the deltas — the single-scenario assignment of the paper.
  /// The valuation is extended neutrally (1.0) if it does not cover the
  /// pool.
  util::Result<AssignReport> Assign(const prov::Valuation& meta_valuation,
                                    std::size_t timing_reps = 5) const;

  /// Assign() under the snapshot's default meta valuation.
  util::Result<AssignReport> Assign(std::size_t timing_reps = 5) const;

  /// Like Assign(), but the full side evaluates `base_valuation` unexpanded
  /// (measures pure information loss of the compression under
  /// `meta_valuation`).
  util::Result<AssignReport> AssignAgainstBase(
      const prov::Valuation& base_valuation,
      const prov::Valuation& meta_valuation,
      std::size_t timing_reps = 5) const;

  /// Evaluates every scenario in `scenarios` against both sides in one
  /// sweep, each scenario's deltas applied independently on top of
  /// `base_meta_valuation`. Scenario names must be unique and every delta
  /// variable must resolve in `pool()` to an id the snapshot knows (interned
  /// before the snapshot was taken). A thin plan-then-execute wrapper:
  /// equivalent to `Execute(**PlanBatch(scenarios, base, options))`, with
  /// the plan served from the fingerprint-keyed cache when this (scenario
  /// set, base, options) triple was planned before. The default
  /// `Sweep::kAuto` picks the engine and lane count adaptively (see
  /// `BatchOptions::Sweep`); results are bit-identical to sequential
  /// `Assign()` for every engine (term splitting, when it triggers, is
  /// deterministic but may regroup additions — see
  /// `BatchOptions::split_min_terms`).
  util::Result<BatchAssignReport> AssignBatch(
      const ScenarioSet& scenarios,
      const prov::Valuation& base_meta_valuation,
      const BatchOptions& options = {}) const;

  /// AssignBatch() on top of the snapshot's default meta valuation.
  util::Result<BatchAssignReport> AssignBatch(
      const ScenarioSet& scenarios, const BatchOptions& options = {}) const;

  /// Evaluates every scenario against every base valuation — the 2-D grid
  /// sweep (one scenario set × many per-user defaults). The shared plan
  /// core (scenario lowering, engine choice, union skeletons, tile
  /// schedules) is planned once through the plan cache; the inner loop only
  /// materializes the cheap per-base overlay (pool-sized base + block-table
  /// value rows) and runs the existing blocked/sparse kernels straight into
  /// the grid's flat result matrices. Per-cell results are bit-identical to
  /// the per-base `AssignBatch` loop; the report's error aggregates use a
  /// deterministic fixed-order reduction. Bases already cached as overlays
  /// are reused (counted in `overlay_cache_hits`); the grid itself inserts
  /// only the first base's plan, so a 10^4-base sweep cannot flush the
  /// serving cache.
  util::Result<GridAssignReport> AssignGrid(
      const ScenarioSet& scenarios, std::span<const prov::Valuation> bases,
      const BatchOptions& options = {}) const;

  /// Sweeps a generated scenario space as a stream of
  /// `BatchOptions::stream_block_scenarios`-sized blocks, on top of
  /// `base_meta_valuation`: each block is generated from the source, lowered
  /// to a window-sized plan chunk (same lowering, same block-override
  /// tables, same tile schedules as `AssignBatch` — the engine is resolved
  /// once up front and pinned), swept through the shared kernels, folded
  /// into the running `SweepSummary`, and handed to `consumer` before the
  /// next block is generated. Peak memory is bounded by the window — a
  /// 10^8-scenario grid sweeps in the same footprint as a 10^4 one.
  ///
  /// Equivalence contract: under `StreamQuery::Kind::kAll`, the full and
  /// compressed rows delivered for scenarios [0, P) are bit-identical to
  /// materializing those P scenarios and calling `AssignBatch` (for every
  /// engine; the one caveat is `split_min_terms` term-splitting, whose
  /// regrouped additions may differ in the last ulp when the chunking
  /// changes the block count — pin `split_min_terms = 0` for strict
  /// identity on dominant-poly shapes, exactly as documented there).
  ///
  /// kTopK/kThreshold queries prune: a block whose lanes all fail the
  /// current cutoff skips its full-side sweep entirely (the compressed side
  /// always runs — it is the metric). Pruning never changes kept results,
  /// only the work spent on discarded ones.
  util::Result<SweepSummary> AssignStream(
      const ScenarioSource& source,
      const prov::Valuation& base_meta_valuation,
      const StreamOptions& options = {},
      const StreamConsumer& consumer = {}) const;

  /// AssignStream() on top of the snapshot's default meta valuation.
  util::Result<SweepSummary> AssignStream(
      const ScenarioSource& source, const StreamOptions& options = {},
      const StreamConsumer& consumer = {}) const;

  /// Compiles (or fetches from the plan cache) the execution plan for this
  /// (scenario set, base valuation, options) triple: per-scenario sorted
  /// override lists, per-block override-union tables, the resolved engine
  /// and lane count, and the tile schedules for both program sides — the
  /// plan-once half of plan-once/execute-many. The cache keys the
  /// base-*invariant* plan core on the scenario set's content fingerprint
  /// plus the options, and attaches one cheap per-base overlay per distinct
  /// base hash — so replaying known scenarios against a new base re-uses
  /// the expensive half instead of re-planning. The cache is guarded by a
  /// `shared_mutex` (shared for lookups, exclusive only to insert), so
  /// concurrent callers replaying known scenario sets proceed in parallel.
  /// If `cache_hit` is non-null it is set to whether the *full* plan (core
  /// + overlay) came from the cache; a core-only hit reports false there
  /// but is visible in `plan_cache_stats().core_hits`.
  util::Result<std::shared_ptr<const BatchPlan>> PlanBatch(
      const ScenarioSet& scenarios,
      const prov::Valuation& base_meta_valuation,
      const BatchOptions& options = {}, bool* cache_hit = nullptr) const;

  /// PlanBatch() on top of the snapshot's default meta valuation.
  util::Result<std::shared_ptr<const BatchPlan>> PlanBatch(
      const ScenarioSet& scenarios, const BatchOptions& options = {},
      bool* cache_hit = nullptr) const;

  /// Executes a compiled plan: the execute-many half. The plan must have
  /// been built by this session's PlanBatch (rejected with InvalidArgument
  /// otherwise); it may be executed any number of times, concurrently, and
  /// results are bit-identical to the equivalent AssignBatch call.
  util::Result<BatchAssignReport> Execute(const BatchPlan& plan) const;

  /// Aggregate plan-cache counters. Every PlanBatch lookup (AssignBatch and
  /// AssignGrid go through the same cache) lands in exactly one bucket:
  /// `hits` (core and overlay both cached), `core_hits` (core cached, only
  /// the cheap per-base overlay was materialized — the same-scenarios/
  /// different-base warm path), or `misses` (full planning). `entries`
  /// counts cached cores, `overlays` the base overlays attached across
  /// them.
  struct PlanCacheStats {
    std::size_t entries = 0;
    std::size_t overlays = 0;
    std::uint64_t hits = 0;
    std::uint64_t core_hits = 0;
    std::uint64_t misses = 0;
  };
  PlanCacheStats plan_cache_stats() const;

  /// One row of the cached-plan table (shell `plan` command, diagnostics).
  struct CachedPlanInfo {
    std::string fingerprint;  ///< Scenario-set fingerprint, 32 hex digits.
    BatchOptions::Sweep engine = BatchOptions::Sweep::kSparseDelta;
    std::size_t lanes = 0;
    std::size_t tiles = 0;
    std::size_t scenarios = 0;
    std::size_t overlays = 0;  ///< Base overlays attached to this core.
  };
  /// The cached plans, in unspecified order.
  std::vector<CachedPlanInfo> CachedPlans() const;

  /// Shared handles to the cached plans themselves, in unspecified order —
  /// for tooling that inspects plans (the static verifier's session pass).
  /// The handles stay valid even if the cache evicts them afterwards.
  std::vector<std::shared_ptr<const BatchPlan>> CachedPlanHandles() const;

  /// Drops every cached plan (counters keep accumulating). For operational
  /// tooling and cold-path benchmarks; plans already handed out stay valid.
  void ClearPlanCache() const;

 private:
  /// The valuation-independent (and most expensive) part of a snapshot,
  /// shared between sibling snapshots that differ only in defaults.
  struct Artifacts {
    // Declaration order is initialization order: `frozen_pool_size` must
    // precede `remap` (extended to the frozen size), which must precede
    // `sweep_full_program` (built from `full_program` + `remap`).
    std::shared_ptr<const prov::VarPool> pool;
    std::size_t frozen_pool_size = 0;  ///< pool->size() at creation.
    std::vector<std::string> labels;
    std::vector<MetaVar> meta_vars;
    std::vector<prov::VarId> remap;  ///< leaf→replacement, identity-extended.
    prov::EvalProgram full_program;
    prov::EvalProgram sweep_full_program;
    prov::EvalProgram compressed_program;
    std::size_t full_monomials = 0;
    std::size_t compressed_monomials = 0;

    Artifacts(const prov::PolySet& full, const Abstraction& abstraction,
              std::shared_ptr<const prov::VarPool> pool);

    /// Deserialization path: assembles the artifacts from pre-built pieces
    /// (FromSnapshot). `sweep_full_program` is re-derived from
    /// `full_program` and `remap` exactly as the compiling constructor
    /// does, and the monomial counts from the programs' term counts.
    Artifacts(std::shared_ptr<const prov::VarPool> pool,
              std::size_t frozen_pool_size, std::vector<std::string> labels,
              std::vector<MetaVar> meta_vars, std::vector<prov::VarId> remap,
              prov::EvalProgram full, prov::EvalProgram compressed);
  };

  CompiledSession(std::shared_ptr<const Artifacts> artifacts,
                  prov::Valuation default_meta);

  /// Copies `v` and extends it neutrally to the pool size.
  prov::Valuation PoolSized(const prov::Valuation& v) const;

  /// The shared implementation behind both PlanBatch overloads (and the
  /// grid's core acquisition): the default-base overload passes the
  /// fingerprint precomputed at construction so the warm path never
  /// rehashes the (immutable) default valuation. `core_hit`, when non-null,
  /// reports whether at least the plan core came from the cache.
  util::Result<std::shared_ptr<const BatchPlan>> PlanBatchImpl(
      const ScenarioSet& scenarios,
      const prov::Valuation& base_meta_valuation,
      const BaseFingerprint& base_fingerprint, const BatchOptions& options,
      bool* cache_hit, bool* core_hit) const;

  /// Runs the sparse/blocked sweep of one program side for every scenario,
  /// writing the scenario-major result matrix (num_scenarios ×
  /// program.NumPolys(), row-major) to `flat` — the execution core shared
  /// by Execute() and AssignGrid(). Performs exactly the same tile
  /// dispatch, kernel calls and fixed-order partial reduction regardless of
  /// the caller, so grid cells are bit-identical to batch results.
  /// `used_threads` is raised (never lowered) to the worker count used.
  /// `block_mask`, when non-null, has one byte per scenario block; a block
  /// whose byte is 0 is skipped entirely (its rows in `flat` are left
  /// untouched) — the streaming early-exit hook. Computed blocks run the
  /// identical kernel path, so masking never perturbs surviving rows.
  /// `image`, when non-null, is this program side's cached SoA execution
  /// image (core.layout() == kSoA): the blocked tiles then run the image
  /// kernels with the core's prefetch distance — bit-identical to the AoS
  /// path, only the memory layout differs. Null executes AoS.
  void SweepPlanProgram(const PlanCore& core, const PlanBaseOverlay& overlay,
                        const prov::EvalProgram& program,
                        const prov::EvalImage* image,
                        const ProgramSchedule& schedule, double* flat,
                        std::size_t* used_threads,
                        const std::uint8_t* block_mask = nullptr) const;

  /// Base-invariant identity of one planned batch: the scenario-set
  /// fingerprint plus the options a core is derived from — deliberately
  /// *without* the base valuation, which only selects an overlay inside the
  /// entry. The map's bucket hash only routes; key equality compares the
  /// options fields exactly and the 128-bit content digest (two
  /// independently-seeded chains), because an equality collision would
  /// silently replay the wrong plan, and 64 bits is not enough to stake
  /// correctness on.
  struct PlanCacheKey {
    PlanFingerprint scenarios;
    std::uint32_t sweep = 0;
    std::uint32_t layout = 0;
    std::uint64_t block_lanes = 0;
    std::uint64_t prefetch_distance = 0;
    std::uint64_t num_threads = 0;
    std::uint64_t partition_min_terms = 0;
    std::uint64_t split_min_terms = 0;

    bool operator==(const PlanCacheKey&) const = default;
  };
  struct PlanCacheKeyHash {
    std::size_t operator()(const PlanCacheKey& key) const;
  };

  /// One cached core plus its per-base overlays: full plans (all sharing
  /// `core`) in insertion order, keyed by base fingerprint. The overlay
  /// list is small and scanned linearly — base churn beyond
  /// kMaxOverlaysPerEntry evicts FIFO without touching the core.
  struct PlanCacheEntry {
    std::shared_ptr<const PlanCore> core;
    std::vector<std::pair<BaseFingerprint, std::shared_ptr<const BatchPlan>>>
        overlays;
  };

  /// Builds the base-invariant cache key for (scenarios, options).
  static PlanCacheKey MakePlanCacheKey(const ScenarioSet& scenarios,
                                       const BatchOptions& options);

  /// Cached cores are bounded, as are the overlays attached to each one; a
  /// server cycling through more distinct scenario sets (or bases) than
  /// this simply re-plans the excess (correctness never depends on the
  /// cache).
  static constexpr std::size_t kPlanCacheMaxEntries = 64;
  static constexpr std::size_t kMaxOverlaysPerEntry = 8;

  std::shared_ptr<const Artifacts> artifacts_;
  prov::Valuation default_meta_;
  prov::Valuation default_full_;
  /// FingerprintBase(default_meta_, pool), precomputed.
  BaseFingerprint default_base_fingerprint_;

  /// The plan cache: the one synchronized corner of the serving layer.
  /// Lookups take the lock shared; only a miss's insert takes it exclusive.
  /// `plan_cache_order_` records insertion order so core eviction at
  /// capacity is FIFO (oldest core first) instead of whatever the map's
  /// bucket layout puts at begin(); evicting a core drops all its overlays.
  mutable std::shared_mutex plan_mutex_;
  mutable std::unordered_map<PlanCacheKey, PlanCacheEntry, PlanCacheKeyHash>
      plan_cache_;
  mutable std::deque<PlanCacheKey> plan_cache_order_;
  mutable std::atomic<std::uint64_t> plan_cache_hits_{0};
  mutable std::atomic<std::uint64_t> plan_cache_core_hits_{0};
  mutable std::atomic<std::uint64_t> plan_cache_misses_{0};
};

}  // namespace cobra::core

#endif  // COBRA_CORE_COMPILED_SESSION_H_
