#include "core/tree_builder.h"

#include <unordered_map>
#include <unordered_set>

#include "util/csv.h"
#include "util/str.h"

namespace cobra::core {

util::Result<AbstractionTree> BuildTreeFromEdges(
    const std::vector<HierarchyEdge>& edges, prov::VarPool* pool) {
  if (edges.empty()) {
    return util::Status::InvalidArgument("no hierarchy edges given");
  }
  // Order-preserving children map and parent counts.
  std::unordered_map<std::string, std::vector<std::string>> children;
  std::unordered_map<std::string, std::string> parent_of;
  std::vector<std::string> order;  // nodes by first appearance
  auto note = [&order, &children](const std::string& name) {
    if (children.find(name) == children.end()) {
      children.emplace(name, std::vector<std::string>{});
      order.push_back(name);
    }
  };
  for (const HierarchyEdge& edge : edges) {
    if (edge.parent.empty() || edge.child.empty()) {
      return util::Status::InvalidArgument("edge with empty node name");
    }
    if (edge.parent == edge.child) {
      return util::Status::InvalidArgument("self-edge on " + edge.parent);
    }
    note(edge.parent);
    note(edge.child);
    auto [it, inserted] = parent_of.emplace(edge.child, edge.parent);
    if (!inserted) {
      if (it->second == edge.parent) continue;  // duplicate edge: ignore
      return util::Status::InvalidArgument("node " + edge.child +
                                           " has two parents");
    }
    children[edge.parent].push_back(edge.child);
  }
  // Find the root.
  std::string root;
  for (const std::string& name : order) {
    if (parent_of.find(name) == parent_of.end()) {
      if (!root.empty()) {
        return util::Status::InvalidArgument("two roots: " + root + " and " +
                                             name);
      }
      root = name;
    }
  }
  if (root.empty()) {
    return util::Status::InvalidArgument("no root (the edges form a cycle)");
  }

  // Build by DFS from the root; count visited nodes to detect disconnected
  // cycles (nodes unreachable from the root).
  AbstractionTree tree;
  struct Frame {
    std::string name;
    NodeId parent;
  };
  std::vector<Frame> stack{{root, kNoNode}};
  std::size_t visited = 0;
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    ++visited;
    NodeId id = frame.parent == kNoNode
                    ? tree.AddRoot(frame.name)
                    : tree.AddChild(frame.parent, frame.name);
    const std::vector<std::string>& kids = children[frame.name];
    if (kids.empty()) {
      tree.SetLeafVar(id, pool->Intern(frame.name));
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, id});
    }
  }
  if (visited != order.size()) {
    return util::Status::InvalidArgument(
        "hierarchy contains nodes unreachable from the root (cycle?)");
  }
  COBRA_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

util::Result<AbstractionTree> BuildTreeFromCsv(std::string_view csv_text,
                                               prov::VarPool* pool) {
  util::Result<util::CsvDocument> doc = util::ParseCsv(csv_text);
  if (!doc.ok()) return doc.status();
  if (doc->header.size() < 2 ||
      !util::EqualsIgnoreCase(util::Trim(doc->header[0]), "parent") ||
      !util::EqualsIgnoreCase(util::Trim(doc->header[1]), "child")) {
    return util::Status::InvalidArgument(
        "hierarchy CSV must start with a 'parent,child' header");
  }
  std::vector<HierarchyEdge> edges;
  edges.reserve(doc->rows.size());
  for (const auto& row : doc->rows) {
    edges.push_back({std::string(util::Trim(row[0])),
                     std::string(util::Trim(row[1]))});
  }
  return BuildTreeFromEdges(edges, pool);
}

}  // namespace cobra::core
