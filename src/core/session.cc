#include "core/session.h"

#include <algorithm>

#include "prov/parser.h"
#include "util/str.h"

namespace cobra::core {

void Session::LoadPolynomials(prov::PolySet polys) {
  full_ = std::move(polys);
  abstraction_.reset();
  meta_valuation_.reset();
  InvalidateSnapshot();
}

util::Status Session::LoadPolynomialsText(std::string_view text) {
  util::Result<prov::PolySet> polys = prov::ParsePolySet(text, pool_.get());
  if (!polys.ok()) return polys.status();
  LoadPolynomials(std::move(*polys));
  return util::Status::OK();
}

void Session::SetBaseValuation(const prov::Valuation& valuation) {
  base_valuation_ = valuation;
  base_valuation_->Resize(pool_->size());
}

util::Status Session::SetBaseValue(std::string_view name, double value) {
  if (!base_valuation_.has_value()) {
    base_valuation_.emplace(pool_->size());
  }
  return base_valuation_->SetByName(*pool_, name, value);
}

util::Status Session::SetTree(AbstractionTree tree) {
  COBRA_RETURN_IF_ERROR(tree.Validate());
  trees_.clear();
  trees_.push_back(std::move(tree));
  abstraction_.reset();
  meta_valuation_.reset();
  InvalidateSnapshot();
  return util::Status::OK();
}

util::Status Session::SetTrees(std::vector<AbstractionTree> trees) {
  if (trees.empty()) {
    return util::Status::InvalidArgument("SetTrees: empty tree list");
  }
  for (const AbstractionTree& tree : trees) {
    COBRA_RETURN_IF_ERROR(tree.Validate());
  }
  trees_ = std::move(trees);
  abstraction_.reset();
  meta_valuation_.reset();
  InvalidateSnapshot();
  return util::Status::OK();
}

util::Status Session::SetTreeText(std::string_view text) {
  util::Result<AbstractionTree> tree = ParseTree(text, pool_.get());
  if (!tree.ok()) return tree.status();
  return SetTree(std::move(*tree));
}

void Session::EnsureValuationSizes() {
  if (base_valuation_.has_value()) base_valuation_->Resize(pool_->size());
  if (meta_valuation_.has_value()) meta_valuation_->Resize(pool_->size());
}

util::Result<CompressionReport> Session::Compress(Algorithm algorithm,
                                                  bool collect_explain) {
  if (full_.empty()) {
    return util::Status::FailedPrecondition("no polynomials loaded");
  }
  if (trees_.empty()) {
    return util::Status::FailedPrecondition("no abstraction tree set");
  }
  util::Result<CompressionOutcome> outcome =
      util::Status::Internal("unset");
  if (trees_.size() > 1) {
    outcome = CompressMultiTree(full_, trees_, bound_, pool_.get());
  } else {
    CompressionRequest request;
    request.bound = bound_;
    request.algorithm = algorithm;
    request.collect_explain = collect_explain;
    outcome = core::Compress(full_, trees_[0], request, pool_.get());
  }
  if (!outcome.ok()) return outcome.status();
  abstraction_ = std::move(outcome->abstraction);
  InvalidateSnapshot();
  // The paper's default meta-assignment: average of the abstracted values.
  if (!base_valuation_.has_value()) base_valuation_.emplace(pool_->size());
  EnsureValuationSizes();
  meta_valuation_ = abstraction_->DefaultMetaValuation(*base_valuation_);
  meta_valuation_->Resize(pool_->size());
  return outcome->report;
}

util::Status Session::SetMetaValue(std::string_view name, double value) {
  if (!meta_valuation_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before assigning meta-variables");
  }
  return meta_valuation_->SetByName(*pool_, name, value);
}

util::Status Session::ResetMetaValues() {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before ResetMetaValues()");
  }
  meta_valuation_ = abstraction_->DefaultMetaValuation(*base_valuation_);
  meta_valuation_->Resize(pool_->size());
  return util::Status::OK();
}

void Session::InvalidateSnapshot() { snapshot_.reset(); }

util::Result<std::shared_ptr<const CompiledSession>> Session::EnsureSnapshot()
    const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before taking a snapshot");
  }
  if (snapshot_ == nullptr) {
    // The pool is shared, not copied: VarPool is append-only and internally
    // synchronized, and the snapshot captures the pool size, so later
    // interning by this session (or the owning Database) never changes what
    // the snapshot serves.
    util::Result<std::shared_ptr<const CompiledSession>> snapshot =
        CompiledSession::Create(full_, *abstraction_, pool_,
                                *meta_valuation_);
    if (!snapshot.ok()) return snapshot.status();
    snapshot_ = std::move(*snapshot);
  }
  return snapshot_;
}

util::Result<std::shared_ptr<const CompiledSession>> Session::Snapshot()
    const {
  util::Result<std::shared_ptr<const CompiledSession>> snapshot =
      EnsureSnapshot();
  if (!snapshot.ok()) return snapshot.status();
  // The cached snapshot keeps the meta valuation it was built with; refresh
  // the (cheap) valuation wrapper when the session's has since changed so a
  // returned snapshot always defaults to the current meta assignment.
  if ((*snapshot)->default_meta_valuation().values() !=
      meta_valuation_->values()) {
    snapshot_ = (*snapshot)->WithDefaultMetaValuation(*meta_valuation_);
  }
  return snapshot_;
}

util::Result<AssignReport> Session::Assign(std::size_t timing_reps) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before Assign()");
  }
  util::Result<std::shared_ptr<const CompiledSession>> snapshot =
      EnsureSnapshot();
  if (!snapshot.ok()) return snapshot.status();
  return (*snapshot)->Assign(*meta_valuation_, timing_reps);
}

util::Result<AssignReport> Session::AssignAgainstBase(
    std::size_t timing_reps) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before AssignAgainstBase()");
  }
  util::Result<std::shared_ptr<const CompiledSession>> snapshot =
      EnsureSnapshot();
  if (!snapshot.ok()) return snapshot.status();
  return (*snapshot)->AssignAgainstBase(*base_valuation_, *meta_valuation_,
                                        timing_reps);
}

util::Result<BatchAssignReport> Session::AssignBatch(
    const ScenarioSet& scenarios, const BatchOptions& options) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before AssignBatch()");
  }
  util::Result<std::shared_ptr<const CompiledSession>> snapshot =
      EnsureSnapshot();
  if (!snapshot.ok()) return snapshot.status();
  return (*snapshot)->AssignBatch(scenarios, *meta_valuation_, options);
}

}  // namespace cobra::core
