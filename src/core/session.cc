#include "core/session.h"

#include "prov/parser.h"
#include "util/str.h"

namespace cobra::core {

std::string AssignReport::ToString(std::size_t max_rows) const {
  std::string out = delta.ToString(max_rows);
  out += util::StrFormat(
      "provenance size:  %zu -> %zu monomials\n", full_size, compressed_size);
  out += util::StrFormat(
      "assignment time:  full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      timing.full_seconds * 1e6, timing.compressed_seconds * 1e6,
      timing.SpeedupPercent());
  return out;
}

void Session::LoadPolynomials(prov::PolySet polys) {
  full_ = std::move(polys);
  abstraction_.reset();
  meta_valuation_.reset();
}

util::Status Session::LoadPolynomialsText(std::string_view text) {
  util::Result<prov::PolySet> polys = prov::ParsePolySet(text, pool_.get());
  if (!polys.ok()) return polys.status();
  LoadPolynomials(std::move(*polys));
  return util::Status::OK();
}

void Session::SetBaseValuation(const prov::Valuation& valuation) {
  base_valuation_ = valuation;
  base_valuation_->Resize(pool_->size());
}

util::Status Session::SetBaseValue(std::string_view name, double value) {
  if (!base_valuation_.has_value()) {
    base_valuation_.emplace(pool_->size());
  }
  return base_valuation_->SetByName(*pool_, name, value);
}

util::Status Session::SetTree(AbstractionTree tree) {
  COBRA_RETURN_IF_ERROR(tree.Validate());
  trees_.clear();
  trees_.push_back(std::move(tree));
  abstraction_.reset();
  meta_valuation_.reset();
  return util::Status::OK();
}

util::Status Session::SetTrees(std::vector<AbstractionTree> trees) {
  if (trees.empty()) {
    return util::Status::InvalidArgument("SetTrees: empty tree list");
  }
  for (const AbstractionTree& tree : trees) {
    COBRA_RETURN_IF_ERROR(tree.Validate());
  }
  trees_ = std::move(trees);
  abstraction_.reset();
  meta_valuation_.reset();
  return util::Status::OK();
}

util::Status Session::SetTreeText(std::string_view text) {
  util::Result<AbstractionTree> tree = ParseTree(text, pool_.get());
  if (!tree.ok()) return tree.status();
  return SetTree(std::move(*tree));
}

void Session::EnsureValuationSizes() {
  if (base_valuation_.has_value()) base_valuation_->Resize(pool_->size());
  if (meta_valuation_.has_value()) meta_valuation_->Resize(pool_->size());
}

util::Result<CompressionReport> Session::Compress(Algorithm algorithm,
                                                  bool collect_explain) {
  if (full_.empty()) {
    return util::Status::FailedPrecondition("no polynomials loaded");
  }
  if (trees_.empty()) {
    return util::Status::FailedPrecondition("no abstraction tree set");
  }
  util::Result<CompressionOutcome> outcome =
      util::Status::Internal("unset");
  if (trees_.size() > 1) {
    outcome = CompressMultiTree(full_, trees_, bound_, pool_.get());
  } else {
    CompressionRequest request;
    request.bound = bound_;
    request.algorithm = algorithm;
    request.collect_explain = collect_explain;
    outcome = core::Compress(full_, trees_[0], request, pool_.get());
  }
  if (!outcome.ok()) return outcome.status();
  abstraction_ = std::move(outcome->abstraction);
  // The paper's default meta-assignment: average of the abstracted values.
  if (!base_valuation_.has_value()) base_valuation_.emplace(pool_->size());
  EnsureValuationSizes();
  meta_valuation_ = abstraction_->DefaultMetaValuation(*base_valuation_);
  meta_valuation_->Resize(pool_->size());
  return outcome->report;
}

util::Status Session::SetMetaValue(std::string_view name, double value) {
  if (!meta_valuation_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before assigning meta-variables");
  }
  return meta_valuation_->SetByName(*pool_, name, value);
}

prov::Valuation Session::ExpandedFullValuation() const {
  // Original variables take their meta-variable's assigned value; variables
  // outside the abstraction keep their value from the meta valuation (which
  // inherits the base valuation for them).
  prov::Valuation full_valuation = *meta_valuation_;
  for (const MetaVar& mv : abstraction_->meta_vars) {
    double v = meta_valuation_->Get(mv.var);
    for (prov::VarId leaf : mv.leaves) full_valuation.Set(leaf, v);
  }
  return full_valuation;
}

util::Result<AssignReport> Session::Assign(std::size_t timing_reps) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before Assign()");
  }
  AssignReport report;
  prov::Valuation full_valuation = ExpandedFullValuation();
  report.delta = CompareResults(full_, abstraction_->compressed,
                                full_valuation, *meta_valuation_);
  report.timing = MeasureAssignment(full_, abstraction_->compressed,
                                    full_valuation, *meta_valuation_,
                                    timing_reps);
  report.full_size = full_.TotalMonomials();
  report.compressed_size = abstraction_->compressed.TotalMonomials();
  return report;
}

util::Result<AssignReport> Session::AssignAgainstBase(
    std::size_t timing_reps) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before AssignAgainstBase()");
  }
  AssignReport report;
  prov::Valuation base = *base_valuation_;
  base.Resize(pool_->size());
  report.delta = CompareResults(full_, abstraction_->compressed, base,
                                *meta_valuation_);
  report.timing = MeasureAssignment(full_, abstraction_->compressed, base,
                                    *meta_valuation_, timing_reps);
  report.full_size = full_.TotalMonomials();
  report.compressed_size = abstraction_->compressed.TotalMonomials();
  return report;
}

}  // namespace cobra::core
