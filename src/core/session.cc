#include "core/session.h"

#include <algorithm>
#include <thread>

#include "prov/parser.h"
#include "util/str.h"
#include "util/timer.h"

namespace cobra::core {

std::string AssignReport::ToString(std::size_t max_rows) const {
  std::string out = delta.ToString(max_rows);
  out += util::StrFormat(
      "provenance size:  %zu -> %zu monomials\n", full_size, compressed_size);
  out += util::StrFormat(
      "assignment time:  full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      timing.full_seconds * 1e6, timing.compressed_seconds * 1e6,
      timing.SpeedupPercent());
  return out;
}

std::string BatchAssignReport::ToString(std::size_t max_scenarios,
                                        std::size_t max_rows) const {
  std::string out = util::StrFormat(
      "batch:            %zu scenarios on %zu thread(s)\n", reports.size(),
      num_threads);
  out += util::StrFormat(
      "sweep time:       full=%.3gms compressed=%.3gms\n",
      full_sweep_seconds * 1e3, compressed_sweep_seconds * 1e3);
  out += util::StrFormat(
      "per scenario:     full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      aggregate.full_seconds * 1e6, aggregate.compressed_seconds * 1e6,
      aggregate.SpeedupPercent());
  std::size_t shown = std::min(max_scenarios, reports.size());
  for (std::size_t i = 0; i < shown; ++i) {
    // The struct is public; tolerate hand-built reports whose name list is
    // shorter than the report list.
    out += util::StrFormat("-- %s --\n",
                           i < scenario_names.size()
                               ? scenario_names[i].c_str()
                               : ("scenario " + std::to_string(i)).c_str());
    out += reports[i].delta.ToString(max_rows);
  }
  if (shown < reports.size()) {
    out += util::StrFormat("... (%zu more scenarios)\n",
                           reports.size() - shown);
  }
  return out;
}

void Session::LoadPolynomials(prov::PolySet polys) {
  full_ = std::move(polys);
  abstraction_.reset();
  meta_valuation_.reset();
  InvalidatePrograms();
}

util::Status Session::LoadPolynomialsText(std::string_view text) {
  util::Result<prov::PolySet> polys = prov::ParsePolySet(text, pool_.get());
  if (!polys.ok()) return polys.status();
  LoadPolynomials(std::move(*polys));
  return util::Status::OK();
}

void Session::SetBaseValuation(const prov::Valuation& valuation) {
  base_valuation_ = valuation;
  base_valuation_->Resize(pool_->size());
}

util::Status Session::SetBaseValue(std::string_view name, double value) {
  if (!base_valuation_.has_value()) {
    base_valuation_.emplace(pool_->size());
  }
  return base_valuation_->SetByName(*pool_, name, value);
}

util::Status Session::SetTree(AbstractionTree tree) {
  COBRA_RETURN_IF_ERROR(tree.Validate());
  trees_.clear();
  trees_.push_back(std::move(tree));
  abstraction_.reset();
  meta_valuation_.reset();
  compressed_program_.reset();
  return util::Status::OK();
}

util::Status Session::SetTrees(std::vector<AbstractionTree> trees) {
  if (trees.empty()) {
    return util::Status::InvalidArgument("SetTrees: empty tree list");
  }
  for (const AbstractionTree& tree : trees) {
    COBRA_RETURN_IF_ERROR(tree.Validate());
  }
  trees_ = std::move(trees);
  abstraction_.reset();
  meta_valuation_.reset();
  compressed_program_.reset();
  return util::Status::OK();
}

util::Status Session::SetTreeText(std::string_view text) {
  util::Result<AbstractionTree> tree = ParseTree(text, pool_.get());
  if (!tree.ok()) return tree.status();
  return SetTree(std::move(*tree));
}

void Session::EnsureValuationSizes() {
  if (base_valuation_.has_value()) base_valuation_->Resize(pool_->size());
  if (meta_valuation_.has_value()) meta_valuation_->Resize(pool_->size());
}

util::Result<CompressionReport> Session::Compress(Algorithm algorithm,
                                                  bool collect_explain) {
  if (full_.empty()) {
    return util::Status::FailedPrecondition("no polynomials loaded");
  }
  if (trees_.empty()) {
    return util::Status::FailedPrecondition("no abstraction tree set");
  }
  util::Result<CompressionOutcome> outcome =
      util::Status::Internal("unset");
  if (trees_.size() > 1) {
    outcome = CompressMultiTree(full_, trees_, bound_, pool_.get());
  } else {
    CompressionRequest request;
    request.bound = bound_;
    request.algorithm = algorithm;
    request.collect_explain = collect_explain;
    outcome = core::Compress(full_, trees_[0], request, pool_.get());
  }
  if (!outcome.ok()) return outcome.status();
  abstraction_ = std::move(outcome->abstraction);
  compressed_program_.reset();
  // The paper's default meta-assignment: average of the abstracted values.
  if (!base_valuation_.has_value()) base_valuation_.emplace(pool_->size());
  EnsureValuationSizes();
  meta_valuation_ = abstraction_->DefaultMetaValuation(*base_valuation_);
  meta_valuation_->Resize(pool_->size());
  return outcome->report;
}

util::Status Session::SetMetaValue(std::string_view name, double value) {
  if (!meta_valuation_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before assigning meta-variables");
  }
  return meta_valuation_->SetByName(*pool_, name, value);
}

util::Status Session::ResetMetaValues() {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before ResetMetaValues()");
  }
  meta_valuation_ = abstraction_->DefaultMetaValuation(*base_valuation_);
  meta_valuation_->Resize(pool_->size());
  return util::Status::OK();
}

prov::Valuation Session::ExpandValuation(const prov::Valuation& meta) const {
  // Original variables take their meta-variable's assigned value; variables
  // outside the abstraction keep their value from the meta valuation (which
  // inherits the base valuation for them).
  prov::Valuation full_valuation = meta;
  for (const MetaVar& mv : abstraction_->meta_vars) {
    double v = meta.Get(mv.var);
    for (prov::VarId leaf : mv.leaves) full_valuation.Set(leaf, v);
  }
  return full_valuation;
}

prov::Valuation Session::ExpandedFullValuation() const {
  return ExpandValuation(*meta_valuation_);
}

void Session::InvalidatePrograms() {
  full_program_.reset();
  compressed_program_.reset();
}

const prov::EvalProgram& Session::FullProgram() const {
  if (!full_program_.has_value()) full_program_.emplace(full_);
  return *full_program_;
}

const prov::EvalProgram& Session::CompressedProgram() const {
  COBRA_CHECK_MSG(abstraction_.has_value(),
                  "CompressedProgram() before Compress()");
  if (!compressed_program_.has_value()) {
    compressed_program_.emplace(abstraction_->compressed);
  }
  return *compressed_program_;
}

util::Result<AssignReport> Session::Assign(std::size_t timing_reps) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before Assign()");
  }
  AssignReport report;
  prov::Valuation full_valuation = ExpandedFullValuation();
  report.delta = CompareResults(FullProgram(), CompressedProgram(),
                                full_.labels(), full_valuation,
                                *meta_valuation_);
  report.timing = MeasureAssignment(FullProgram(), CompressedProgram(),
                                    full_valuation, *meta_valuation_,
                                    timing_reps);
  report.full_size = full_.TotalMonomials();
  report.compressed_size = abstraction_->compressed.TotalMonomials();
  return report;
}

util::Result<AssignReport> Session::AssignAgainstBase(
    std::size_t timing_reps) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before AssignAgainstBase()");
  }
  AssignReport report;
  prov::Valuation base = *base_valuation_;
  base.Resize(pool_->size());
  report.delta = CompareResults(FullProgram(), CompressedProgram(),
                                full_.labels(), base, *meta_valuation_);
  report.timing = MeasureAssignment(FullProgram(), CompressedProgram(), base,
                                    *meta_valuation_, timing_reps);
  report.full_size = full_.TotalMonomials();
  report.compressed_size = abstraction_->compressed.TotalMonomials();
  return report;
}

util::Result<BatchAssignReport> Session::AssignBatch(
    const ScenarioSet& scenarios, const BatchOptions& options) const {
  if (!abstraction_.has_value()) {
    return util::Status::FailedPrecondition(
        "call Compress() before AssignBatch()");
  }
  if (scenarios.empty()) {
    return util::Status::InvalidArgument("AssignBatch: empty scenario set");
  }

  const prov::EvalProgram& full_program = FullProgram();
  const prov::EvalProgram& compressed_program = CompressedProgram();
  if (full_program.NumPolys() != compressed_program.NumPolys()) {
    return util::Status::Internal(util::StrFormat(
        "AssignBatch: group count mismatch (full=%zu compressed=%zu)",
        full_program.NumPolys(), compressed_program.NumPolys()));
  }

  // Resolve every scenario into its compressed-side and expanded full-side
  // valuations up front, so name errors surface before any thread spawns
  // and the sweep below is pure computation.
  const std::size_t n = scenarios.size();
  std::vector<prov::Valuation> meta_valuations;
  std::vector<prov::Valuation> full_valuations;
  meta_valuations.reserve(n);
  full_valuations.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Scenario& scenario = scenarios.scenario(i);
    prov::Valuation meta = *meta_valuation_;
    for (const Scenario::Delta& delta : scenario.deltas) {
      util::Status status = meta.SetByName(*pool_, delta.var, delta.value);
      if (!status.ok()) {
        return util::Status::InvalidArgument(
            util::StrFormat("AssignBatch scenario \"%s\": %s",
                            scenario.name.c_str(),
                            status.ToString().c_str()));
      }
    }
    full_valuations.push_back(ExpandValuation(meta));
    meta_valuations.push_back(std::move(meta));
  }
  // All valuations are equally sized copies of the meta valuation; validate
  // once against each program instead of aborting inside Eval().
  if (full_valuations[0].size() < full_program.MinValuationSize() ||
      meta_valuations[0].size() < compressed_program.MinValuationSize()) {
    return util::Status::Internal(
        "AssignBatch: session valuation narrower than the compiled programs");
  }

  std::size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);

  std::vector<std::vector<double>> full_values(n);
  std::vector<std::vector<double>> compressed_values(n);

  // One side at a time, statically chunked: scenarios are homogeneous (same
  // program, same-size valuations), so equal chunks balance well and the
  // per-side wall clock is the number the aggregate timing reports.
  auto sweep = [&](const prov::EvalProgram& program,
                   const std::vector<prov::Valuation>& valuations,
                   std::vector<std::vector<double>>* out) {
    auto worker = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        program.Eval(valuations[i], &(*out)[i]);
      }
    };
    if (threads == 1) {
      worker(0, n);
      return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back(worker, begin, end);
    }
    for (std::thread& th : pool) th.join();
  };

  BatchAssignReport batch;
  batch.scenario_names = scenarios.Names();
  batch.num_threads = threads;

  util::Timer timer;
  sweep(full_program, full_valuations, &full_values);
  batch.full_sweep_seconds = timer.ElapsedSeconds();
  timer.Reset();
  sweep(compressed_program, meta_valuations, &compressed_values);
  batch.compressed_sweep_seconds = timer.ElapsedSeconds();

  batch.aggregate.repetitions = n;
  batch.aggregate.full_seconds =
      batch.full_sweep_seconds / static_cast<double>(n);
  batch.aggregate.compressed_seconds =
      batch.compressed_sweep_seconds / static_cast<double>(n);

  const std::size_t full_size = full_.TotalMonomials();
  const std::size_t compressed_size =
      abstraction_->compressed.TotalMonomials();
  batch.reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AssignReport report;
    report.delta =
        DeltaFromValues(full_.labels(), full_values[i], compressed_values[i]);
    report.timing = batch.aggregate;
    report.timing.repetitions = 1;
    report.full_size = full_size;
    report.compressed_size = compressed_size;
    batch.reports.push_back(std::move(report));
  }
  return batch;
}

}  // namespace cobra::core
