#ifndef COBRA_CORE_TREE_H_
#define COBRA_CORE_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

/// Node index within an AbstractionTree.
using NodeId = std::uint32_t;
constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// An abstraction tree (Section 2 of the paper): a rooted tree whose leaves
/// are provenance variables and whose inner nodes name allowed groupings.
///
/// A *cut* of the tree (see cut.h) chooses an antichain separating the root
/// from the leaves; each chosen node replaces all of its descendant leaf
/// variables by one meta-variable. The tree both restricts and guides
/// compression: only semantically meaningful groups (siblings in an
/// ontology) may be merged.
///
/// Invariants (checked by `Validate`):
///  * exactly one root;
///  * every leaf carries a distinct variable;
///  * inner nodes have at least one child;
///  * node names are unique within the tree (meta-variables must not clash).
class AbstractionTree {
 public:
  struct Node {
    std::string name;               ///< Leaf: variable name. Inner: group name.
    NodeId parent = kNoNode;
    std::vector<NodeId> children;   ///< Empty for leaves.
    prov::VarId var = prov::kInvalidVar;  ///< Leaf variable id.

    bool IsLeaf() const { return children.empty(); }
  };

  AbstractionTree() = default;

  /// Creates the root node; must be called exactly once, first.
  NodeId AddRoot(std::string name);

  /// Adds an inner or (for now childless) node under `parent`.
  NodeId AddChild(NodeId parent, std::string name);

  /// Adds a leaf carrying variable `name` (interned into `pool`).
  NodeId AddLeaf(NodeId parent, std::string_view var_name, prov::VarPool* pool);

  /// Assigns the variable of a childless node (used by the tree parser,
  /// which discovers leaves only once the whole outline is read).
  void SetLeafVar(NodeId id, prov::VarId var);

  /// Number of nodes.
  std::size_t size() const { return nodes_.size(); }

  /// True when AddRoot has been called.
  bool HasRoot() const { return !nodes_.empty(); }

  NodeId root() const { return 0; }
  const Node& node(NodeId id) const { return nodes_[id]; }

  /// Depth of `id` (root = 0).
  std::size_t Depth(NodeId id) const;

  /// Maximum leaf depth.
  std::size_t MaxDepth() const;

  /// Ids of all leaves, in DFS order.
  std::vector<NodeId> Leaves() const;

  /// Ids of all leaves under `id`, in DFS order.
  std::vector<NodeId> LeavesUnder(NodeId id) const;

  /// Node ids in post-order (children before parents).
  std::vector<NodeId> PostOrder() const;

  /// The node named `name`, or kNoNode.
  NodeId FindByName(std::string_view name) const;

  /// The leaf carrying `var`, or kNoNode.
  NodeId FindLeafByVar(prov::VarId var) const;

  /// Number of distinct cuts of the tree:
  /// `C(leaf) = 1`, `C(v) = 1 + Π C(child)`, saturating at 2^62.
  std::uint64_t CountCuts() const;

  /// Checks all structural invariants.
  util::Status Validate() const;

  /// Renders an indented outline of the tree.
  std::string ToString() const;

 private:
  std::uint64_t CountCutsAt(NodeId id) const;

  std::vector<Node> nodes_;
};

/// Parses the indentation-based tree format used throughout the repo:
///
///     Plans
///       Standard
///         p1
///         p2
///       Business
///         SB
///           b1
///           b2
///         e
///
/// Each line is one node; indentation (spaces, two per level recommended but
/// any consistent deepening works) gives the parent; nodes without children
/// are leaves and their names are interned as variables in `pool`. Blank
/// lines and `#` comments are ignored.
util::Result<AbstractionTree> ParseTree(std::string_view text,
                                        prov::VarPool* pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_TREE_H_
