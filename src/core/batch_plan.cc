#include "core/batch_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/compiled_session.h"
#include "util/hash.h"
#include "util/str.h"

namespace cobra::core {

namespace {

/// Below this combined program weight (terms + factors, both sides) the
/// adaptive policy always picks the scalar sparse engine: the blocked
/// kernel's per-batch fixed costs (override-union tables, tile dispatch)
/// are not amortized by so short a scan.
constexpr std::size_t kAutoMinBlockedWeight = 2048;

/// The blocked kernel's per-block fixed cost grows with the override-union
/// width; the policy requires the program scan to outweigh it by this
/// factor before blocking pays.
constexpr std::size_t kAutoOverrideWeightFactor = 32;

/// Below this many scenarios the adaptive policy stays on the scalar sparse
/// engine even for heavy programs. Fit from the accumulated bench record:
/// BENCH_a6 measured blocked at 0.79x sparse with 64 scenarios while
/// BENCH_a7 measured 3.5x at 1024 — the block-table builds and tile
/// dispatch only amortize once a couple hundred scenarios share them, so
/// the old crossover (blocked from 2 scenarios up) was wrong on both
/// workloads.
constexpr std::size_t kAutoMinBlockedScenarios = 128;

/// From this many scenarios up the adaptive policy widens blocks to 16
/// lanes: with hundreds of blocks the wider ragged tail is noise and the
/// per-factor bookkeeping (row lookup, base load) is amortized over twice
/// the scenarios per program scan.
constexpr std::size_t kAutoWideLanesMinScenarios = 512;

/// The adaptive layout policy's re-layout-amortization threshold, in units
/// of program weight x scenario count (~sweep work). The SoA image build is
/// one O(weight) pass, so it is amortized as soon as the sweep re-reads the
/// program a handful of times; the threshold mainly keeps tiny batches from
/// paying an allocation they cannot win back.
constexpr std::size_t kAutoSoAMinWork = std::size_t{1} << 20;

/// Builds the tile schedule for one program: whole-poly ranges sized by
/// PartitionPolys, with the dominant-polynomial term-splitting fallback —
/// exactly the tiling AssignBatch used to rebuild per call, now derived
/// once at planning time.
ProgramSchedule MakeSchedule(const prov::EvalProgram& program,
                             std::size_t threads, std::size_t num_blocks,
                             const BatchOptions& options) {
  ProgramSchedule schedule;
  schedule.num_polys = program.NumPolys();
  schedule.split_poly = schedule.num_polys;

  std::size_t parts = 1;
  if (threads > num_blocks && options.partition_min_terms > 0) {
    const std::size_t want = (threads + num_blocks - 1) / num_blocks;
    const std::size_t cap =
        program.NumTerms() / options.partition_min_terms + 1;
    parts = std::min(want, cap);
  }
  const std::vector<std::uint32_t> bounds = program.PartitionPolys(parts);

  if (parts > bounds.size() - 1 && options.split_min_terms > 0) {
    schedule.split_poly = program.DominantPoly(options.split_min_terms);
  }
  if (schedule.split_poly < schedule.num_polys) {
    const std::uint32_t sp = static_cast<std::uint32_t>(schedule.split_poly);
    for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
      const std::uint32_t begin = bounds[r];
      const std::uint32_t end = bounds[r + 1];
      if (sp >= begin && sp < end) {
        if (sp > begin) schedule.ranges.emplace_back(begin, sp);
        if (sp + 1 < end) schedule.ranges.emplace_back(sp + 1, end);
      } else {
        schedule.ranges.emplace_back(begin, end);
      }
    }
    const std::size_t spare = parts > schedule.ranges.size()
                                  ? parts - schedule.ranges.size()
                                  : 2;
    schedule.term_bounds = program.PartitionTerms(
        schedule.split_poly, std::max<std::size_t>(2, spare));
  } else {
    for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
      schedule.ranges.emplace_back(bounds[r], bounds[r + 1]);
    }
  }
  return schedule;
}

/// Validates the engine knobs once, at planning time; every rejection names
/// the offending BatchOptions field and the accepted values. Shared by the
/// batch path (PlanCore::Create) and the streaming path (StreamPlan::Create).
util::Status ValidateSweepOptions(const BatchOptions& options) {
  switch (options.sweep) {
    case BatchOptions::Sweep::kAuto:
    case BatchOptions::Sweep::kBlocked:
    case BatchOptions::Sweep::kSparseDelta:
    case BatchOptions::Sweep::kDenseCopy:
      break;
    default:
      return util::Status::InvalidArgument(util::StrFormat(
          "AssignBatch: invalid BatchOptions.sweep = %d (accepted: kAuto, "
          "kBlocked, kSparseDelta, kDenseCopy)",
          static_cast<int>(options.sweep)));
  }
  if (options.sweep == BatchOptions::Sweep::kBlocked &&
      options.block_lanes != 4 && options.block_lanes != 8 &&
      options.block_lanes != 16) {
    return util::Status::InvalidArgument(util::StrFormat(
        "AssignBatch: invalid BatchOptions.block_lanes = %zu (accepted: 4, 8 "
        "or 16; kAuto picks the lane count itself and the scalar engines "
        "ignore the knob)",
        options.block_lanes));
  }
  switch (options.layout) {
    case BatchOptions::Layout::kAuto:
    case BatchOptions::Layout::kAoS:
    case BatchOptions::Layout::kSoA:
      break;
    default:
      return util::Status::InvalidArgument(util::StrFormat(
          "AssignBatch: invalid BatchOptions.layout = %d (accepted: kAuto, "
          "kAoS, kSoA)",
          static_cast<int>(options.layout)));
  }
  if (options.prefetch_distance > 64) {
    return util::Status::InvalidArgument(util::StrFormat(
        "AssignBatch: invalid BatchOptions.prefetch_distance = %zu "
        "(accepted: 0 to 64 cache lines ahead of the SoA kernels' "
        "factor/coeff cursors; 0 disables prefetching)",
        options.prefetch_distance));
  }
  return util::Status::OK();
}

}  // namespace

std::string PlanFingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

PlanFingerprint FingerprintScenarios(const ScenarioSet& scenarios) {
  // A 128-bit digest (util::Hash128): a plan silently replayed for the
  // wrong scenario set would corrupt results, so 64 bits of collision
  // resistance is not enough to stake correctness on. Names are fed
  // word-wise into both chains — never pre-collapsed to one 64-bit hash.
  util::Hash128 hash(0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL);
  hash.Feed(scenarios.size());
  for (const Scenario& scenario : scenarios.scenarios()) {
    hash.FeedBytes(scenario.name);
    hash.Feed(scenario.deltas.size());
    for (const Scenario::Delta& delta : scenario.deltas) {
      hash.FeedBytes(delta.var);
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(delta.value));
      std::memcpy(&bits, &delta.value, sizeof(bits));
      hash.Feed(bits);
    }
  }
  return {hash.lo(), hash.hi()};
}

BaseFingerprint FingerprintBase(const prov::Valuation& base,
                                std::size_t pool_size) {
  // 128-bit (util::Hash128) because overlay *identity* relies on it — same
  // correctness standard as the scenario fingerprint. Hashing the
  // pool-normalized view (short valuations extend neutrally, tails past the
  // frozen pool are invisible to the kernels) means equal-behaving bases
  // always share one overlay.
  util::Hash128 hash(0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL);
  hash.Feed(pool_size);
  const std::vector<double>& values = base.values();
  const std::size_t covered = std::min(values.size(), pool_size);
  for (std::size_t v = 0; v < covered; ++v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(values[v]));
    std::memcpy(&bits, &values[v], sizeof(bits));
    hash.Feed(bits);
  }
  if (covered < pool_size) {
    std::uint64_t neutral_bits = 0;
    const double neutral = 1.0;
    std::memcpy(&neutral_bits, &neutral, sizeof(neutral_bits));
    for (std::size_t v = covered; v < pool_size; ++v) hash.Feed(neutral_bits);
  }
  return {hash.lo(), hash.hi()};
}

EnginePick ChooseAutoEngine(std::size_t program_weight,
                            std::size_t num_scenarios,
                            std::size_t max_override_width) {
  // Policy table (fit from BENCH_a6/a7; see the header comment):
  //   n < 128, weight < 2048, or weight < 32 x override width -> sparse
  //   128 <= n < 512 -> blocked, 8 lanes
  //   n >= 512       -> blocked, 16 lanes
  if (num_scenarios < kAutoMinBlockedScenarios ||
      program_weight < kAutoMinBlockedWeight ||
      program_weight < kAutoOverrideWeightFactor * max_override_width) {
    return {BatchOptions::Sweep::kSparseDelta, 1};
  }
  return {BatchOptions::Sweep::kBlocked,
          num_scenarios >= kAutoWideLanesMinScenarios ? std::size_t{16}
                                                      : std::size_t{8}};
}

prov::EvalLayout ChooseAutoLayout(std::size_t program_weight,
                                  std::size_t num_scenarios) {
  // Guard the multiply; any plausible overflow is far past the threshold.
  if (program_weight != 0 &&
      num_scenarios > kAutoSoAMinWork / program_weight) {
    return prov::EvalLayout::kSoA;
  }
  return program_weight * num_scenarios >= kAutoSoAMinWork
             ? prov::EvalLayout::kSoA
             : prov::EvalLayout::kAoS;
}

util::Result<std::shared_ptr<const PlanCore>> PlanCore::Create(
    std::shared_ptr<const CompiledSession> session,
    const ScenarioSet& scenarios, const BatchOptions& options,
    const PlanFingerprint* precomputed_fingerprint) {
  if (session == nullptr) {
    return util::Status::InvalidArgument("BatchPlan: null session");
  }

  // Options are validated here, once, and never mid-sweep.
  COBRA_RETURN_IF_ERROR(ValidateSweepOptions(options));

  if (scenarios.empty()) {
    return util::Status::InvalidArgument("AssignBatch: empty scenario set");
  }
  {
    std::unordered_set<std::string_view> seen;
    for (const Scenario& scenario : scenarios.scenarios()) {
      if (!seen.insert(scenario.name).second) {
        return util::Status::InvalidArgument(
            util::StrFormat("AssignBatch: duplicate scenario name \"%s\"",
                            scenario.name.c_str()));
      }
    }
  }

  const prov::VarPool& pool = session->pool();
  const std::size_t frozen_pool_size = session->pool_size();

  auto core = std::shared_ptr<PlanCore>(new PlanCore());
  core->session_ = session;
  core->fingerprint_ = precomputed_fingerprint != nullptr
                           ? *precomputed_fingerprint
                           : FingerprintScenarios(scenarios);
  core->options_ = options;
  core->frozen_pool_size_ = frozen_pool_size;
  core->scenario_names_ = scenarios.Names();

  // Lower every scenario to a sorted, duplicate-free (VarId, value) list.
  std::size_t max_override_width = 0;
  core->compiled_.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios.scenarios()) {
    CompiledScenario compiled;
    for (const Scenario::Delta& delta : scenario.deltas) {
      prov::VarId id = pool.Find(delta.var);
      if (id == prov::kInvalidVar) {
        return util::Status::InvalidArgument(util::StrFormat(
            "AssignBatch scenario \"%s\": unknown variable: %s",
            scenario.name.c_str(), delta.var.c_str()));
      }
      if (id >= frozen_pool_size) {
        // The pool is shared with the (still-mutable) authoring session;
        // names interned after this snapshot was taken are not part of its
        // frozen world.
        return util::Status::InvalidArgument(util::StrFormat(
            "AssignBatch scenario \"%s\": variable %s was interned after "
            "this snapshot was taken",
            scenario.name.c_str(), delta.var.c_str()));
      }
      // Deltas apply in order, so a repeated variable keeps the last value;
      // the compiled list stays duplicate-free for the kernels.
      bool found = false;
      for (prov::VarOverride& existing : compiled.overrides) {
        if (existing.var == id) {
          existing.value = delta.value;
          found = true;
        }
      }
      if (!found) compiled.overrides.push_back({id, delta.value});
    }
    std::sort(compiled.overrides.begin(), compiled.overrides.end(),
              [](const prov::VarOverride& a, const prov::VarOverride& b) {
                return a.var < b.var;
              });
    max_override_width = std::max(max_override_width,
                                  compiled.overrides.size());
    core->compiled_.push_back(std::move(compiled));
  }

  const prov::EvalProgram& sweep_full = session->sweep_full_program();
  const prov::EvalProgram& compressed = session->compressed_program();
  const std::size_t n = scenarios.size();

  // Resolve the engine. The kAuto policy reads only the program shapes, the
  // scenario count and the override width — never the thread count — so the
  // choice is deterministic for a given workload.
  const std::size_t weight = sweep_full.NumTerms() +
                             sweep_full.factors().size() +
                             compressed.NumTerms() +
                             compressed.factors().size();
  EnginePick pick;
  switch (options.sweep) {
    case BatchOptions::Sweep::kAuto:
      pick = ChooseAutoEngine(weight, n, max_override_width);
      break;
    case BatchOptions::Sweep::kBlocked:
      pick = {BatchOptions::Sweep::kBlocked, options.block_lanes};
      break;
    case BatchOptions::Sweep::kSparseDelta:
      pick = {BatchOptions::Sweep::kSparseDelta, 1};
      break;
    case BatchOptions::Sweep::kDenseCopy:
      pick = {BatchOptions::Sweep::kDenseCopy, 1};
      break;
  }
  core->engine_ = pick.engine;
  core->lanes_ = pick.lanes;

  // Resolve the layout — same plan-time determinism contract as the engine.
  // Only the blocked kernel has SoA image paths: the scalar engines always
  // execute AoS, so a scalar resolution silently pins kAoS (the knob is a
  // performance hint and can never change results). The SoA images are
  // built here, once, and cached on the core: grid overlays and plan-cache
  // replays reuse them without re-laying anything out.
  if (core->engine_ == BatchOptions::Sweep::kBlocked) {
    switch (options.layout) {
      case BatchOptions::Layout::kAuto:
        core->layout_ = ChooseAutoLayout(weight, n);
        break;
      case BatchOptions::Layout::kAoS:
        core->layout_ = prov::EvalLayout::kAoS;
        break;
      case BatchOptions::Layout::kSoA:
        core->layout_ = prov::EvalLayout::kSoA;
        break;
    }
  } else {
    core->layout_ = prov::EvalLayout::kAoS;
  }
  if (core->layout_ == prov::EvalLayout::kSoA) {
    core->full_image_ = std::make_shared<const prov::EvalImage>(
        prov::EvalImage::Build(sweep_full));
    core->compressed_image_ = std::make_shared<const prov::EvalImage>(
        prov::EvalImage::Build(compressed));
  }

  std::size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (core->engine_ == BatchOptions::Sweep::kDenseCopy) {
    threads = std::min(threads, n);
  }
  core->num_threads_ = threads;
  core->num_blocks_ = (n + core->lanes_ - 1) / core->lanes_;

  // Per-block override-union skeletons (blocked kernel only): the sorted
  // unions and dense row indexes, built once here; MakeOverlay() binds the
  // value rows to each base. One table per block serves both program sides:
  // the tables are valuation-level, and both sides evaluate under the same
  // compressed-side base.
  if (core->engine_ == BatchOptions::Sweep::kBlocked) {
    core->block_skeletons_.reserve(core->num_blocks_);
    for (std::size_t b = 0; b < core->num_blocks_; ++b) {
      prov::OverrideSpan spans[prov::EvalProgram::kMaxLanes];
      const std::size_t count = std::min(core->lanes_, n - b * core->lanes_);
      for (std::size_t l = 0; l < count; ++l) {
        const std::vector<prov::VarOverride>& ov =
            core->compiled_[b * core->lanes_ + l].overrides;
        spans[l] = {ov.data(), ov.size()};
      }
      core->block_skeletons_.push_back(
          prov::MakeBlockOverridesSkeleton(spans, count));
    }
  }

  // The tile schedules. The dense-copy engine scans scenario-major with no
  // intra-program tiling, so it gets the trivial one-range schedule.
  if (core->engine_ == BatchOptions::Sweep::kDenseCopy) {
    ProgramSchedule full_schedule;
    full_schedule.num_polys = session->full_program().NumPolys();
    full_schedule.split_poly = full_schedule.num_polys;
    full_schedule.ranges.emplace_back(
        0, static_cast<std::uint32_t>(full_schedule.num_polys));
    ProgramSchedule compressed_schedule;
    compressed_schedule.num_polys = compressed.NumPolys();
    compressed_schedule.split_poly = compressed_schedule.num_polys;
    compressed_schedule.ranges.emplace_back(
        0, static_cast<std::uint32_t>(compressed_schedule.num_polys));
    core->full_schedule_ = std::move(full_schedule);
    core->compressed_schedule_ = std::move(compressed_schedule);
  } else {
    core->full_schedule_ =
        MakeSchedule(sweep_full, threads, core->num_blocks_, options);
    core->compressed_schedule_ =
        MakeSchedule(compressed, threads, core->num_blocks_, options);
  }

  return std::shared_ptr<const PlanCore>(std::move(core));
}

std::shared_ptr<const PlanCore> PlanCore::WithImages(
    std::shared_ptr<const prov::EvalImage> full,
    std::shared_ptr<const prov::EvalImage> compressed) const {
  auto copy = std::shared_ptr<PlanCore>(new PlanCore(*this));
  copy->full_image_ = std::move(full);
  copy->compressed_image_ = std::move(compressed);
  return copy;
}

std::shared_ptr<const PlanBaseOverlay> PlanCore::MakeOverlay(
    const prov::Valuation& base_meta_valuation,
    const BaseFingerprint* precomputed_fingerprint) const {
  auto overlay = std::make_shared<PlanBaseOverlay>();
  overlay->base = base_meta_valuation;
  overlay->base.Resize(frozen_pool_size_);
  overlay->base_fingerprint =
      precomputed_fingerprint != nullptr
          ? *precomputed_fingerprint
          : FingerprintBase(base_meta_valuation, frozen_pool_size_);

  if (engine_ == BatchOptions::Sweep::kBlocked) {
    const std::size_t n = num_scenarios();
    overlay->block_tables.reserve(block_skeletons_.size());
    for (std::size_t b = 0; b < block_skeletons_.size(); ++b) {
      prov::OverrideSpan spans[prov::EvalProgram::kMaxLanes];
      const std::size_t count = std::min(lanes_, n - b * lanes_);
      for (std::size_t l = 0; l < count; ++l) {
        const std::vector<prov::VarOverride>& ov =
            compiled_[b * lanes_ + l].overrides;
        spans[l] = {ov.data(), ov.size()};
      }
      overlay->block_tables.push_back(prov::RebindBlockOverrides(
          block_skeletons_[b], overlay->base, spans, count));
    }
  }
  return std::shared_ptr<const PlanBaseOverlay>(std::move(overlay));
}

util::Result<std::shared_ptr<const StreamPlan>> StreamPlan::Create(
    std::shared_ptr<const CompiledSession> session,
    const ScenarioSource& source, const BatchOptions& options) {
  if (session == nullptr) {
    return util::Status::InvalidArgument("AssignStream: null session");
  }
  COBRA_RETURN_IF_ERROR(ValidateSweepOptions(options));
  if (options.sweep == BatchOptions::Sweep::kDenseCopy) {
    return util::Status::InvalidArgument(
        "AssignStream: BatchOptions.sweep = kDenseCopy is not streamable "
        "(accepted: kAuto, kBlocked, kSparseDelta)");
  }
  if (options.stream_block_scenarios == 0) {
    return util::Status::InvalidArgument(
        "AssignStream: invalid BatchOptions.stream_block_scenarios = 0 "
        "(the streaming window must hold at least one scenario)");
  }
  if (source.size() == 0) {
    return util::Status::InvalidArgument("AssignStream: empty scenario source");
  }

  auto plan = std::shared_ptr<StreamPlan>(new StreamPlan());
  plan->session_ = session;
  plan->source_fingerprint_ = source.fingerprint();
  plan->source_size_ = source.size();
  plan->window_ = static_cast<std::size_t>(
      std::min<std::uint64_t>(options.stream_block_scenarios, source.size()));

  // Resolve the engine ONCE for the whole stream, from the same inputs the
  // batch policy reads — with the source's size (clamped to the window: a
  // chunk never sees more scenarios than that) standing in for the scenario
  // count and its max_deltas() bound for the measured override width. Every
  // chunk core is then compiled with the pinned choice, so chunk boundaries
  // can never flip the engine mid-stream.
  EnginePick pick;
  switch (options.sweep) {
    case BatchOptions::Sweep::kAuto: {
      const prov::EvalProgram& sweep_full = session->sweep_full_program();
      const prov::EvalProgram& compressed = session->compressed_program();
      const std::size_t weight = sweep_full.NumTerms() +
                                 sweep_full.factors().size() +
                                 compressed.NumTerms() +
                                 compressed.factors().size();
      pick = ChooseAutoEngine(weight, plan->window_, source.max_deltas());
      break;
    }
    case BatchOptions::Sweep::kBlocked:
      pick = {BatchOptions::Sweep::kBlocked, options.block_lanes};
      break;
    default:
      pick = {BatchOptions::Sweep::kSparseDelta, 1};
      break;
  }

  plan->resolved_ = options;
  plan->resolved_.sweep = pick.engine;
  plan->lanes_ = pick.lanes;
  if (pick.engine == BatchOptions::Sweep::kBlocked) {
    plan->resolved_.block_lanes = pick.lanes;
    // Pin the layout for the whole stream so chunk boundaries can never
    // flip it: resolve kAuto here with the window standing in for the
    // scenario count (each chunk is a batch of at most `window` scenarios).
    if (plan->resolved_.layout == BatchOptions::Layout::kAuto) {
      const prov::EvalProgram& sweep_full = session->sweep_full_program();
      const prov::EvalProgram& compressed = session->compressed_program();
      const std::size_t weight = sweep_full.NumTerms() +
                                 sweep_full.factors().size() +
                                 compressed.NumTerms() +
                                 compressed.factors().size();
      plan->resolved_.layout =
          ChooseAutoLayout(weight, plan->window_) == prov::EvalLayout::kSoA
              ? BatchOptions::Layout::kSoA
              : BatchOptions::Layout::kAoS;
    }
  } else {
    plan->resolved_.layout = BatchOptions::Layout::kAoS;
  }
  if (plan->resolved_.num_threads == 0) {
    plan->resolved_.num_threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::shared_ptr<const StreamPlan>(std::move(plan));
}

util::Result<std::shared_ptr<const PlanCore>> StreamPlan::LowerChunk(
    const ScenarioSet& chunk) const {
  std::shared_ptr<const CompiledSession> session = session_.lock();
  if (session == nullptr) {
    return util::Status::FailedPrecondition(
        "AssignStream: the plan's origin session has been destroyed");
  }
  // The pinned options make this exactly the per-chunk slice of batch
  // planning: scenario lowering, block-override skeletons and tile
  // schedules for this window only.
  return PlanCore::Create(std::move(session), chunk, resolved_);
}

util::Result<std::shared_ptr<const BatchPlan>> BatchPlan::Create(
    std::shared_ptr<const CompiledSession> session,
    const ScenarioSet& scenarios, const prov::Valuation& base_meta_valuation,
    const BatchOptions& options,
    const PlanFingerprint* precomputed_fingerprint) {
  util::Result<std::shared_ptr<const PlanCore>> core = PlanCore::Create(
      std::move(session), scenarios, options, precomputed_fingerprint);
  if (!core.ok()) return core.status();
  return FromParts(*core, (*core)->MakeOverlay(base_meta_valuation));
}

std::shared_ptr<const BatchPlan> BatchPlan::FromParts(
    std::shared_ptr<const PlanCore> core,
    std::shared_ptr<const PlanBaseOverlay> overlay) {
  COBRA_CHECK_MSG(core != nullptr && overlay != nullptr,
                  "BatchPlan::FromParts: null core or overlay");
  return std::shared_ptr<const BatchPlan>(
      new BatchPlan(std::move(core), std::move(overlay)));
}

}  // namespace cobra::core
