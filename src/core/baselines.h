#ifndef COBRA_CORE_BASELINES_H_
#define COBRA_CORE_BASELINES_H_

#include "core/dp_optimal.h"
#include "core/profile.h"
#include "core/tree.h"
#include "util/status.h"

namespace cobra::core {

/// Greedy bottom-up merging baseline.
///
/// Starts from the leaf cut (the uncompressed provenance) and repeatedly
/// performs the best *collapse move*: replace the children of some node u
/// (all currently in the cut) by u itself. A move saves
/// `Σ weight(children) − weight(u)` monomials and costs `#children − 1`
/// variables; the move with the best saving per lost variable is applied
/// until the bound is met. Greedy is near-optimal when savings are uniform
/// across the tree but can lose variables on skewed weight distributions —
/// the A1 ablation bench quantifies the gap against the optimal DP.
util::Result<CutSolution> GreedyBottomUpCut(const AbstractionTree& tree,
                                            const TreeProfile& profile,
                                            std::size_t bound);

/// Level-cut baseline: the finest depth-d cut meeting the bound (tries
/// d = max depth, max depth − 1, ..., 0). Ignores weights entirely.
util::Result<CutSolution> LevelCut(const AbstractionTree& tree,
                                   const TreeProfile& profile,
                                   std::size_t bound);

/// Exhaustive oracle: enumerates every cut and returns the maximum-|C|
/// (ties: minimum size) cut within the bound. Exponential; fails with
/// OutOfRange beyond `enumeration_limit` cuts. Used to verify the DP.
util::Result<CutSolution> BruteForceCut(const AbstractionTree& tree,
                                        const TreeProfile& profile,
                                        std::size_t bound,
                                        std::uint64_t enumeration_limit = 1u
                                                                          << 20);

}  // namespace cobra::core

#endif  // COBRA_CORE_BASELINES_H_
