#ifndef COBRA_CORE_SCENARIO_H_
#define COBRA_CORE_SCENARIO_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cobra::core {

/// One named hypothetical scenario: a set of variable deltas applied on top
/// of the session's current (default) meta valuation. Variables are named —
/// typically meta-variable names such as "Business" or "1994q2"; a pooled
/// variable outside the abstraction also works, but a delta on a leaf that
/// was abstracted *under* a meta-variable is overridden by that
/// meta-variable's value during expansion and has no effect — target the
/// meta-variable instead. Values are the multiplicative change factors of
/// the paper (1.0 = no change, 0.8 = "decrease by 20%").
struct Scenario {
  /// One `variable := value` override.
  struct Delta {
    std::string var;
    double value = 1.0;
  };

  std::string name;            ///< Display name ("Q2 slump", "ASIA +10%"...).
  std::vector<Delta> deltas;   ///< Applied in order over the defaults.

  /// Appends one override; chainable:
  ///   set.Add("slump").Set("Business", 0.9).Set("Special", 0.8);
  Scenario& Set(std::string var, double value) {
    deltas.push_back({std::move(var), value});
    return *this;
  }
};

/// An ordered batch of named scenarios for `Session::AssignBatch` /
/// `CompiledSession::AssignBatch`. Each scenario is independent: deltas
/// never leak from one scenario to the next (unlike repeated
/// `Session::SetMetaValue` calls, which mutate the one shared meta
/// valuation). Scenario names must be unique within a set — the batch
/// engine rejects duplicates.
class ScenarioSet {
 public:
  ScenarioSet() = default;

  /// Index-stable reference to one scenario inside a set, for delta
  /// chaining. Unlike a `Scenario&` (which the vector's growth on a later
  /// Add() would dangle), a handle stays valid across Add() calls:
  ///
  ///   auto boom = set.Add("boom");
  ///   set.Add("slump").Set("Business", 0.8);
  ///   boom.Set("Business", 1.25);   // safe: resolved through the set
  ///
  /// A handle refers to the set *object* it came from: copying or moving
  /// the ScenarioSet does not retarget outstanding handles, so finish
  /// chaining before returning a set by value.
  class Handle {
   public:
    /// Appends one override to the referenced scenario; chainable.
    Handle& Set(std::string var, double value) {
      set_->scenarios_[index_].Set(std::move(var), value);
      return *this;
    }

    /// The referenced scenario (invalidated like any reference — prefer
    /// keeping the handle).
    const Scenario& scenario() const { return set_->scenarios_[index_]; }

    /// Position of the referenced scenario in the set.
    std::size_t index() const { return index_; }

   private:
    friend class ScenarioSet;
    Handle(ScenarioSet* set, std::size_t index) : set_(set), index_(index) {}

    ScenarioSet* set_;
    std::size_t index_;
  };

  /// Appends an empty scenario and returns an index-stable handle for delta
  /// chaining. The handle remains valid across later Add() calls.
  Handle Add(std::string name) {
    scenarios_.push_back(Scenario{std::move(name), {}});
    return Handle(this, scenarios_.size() - 1);
  }

  /// Appends a fully-built scenario.
  void Add(Scenario scenario) { scenarios_.push_back(std::move(scenario)); }

  std::size_t size() const { return scenarios_.size(); }
  bool empty() const { return scenarios_.empty(); }

  const Scenario& scenario(std::size_t index) const {
    return scenarios_[index];
  }
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  /// The scenario names, in order.
  std::vector<std::string> Names() const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Execution knobs for the batched scenario sweep.
struct BatchOptions {
  /// Sweep implementation.
  enum class Sweep {
    /// Adaptive policy (default): the batch planner picks the engine and
    /// lane count from the compiled program sizes, the scenario count, and
    /// the override width — the blocked kernel whenever the program scan
    /// dominates, falling back to `kSparseDelta` for tiny programs where the
    /// per-batch fixed costs (block tables, tile dispatch) would dominate.
    /// The choice is deterministic and independent of the thread count, and
    /// every engine is bit-identical, so `kAuto` never changes results —
    /// pin one of the explicit engines below to A/B against it.
    kAuto,
    /// Scenario-blocked kernel: scenarios are grouped into blocks of
    /// `block_lanes` lanes and each (block × poly-range) tile evaluates all
    /// lanes in ONE scan of the compiled program — the base value is
    /// broadcast per factor, a per-block override-union table patches
    /// individual lanes, and the lane accumulators advance in lockstep, so
    /// per-scenario results stay bit-identical to the scalar paths while the
    /// factor/coeff arrays are read once per block instead of once per
    /// scenario.
    kBlocked,
    /// Scalar sparse engine: each scenario is a small sorted (VarId, value)
    /// override list resolved during its own scan — no per-scenario
    /// valuation copies, but one full program read per scenario. Kept as the
    /// A/B reference for the blocked kernel (bench_a6/bench_a7).
    kSparseDelta,
    /// Legacy engine: one full-pool `Valuation` copy per scenario per side,
    /// then dense scans. Kept for A/B benchmarking (bench_a6/bench_a7) —
    /// results are bit-identical to the other engines.
    kDenseCopy,
  };

  /// Worker threads for the scenario sweep; 0 means
  /// `std::thread::hardware_concurrency()`. Clamped to the number of
  /// sweep tasks (scenario blocks × program partitions).
  std::size_t num_threads = 0;

  Sweep sweep = Sweep::kAuto;

  /// Scenario lanes per block for `Sweep::kBlocked`: 4 or 8 (the kernel's
  /// compile-time lane widths). A trailing ragged block (num_scenarios %
  /// block_lanes != 0) runs with its real lane count padded up to the
  /// nearest width; padding lanes are discarded, so ragged tails are still
  /// bit-identical.
  std::size_t block_lanes = 8;

  /// Intra-program partitioning (blocked + sparse sweeps): when there are
  /// fewer scenario blocks than worker threads, each program is split into
  /// contiguous polynomial ranges of at least this many terms so the spare
  /// threads share one block's scan; per-scenario results stay bit-identical
  /// because every polynomial is evaluated whole by exactly one thread.
  /// 0 disables partitioning.
  std::size_t partition_min_terms = 1024;

  /// Term-range splitting fallback: when partitioning is active but one
  /// polynomial dominates the program (more than half its evaluation weight,
  /// e.g. an ungrouped aggregate) and has at least this many terms, that
  /// polynomial's term range is split across threads and its value is
  /// recovered by a fixed-order reduction of the slices' partial sums. The
  /// reduction order is deterministic (independent of the thread schedule),
  /// but regrouping the additions may differ from the unsplit scan in the
  /// last ulp — hence the dedicated knob: 0 disables splitting and keeps
  /// strict bit-identity with the sequential path even for dominant-poly
  /// shapes.
  std::size_t split_min_terms = 4096;

  /// Runs the static plan verifier (verify/verify.h) on every freshly
  /// compiled plan before it enters the plan cache, failing the call with
  /// `Internal` if the plan is inconsistent with its session or scenario
  /// set. Always on in debug builds; this knob opts release builds in.
  /// Deliberately NOT part of the plan-cache key: the verifier does not
  /// change what is planned, so two option sets differing only here share
  /// a cache entry (and a cache hit skips verification — the plan was
  /// verified when it was inserted).
  bool verify_plans = false;
};

/// Human-readable engine name ("kAuto", "kBlocked", ...); "?" for values
/// outside the enum.
const char* SweepName(BatchOptions::Sweep sweep);

}  // namespace cobra::core

#endif  // COBRA_CORE_SCENARIO_H_
