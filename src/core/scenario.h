#ifndef COBRA_CORE_SCENARIO_H_
#define COBRA_CORE_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace cobra::core {

/// One named hypothetical scenario: a set of variable deltas applied on top
/// of the session's current (default) meta valuation. Variables are named —
/// typically meta-variable names such as "Business" or "1994q2"; a pooled
/// variable outside the abstraction also works, but a delta on a leaf that
/// was abstracted *under* a meta-variable is overridden by that
/// meta-variable's value during expansion and has no effect — target the
/// meta-variable instead. Values are the multiplicative change factors of
/// the paper (1.0 = no change, 0.8 = "decrease by 20%").
struct Scenario {
  /// One `variable := value` override.
  struct Delta {
    std::string var;
    double value = 1.0;
  };

  std::string name;            ///< Display name ("Q2 slump", "ASIA +10%"...).
  std::vector<Delta> deltas;   ///< Applied in order over the defaults.

  /// Appends one override; chainable:
  ///   set.Add("slump").ValueOrDie().Set("Business", 0.9).Set("Special", 0.8);
  Scenario& Set(std::string var, double value) {
    deltas.push_back({std::move(var), value});
    return *this;
  }
};

/// An ordered batch of named scenarios for `Session::AssignBatch` /
/// `CompiledSession::AssignBatch`. Each scenario is independent: deltas
/// never leak from one scenario to the next (unlike repeated
/// `Session::SetMetaValue` calls, which mutate the one shared meta
/// valuation). Scenario names must be unique within a set — `Add` rejects a
/// duplicate name with `InvalidArgument` (and the batch planner re-checks at
/// admission as defense in depth).
class ScenarioSet {
 public:
  ScenarioSet() = default;

  /// Index-stable reference to one scenario inside a set, for delta
  /// chaining. Unlike a `Scenario&` (which the vector's growth on a later
  /// Add() would dangle), a handle stays valid across Add() calls:
  ///
  ///   auto boom = set.Add("boom").ValueOrDie();
  ///   set.Add("slump").ValueOrDie().Set("Business", 0.8);
  ///   boom.Set("Business", 1.25);   // safe: resolved through the set
  ///
  /// A handle refers to the set *object* it came from: copying or moving
  /// the ScenarioSet does not retarget outstanding handles, so finish
  /// chaining before returning a set by value.
  class Handle {
   public:
    /// Appends one override to the referenced scenario; chainable.
    Handle& Set(std::string var, double value) {
      set_->scenarios_[index_].Set(std::move(var), value);
      return *this;
    }

    /// The referenced scenario (invalidated like any reference — prefer
    /// keeping the handle).
    const Scenario& scenario() const { return set_->scenarios_[index_]; }

    /// Position of the referenced scenario in the set.
    std::size_t index() const { return index_; }

   private:
    friend class ScenarioSet;
    Handle(ScenarioSet* set, std::size_t index) : set_(set), index_(index) {}

    ScenarioSet* set_;
    std::size_t index_;
  };

  /// Appends an empty scenario and returns an index-stable handle for delta
  /// chaining. The handle remains valid across later Add() calls. Fails with
  /// `InvalidArgument` (and leaves the set unchanged) when the name is
  /// already taken.
  util::Result<Handle> Add(std::string name);

  /// Appends a fully-built scenario and returns an index-stable handle, like
  /// the name overload. Fails with `InvalidArgument` (set unchanged) when
  /// the scenario's name is already taken.
  util::Result<Handle> Add(Scenario scenario);

  /// Pre-allocates capacity for `n` scenarios (names and storage); purely an
  /// allocation hint, like `std::vector::reserve`.
  void Reserve(std::size_t n);

  /// Removes every scenario. Outstanding handles are invalidated. Capacity
  /// is retained, so a Clear()+Reserve()+Add() loop reuses the buffers —
  /// the streaming sweep's per-block pattern.
  void Clear();

  std::size_t size() const { return scenarios_.size(); }
  bool empty() const { return scenarios_.empty(); }

  const Scenario& scenario(std::size_t index) const {
    return scenarios_[index];
  }
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  /// The scenario names, in order.
  std::vector<std::string> Names() const;

 private:
  std::vector<Scenario> scenarios_;
  std::unordered_set<std::string> names_;  ///< Uniqueness index over `scenarios_`.
};

/// 128-bit content fingerprint of a scenario *generator spec* (not of the
/// scenarios it produces): two sources with equal fingerprints generate
/// identical scenario streams, so a fingerprint keys plans and caches for a
/// generated space without materializing it. Deterministic across processes
/// and platforms (fed from explicit integer/bit-pattern encodings, never
/// from pointers or iteration order of unordered containers).
struct SourceFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const SourceFingerprint& a,
                         const SourceFingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const SourceFingerprint& a,
                         const SourceFingerprint& b) {
    return !(a == b);
  }

  /// 32 lowercase hex chars.
  std::string ToHex() const;
};

/// A pull-based producer of scenarios: defines a finite, ordered scenario
/// space of `size()` entries and generates any contiguous window of it on
/// demand. This is the streaming counterpart of `ScenarioSet` — a
/// 10^6-scenario grid is a ~100-byte spec here, and
/// `CompiledSession::AssignStream` evaluates it one
/// `BatchOptions::stream_block_scenarios`-sized block at a time, so sweep
/// memory is bounded by the window, never by `size()`.
///
/// Contract for implementations:
///  - `Generate(begin, count, out)` APPENDS scenarios `[begin, begin+count)`
///    to `out`, in order.
///  - Generation is deterministic and chunking-invariant:
///    `Generate(0, n)` produces exactly the concatenation of
///    `Generate(0, k)` and `Generate(k, n - k)` for any split `k` — the
///    property the streaming sweep's bit-identity guarantee rests on.
///  - Scenario names are unique across the whole space (generators suffix
///    the ordinal index to guarantee this).
///  - `fingerprint()` is a pure function of the spec: equal fingerprints
///    imply equal streams.
class ScenarioSource {
 public:
  virtual ~ScenarioSource() = default;

  /// Total number of scenarios in the space. Always finite and > 0 for
  /// sources built by the factory functions below.
  virtual std::uint64_t size() const = 0;

  /// Upper bound on the delta count of any generated scenario — the engine
  /// policy input that replaces `max_override_width` for materialized sets.
  virtual std::size_t max_deltas() const = 0;

  /// Deterministic 128-bit spec fingerprint (see SourceFingerprint).
  virtual SourceFingerprint fingerprint() const = 0;

  /// Appends scenarios `[begin, begin + count)` to `out`. Fails with
  /// `InvalidArgument` when the window exceeds `size()`.
  virtual util::Status Generate(std::uint64_t begin, std::uint64_t count,
                                ScenarioSet* out) const = 0;

  /// Materializes the whole space into one flat set — the bridge back to
  /// `AssignBatch`. Memory is proportional to `size()`; prefer
  /// `AssignStream` for large spaces.
  util::Result<ScenarioSet> Materialize() const;
};

/// Wraps an already-materialized `ScenarioSet` as a source, so the streaming
/// path and the batch path share one entry point. `AssignStream` over an
/// ExplicitSource is bit-identical to `AssignBatch` over the wrapped set.
class ExplicitSource : public ScenarioSource {
 public:
  /// Fails with `InvalidArgument` on an empty set.
  static util::Result<std::shared_ptr<const ExplicitSource>> Create(
      ScenarioSet scenarios);

  std::uint64_t size() const override;
  std::size_t max_deltas() const override;
  SourceFingerprint fingerprint() const override;
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override;

  const ScenarioSet& scenarios() const { return scenarios_; }

 private:
  explicit ExplicitSource(ScenarioSet scenarios);

  ScenarioSet scenarios_;
  std::size_t max_deltas_ = 0;
  SourceFingerprint fingerprint_;
};

/// One axis of a cartesian grid: a variable swept over an explicit value
/// list.
struct ValueAxis {
  std::string var;
  std::vector<double> values;
};

/// `steps` evenly spaced values over `[lo, hi]` inclusive (both endpoints
/// exact; `steps == 1` yields just `lo`) — the `--sweep-grid var=lo:hi:steps`
/// building block.
ValueAxis LinSpace(std::string var, double lo, double hi, std::size_t steps);

/// The cartesian product of per-variable value axes: scenario `i` decomposes
/// mixed-radix over the axis sizes with the LAST axis varying fastest (row
/// major), and sets one delta per axis. Names are `<prefix>-<i>`.
class CartesianSource : public ScenarioSource {
 public:
  /// Validates the spec: at least one axis, non-empty variable names and
  /// value lists, all values finite, no repeated variable across axes, and a
  /// product that fits in 62 bits. Fails with `InvalidArgument` otherwise.
  static util::Result<std::shared_ptr<const CartesianSource>> Create(
      std::vector<ValueAxis> axes, std::string name_prefix = "grid");

  std::uint64_t size() const override { return size_; }
  std::size_t max_deltas() const override { return axes_.size(); }
  SourceFingerprint fingerprint() const override;
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override;

  const std::vector<ValueAxis>& axes() const { return axes_; }

 private:
  CartesianSource(std::vector<ValueAxis> axes, std::string name_prefix,
                  std::uint64_t size);

  std::vector<ValueAxis> axes_;
  std::string name_prefix_;
  std::uint64_t size_ = 0;
};

/// One axis of a Monte-Carlo draw: a variable sampled uniformly from
/// `[lo, hi]`.
struct RangeAxis {
  std::string var;
  double lo = 0.0;
  double hi = 1.0;
};

/// Seeded Monte-Carlo what-if: `count` scenarios, each drawing one uniform
/// value per axis. Scenario `i` is generated from its own decorrelated
/// stream `Rng(seed).Fork(i)`, so the draw for a given index is a pure
/// function of (seed, i) — identical across chunkings, thread counts, and
/// processes. Names are `<prefix>-<i>`.
class SampledSource : public ScenarioSource {
 public:
  /// Validates the spec: `count > 0`, at least one axis, non-empty variable
  /// names, finite `lo <= hi`, no repeated variable across axes. Fails with
  /// `InvalidArgument` otherwise.
  static util::Result<std::shared_ptr<const SampledSource>> Create(
      std::vector<RangeAxis> axes, std::uint64_t count, std::uint64_t seed,
      std::string name_prefix = "mc");

  std::uint64_t size() const override { return count_; }
  std::size_t max_deltas() const override { return axes_.size(); }
  SourceFingerprint fingerprint() const override;
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override;

  std::uint64_t seed() const { return seed_; }

 private:
  SampledSource(std::vector<RangeAxis> axes, std::uint64_t count,
                std::uint64_t seed, std::string name_prefix);

  std::vector<RangeAxis> axes_;
  std::uint64_t count_ = 0;
  std::uint64_t seed_ = 0;
  std::string name_prefix_;
};

/// Concatenation: the scenario spaces of `parts`, back to back, in order.
/// Part names must already be globally unique (the built-in generators'
/// index-suffixed names are — wrap distinct prefixes when concatenating two
/// generators of the same kind).
class ConcatSource : public ScenarioSource {
 public:
  /// Fails with `InvalidArgument` on an empty part list, a null part, or a
  /// total size overflowing 62 bits.
  static util::Result<std::shared_ptr<const ConcatSource>> Create(
      std::vector<std::shared_ptr<const ScenarioSource>> parts);

  std::uint64_t size() const override { return size_; }
  std::size_t max_deltas() const override { return max_deltas_; }
  SourceFingerprint fingerprint() const override;
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override;

 private:
  ConcatSource(std::vector<std::shared_ptr<const ScenarioSource>> parts,
               std::uint64_t size, std::size_t max_deltas);

  std::vector<std::shared_ptr<const ScenarioSource>> parts_;
  std::uint64_t size_ = 0;
  std::size_t max_deltas_ = 0;
};

/// Delta composition: every pairing of an `outer` and an `inner` scenario,
/// outer-major (`i = outer_index * inner->size() + inner_index`). The
/// composed scenario applies the outer deltas then the inner deltas —
/// last-value-wins, matching the batch engine's per-scenario dedupe — and is
/// named `<outer name><sep><inner name>`.
class ComposeSource : public ScenarioSource {
 public:
  /// Fails with `InvalidArgument` on null children or a product overflowing
  /// 62 bits.
  static util::Result<std::shared_ptr<const ComposeSource>> Create(
      std::shared_ptr<const ScenarioSource> outer,
      std::shared_ptr<const ScenarioSource> inner, std::string name_sep = "+");

  std::uint64_t size() const override { return size_; }
  std::size_t max_deltas() const override { return max_deltas_; }
  SourceFingerprint fingerprint() const override;
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override;

 private:
  ComposeSource(std::shared_ptr<const ScenarioSource> outer,
                std::shared_ptr<const ScenarioSource> inner,
                std::string name_sep, std::uint64_t size,
                std::size_t max_deltas);

  std::shared_ptr<const ScenarioSource> outer_;
  std::shared_ptr<const ScenarioSource> inner_;
  std::string name_sep_;
  std::uint64_t size_ = 0;
  std::size_t max_deltas_ = 0;
};

/// Sugar for the combinators, mirroring the algebra in the paper's
/// hypothetical-reasoning framing: `Concat` unions scenario spaces,
/// `Compose` crosses their deltas.
util::Result<std::shared_ptr<const ScenarioSource>> Concat(
    std::vector<std::shared_ptr<const ScenarioSource>> parts);
util::Result<std::shared_ptr<const ScenarioSource>> Compose(
    std::shared_ptr<const ScenarioSource> outer,
    std::shared_ptr<const ScenarioSource> inner, std::string name_sep = "+");

/// Execution knobs for the batched scenario sweep.
struct BatchOptions {
  /// Sweep implementation.
  enum class Sweep {
    /// Adaptive policy (default): the batch planner picks the engine and
    /// lane count from the compiled program sizes, the scenario count, and
    /// the override width — the blocked kernel whenever the program scan
    /// dominates, falling back to `kSparseDelta` for tiny programs where the
    /// per-batch fixed costs (block tables, tile dispatch) would dominate.
    /// The choice is deterministic and independent of the thread count, and
    /// every engine is bit-identical, so `kAuto` never changes results —
    /// pin one of the explicit engines below to A/B against it.
    kAuto,
    /// Scenario-blocked kernel: scenarios are grouped into blocks of
    /// `block_lanes` lanes and each (block × poly-range) tile evaluates all
    /// lanes in ONE scan of the compiled program — the base value is
    /// broadcast per factor, a per-block override-union table patches
    /// individual lanes, and the lane accumulators advance in lockstep, so
    /// per-scenario results stay bit-identical to the scalar paths while the
    /// factor/coeff arrays are read once per block instead of once per
    /// scenario.
    kBlocked,
    /// Scalar sparse engine: each scenario is a small sorted (VarId, value)
    /// override list resolved during its own scan — no per-scenario
    /// valuation copies, but one full program read per scenario. Kept as the
    /// A/B reference for the blocked kernel (bench_a6/bench_a7).
    kSparseDelta,
    /// Legacy engine: one full-pool `Valuation` copy per scenario per side,
    /// then dense scans. Kept for A/B benchmarking (bench_a6/bench_a7) —
    /// results are bit-identical to the other engines. Not streamable:
    /// `AssignStream` rejects it.
    kDenseCopy,
  };

  /// Worker threads for the scenario sweep; 0 means
  /// `std::thread::hardware_concurrency()`. Clamped to the number of
  /// sweep tasks (scenario blocks × program partitions).
  std::size_t num_threads = 0;

  Sweep sweep = Sweep::kAuto;

  /// Scenario lanes per block for `Sweep::kBlocked`: 4, 8 or 16 (the
  /// kernel's compile-time lane widths). A trailing ragged block
  /// (num_scenarios % block_lanes != 0) runs with its real lane count padded
  /// up to the nearest width; padding lanes are discarded, so ragged tails
  /// are still bit-identical. The 16-lane width is compiled portably
  /// everywhere; it only vectorizes to AVX-512 when the library is built
  /// with `COBRA_ENABLE_NATIVE_ARCH` on a machine that has it.
  std::size_t block_lanes = 8;

  /// Memory layout the blocked kernel executes the compiled programs in.
  enum class Layout {
    /// Plan-time policy (default): the planner picks `kSoA` when program
    /// weight × scenario count clears the re-layout-amortization threshold
    /// (see `ChooseAutoLayout()` in core/batch_plan.h), `kAoS` otherwise.
    /// Deterministic, and both layouts are bit-identical, so `kAuto` never
    /// changes results.
    kAuto,
    /// The compile-time layout of `EvalProgram` itself — no image is built.
    kAoS,
    /// Force the cache-line-aligned `prov::EvalImage` re-layout (built once
    /// per plan, cached on the `PlanCore`, reused by grid/stream replays).
    kSoA,
  };

  /// Layout policy for `Sweep::kBlocked` (and the blocked resolution of
  /// `Sweep::kAuto`). The scalar engines have no image kernels, so they
  /// always execute `kAoS`; requesting `kSoA` with a scalar engine is
  /// accepted and resolves to `kAoS` (the knob is a performance hint and
  /// can never change results).
  Layout layout = Layout::kAuto;

  /// Software-prefetch distance for the SoA image kernels, in 64-byte cache
  /// lines ahead of the factor/coeff stream cursors. 0 disables prefetching;
  /// accepted range is 0 to 64. Ignored by the AoS and scalar paths. A pure
  /// scheduling hint — never affects results.
  std::size_t prefetch_distance = 8;

  /// Intra-program partitioning (blocked + sparse sweeps): when there are
  /// fewer scenario blocks than worker threads, each program is split into
  /// contiguous polynomial ranges of at least this many terms so the spare
  /// threads share one block's scan; per-scenario results stay bit-identical
  /// because every polynomial is evaluated whole by exactly one thread.
  /// 0 disables partitioning.
  std::size_t partition_min_terms = 1024;

  /// Term-range splitting fallback: when partitioning is active but one
  /// polynomial dominates the program (more than half its evaluation weight,
  /// e.g. an ungrouped aggregate) and has at least this many terms, that
  /// polynomial's term range is split across threads and its value is
  /// recovered by a fixed-order reduction of the slices' partial sums. The
  /// reduction order is deterministic (independent of the thread schedule),
  /// but regrouping the additions may differ from the unsplit scan in the
  /// last ulp — hence the dedicated knob: 0 disables splitting and keeps
  /// strict bit-identity with the sequential path even for dominant-poly
  /// shapes.
  std::size_t split_min_terms = 4096;

  /// Streaming window for `CompiledSession::AssignStream`: how many
  /// scenarios are generated, lowered, and swept per streamed block. Peak
  /// sweep memory scales with this window (times the per-scenario row
  /// width), never with the source size. Must be > 0.
  std::size_t stream_block_scenarios = 4096;

  /// Runs the static plan verifier (verify/verify.h) on every freshly
  /// compiled plan before it enters the plan cache, failing the call with
  /// `Internal` if the plan is inconsistent with its session or scenario
  /// set. Always on in debug builds; this knob opts release builds in.
  /// Deliberately NOT part of the plan-cache key: the verifier does not
  /// change what is planned, so two option sets differing only here share
  /// a cache entry (and a cache hit skips verification — the plan was
  /// verified when it was inserted).
  bool verify_plans = false;
};

/// Human-readable engine name ("kAuto", "kBlocked", ...); "?" for values
/// outside the enum.
const char* SweepName(BatchOptions::Sweep sweep);

/// Human-readable layout-policy name ("kAuto", "kAoS", "kSoA"); "?" for
/// values outside the enum.
const char* LayoutName(BatchOptions::Layout layout);

}  // namespace cobra::core

#endif  // COBRA_CORE_SCENARIO_H_
