#ifndef COBRA_CORE_SCENARIO_H_
#define COBRA_CORE_SCENARIO_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cobra::core {

/// One named hypothetical scenario: a set of variable deltas applied on top
/// of the session's current (default) meta valuation. Variables are named —
/// typically meta-variable names such as "Business" or "1994q2"; a pooled
/// variable outside the abstraction also works, but a delta on a leaf that
/// was abstracted *under* a meta-variable is overridden by that
/// meta-variable's value during expansion and has no effect — target the
/// meta-variable instead. Values are the multiplicative change factors of
/// the paper (1.0 = no change, 0.8 = "decrease by 20%").
struct Scenario {
  /// One `variable := value` override.
  struct Delta {
    std::string var;
    double value = 1.0;
  };

  std::string name;            ///< Display name ("Q2 slump", "ASIA +10%"...).
  std::vector<Delta> deltas;   ///< Applied in order over the defaults.

  /// Appends one override; chainable:
  ///   set.Add("slump").Set("Business", 0.9).Set("Special", 0.8);
  Scenario& Set(std::string var, double value) {
    deltas.push_back({std::move(var), value});
    return *this;
  }
};

/// An ordered batch of named scenarios for `Session::AssignBatch`. Each
/// scenario is independent: deltas never leak from one scenario to the next
/// (unlike repeated `Session::SetMetaValue` calls, which mutate the one
/// shared meta valuation).
class ScenarioSet {
 public:
  ScenarioSet() = default;

  /// Appends an empty scenario and returns it for delta chaining. The
  /// reference is invalidated by the next Add().
  Scenario& Add(std::string name) {
    scenarios_.push_back(Scenario{std::move(name), {}});
    return scenarios_.back();
  }

  /// Appends a fully-built scenario.
  void Add(Scenario scenario) { scenarios_.push_back(std::move(scenario)); }

  std::size_t size() const { return scenarios_.size(); }
  bool empty() const { return scenarios_.empty(); }

  const Scenario& scenario(std::size_t index) const {
    return scenarios_[index];
  }
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  /// The scenario names, in order.
  std::vector<std::string> Names() const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Execution knobs for `Session::AssignBatch`.
struct BatchOptions {
  /// Worker threads for the scenario sweep; 0 means
  /// `std::thread::hardware_concurrency()`. Always clamped to the number
  /// of scenarios.
  std::size_t num_threads = 0;
};

}  // namespace cobra::core

#endif  // COBRA_CORE_SCENARIO_H_
