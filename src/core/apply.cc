#include "core/apply.h"

#include <numeric>

namespace cobra::core {

prov::Valuation Abstraction::DefaultMetaValuation(
    const prov::Valuation& full) const {
  std::size_t size = full.size();
  for (const MetaVar& mv : meta_vars) {
    size = std::max<std::size_t>(size, mv.var + 1);
  }
  prov::Valuation out(size);
  for (prov::VarId v = 0; v < full.size(); ++v) out.Set(v, full.Get(v));
  for (const MetaVar& mv : meta_vars) {
    COBRA_CHECK_MSG(!mv.leaves.empty(), "meta-variable with no leaves");
    double sum = 0.0;
    for (prov::VarId leaf : mv.leaves) {
      sum += leaf < full.size() ? full.Get(leaf) : 1.0;
    }
    out.Set(mv.var, sum / static_cast<double>(mv.leaves.size()));
  }
  return out;
}

util::Result<Abstraction> ApplyCut(const prov::PolySet& polys,
                                   const AbstractionTree& tree, const Cut& cut,
                                   prov::VarPool* pool) {
  COBRA_RETURN_IF_ERROR(cut.Validate(tree));

  Abstraction out;
  out.cut = cut;

  // Identity mapping over the current pool; meta-variables may extend it.
  out.mapping.resize(pool->size());
  std::iota(out.mapping.begin(), out.mapping.end(), 0);

  for (NodeId v : cut.nodes()) {
    const AbstractionTree::Node& node = tree.node(v);
    MetaVar mv;
    mv.node = v;
    mv.name = node.name;
    if (node.IsLeaf()) {
      mv.var = node.var;
      mv.leaves = {node.var};
    } else {
      mv.var = pool->Intern(node.name);
      for (NodeId leaf : tree.LeavesUnder(v)) {
        mv.leaves.push_back(tree.node(leaf).var);
      }
    }
    if (mv.var >= out.mapping.size()) {
      std::size_t old = out.mapping.size();
      out.mapping.resize(mv.var + 1);
      std::iota(out.mapping.begin() + static_cast<std::ptrdiff_t>(old),
                out.mapping.end(), static_cast<prov::VarId>(old));
    }
    for (prov::VarId leaf : mv.leaves) {
      COBRA_CHECK_MSG(leaf < out.mapping.size(),
                      "tree leaf variable outside pool");
      out.mapping[leaf] = mv.var;
    }
    out.meta_vars.push_back(std::move(mv));
  }

  out.compressed = polys.SubstituteVars(out.mapping);
  out.compressed_size = out.compressed.TotalMonomials();
  out.compressed_variables = out.compressed.NumDistinctVariables();
  return out;
}

}  // namespace cobra::core
