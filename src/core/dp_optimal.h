#ifndef COBRA_CORE_DP_OPTIMAL_H_
#define COBRA_CORE_DP_OPTIMAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cut.h"
#include "core/profile.h"
#include "core/tree.h"
#include "util/status.h"

namespace cobra::core {

/// Outcome of a cut-selection algorithm.
struct CutSolution {
  Cut cut;
  std::size_t compressed_size = 0;  ///< base + Σ weight over the cut.
  std::size_t num_cut_nodes = 0;    ///< |cut| (tree part of expressiveness).
  bool feasible = false;            ///< compressed_size <= bound.
};

/// Optional trace of the dynamic program — the demo's "under the hood" view
/// (Section 4): per-node weights and Pareto frontiers, plus the chosen
/// decomposition at the optimum.
struct DpExplain {
  struct NodeTrace {
    NodeId node;
    std::string name;
    std::size_t weight;  ///< |S(v)|
    /// frontier[k-1] = minimal Σweight of any k-node cut of the subtree.
    std::vector<std::size_t> frontier;
    bool chosen_in_cut = false;
  };
  std::vector<NodeTrace> nodes;  ///< In post-order.
  std::size_t base_monomials = 0;
  std::size_t bound = 0;

  /// Renders the trace as an indented report.
  std::string ToString(const AbstractionTree& tree) const;
};

/// Computes the optimal abstraction for a single tree:
/// among cuts C with `base + Σ_{v∈C} weight[v] <= bound`, maximizes |C|
/// (the remaining degrees of freedom), breaking ties by minimal size.
///
/// Method: bottom-up Pareto dynamic programming. For each node v the list
/// `L_v[k]` holds the minimal cut weight of the subtree under v using
/// exactly k cut nodes; leaves have `L = [w(v)]`, inner nodes combine
/// children by (min,+) convolution and add the singleton option `{v}`.
/// Refinement monotonicity (w(v) <= Σ w(children), since S(v) is the union
/// of the children's sets) makes every frontier nondecreasing in k, so the
/// answer is the largest k with `L_root[k] <= bound - base`. List lengths
/// are bounded by subtree leaf counts, giving the polynomial running time
/// claimed in the paper (O(n·L) convolution work overall for L leaves).
///
/// When even the root cut exceeds the bound the returned solution carries
/// the root cut with `feasible = false` (the caller decides whether that is
/// an error; the session reports it to the user as the paper's UI does).
///
/// `explain`, when non-null, receives the full DP trace.
util::Result<CutSolution> OptimalSingleTreeCut(const AbstractionTree& tree,
                                               const TreeProfile& profile,
                                               std::size_t bound,
                                               DpExplain* explain = nullptr);

}  // namespace cobra::core

#endif  // COBRA_CORE_DP_OPTIMAL_H_
