#ifndef COBRA_CORE_COMPRESSOR_H_
#define COBRA_CORE_COMPRESSOR_H_

#include <string>
#include <vector>

#include "core/apply.h"
#include "core/baselines.h"
#include "core/dp_optimal.h"
#include "core/profile.h"
#include "core/tree.h"
#include "prov/poly_set.h"
#include "util/status.h"

namespace cobra::core {

/// Cut-selection algorithm choices.
enum class Algorithm {
  kOptimalDp,        ///< Bottom-up Pareto DP — the paper's algorithm (default).
  kGreedy,           ///< Greedy bottom-up merging baseline.
  kLevelCut,         ///< Depth-based cut baseline.
  kBruteForce,       ///< Exhaustive oracle (small trees only).
  kMultiTreeGreedy,  ///< Greedy for several trees (the NP-hard setting);
                     ///< selected automatically by Session when more than
                     ///< one tree is installed.
};

/// Returns "optimal-dp", "greedy", ...
const char* AlgorithmToString(Algorithm a);

/// Inputs of one compression run.
struct CompressionRequest {
  std::size_t bound = 0;
  Algorithm algorithm = Algorithm::kOptimalDp;
  bool collect_explain = false;  ///< Fill `CompressionReport::explain_text`.
};

/// Outputs of one compression run.
struct CompressionReport {
  Algorithm algorithm = Algorithm::kOptimalDp;
  std::size_t bound = 0;
  bool feasible = false;

  std::size_t original_size = 0;       ///< Monomials before.
  std::size_t original_variables = 0;  ///< Distinct variables before.
  std::size_t compressed_size = 0;     ///< Monomials after.
  std::size_t compressed_variables = 0;

  double compression_ratio = 1.0;  ///< compressed/original.
  double analyze_seconds = 0.0;    ///< Profile computation time.
  double solve_seconds = 0.0;      ///< Cut search time.
  double apply_seconds = 0.0;      ///< Substitution time.

  std::string cut_description;  ///< e.g. "{Business, Special, Standard}".
  std::string explain_text;     ///< DP trace when requested.

  /// Renders a multi-line human-readable report.
  std::string ToString() const;
};

/// Runs the full single-tree pipeline: analyze, solve (per `request`),
/// apply. `pool` receives the meta-variables. On success the report and the
/// abstraction describe the same cut; `report.feasible == false` means the
/// bound is unachievable and the returned abstraction is the coarsest one.
struct CompressionOutcome {
  CompressionReport report;
  Abstraction abstraction;
};
util::Result<CompressionOutcome> Compress(const prov::PolySet& polys,
                                          const AbstractionTree& tree,
                                          const CompressionRequest& request,
                                          prov::VarPool* pool);

/// Multi-tree pipeline: greedy cut search over several variable-disjoint
/// trees (see core/multi_tree.h), then combined application. The report's
/// `cut_description` concatenates the per-tree cuts; `algorithm` is always
/// kMultiTreeGreedy (the optimization problem is NP-hard, Section 2).
util::Result<CompressionOutcome> CompressMultiTree(
    const prov::PolySet& polys, const std::vector<AbstractionTree>& trees,
    std::size_t bound, prov::VarPool* pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_COMPRESSOR_H_
