#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/compiled_session.h"
#include "util/status.h"
#include "util/str.h"
#include "util/timer.h"

namespace cobra::core {

namespace {

/// Times repeated assignments over one compiled program; returns seconds
/// per assignment. Repetitions scale up until one timed block is long
/// enough for the clock resolution, and the minimum over several blocks is
/// reported (the standard microbenchmark defence against scheduler noise —
/// the minimum is the least-perturbed observation of a deterministic
/// computation).
double TimeAssignments(const prov::EvalProgram& program,
                       const prov::Valuation& valuation, std::size_t min_reps) {
  std::vector<double> out;
  // Warm-up pass (faults in the arrays).
  program.Eval(valuation, &out);
  // Calibrate the repetition count for ~1ms blocks.
  std::size_t reps = min_reps;
  double elapsed = 0.0;
  for (;;) {
    util::Timer timer;
    for (std::size_t i = 0; i < reps; ++i) program.Eval(valuation, &out);
    elapsed = timer.ElapsedSeconds();
    if (elapsed >= 1e-3 || reps >= 1u << 20) break;
    reps *= 8;
  }
  double best = elapsed / static_cast<double>(reps);
  constexpr int kBlocks = 4;
  for (int block = 1; block < kBlocks; ++block) {
    util::Timer timer;
    for (std::size_t i = 0; i < reps; ++i) program.Eval(valuation, &out);
    best = std::min(best, timer.ElapsedSeconds() / static_cast<double>(reps));
  }
  return best;
}

}  // namespace

AssignmentTiming MeasureAssignment(const prov::PolySet& full,
                                   const prov::PolySet& compressed,
                                   const prov::Valuation& full_valuation,
                                   const prov::Valuation& compressed_valuation,
                                   std::size_t min_reps) {
  prov::EvalProgram full_program(full);
  prov::EvalProgram compressed_program(compressed);
  // These overloads accept externally-supplied valuations: extend an
  // undersized one neutrally so the programs' size contract holds instead
  // of aborting inside Eval().
  prov::Valuation fv = full_valuation;
  fv.Resize(full_program.MinValuationSize());
  prov::Valuation cv = compressed_valuation;
  cv.Resize(compressed_program.MinValuationSize());
  return MeasureAssignment(full_program, compressed_program, fv, cv, min_reps);
}

AssignmentTiming MeasureAssignment(const CompiledSession& snapshot,
                                   const prov::Valuation& full_valuation,
                                   const prov::Valuation& compressed_valuation,
                                   std::size_t min_reps) {
  return MeasureAssignment(snapshot.full_program(),
                           snapshot.compressed_program(), full_valuation,
                           compressed_valuation, min_reps);
}

AssignmentTiming MeasureAssignment(const prov::EvalProgram& full_program,
                                   const prov::EvalProgram& compressed_program,
                                   const prov::Valuation& full_valuation,
                                   const prov::Valuation& compressed_valuation,
                                   std::size_t min_reps) {
  AssignmentTiming timing;
  timing.repetitions = min_reps;
  timing.full_seconds = TimeAssignments(full_program, full_valuation, min_reps);
  timing.compressed_seconds =
      TimeAssignments(compressed_program, compressed_valuation, min_reps);
  return timing;
}

ResultDelta CompareResults(const prov::PolySet& full,
                           const prov::PolySet& compressed,
                           const prov::Valuation& full_valuation,
                           const prov::Valuation& compressed_valuation) {
  prov::EvalProgram full_program(full);
  prov::EvalProgram compressed_program(compressed);
  // Externally-supplied valuations: extend neutrally instead of aborting.
  prov::Valuation fv = full_valuation;
  fv.Resize(full_program.MinValuationSize());
  prov::Valuation cv = compressed_valuation;
  cv.Resize(compressed_program.MinValuationSize());
  return CompareResults(full_program, compressed_program, full.labels(), fv,
                        cv);
}

ResultDelta CompareResults(const CompiledSession& snapshot,
                           const prov::Valuation& full_valuation,
                           const prov::Valuation& compressed_valuation) {
  return CompareResults(snapshot.full_program(), snapshot.compressed_program(),
                        snapshot.labels(), full_valuation,
                        compressed_valuation);
}

ResultDelta CompareResults(const prov::EvalProgram& full_program,
                           const prov::EvalProgram& compressed_program,
                           const std::vector<std::string>& labels,
                           const prov::Valuation& full_valuation,
                           const prov::Valuation& compressed_valuation) {
  COBRA_CHECK_MSG(full_program.NumPolys() == compressed_program.NumPolys(),
                  "CompareResults: group count mismatch");
  std::vector<double> full_values, compressed_values;
  full_program.Eval(full_valuation, &full_values);
  compressed_program.Eval(compressed_valuation, &compressed_values);
  return DeltaFromValues(labels, full_values, compressed_values);
}

ResultDelta DeltaFromValues(const std::vector<std::string>& labels,
                            const std::vector<double>& full_values,
                            const std::vector<double>& compressed_values) {
  COBRA_CHECK_MSG(full_values.size() == compressed_values.size() &&
                      full_values.size() == labels.size(),
                  "DeltaFromValues: group count mismatch");
  ResultDelta delta;
  double rel_sum = 0.0;
  for (std::size_t i = 0; i < full_values.size(); ++i) {
    ResultDelta::Row row;
    row.label = labels[i];
    row.full = full_values[i];
    row.compressed = compressed_values[i];
    row.abs_error = std::fabs(row.full - row.compressed);
    row.rel_error =
        row.full == 0.0 ? (row.abs_error == 0.0 ? 0.0 : 1.0)
                        : row.abs_error / std::fabs(row.full);
    delta.max_abs_error = std::max(delta.max_abs_error, row.abs_error);
    delta.max_rel_error = std::max(delta.max_rel_error, row.rel_error);
    rel_sum += row.rel_error;
    delta.rows.push_back(std::move(row));
  }
  delta.mean_rel_error =
      delta.rows.empty() ? 0.0 : rel_sum / static_cast<double>(delta.rows.size());
  return delta;
}

SensitivityReport AnalyzeSensitivity(const prov::PolySet& polys,
                                     const prov::Valuation& at,
                                     const prov::VarPool& pool) {
  SensitivityReport report;
  for (prov::VarId var : polys.AllVariables()) {
    double impact = 0.0;
    for (const prov::Polynomial& p : polys.polys()) {
      impact += std::fabs(p.Derivative(var).Eval(at));
    }
    report.rows.push_back(
        {var, var < pool.size() ? pool.Name(var) : "?", impact});
  }
  std::stable_sort(report.rows.begin(), report.rows.end(),
                   [](const SensitivityReport::Row& a,
                      const SensitivityReport::Row& b) {
                     return a.impact > b.impact;
                   });
  return report;
}

std::string SensitivityReport::ToString(std::size_t max_rows) const {
  std::string out =
      util::StrFormat("%-16s %16s\n", "variable", "impact (d/dv)");
  std::size_t shown = std::min(max_rows, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    out += util::StrFormat("%-16s %16.4f\n", rows[i].name.c_str(),
                           rows[i].impact);
  }
  if (shown < rows.size()) {
    out += util::StrFormat("... (%zu more variables)\n", rows.size() - shown);
  }
  return out;
}

std::string ResultDelta::ToString(std::size_t max_rows) const {
  std::string out = util::StrFormat(
      "%-16s %14s %14s %12s %10s\n", "group", "full", "compressed", "abs_err",
      "rel_err");
  std::size_t shown = std::min(max_rows, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const Row& r = rows[i];
    out += util::StrFormat("%-16s %14.4f %14.4f %12.4f %9.4f%%\n",
                           r.label.c_str(), r.full, r.compressed, r.abs_error,
                           100.0 * r.rel_error);
  }
  if (shown < rows.size()) {
    out += util::StrFormat("... (%zu more groups)\n", rows.size() - shown);
  }
  out += util::StrFormat(
      "errors: max_abs=%.6f max_rel=%.4f%% mean_rel=%.4f%%\n", max_abs_error,
      100.0 * max_rel_error, 100.0 * mean_rel_error);
  return out;
}

}  // namespace cobra::core
