#include "core/multi_tree.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace cobra::core {

namespace {

using util::Result;
using util::Status;

/// Symbols: non-tree variables keep their VarId; tree leaves are represented
/// by the *code* of the node currently covering them, so that a key changes
/// exactly when the covering node changes. Node codes live above all VarIds.
constexpr std::uint64_t kNodeBase = std::uint64_t{1} << 40;

/// Compact per-monomial data for key computation.
struct MonoData {
  std::uint32_t poly;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> factors;  // (sym, exp)
};

std::uint64_t KeyOf(const MonoData& m,
                    const std::vector<std::uint64_t>& leaf_sym,
                    const std::unordered_set<std::uint64_t>* redirect,
                    std::uint64_t redirect_to) {
  // Map factors through the current leaf symbols (and the tentative
  // redirect), combine duplicates, sort, hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> mapped;
  mapped.reserve(m.factors.size());
  for (const auto& [sym, exp] : m.factors) {
    std::uint64_t s = sym;
    if (s < leaf_sym.size() && leaf_sym[s] != 0) s = leaf_sym[s];
    if (redirect != nullptr && redirect->count(s) > 0) s = redirect_to;
    mapped.emplace_back(s, exp);
  }
  std::sort(mapped.begin(), mapped.end());
  std::uint64_t h = util::Mix64(m.poly ^ 0x77a9b3c5ULL);
  std::uint32_t pending_exp = 0;
  std::uint64_t pending_sym = static_cast<std::uint64_t>(-1);
  auto flush = [&]() {
    if (pending_exp == 0) return;
    h = util::HashCombine(h, pending_sym);
    h = util::HashCombine(h, pending_exp);
  };
  for (const auto& [sym, exp] : mapped) {
    if (sym == pending_sym) {
      pending_exp += exp;
    } else {
      flush();
      pending_sym = sym;
      pending_exp = exp;
    }
  }
  flush();
  return h;
}

}  // namespace

Result<MultiTreeSolution> GreedyMultiTreeCut(
    const prov::PolySet& polys, const std::vector<AbstractionTree>& trees,
    std::size_t bound, const prov::VarPool& pool) {
  if (trees.empty()) {
    return Status::InvalidArgument("no abstraction trees given");
  }
  for (const AbstractionTree& tree : trees) {
    COBRA_RETURN_IF_ERROR(tree.Validate());
  }

  // Global node codes and per-leaf ownership; trees must be leaf-disjoint.
  struct NodeRef {
    std::size_t tree;
    NodeId node;
  };
  std::vector<NodeRef> code_to_node;       // code - kNodeBase -> node
  std::vector<std::vector<std::uint64_t>> node_code(trees.size());
  std::unordered_set<prov::VarId> seen_leaves;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    node_code[t].resize(trees[t].size());
    for (NodeId v = 0; v < trees[t].size(); ++v) {
      node_code[t][v] = kNodeBase + code_to_node.size();
      code_to_node.push_back({t, v});
      if (trees[t].node(v).IsLeaf()) {
        if (!seen_leaves.insert(trees[t].node(v).var).second) {
          return Status::InvalidArgument(
              "trees are not variable-disjoint: " + trees[t].node(v).name);
        }
      }
    }
  }

  // leaf_sym[var] = code of the covering node (0 = not a tree leaf).
  std::vector<std::uint64_t> leaf_sym(pool.size(), 0);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    for (NodeId leaf : trees[t].Leaves()) {
      prov::VarId v = trees[t].node(leaf).var;
      if (v < leaf_sym.size()) leaf_sym[v] = node_code[t][leaf];
    }
  }

  // Extract monomials and initial keys.
  std::vector<MonoData> monos;
  for (std::size_t q = 0; q < polys.size(); ++q) {
    for (const prov::Term& term : polys.poly(q).terms()) {
      MonoData m;
      m.poly = static_cast<std::uint32_t>(q);
      for (const prov::VarPower& vp : term.monomial.powers()) {
        m.factors.emplace_back(vp.var, vp.exp);
      }
      monos.push_back(std::move(m));
    }
  }
  std::vector<std::uint64_t> current_key(monos.size());
  std::unordered_map<std::uint64_t, std::uint32_t> key_count;
  for (std::size_t i = 0; i < monos.size(); ++i) {
    current_key[i] = KeyOf(monos[i], leaf_sym, nullptr, 0);
    ++key_count[current_key[i]];
  }
  std::size_t size = key_count.size();

  // Active cut state and per-active-node monomial lists.
  std::vector<std::vector<bool>> active(trees.size());
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> node_monos;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    active[t].assign(trees[t].size(), false);
    for (NodeId leaf : trees[t].Leaves()) active[t][leaf] = true;
  }
  for (std::size_t i = 0; i < monos.size(); ++i) {
    for (const auto& [sym, exp] : monos[i].factors) {
      (void)exp;
      if (sym < leaf_sym.size() && leaf_sym[sym] != 0) {
        node_monos[leaf_sym[sym]].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  for (auto& [code, list] : node_monos) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  MultiTreeSolution solution;

  // Greedy loop.
  while (size > bound) {
    std::size_t best_tree = 0;
    NodeId best_node = kNoNode;
    double best_ratio = -1.0;
    // Examine every collapse-ready node.
    for (std::size_t t = 0; t < trees.size(); ++t) {
      for (NodeId u = 0; u < trees[t].size(); ++u) {
        const auto& children = trees[t].node(u).children;
        if (children.empty() || active[t][u]) continue;
        bool ready =
            std::all_of(children.begin(), children.end(),
                        [&](NodeId c) { return active[t][c]; });
        if (!ready) continue;
        // Evaluate the move exactly on the affected monomials.
        std::unordered_set<std::uint64_t> redirect;
        std::vector<std::uint32_t> affected;
        for (NodeId c : children) {
          redirect.insert(node_code[t][c]);
          auto it = node_monos.find(node_code[t][c]);
          if (it != node_monos.end()) {
            affected.insert(affected.end(), it->second.begin(),
                            it->second.end());
          }
        }
        std::sort(affected.begin(), affected.end());
        affected.erase(std::unique(affected.begin(), affected.end()),
                       affected.end());
        std::unordered_map<std::uint64_t, std::int64_t> delta;
        for (std::uint32_t i : affected) {
          --delta[current_key[i]];
          ++delta[KeyOf(monos[i], leaf_sym, &redirect, node_code[t][u])];
        }
        std::int64_t size_change = 0;
        for (const auto& [key, d] : delta) {
          auto it = key_count.find(key);
          std::int64_t before = it == key_count.end() ? 0 : it->second;
          std::int64_t after = before + d;
          size_change += (after > 0 ? 1 : 0) - (before > 0 ? 1 : 0);
        }
        std::int64_t saving = -size_change;
        std::size_t vars_lost = children.size() - 1;
        double ratio = vars_lost == 0 ? (saving > 0 ? 1e18 : 0.0)
                                      : static_cast<double>(saving) /
                                            static_cast<double>(vars_lost);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_tree = t;
          best_node = u;
        }
      }
    }
    if (best_node == kNoNode) break;  // everything collapsed to roots

    // Apply the best move for real.
    std::size_t t = best_tree;
    NodeId u = best_node;
    std::unordered_set<std::uint64_t> redirect;
    std::vector<std::uint32_t> affected;
    for (NodeId c : trees[t].node(u).children) {
      redirect.insert(node_code[t][c]);
      auto it = node_monos.find(node_code[t][c]);
      if (it != node_monos.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
        node_monos.erase(it);
      }
      active[t][c] = false;
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    for (NodeId leaf : trees[t].LeavesUnder(u)) {
      prov::VarId v = trees[t].node(leaf).var;
      if (v < leaf_sym.size()) leaf_sym[v] = node_code[t][u];
    }
    for (std::uint32_t i : affected) {
      std::uint64_t old_key = current_key[i];
      auto old_it = key_count.find(old_key);
      if (--old_it->second == 0) {
        key_count.erase(old_it);
        --size;
      }
      std::uint64_t new_key = KeyOf(monos[i], leaf_sym, nullptr, 0);
      current_key[i] = new_key;
      if (++key_count[new_key] == 1) ++size;
    }
    active[t][u] = true;
    node_monos[node_code[t][u]] = std::move(affected);
    ++solution.moves_applied;
  }

  solution.cuts.resize(trees.size());
  solution.num_cut_nodes = 0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < trees[t].size(); ++v) {
      if (active[t][v]) nodes.push_back(v);
    }
    solution.cuts[t] = Cut(std::move(nodes));
    solution.num_cut_nodes += solution.cuts[t].size();
  }
  solution.compressed_size = size;
  solution.feasible = size <= bound;
  return solution;
}

Result<Abstraction> ApplyMultiTreeCuts(const prov::PolySet& polys,
                                       const std::vector<AbstractionTree>& trees,
                                       const std::vector<Cut>& cuts,
                                       prov::VarPool* pool) {
  if (trees.size() != cuts.size()) {
    return Status::InvalidArgument("one cut per tree required");
  }
  Abstraction out;
  out.mapping.resize(pool->size());
  std::iota(out.mapping.begin(), out.mapping.end(), 0);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    COBRA_RETURN_IF_ERROR(cuts[t].Validate(trees[t]));
    for (NodeId v : cuts[t].nodes()) {
      const AbstractionTree::Node& node = trees[t].node(v);
      MetaVar mv;
      mv.node = v;
      mv.name = node.name;
      if (node.IsLeaf()) {
        mv.var = node.var;
        mv.leaves = {node.var};
      } else {
        mv.var = pool->Intern(node.name);
        for (NodeId leaf : trees[t].LeavesUnder(v)) {
          mv.leaves.push_back(trees[t].node(leaf).var);
        }
      }
      if (mv.var >= out.mapping.size()) {
        std::size_t old = out.mapping.size();
        out.mapping.resize(mv.var + 1);
        std::iota(out.mapping.begin() + static_cast<std::ptrdiff_t>(old),
                  out.mapping.end(), static_cast<prov::VarId>(old));
      }
      for (prov::VarId leaf : mv.leaves) {
        if (leaf >= out.mapping.size()) {
          return Status::Internal("tree leaf variable outside pool");
        }
        out.mapping[leaf] = mv.var;
      }
      out.meta_vars.push_back(std::move(mv));
    }
  }
  out.compressed = polys.SubstituteVars(out.mapping);
  out.compressed_size = out.compressed.TotalMonomials();
  out.compressed_variables = out.compressed.NumDistinctVariables();
  return out;
}

}  // namespace cobra::core
