#ifndef COBRA_CORE_SESSION_H_
#define COBRA_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiled_session.h"
#include "core/compressor.h"
#include "core/metrics.h"
#include "core/scenario.h"
#include "core/tree.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

/// The COBRA system façade, mirroring the architecture of Figure 4:
///
///   provenance polynomials ──► compression (bound + abstraction tree)
///        ──► abstracted polynomials ──► assignment ──► results
///
/// Usage:
///   Session session;
///   session.LoadPolynomials(polys);            // from any provenance engine
///   session.SetBaseValuation(valuation);       // the analyst's defaults
///   session.SetTree(tree); session.SetBound(b);
///   auto report = session.Compress();          // optimal abstraction
///   session.SetMetaValue("Business", 1.1);     // hypothetical scenario
///   auto assign = session.Assign();            // results + speedup
///
/// `Session` is the *mutable authoring* surface and is single-threaded by
/// contract. For concurrent serving, take an immutable snapshot after
/// Compress():
///
///   auto snapshot = session.Snapshot().ValueOrDie();   // shared_ptr<const>
///   // any number of threads, zero locks:
///   snapshot->AssignBatch(scenarios);
///
/// Assign()/AssignBatch() below are thin wrappers over that snapshot (built
/// lazily, cached until the provenance or the abstraction changes) and are
/// bit-identical to the snapshot calls.
class Session {
 public:
  /// Creates a session with its own variable pool.
  Session() : pool_(std::make_shared<prov::VarPool>()) {}

  /// Creates a session sharing an existing pool (e.g. a Database's).
  explicit Session(std::shared_ptr<prov::VarPool> pool)
      : pool_(std::move(pool)) {}

  /// The variable pool (data variables + meta-variables).
  const prov::VarPool& pool() const { return *pool_; }
  prov::VarPool* mutable_pool() { return pool_.get(); }

  /// Loads the provenance polynomials to compress.
  void LoadPolynomials(prov::PolySet polys);

  /// Parses and loads polynomials from the `label = poly` text format.
  util::Status LoadPolynomialsText(std::string_view text);

  /// The full (uncompressed) provenance.
  const prov::PolySet& full() const { return full_; }

  /// Sets the analyst's default variable values (neutral 1.0 if never set).
  void SetBaseValuation(const prov::Valuation& valuation);

  /// Sets one base variable by name.
  util::Status SetBaseValue(std::string_view name, double value);

  /// Installs the abstraction tree (single-tree mode: the optimal DP and
  /// all baselines are available).
  util::Status SetTree(AbstractionTree tree);

  /// Parses a tree from the indented text format and installs it.
  util::Status SetTreeText(std::string_view text);

  /// Installs several variable-disjoint trees (multi-tree mode, e.g. the
  /// plan tree together with a month→quarter tree, Section 4). Compression
  /// then uses the greedy multi-tree algorithm regardless of the requested
  /// single-tree algorithm (the problem is NP-hard).
  util::Status SetTrees(std::vector<AbstractionTree> trees);

  /// Sets the bound on the compressed provenance size (monomial count).
  void SetBound(std::size_t bound) { bound_ = bound; }

  /// Runs compression (default: the optimal DP). After success,
  /// `abstraction()` and `compressed()` are available and the meta-variable
  /// valuation is initialized to the paper's defaults (leaf averages).
  util::Result<CompressionReport> Compress(
      Algorithm algorithm = Algorithm::kOptimalDp,
      bool collect_explain = false);

  /// True once Compress() succeeded.
  bool IsCompressed() const { return abstraction_.has_value(); }

  /// The chosen abstraction (requires IsCompressed()).
  const Abstraction& abstraction() const { return *abstraction_; }

  /// The compressed polynomials (requires IsCompressed()).
  const prov::PolySet& compressed() const { return abstraction_->compressed; }

  /// The meta-variables offered to the analyst (requires IsCompressed()).
  const std::vector<MetaVar>& meta_vars() const {
    return abstraction_->meta_vars;
  }

  /// Current compressed-side valuation (defaults after Compress()).
  const prov::Valuation& meta_valuation() const { return *meta_valuation_; }

  /// Assigns a value to a meta-variable (or any variable) by name; this is
  /// the "meta-variables assignment screen" interaction (Figure 5).
  util::Status SetMetaValue(std::string_view name, double value);

  /// Restores the meta valuation to the post-Compress() defaults (leaf
  /// averages over the base valuation), discarding every SetMetaValue().
  util::Status ResetMetaValues();

  /// Returns the immutable serving snapshot for the current compression:
  /// compiled programs, frozen pool, abstraction metadata, and the current
  /// meta valuation as the snapshot's default scenario base. The snapshot
  /// (and everything reachable from it) is safe to share across threads
  /// without locks; later Session mutations never affect an already-
  /// returned snapshot. Compilation is cached — repeated calls (and the
  /// Assign wrappers below) reuse it until the provenance or abstraction
  /// changes; a meta-valuation change only re-wraps the cached programs.
  util::Result<std::shared_ptr<const CompiledSession>> Snapshot() const;

  /// Runs the assignment phase: evaluates the scenario on both the full and
  /// the compressed provenance, measures the speedup, reports the deltas.
  ///
  /// The full-provenance side uses the *expansion* of the meta-assignment:
  /// every original variable takes its meta-variable's value when one was
  /// assigned, its base value otherwise. This is exactly the semantics of
  /// reasoning over the compressed provenance.
  util::Result<AssignReport> Assign(std::size_t timing_reps = 5) const;

  /// Like Assign(), but the full side keeps base values for abstracted
  /// variables (measures pure information loss of the compression under
  /// the default meta-assignment).
  util::Result<AssignReport> AssignAgainstBase(std::size_t timing_reps = 5) const;

  /// Evaluates every scenario in `scenarios` against both the full and the
  /// compressed provenance in one sweep. Each scenario's deltas are applied
  /// independently on top of the *current* meta valuation (normally the
  /// post-Compress() defaults); nothing leaks between scenarios and the
  /// session's own meta valuation is untouched.
  ///
  /// Thin wrapper over `Snapshot()`: programs are compiled at most once,
  /// the snapshot plans the batch (scenario compilation, engine choice —
  /// `Sweep::kAuto` by default — block tables and tile schedule, all cached
  /// by scenario-set fingerprint), and the sweep executes that plan. This
  /// is the serving path for many concurrent what-if scenarios against one
  /// compression; replaying the same scenario set skips re-planning.
  util::Result<BatchAssignReport> AssignBatch(
      const ScenarioSet& scenarios, const BatchOptions& options = {}) const;

 private:
  void EnsureValuationSizes();
  void InvalidateSnapshot();

  /// Builds (or returns the cached) snapshot without refreshing its default
  /// meta valuation — the wrappers pass valuations explicitly.
  util::Result<std::shared_ptr<const CompiledSession>> EnsureSnapshot() const;

  std::shared_ptr<prov::VarPool> pool_;
  prov::PolySet full_;
  std::vector<AbstractionTree> trees_;  // 1 = single-tree, >1 = multi-tree
  std::size_t bound_ = 0;
  std::optional<prov::Valuation> base_valuation_;
  std::optional<Abstraction> abstraction_;
  std::optional<prov::Valuation> meta_valuation_;

  /// Cached serving snapshot (compiling the EvalPrograms walks the whole
  /// polynomial object graph, so repeated assignments must not pay it
  /// again). Invalidated by LoadPolynomials()/SetTree()/SetTrees()/
  /// Compress(); valuation-only mutations keep it (wrappers pass the
  /// current valuation per call).
  mutable std::shared_ptr<const CompiledSession> snapshot_;
};

}  // namespace cobra::core

#endif  // COBRA_CORE_SESSION_H_
