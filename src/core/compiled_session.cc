#include "core/compiled_session.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/io.h"
#include "util/str.h"
#include "util/timer.h"

namespace cobra::core {

namespace {

/// Extends `mapping` by identity so it covers `size` variables.
std::vector<prov::VarId> ExtendIdentity(std::vector<prov::VarId> mapping,
                                        std::size_t size) {
  std::size_t old = mapping.size();
  if (size > old) {
    mapping.resize(size);
    for (std::size_t v = old; v < size; ++v) {
      mapping[v] = static_cast<prov::VarId>(v);
    }
  }
  return mapping;
}

}  // namespace

std::string AssignReport::ToString(std::size_t max_rows) const {
  std::string out = delta.ToString(max_rows);
  out += util::StrFormat(
      "provenance size:  %zu -> %zu monomials\n", full_size, compressed_size);
  out += util::StrFormat(
      "assignment time:  full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      timing.full_seconds * 1e6, timing.compressed_seconds * 1e6,
      timing.SpeedupPercent());
  return out;
}

std::string BatchAssignReport::ToString(std::size_t max_scenarios,
                                        std::size_t max_rows) const {
  std::string out = util::StrFormat(
      "batch:            %zu scenarios on %zu thread(s)\n", reports.size(),
      num_threads);
  out += util::StrFormat(
      "sweep time:       full=%.3gms compressed=%.3gms\n",
      full_sweep_seconds * 1e3, compressed_sweep_seconds * 1e3);
  out += util::StrFormat(
      "per scenario:     full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      aggregate.full_seconds * 1e6, aggregate.compressed_seconds * 1e6,
      aggregate.SpeedupPercent());
  std::size_t shown = std::min(max_scenarios, reports.size());
  for (std::size_t i = 0; i < shown; ++i) {
    // The struct is public; tolerate hand-built reports whose name list is
    // shorter than the report list.
    out += util::StrFormat("-- %s --\n",
                           i < scenario_names.size()
                               ? scenario_names[i].c_str()
                               : ("scenario " + std::to_string(i)).c_str());
    out += reports[i].delta.ToString(max_rows);
  }
  if (shown < reports.size()) {
    out += util::StrFormat("... (%zu more scenarios)\n",
                           reports.size() - shown);
  }
  return out;
}

CompiledSession::Artifacts::Artifacts(
    const prov::PolySet& full, const Abstraction& abstraction,
    std::shared_ptr<const prov::VarPool> pool_in)
    : pool(std::move(pool_in)),
      frozen_pool_size(pool->size()),
      labels(full.labels()),
      meta_vars(abstraction.meta_vars),
      remap(ExtendIdentity(abstraction.mapping, frozen_pool_size)),
      full_program(full),
      sweep_full_program(full_program.RemapFactors(remap)),
      compressed_program(abstraction.compressed),
      full_monomials(full.TotalMonomials()),
      compressed_monomials(abstraction.compressed.TotalMonomials()) {}

CompiledSession::Artifacts::Artifacts(
    std::shared_ptr<const prov::VarPool> pool_in,
    std::size_t frozen_pool_size_in, std::vector<std::string> labels_in,
    std::vector<MetaVar> meta_vars_in, std::vector<prov::VarId> remap_in,
    prov::EvalProgram full, prov::EvalProgram compressed)
    : pool(std::move(pool_in)),
      frozen_pool_size(frozen_pool_size_in),
      labels(std::move(labels_in)),
      meta_vars(std::move(meta_vars_in)),
      remap(std::move(remap_in)),
      full_program(std::move(full)),
      sweep_full_program(full_program.RemapFactors(remap)),
      compressed_program(std::move(compressed)),
      full_monomials(full_program.NumTerms()),
      compressed_monomials(compressed_program.NumTerms()) {}

CompiledSession::CompiledSession(std::shared_ptr<const Artifacts> artifacts,
                                 prov::Valuation default_meta)
    : artifacts_(std::move(artifacts)),
      default_meta_(std::move(default_meta)),
      default_full_(0) {
  default_meta_.Resize(artifacts_->frozen_pool_size);
  default_full_ = ExpandValuation(default_meta_);
}

util::Result<std::shared_ptr<const CompiledSession>> CompiledSession::Create(
    const prov::PolySet& full, const Abstraction& abstraction,
    std::shared_ptr<const prov::VarPool> pool,
    const prov::Valuation& default_meta_valuation) {
  if (pool == nullptr) {
    return util::Status::InvalidArgument("CompiledSession: null pool");
  }
  if (full.size() != abstraction.compressed.size()) {
    return util::Status::Internal(util::StrFormat(
        "CompiledSession: group count mismatch (full=%zu compressed=%zu)",
        full.size(), abstraction.compressed.size()));
  }
  auto artifacts =
      std::make_shared<const Artifacts>(full, abstraction, std::move(pool));
  if (artifacts->full_program.MinValuationSize() >
          artifacts->frozen_pool_size ||
      artifacts->sweep_full_program.MinValuationSize() >
          artifacts->frozen_pool_size ||
      artifacts->compressed_program.MinValuationSize() >
          artifacts->frozen_pool_size) {
    return util::Status::Internal(
        "CompiledSession: compiled programs reference variables outside the "
        "pool");
  }
  return std::shared_ptr<const CompiledSession>(new CompiledSession(
      std::move(artifacts), default_meta_valuation));
}

util::Result<std::shared_ptr<const CompiledSession>>
CompiledSession::FromSnapshot(const SnapshotPackage& snapshot) {
  auto invalid = [](std::string msg) {
    return util::Status::InvalidArgument("CompiledSession::FromSnapshot: " +
                                         std::move(msg));
  };
  const std::size_t pool_size = snapshot.pool_names.size();

  // Rebuild the frozen pool: interning the names in id order must reproduce
  // a dense 0..n-1 id sequence, which fails exactly when a name repeats.
  auto pool = std::make_shared<prov::VarPool>();
  for (std::size_t i = 0; i < pool_size; ++i) {
    const std::string& name = snapshot.pool_names[i];
    if (name.empty()) {
      return invalid(util::StrFormat("pool name %zu is empty", i));
    }
    if (pool->Intern(name) != i) {
      return invalid(util::StrFormat("duplicate pool name \"%s\" (id %zu)",
                                     name.c_str(), i));
    }
  }

  util::Result<prov::EvalProgram> full = prov::EvalProgram::FromParts(
      snapshot.full_program.poly_starts, snapshot.full_program.term_starts,
      snapshot.full_program.coeffs, snapshot.full_program.factors);
  if (!full.ok()) {
    return invalid("full program: " + full.status().message());
  }
  util::Result<prov::EvalProgram> compressed = prov::EvalProgram::FromParts(
      snapshot.compressed_program.poly_starts,
      snapshot.compressed_program.term_starts,
      snapshot.compressed_program.coeffs,
      snapshot.compressed_program.factors);
  if (!compressed.ok()) {
    return invalid("compressed program: " + compressed.status().message());
  }

  if (full->NumPolys() != compressed->NumPolys()) {
    return invalid(util::StrFormat(
        "group count mismatch (full=%zu compressed=%zu)", full->NumPolys(),
        compressed->NumPolys()));
  }
  if (snapshot.labels.size() != full->NumPolys()) {
    return invalid(util::StrFormat(
        "label count %zu does not match the %zu polynomial groups",
        snapshot.labels.size(), full->NumPolys()));
  }
  if (snapshot.leaf_to_meta.size() != pool_size) {
    return invalid(util::StrFormat(
        "leaf_to_meta covers %zu variables but the pool holds %zu",
        snapshot.leaf_to_meta.size(), pool_size));
  }
  for (prov::VarId mapped : snapshot.leaf_to_meta) {
    if (mapped >= pool_size) {
      return invalid(util::StrFormat(
          "leaf_to_meta references variable id %u outside the pool", mapped));
    }
  }
  for (const MetaVar& mv : snapshot.meta_vars) {
    if (mv.var >= pool_size) {
      return invalid(util::StrFormat(
          "meta-variable \"%s\" has id %u outside the pool", mv.name.c_str(),
          mv.var));
    }
    for (prov::VarId leaf : mv.leaves) {
      if (leaf >= pool_size) {
        return invalid(util::StrFormat(
            "meta-variable \"%s\" leaf id %u is outside the pool",
            mv.name.c_str(), leaf));
      }
    }
  }
  if (snapshot.default_meta.size() != pool_size) {
    return invalid(util::StrFormat(
        "default valuation covers %zu variables but the pool holds %zu",
        snapshot.default_meta.size(), pool_size));
  }
  if (full->MinValuationSize() > pool_size ||
      compressed->MinValuationSize() > pool_size) {
    return invalid("compiled programs reference variables outside the pool");
  }

  auto artifacts = std::make_shared<const Artifacts>(
      std::move(pool), pool_size, snapshot.labels, snapshot.meta_vars,
      snapshot.leaf_to_meta, std::move(*full), std::move(*compressed));
  prov::Valuation default_meta(pool_size);
  for (prov::VarId v = 0; v < pool_size; ++v) {
    default_meta.Set(v, snapshot.default_meta[v]);
  }
  return std::shared_ptr<const CompiledSession>(
      new CompiledSession(std::move(artifacts), std::move(default_meta)));
}

std::shared_ptr<const CompiledSession>
CompiledSession::WithDefaultMetaValuation(const prov::Valuation& meta) const {
  return std::shared_ptr<const CompiledSession>(
      new CompiledSession(artifacts_, meta));
}

prov::Valuation CompiledSession::PoolSized(const prov::Valuation& v) const {
  prov::Valuation out = v;
  out.Resize(artifacts_->frozen_pool_size);
  return out;
}

prov::Valuation CompiledSession::ExpandValuation(
    const prov::Valuation& meta) const {
  // Original variables take their meta-variable's assigned value; variables
  // outside the abstraction keep their value from the meta valuation (which
  // inherits the base valuation for them). Meta-variable ids are never
  // leaves of other meta-variables, so reading from the copy is safe.
  prov::Valuation full_valuation = PoolSized(meta);
  for (const MetaVar& mv : artifacts_->meta_vars) {
    double v = full_valuation.Get(mv.var);
    for (prov::VarId leaf : mv.leaves) full_valuation.Set(leaf, v);
  }
  return full_valuation;
}

util::Result<AssignReport> CompiledSession::Assign(
    const prov::Valuation& meta_valuation, std::size_t timing_reps) const {
  prov::Valuation meta = PoolSized(meta_valuation);
  prov::Valuation full_valuation = ExpandValuation(meta);
  AssignReport report;
  report.delta = CompareResults(*this, full_valuation, meta);
  report.timing = MeasureAssignment(*this, full_valuation, meta, timing_reps);
  report.full_size = artifacts_->full_monomials;
  report.compressed_size = artifacts_->compressed_monomials;
  return report;
}

util::Result<AssignReport> CompiledSession::Assign(
    std::size_t timing_reps) const {
  return Assign(default_meta_, timing_reps);
}

util::Result<AssignReport> CompiledSession::AssignAgainstBase(
    const prov::Valuation& base_valuation,
    const prov::Valuation& meta_valuation, std::size_t timing_reps) const {
  prov::Valuation base = PoolSized(base_valuation);
  prov::Valuation meta = PoolSized(meta_valuation);
  AssignReport report;
  report.delta = CompareResults(*this, base, meta);
  report.timing = MeasureAssignment(*this, base, meta, timing_reps);
  report.full_size = artifacts_->full_monomials;
  report.compressed_size = artifacts_->compressed_monomials;
  return report;
}

util::Result<std::vector<CompiledSession::CompiledScenario>>
CompiledSession::CompileScenarios(const ScenarioSet& scenarios) const {
  std::vector<CompiledScenario> compiled;
  compiled.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios.scenarios()) {
    CompiledScenario cs;
    for (const Scenario::Delta& delta : scenario.deltas) {
      prov::VarId id = artifacts_->pool->Find(delta.var);
      if (id == prov::kInvalidVar) {
        return util::Status::InvalidArgument(util::StrFormat(
            "AssignBatch scenario \"%s\": unknown variable: %s",
            scenario.name.c_str(), delta.var.c_str()));
      }
      if (id >= artifacts_->frozen_pool_size) {
        // The pool is shared with the (still-mutable) authoring session;
        // names interned after this snapshot was taken are not part of its
        // frozen world.
        return util::Status::InvalidArgument(util::StrFormat(
            "AssignBatch scenario \"%s\": variable %s was interned after "
            "this snapshot was taken",
            scenario.name.c_str(), delta.var.c_str()));
      }
      // Deltas apply in order, so a repeated variable keeps the last value;
      // the compiled list stays duplicate-free for the scan.
      bool found = false;
      for (prov::VarOverride& existing : cs.overrides) {
        if (existing.var == id) {
          existing.value = delta.value;
          found = true;
        }
      }
      if (!found) cs.overrides.push_back({id, delta.value});
    }
    std::sort(cs.overrides.begin(), cs.overrides.end(),
              [](const prov::VarOverride& a, const prov::VarOverride& b) {
                return a.var < b.var;
              });
    compiled.push_back(std::move(cs));
  }
  return compiled;
}

util::Result<BatchAssignReport> CompiledSession::AssignBatch(
    const ScenarioSet& scenarios, const prov::Valuation& base_meta_valuation,
    const BatchOptions& options) const {
  if (scenarios.empty()) {
    return util::Status::InvalidArgument("AssignBatch: empty scenario set");
  }
  {
    std::unordered_set<std::string_view> seen;
    for (const Scenario& scenario : scenarios.scenarios()) {
      if (!seen.insert(scenario.name).second) {
        return util::Status::InvalidArgument(util::StrFormat(
            "AssignBatch: duplicate scenario name \"%s\"",
            scenario.name.c_str()));
      }
    }
  }

  util::Result<std::vector<CompiledScenario>> compiled =
      CompileScenarios(scenarios);
  if (!compiled.ok()) return compiled.status();

  const prov::Valuation base = PoolSized(base_meta_valuation);
  const prov::EvalProgram& compressed_program = artifacts_->compressed_program;

  const std::size_t n = scenarios.size();
  std::size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  std::vector<std::vector<double>> full_values(n);
  std::vector<std::vector<double>> compressed_values(n);

  BatchAssignReport batch;
  batch.scenario_names = scenarios.Names();

  if (options.sweep == BatchOptions::Sweep::kDenseCopy) {
    // Legacy engine: materialize one full-pool valuation per scenario per
    // side, then dense scans — the baseline the sparse path is benchmarked
    // against (bench_a6/bench_a7).
    const prov::EvalProgram& full_program = artifacts_->full_program;
    threads = std::min(threads, n);
    std::vector<prov::Valuation> meta_valuations;
    std::vector<prov::Valuation> full_valuations;
    meta_valuations.reserve(n);
    full_valuations.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      prov::Valuation meta = base;
      for (const prov::VarOverride& ov : (*compiled)[i].overrides) {
        meta.Set(ov.var, ov.value);
      }
      full_valuations.push_back(ExpandValuation(meta));
      meta_valuations.push_back(std::move(meta));
    }
    auto sweep = [&](const prov::EvalProgram& program,
                     const std::vector<prov::Valuation>& valuations,
                     std::vector<std::vector<double>>* out) {
      auto worker = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          program.Eval(valuations[i], &(*out)[i]);
        }
      };
      if (threads == 1) {
        worker(0, n);
        return;
      }
      std::vector<std::thread> pool;
      pool.reserve(threads);
      const std::size_t chunk = (n + threads - 1) / threads;
      for (std::size_t t = 0; t < threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back(worker, begin, end);
      }
      for (std::thread& th : pool) th.join();
    };
    batch.num_threads = threads;
    util::Timer timer;
    sweep(full_program, full_valuations, &full_values);
    batch.full_sweep_seconds = timer.ElapsedSeconds();
    timer.Reset();
    sweep(compressed_program, meta_valuations, &compressed_values);
    batch.compressed_sweep_seconds = timer.ElapsedSeconds();
  } else {
    // Sparse-delta and scenario-blocked engines. Every scenario is a small
    // override list; the full side evaluates the meta-indirected program
    // under the shared compressed-side base, so nothing pool-sized is copied
    // per scenario. The blocked engine (default) additionally groups
    // scenarios into blocks of `block_lanes` lanes: one scan of the compiled
    // arrays serves the whole block, with a per-block override-union table
    // patching individual lanes, so the factor/coeff streams are read once
    // per block instead of once per scenario. Work is scheduled as
    // (scenario-block × poly-range) tiles; when blocks are scarcer than
    // threads, programs are split into polynomial ranges, and a single
    // dominant polynomial falls back to term-range slices whose partial
    // sums are reduced in fixed order after the sweep joins (deterministic
    // regardless of the thread schedule).
    const bool use_blocks = options.sweep == BatchOptions::Sweep::kBlocked;
    if (use_blocks && options.block_lanes != 4 && options.block_lanes != 8) {
      return util::Status::InvalidArgument(util::StrFormat(
          "AssignBatch: block_lanes must be 4 or 8, got %zu",
          options.block_lanes));
    }
    const std::size_t lanes = use_blocks ? options.block_lanes : 1;
    const std::size_t num_blocks = (n + lanes - 1) / lanes;
    const prov::EvalProgram& sweep_full = artifacts_->sweep_full_program;

    // Block override-union tables are valuation-level, not program-level:
    // both sides evaluate under the same compressed-side base, so one table
    // per block serves both sweeps.
    std::vector<prov::BlockOverrides> block_tables;
    if (use_blocks) {
      block_tables.reserve(num_blocks);
      for (std::size_t b = 0; b < num_blocks; ++b) {
        prov::OverrideSpan spans[prov::EvalProgram::kMaxLanes];
        const std::size_t count = std::min(lanes, n - b * lanes);
        for (std::size_t l = 0; l < count; ++l) {
          const std::vector<prov::VarOverride>& ov =
              (*compiled)[b * lanes + l].overrides;
          spans[l] = {ov.data(), ov.size()};
        }
        block_tables.push_back(prov::MakeBlockOverrides(base, spans, count));
      }
    }

    std::size_t used_threads = 1;
    auto sweep = [&](const prov::EvalProgram& program,
                     std::vector<std::vector<double>>* out) {
      const std::size_t polys = program.NumPolys();
      // Scenario-major result matrix: row i is scenario i's per-poly
      // values. A blocked tile writes `lanes` adjacent rows with stride
      // `polys`; disjoint tiles touch disjoint cells, so the sweep is
      // race-free and the merged result is schedule-independent.
      std::vector<double> flat(n * polys, 0.0);

      std::size_t parts = 1;
      if (threads > num_blocks && options.partition_min_terms > 0) {
        const std::size_t want = (threads + num_blocks - 1) / num_blocks;
        const std::size_t cap =
            program.NumTerms() / options.partition_min_terms + 1;
        parts = std::min(want, cap);
      }
      const std::vector<std::uint32_t> bounds = program.PartitionPolys(parts);

      // The tiling plan: whole-poly ranges, plus (when one polynomial
      // dominates and poly-boundary splitting could not fill the requested
      // parts) term-range slices of that polynomial.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
      std::size_t split_poly = program.NumPolys();
      std::vector<std::uint32_t> term_bounds;
      if (parts > bounds.size() - 1 && options.split_min_terms > 0) {
        split_poly = program.DominantPoly(options.split_min_terms);
      }
      if (split_poly < program.NumPolys()) {
        const std::uint32_t sp = static_cast<std::uint32_t>(split_poly);
        for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
          const std::uint32_t begin = bounds[r];
          const std::uint32_t end = bounds[r + 1];
          if (sp >= begin && sp < end) {
            if (sp > begin) ranges.emplace_back(begin, sp);
            if (sp + 1 < end) ranges.emplace_back(sp + 1, end);
          } else {
            ranges.emplace_back(begin, end);
          }
        }
        const std::size_t spare =
            parts > ranges.size() ? parts - ranges.size() : 2;
        term_bounds = program.PartitionTerms(
            split_poly, std::max<std::size_t>(2, spare));
      } else {
        for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
          ranges.emplace_back(bounds[r], bounds[r + 1]);
        }
      }
      const std::size_t term_slices =
          term_bounds.empty() ? 0 : term_bounds.size() - 1;
      const std::size_t slices = ranges.size() + term_slices;
      // Scenario-major partial sums of the split polynomial, one slot per
      // term slice; reduced in fixed slice order after the join.
      std::vector<double> partials(term_slices == 0 ? 0 : n * term_slices,
                                   0.0);

      const std::size_t tasks = num_blocks * slices;
      auto run_task = [&](std::size_t t) {
        const std::size_t block = t / slices;
        const std::size_t s = t % slices;
        const std::size_t i0 = block * lanes;
        if (use_blocks) {
          const prov::BlockOverrides& table = block_tables[block];
          if (s < ranges.size()) {
            program.EvalRangeBlocked(base, table, ranges[s].first,
                                     ranges[s].second,
                                     flat.data() + i0 * polys, polys);
          } else {
            const std::size_t k = s - ranges.size();
            program.EvalTermRangeBlocked(
                base, table, term_bounds[k], term_bounds[k + 1],
                partials.data() + i0 * term_slices + k, term_slices);
          }
        } else {
          const std::vector<prov::VarOverride>& ov =
              (*compiled)[i0].overrides;
          if (s < ranges.size()) {
            program.EvalRangeWithOverrides(base, ov.data(), ov.size(),
                                           ranges[s].first, ranges[s].second,
                                           flat.data() + i0 * polys);
          } else {
            const std::size_t k = s - ranges.size();
            partials[i0 * term_slices + k] =
                program.EvalTermRangeWithOverrides(base, ov.data(), ov.size(),
                                                   term_bounds[k],
                                                   term_bounds[k + 1]);
          }
        }
      };
      const std::size_t workers = std::min(threads, tasks);
      used_threads = std::max(used_threads, workers);
      if (workers <= 1) {
        for (std::size_t t = 0; t < tasks; ++t) run_task(t);
      } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
          for (std::size_t t = next.fetch_add(1); t < tasks;
               t = next.fetch_add(1)) {
            run_task(t);
          }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
        for (std::thread& th : pool) th.join();
      }
      if (term_slices > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          double sum = 0.0;
          for (std::size_t k = 0; k < term_slices; ++k) {
            sum += partials[i * term_slices + k];
          }
          flat[i * polys + split_poly] = sum;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        (*out)[i].assign(flat.begin() + i * polys,
                         flat.begin() + (i + 1) * polys);
      }
    };
    util::Timer timer;
    sweep(sweep_full, &full_values);
    batch.full_sweep_seconds = timer.ElapsedSeconds();
    timer.Reset();
    sweep(compressed_program, &compressed_values);
    batch.compressed_sweep_seconds = timer.ElapsedSeconds();
    batch.num_threads = used_threads;
  }

  batch.aggregate.repetitions = n;
  batch.aggregate.full_seconds =
      batch.full_sweep_seconds / static_cast<double>(n);
  batch.aggregate.compressed_seconds =
      batch.compressed_sweep_seconds / static_cast<double>(n);

  batch.reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AssignReport report;
    report.delta = DeltaFromValues(artifacts_->labels, full_values[i],
                                   compressed_values[i]);
    report.timing = batch.aggregate;
    report.timing.repetitions = 1;
    report.full_size = artifacts_->full_monomials;
    report.compressed_size = artifacts_->compressed_monomials;
    batch.reports.push_back(std::move(report));
  }
  return batch;
}

util::Result<BatchAssignReport> CompiledSession::AssignBatch(
    const ScenarioSet& scenarios, const BatchOptions& options) const {
  return AssignBatch(scenarios, default_meta_, options);
}

}  // namespace cobra::core
