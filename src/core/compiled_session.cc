#include "core/compiled_session.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "core/io.h"
#include "util/hash.h"
#include "util/str.h"
#include "util/timer.h"
#include "verify/verify.h"

namespace cobra::core {

namespace {

/// Extends `mapping` by identity so it covers `size` variables.
std::vector<prov::VarId> ExtendIdentity(std::vector<prov::VarId> mapping,
                                        std::size_t size) {
  std::size_t old = mapping.size();
  if (size > old) {
    mapping.resize(size);
    for (std::size_t v = old; v < size; ++v) {
      mapping[v] = static_cast<prov::VarId>(v);
    }
  }
  return mapping;
}

}  // namespace

std::string AssignReport::ToString(std::size_t max_rows) const {
  std::string out = delta.ToString(max_rows);
  out += util::StrFormat(
      "provenance size:  %zu -> %zu monomials\n", full_size, compressed_size);
  out += util::StrFormat(
      "assignment time:  full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      timing.full_seconds * 1e6, timing.compressed_seconds * 1e6,
      timing.SpeedupPercent());
  return out;
}

std::string BatchAssignReport::ToString(std::size_t max_scenarios,
                                        std::size_t max_rows) const {
  std::string out = util::StrFormat(
      "batch:            %zu scenarios on %zu thread(s)\n", reports.size(),
      num_threads);
  out += util::StrFormat("engine:           %s, %zu lane(s)%s\n",
                         SweepName(engine), block_lanes,
                         plan_cache_hit
                             ? ", cached plan"
                             : (plan_core_hit ? ", cached core" : ""));
  out += util::StrFormat(
      "sweep time:       full=%.3gms compressed=%.3gms\n",
      full_sweep_seconds * 1e3, compressed_sweep_seconds * 1e3);
  out += util::StrFormat(
      "per scenario:     full=%.3gus compressed=%.3gus speedup=%.0f%%\n",
      aggregate.full_seconds * 1e6, aggregate.compressed_seconds * 1e6,
      aggregate.SpeedupPercent());
  std::size_t shown = std::min(max_scenarios, reports.size());
  for (std::size_t i = 0; i < shown; ++i) {
    // The struct is public; tolerate hand-built reports whose name list is
    // shorter than the report list.
    out += util::StrFormat("-- %s --\n",
                           i < scenario_names.size()
                               ? scenario_names[i].c_str()
                               : ("scenario " + std::to_string(i)).c_str());
    out += reports[i].delta.ToString(max_rows);
  }
  if (shown < reports.size()) {
    out += util::StrFormat("... (%zu more scenarios)\n",
                           reports.size() - shown);
  }
  return out;
}

std::string GridAssignReport::ToString() const {
  std::string out = util::StrFormat(
      "grid:             %zu scenarios x %zu bases (%zu groups, %zu cells)\n",
      num_scenarios(), num_bases, num_groups, cells());
  out += util::StrFormat("engine:           %s, %zu lane(s), %zu thread(s)\n",
                         SweepName(engine), block_lanes, num_threads);
  out += util::StrFormat(
      "plan:             core %s, first overlay %s, %zu overlay hit(s)\n",
      plan_core_hit ? "cached" : "compiled",
      plan_cache_hit ? "cached" : "built", overlay_cache_hits);
  out += util::StrFormat(
      "plan time:        core+first=%.3gms overlays=%.3gms\n",
      plan_seconds * 1e3, overlay_seconds * 1e3);
  out += util::StrFormat(
      "sweep time:       full=%.3gms compressed=%.3gms\n",
      full_sweep_seconds * 1e3, compressed_sweep_seconds * 1e3);
  out += util::StrFormat(
      "errors:           max_abs=%.3g mean_abs=%.3g (fixed-order)\n",
      max_abs_error, mean_abs_error);
  return out;
}

CompiledSession::Artifacts::Artifacts(
    const prov::PolySet& full, const Abstraction& abstraction,
    std::shared_ptr<const prov::VarPool> pool_in)
    : pool(std::move(pool_in)),
      frozen_pool_size(pool->size()),
      labels(full.labels()),
      meta_vars(abstraction.meta_vars),
      remap(ExtendIdentity(abstraction.mapping, frozen_pool_size)),
      full_program(full),
      sweep_full_program(full_program.RemapFactors(remap)),
      compressed_program(abstraction.compressed),
      full_monomials(full.TotalMonomials()),
      compressed_monomials(abstraction.compressed.TotalMonomials()) {}

CompiledSession::Artifacts::Artifacts(
    std::shared_ptr<const prov::VarPool> pool_in,
    std::size_t frozen_pool_size_in, std::vector<std::string> labels_in,
    std::vector<MetaVar> meta_vars_in, std::vector<prov::VarId> remap_in,
    prov::EvalProgram full, prov::EvalProgram compressed)
    : pool(std::move(pool_in)),
      frozen_pool_size(frozen_pool_size_in),
      labels(std::move(labels_in)),
      meta_vars(std::move(meta_vars_in)),
      remap(std::move(remap_in)),
      full_program(std::move(full)),
      sweep_full_program(full_program.RemapFactors(remap)),
      compressed_program(std::move(compressed)),
      full_monomials(full_program.NumTerms()),
      compressed_monomials(compressed_program.NumTerms()) {}

CompiledSession::CompiledSession(std::shared_ptr<const Artifacts> artifacts,
                                 prov::Valuation default_meta)
    : artifacts_(std::move(artifacts)),
      default_meta_(std::move(default_meta)),
      default_full_(0) {
  default_meta_.Resize(artifacts_->frozen_pool_size);
  default_full_ = ExpandValuation(default_meta_);
  default_base_fingerprint_ =
      FingerprintBase(default_meta_, artifacts_->frozen_pool_size);
}

util::Result<std::shared_ptr<const CompiledSession>> CompiledSession::Create(
    const prov::PolySet& full, const Abstraction& abstraction,
    std::shared_ptr<const prov::VarPool> pool,
    const prov::Valuation& default_meta_valuation) {
  if (pool == nullptr) {
    return util::Status::InvalidArgument("CompiledSession: null pool");
  }
  if (full.size() != abstraction.compressed.size()) {
    return util::Status::Internal(util::StrFormat(
        "CompiledSession: group count mismatch (full=%zu compressed=%zu)",
        full.size(), abstraction.compressed.size()));
  }
  auto artifacts =
      std::make_shared<const Artifacts>(full, abstraction, std::move(pool));
  if (artifacts->full_program.MinValuationSize() >
          artifacts->frozen_pool_size ||
      artifacts->sweep_full_program.MinValuationSize() >
          artifacts->frozen_pool_size ||
      artifacts->compressed_program.MinValuationSize() >
          artifacts->frozen_pool_size) {
    return util::Status::Internal(
        "CompiledSession: compiled programs reference variables outside the "
        "pool");
  }
  return std::shared_ptr<const CompiledSession>(new CompiledSession(
      std::move(artifacts), default_meta_valuation));
}

util::Result<std::shared_ptr<const CompiledSession>>
CompiledSession::FromSnapshot(const SnapshotPackage& snapshot) {
  auto invalid = [](std::string msg) {
    return util::Status::InvalidArgument("CompiledSession::FromSnapshot: " +
                                         std::move(msg));
  };
  const std::size_t pool_size = snapshot.pool_names.size();

  // Trust boundary: the snapshot crossed a process (or machine) boundary,
  // so it is statically verified before anything is built from it. The
  // checksum already proved the *bytes* arrived intact; the verifier proves
  // the *content* is internally consistent, and a refusal names the
  // offending section instead of surfacing later as a wrong answer.
  const verify::VerifyReport report = verify::VerifySnapshot(snapshot);
  if (!report.ok()) {
    const verify::Finding& first = *report.FirstError();
    return invalid(util::StrFormat(
        "snapshot failed verification with %zu error finding(s); first: %s",
        report.num_errors(), first.ToString().c_str()));
  }

  // Rebuild the frozen pool: interning the names in id order must reproduce
  // a dense 0..n-1 id sequence, which fails exactly when a name repeats.
  auto pool = std::make_shared<prov::VarPool>();
  for (std::size_t i = 0; i < pool_size; ++i) {
    const std::string& name = snapshot.pool_names[i];
    if (name.empty()) {
      return invalid(util::StrFormat("pool name %zu is empty", i));
    }
    if (pool->Intern(name) != i) {
      return invalid(util::StrFormat("duplicate pool name \"%s\" (id %zu)",
                                     name.c_str(), i));
    }
  }

  util::Result<prov::EvalProgram> full = prov::EvalProgram::FromParts(
      snapshot.full_program.poly_starts, snapshot.full_program.term_starts,
      snapshot.full_program.coeffs, snapshot.full_program.factors);
  if (!full.ok()) {
    return invalid("full program: " + full.status().message());
  }
  util::Result<prov::EvalProgram> compressed = prov::EvalProgram::FromParts(
      snapshot.compressed_program.poly_starts,
      snapshot.compressed_program.term_starts,
      snapshot.compressed_program.coeffs,
      snapshot.compressed_program.factors);
  if (!compressed.ok()) {
    return invalid("compressed program: " + compressed.status().message());
  }

  if (full->NumPolys() != compressed->NumPolys()) {
    return invalid(util::StrFormat(
        "group count mismatch (full=%zu compressed=%zu)", full->NumPolys(),
        compressed->NumPolys()));
  }
  if (snapshot.labels.size() != full->NumPolys()) {
    return invalid(util::StrFormat(
        "label count %zu does not match the %zu polynomial groups",
        snapshot.labels.size(), full->NumPolys()));
  }
  if (snapshot.leaf_to_meta.size() != pool_size) {
    return invalid(util::StrFormat(
        "leaf_to_meta covers %zu variables but the pool holds %zu",
        snapshot.leaf_to_meta.size(), pool_size));
  }
  for (prov::VarId mapped : snapshot.leaf_to_meta) {
    if (mapped >= pool_size) {
      return invalid(util::StrFormat(
          "leaf_to_meta references variable id %u outside the pool", mapped));
    }
  }
  for (const MetaVar& mv : snapshot.meta_vars) {
    if (mv.var >= pool_size) {
      return invalid(util::StrFormat(
          "meta-variable \"%s\" has id %u outside the pool", mv.name.c_str(),
          mv.var));
    }
    for (prov::VarId leaf : mv.leaves) {
      if (leaf >= pool_size) {
        return invalid(util::StrFormat(
            "meta-variable \"%s\" leaf id %u is outside the pool",
            mv.name.c_str(), leaf));
      }
    }
  }
  if (snapshot.default_meta.size() != pool_size) {
    return invalid(util::StrFormat(
        "default valuation covers %zu variables but the pool holds %zu",
        snapshot.default_meta.size(), pool_size));
  }
  if (full->MinValuationSize() > pool_size ||
      compressed->MinValuationSize() > pool_size) {
    return invalid("compiled programs reference variables outside the pool");
  }

  auto artifacts = std::make_shared<const Artifacts>(
      std::move(pool), pool_size, snapshot.labels, snapshot.meta_vars,
      snapshot.leaf_to_meta, std::move(*full), std::move(*compressed));
  prov::Valuation default_meta(pool_size);
  for (prov::VarId v = 0; v < pool_size; ++v) {
    default_meta.Set(v, snapshot.default_meta[v]);
  }
  return std::shared_ptr<const CompiledSession>(
      new CompiledSession(std::move(artifacts), std::move(default_meta)));
}

std::shared_ptr<const CompiledSession>
CompiledSession::WithDefaultMetaValuation(const prov::Valuation& meta) const {
  return std::shared_ptr<const CompiledSession>(
      new CompiledSession(artifacts_, meta));
}

prov::Valuation CompiledSession::PoolSized(const prov::Valuation& v) const {
  prov::Valuation out = v;
  out.Resize(artifacts_->frozen_pool_size);
  return out;
}

prov::Valuation CompiledSession::ExpandValuation(
    const prov::Valuation& meta) const {
  // Original variables take their meta-variable's assigned value; variables
  // outside the abstraction keep their value from the meta valuation (which
  // inherits the base valuation for them). Meta-variable ids are never
  // leaves of other meta-variables, so reading from the copy is safe.
  prov::Valuation full_valuation = PoolSized(meta);
  for (const MetaVar& mv : artifacts_->meta_vars) {
    double v = full_valuation.Get(mv.var);
    for (prov::VarId leaf : mv.leaves) full_valuation.Set(leaf, v);
  }
  return full_valuation;
}

util::Result<AssignReport> CompiledSession::Assign(
    const prov::Valuation& meta_valuation, std::size_t timing_reps) const {
  prov::Valuation meta = PoolSized(meta_valuation);
  prov::Valuation full_valuation = ExpandValuation(meta);
  AssignReport report;
  report.delta = CompareResults(*this, full_valuation, meta);
  report.timing = MeasureAssignment(*this, full_valuation, meta, timing_reps);
  report.full_size = artifacts_->full_monomials;
  report.compressed_size = artifacts_->compressed_monomials;
  return report;
}

util::Result<AssignReport> CompiledSession::Assign(
    std::size_t timing_reps) const {
  return Assign(default_meta_, timing_reps);
}

util::Result<AssignReport> CompiledSession::AssignAgainstBase(
    const prov::Valuation& base_valuation,
    const prov::Valuation& meta_valuation, std::size_t timing_reps) const {
  prov::Valuation base = PoolSized(base_valuation);
  prov::Valuation meta = PoolSized(meta_valuation);
  AssignReport report;
  report.delta = CompareResults(*this, base, meta);
  report.timing = MeasureAssignment(*this, base, meta, timing_reps);
  report.full_size = artifacts_->full_monomials;
  report.compressed_size = artifacts_->compressed_monomials;
  return report;
}

std::size_t CompiledSession::PlanCacheKeyHash::operator()(
    const PlanCacheKey& key) const {
  std::uint64_t h = key.scenarios.lo;
  h = util::HashCombine(h, key.scenarios.hi);
  h = util::HashCombine(h, key.sweep);
  h = util::HashCombine(h, key.layout);
  h = util::HashCombine(h, key.block_lanes);
  h = util::HashCombine(h, key.prefetch_distance);
  h = util::HashCombine(h, key.num_threads);
  h = util::HashCombine(h, key.partition_min_terms);
  h = util::HashCombine(h, key.split_min_terms);
  return static_cast<std::size_t>(h);
}

CompiledSession::PlanCacheKey CompiledSession::MakePlanCacheKey(
    const ScenarioSet& scenarios, const BatchOptions& options) {
  // The core is fully determined by (scenario content, options); the base
  // valuation only selects an overlay *inside* the entry, so base churn —
  // the grid / per-user-defaults workload — can neither evict cores nor
  // split one scenario set across entries.
  PlanCacheKey key;
  key.scenarios = FingerprintScenarios(scenarios);
  key.sweep = static_cast<std::uint32_t>(options.sweep);
  key.layout = static_cast<std::uint32_t>(options.layout);
  key.block_lanes = options.block_lanes;
  key.prefetch_distance = options.prefetch_distance;
  key.num_threads = options.num_threads;
  key.partition_min_terms = options.partition_min_terms;
  key.split_min_terms = options.split_min_terms;
  return key;
}

util::Result<std::shared_ptr<const BatchPlan>> CompiledSession::PlanBatchImpl(
    const ScenarioSet& scenarios, const prov::Valuation& base_meta_valuation,
    const BaseFingerprint& base_fingerprint, const BatchOptions& options,
    bool* cache_hit, bool* core_hit) const {
  PlanCacheKey key = MakePlanCacheKey(scenarios, options);

  std::shared_ptr<const PlanCore> core;
  {
    std::shared_lock<std::shared_mutex> lock(plan_mutex_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      for (const auto& [fp, cached] : it->second.overlays) {
        if (fp == base_fingerprint) {
          plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
          if (cache_hit != nullptr) *cache_hit = true;
          if (core_hit != nullptr) *core_hit = true;
          return cached;
        }
      }
      core = it->second.core;
    }
  }
  if (cache_hit != nullptr) *cache_hit = false;
  if (core_hit != nullptr) *core_hit = core != nullptr;
  if (core != nullptr) {
    plan_cache_core_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    plan_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Plan outside any lock: compilation is the expensive part, and two
  // threads racing to plan the same set merely duplicate work once. On a
  // core hit only the cheap per-base overlay is materialized — no scenario
  // re-lowering, no union sorting, no schedule derivation.
  if (core == nullptr) {
    util::Result<std::shared_ptr<const PlanCore>> fresh = PlanCore::Create(
        shared_from_this(), scenarios, options, &key.scenarios);
    if (!fresh.ok()) return fresh.status();
    core = *fresh;
  }
  std::shared_ptr<const BatchPlan> plan = BatchPlan::FromParts(
      core, core->MakeOverlay(base_meta_valuation, &base_fingerprint));

  // Trust boundary: verify the freshly compiled plan before it enters the
  // cache (and gets replayed indefinitely). Always in debug builds, opt-in
  // for release via `verify_plans`. A failure here is a planner bug, not a
  // caller error — hence Internal.
#ifdef NDEBUG
  const bool verify_plan = options.verify_plans;
#else
  const bool verify_plan = true;
#endif
  if (verify_plan) {
    const verify::VerifyReport report =
        verify::VerifyPlan(*plan, *this, &scenarios);
    if (!report.ok()) {
      return util::Status::Internal(util::StrFormat(
          "CompiledSession::PlanBatch: freshly compiled plan failed "
          "verification with %zu error finding(s); first: %s",
          report.num_errors(), report.FirstError()->ToString().c_str()));
    }
  }

  {
    std::unique_lock<std::shared_mutex> lock(plan_mutex_);
    auto it = plan_cache_.find(key);
    if (it == plan_cache_.end()) {
      if (plan_cache_.size() >= kPlanCacheMaxEntries) {
        plan_cache_.erase(plan_cache_order_.front());  // FIFO: oldest first
        plan_cache_order_.pop_front();
      }
      it = plan_cache_.emplace(key, PlanCacheEntry{}).first;
      it->second.core = core;
      plan_cache_order_.push_back(key);
    }
    PlanCacheEntry& entry = it->second;
    for (const auto& [fp, cached] : entry.overlays) {
      if (fp == base_fingerprint) return cached;  // lost the overlay race
    }
    if (entry.overlays.size() >= kMaxOverlaysPerEntry) {
      entry.overlays.erase(entry.overlays.begin());  // FIFO: oldest first
    }
    entry.overlays.emplace_back(base_fingerprint, plan);
  }
  return plan;
}

util::Result<std::shared_ptr<const BatchPlan>> CompiledSession::PlanBatch(
    const ScenarioSet& scenarios, const prov::Valuation& base_meta_valuation,
    const BatchOptions& options, bool* cache_hit) const {
  return PlanBatchImpl(
      scenarios, base_meta_valuation,
      FingerprintBase(base_meta_valuation, artifacts_->frozen_pool_size),
      options, cache_hit, nullptr);
}

util::Result<std::shared_ptr<const BatchPlan>> CompiledSession::PlanBatch(
    const ScenarioSet& scenarios, const BatchOptions& options,
    bool* cache_hit) const {
  return PlanBatchImpl(scenarios, default_meta_, default_base_fingerprint_,
                       options, cache_hit, nullptr);
}

CompiledSession::PlanCacheStats CompiledSession::plan_cache_stats() const {
  PlanCacheStats stats;
  {
    std::shared_lock<std::shared_mutex> lock(plan_mutex_);
    stats.entries = plan_cache_.size();
    for (const auto& [key, entry] : plan_cache_) {
      stats.overlays += entry.overlays.size();
    }
  }
  stats.hits = plan_cache_hits_.load(std::memory_order_relaxed);
  stats.core_hits = plan_cache_core_hits_.load(std::memory_order_relaxed);
  stats.misses = plan_cache_misses_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<CompiledSession::CachedPlanInfo> CompiledSession::CachedPlans()
    const {
  std::vector<CachedPlanInfo> out;
  std::shared_lock<std::shared_mutex> lock(plan_mutex_);
  out.reserve(plan_cache_.size());
  for (const auto& [key, entry] : plan_cache_) {
    CachedPlanInfo info;
    info.fingerprint = entry.core->fingerprint().ToHex();
    info.engine = entry.core->engine();
    info.lanes = entry.core->lanes();
    info.tiles = entry.core->num_tiles();
    info.scenarios = entry.core->num_scenarios();
    info.overlays = entry.overlays.size();
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::shared_ptr<const BatchPlan>>
CompiledSession::CachedPlanHandles() const {
  std::vector<std::shared_ptr<const BatchPlan>> out;
  std::shared_lock<std::shared_mutex> lock(plan_mutex_);
  for (const auto& [key, entry] : plan_cache_) {
    for (const auto& [fp, plan] : entry.overlays) out.push_back(plan);
  }
  return out;
}

void CompiledSession::ClearPlanCache() const {
  std::unique_lock<std::shared_mutex> lock(plan_mutex_);
  plan_cache_.clear();
  plan_cache_order_.clear();
}

util::Result<BatchAssignReport> CompiledSession::Execute(
    const BatchPlan& plan) const {
  if (plan.session().get() != this) {
    return util::Status::InvalidArgument(
        "CompiledSession::Execute: the BatchPlan was built against a "
        "different (or since-destroyed) CompiledSession");
  }
  const std::size_t n = plan.num_scenarios();
  const prov::Valuation& base = plan.base();
  const std::vector<CompiledScenario>& compiled = plan.compiled();
  const prov::EvalProgram& compressed_program = artifacts_->compressed_program;
  const std::size_t threads = plan.num_threads();

  std::vector<std::vector<double>> full_values(n);
  std::vector<std::vector<double>> compressed_values(n);

  BatchAssignReport batch;
  batch.scenario_names = plan.scenario_names();
  batch.engine = plan.engine();
  batch.block_lanes = plan.lanes();
  batch.layout = plan.layout();

  if (plan.engine() == BatchOptions::Sweep::kDenseCopy) {
    // Legacy engine: materialize one full-pool valuation per scenario per
    // side, then dense scans — the baseline the sparse path is benchmarked
    // against (bench_a6/bench_a7). The materialization is the engine's
    // defining cost, so it stays in execution rather than being cached on
    // the plan.
    const prov::EvalProgram& full_program = artifacts_->full_program;
    std::vector<prov::Valuation> meta_valuations;
    std::vector<prov::Valuation> full_valuations;
    meta_valuations.reserve(n);
    full_valuations.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      prov::Valuation meta = base;
      for (const prov::VarOverride& ov : compiled[i].overrides) {
        meta.Set(ov.var, ov.value);
      }
      full_valuations.push_back(ExpandValuation(meta));
      meta_valuations.push_back(std::move(meta));
    }
    auto sweep = [&](const prov::EvalProgram& program,
                     const std::vector<prov::Valuation>& valuations,
                     std::vector<std::vector<double>>* out) {
      auto worker = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          program.Eval(valuations[i], &(*out)[i]);
        }
      };
      if (threads == 1) {
        worker(0, n);
        return;
      }
      std::vector<std::thread> pool;
      pool.reserve(threads);
      const std::size_t chunk = (n + threads - 1) / threads;
      for (std::size_t t = 0; t < threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back(worker, begin, end);
      }
      for (std::thread& th : pool) th.join();
    };
    batch.num_threads = threads;
    util::Timer timer;
    sweep(full_program, full_valuations, &full_values);
    batch.full_sweep_seconds = timer.ElapsedSeconds();
    timer.Reset();
    sweep(compressed_program, meta_valuations, &compressed_values);
    batch.compressed_sweep_seconds = timer.ElapsedSeconds();
  } else {
    // Sparse-delta and scenario-blocked engines: the shared sweep core
    // (SweepPlanProgram) fills a scenario-major flat matrix per side, then
    // the rows are lifted into per-scenario report vectors.
    const prov::EvalProgram& sweep_full = artifacts_->sweep_full_program;
    const PlanCore& core = *plan.core();
    const PlanBaseOverlay& overlay = plan.overlay();

    std::size_t used_threads = 1;
    auto sweep = [&](const prov::EvalProgram& program,
                     const prov::EvalImage* image,
                     const ProgramSchedule& schedule,
                     std::vector<std::vector<double>>* out) {
      const std::size_t polys = program.NumPolys();
      std::vector<double> flat(n * polys, 0.0);
      SweepPlanProgram(core, overlay, program, image, schedule, flat.data(),
                       &used_threads);
      for (std::size_t i = 0; i < n; ++i) {
        (*out)[i].assign(flat.begin() + i * polys,
                         flat.begin() + (i + 1) * polys);
      }
    };
    util::Timer timer;
    sweep(sweep_full, core.full_image().get(), plan.full_schedule(),
          &full_values);
    batch.full_sweep_seconds = timer.ElapsedSeconds();
    timer.Reset();
    sweep(compressed_program, core.compressed_image().get(),
          plan.compressed_schedule(), &compressed_values);
    batch.compressed_sweep_seconds = timer.ElapsedSeconds();
    batch.num_threads = used_threads;
  }

  batch.aggregate.repetitions = n;
  batch.aggregate.full_seconds =
      batch.full_sweep_seconds / static_cast<double>(n);
  batch.aggregate.compressed_seconds =
      batch.compressed_sweep_seconds / static_cast<double>(n);

  batch.reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AssignReport report;
    report.delta = DeltaFromValues(artifacts_->labels, full_values[i],
                                   compressed_values[i]);
    report.timing = batch.aggregate;
    report.timing.repetitions = 1;
    report.full_size = artifacts_->full_monomials;
    report.compressed_size = artifacts_->compressed_monomials;
    batch.reports.push_back(std::move(report));
  }
  return batch;
}

void CompiledSession::SweepPlanProgram(const PlanCore& core,
                                       const PlanBaseOverlay& overlay,
                                       const prov::EvalProgram& program,
                                       const prov::EvalImage* image,
                                       const ProgramSchedule& schedule,
                                       double* flat,
                                       std::size_t* used_threads,
                                       const std::uint8_t* block_mask) const {
  // Every scenario is a small override list; the full side evaluates the
  // meta-indirected program under the shared compressed-side base, so
  // nothing pool-sized is copied per scenario. The blocked engine
  // additionally groups scenarios into blocks of `lanes` lanes: one scan of
  // the compiled arrays serves the whole block, with the overlay's
  // per-block override-union table patching individual lanes. Work runs as
  // the core's (scenario-block × poly-range | term-range) tiles; disjoint
  // tiles touch disjoint output cells, so the sweep is race-free and the
  // merged result is schedule-independent. A blocked tile writes `lanes`
  // adjacent rows of the scenario-major matrix with stride `polys`.
  const std::size_t n = core.num_scenarios();
  const std::size_t threads = core.num_threads();
  const std::size_t prefetch_distance = core.options().prefetch_distance;
  const bool use_blocks = core.engine() == BatchOptions::Sweep::kBlocked;
  const std::size_t lanes = core.lanes();
  const std::size_t num_blocks = core.num_blocks();
  const std::vector<CompiledScenario>& compiled = core.compiled();
  const std::vector<prov::BlockOverrides>& block_tables =
      overlay.block_tables;
  const prov::Valuation& base = overlay.base;
  const std::size_t polys = program.NumPolys();

  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges =
      schedule.ranges;
  const std::vector<std::uint32_t>& term_bounds = schedule.term_bounds;
  const std::size_t term_slices = schedule.term_slices();
  const std::size_t slices = schedule.slices();
  // Scenario-major partial sums of the split polynomial, one slot per term
  // slice; reduced in fixed slice order after the join.
  std::vector<double> partials(term_slices == 0 ? 0 : n * term_slices, 0.0);

  const std::size_t tasks = num_blocks * slices;
  auto run_task = [&](std::size_t t) {
    const std::size_t block = t / slices;
    // Early-exit mask (streaming queries): a pruned block's tiles are
    // no-ops, its rows stay untouched. Workers still claim the task ids —
    // the test is one load, far cheaper than compacting the tile list.
    if (block_mask != nullptr && block_mask[block] == 0) return;
    const std::size_t s = t % slices;
    const std::size_t i0 = block * lanes;
    if (use_blocks) {
      const prov::BlockOverrides& table = block_tables[block];
      if (s < ranges.size()) {
        if (image != nullptr) {
          image->EvalRangeBlocked(base, table, ranges[s].first,
                                  ranges[s].second, flat + i0 * polys, polys,
                                  prefetch_distance);
        } else {
          program.EvalRangeBlocked(base, table, ranges[s].first,
                                   ranges[s].second, flat + i0 * polys,
                                   polys);
        }
      } else {
        const std::size_t k = s - ranges.size();
        if (image != nullptr) {
          image->EvalTermRangeBlocked(base, table, term_bounds[k],
                                      term_bounds[k + 1],
                                      partials.data() + i0 * term_slices + k,
                                      term_slices, prefetch_distance);
        } else {
          program.EvalTermRangeBlocked(base, table, term_bounds[k],
                                       term_bounds[k + 1],
                                       partials.data() + i0 * term_slices + k,
                                       term_slices);
        }
      }
    } else {
      const std::vector<prov::VarOverride>& ov = compiled[i0].overrides;
      if (s < ranges.size()) {
        program.EvalRangeWithOverrides(base, ov.data(), ov.size(),
                                       ranges[s].first, ranges[s].second,
                                       flat + i0 * polys);
      } else {
        const std::size_t k = s - ranges.size();
        partials[i0 * term_slices + k] = program.EvalTermRangeWithOverrides(
            base, ov.data(), ov.size(), term_bounds[k], term_bounds[k + 1]);
      }
    }
  };
  const std::size_t workers = std::min(threads, tasks);
  *used_threads = std::max(*used_threads, workers);
  if (workers <= 1) {
    for (std::size_t t = 0; t < tasks; ++t) run_task(t);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (std::size_t t = next.fetch_add(1); t < tasks;
           t = next.fetch_add(1)) {
        run_task(t);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (term_slices > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (block_mask != nullptr && block_mask[i / lanes] == 0) continue;
      double sum = 0.0;
      for (std::size_t k = 0; k < term_slices; ++k) {
        sum += partials[i * term_slices + k];
      }
      flat[i * polys + schedule.split_poly] = sum;
    }
  }
}

util::Result<GridAssignReport> CompiledSession::AssignGrid(
    const ScenarioSet& scenarios, std::span<const prov::Valuation> bases,
    const BatchOptions& options) const {
  if (bases.empty()) {
    return util::Status::InvalidArgument("AssignGrid: empty base list");
  }

  GridAssignReport grid;
  grid.num_bases = bases.size();
  grid.labels = artifacts_->labels;
  grid.num_groups = artifacts_->labels.size();

  // Plan the shared core once, through the plan cache — the first base's
  // plan is the one insertion the grid makes, so a huge base sweep warms
  // the cache for follow-up AssignBatch calls without flushing it.
  util::Timer plan_timer;
  bool cache_hit = false;
  bool core_hit = false;
  util::Result<std::shared_ptr<const BatchPlan>> first = PlanBatchImpl(
      scenarios, bases[0],
      FingerprintBase(bases[0], artifacts_->frozen_pool_size), options,
      &cache_hit, &core_hit);
  if (!first.ok()) return first.status();
  grid.plan_seconds = plan_timer.ElapsedSeconds();
  grid.plan_cache_hit = cache_hit;
  grid.plan_core_hit = core_hit;

  const std::shared_ptr<const PlanCore> core = (*first)->core();
  const std::size_t n = core->num_scenarios();
  grid.scenario_names = core->scenario_names();
  grid.engine = core->engine();
  grid.block_lanes = core->lanes();
  grid.layout = core->layout();

  const std::size_t polys_full = artifacts_->sweep_full_program.NumPolys();
  const std::size_t polys_comp = artifacts_->compressed_program.NumPolys();
  grid.full_values.assign(bases.size() * n * polys_full, 0.0);
  grid.compressed_values.assign(bases.size() * n * polys_comp, 0.0);

  const PlanCacheKey key = MakePlanCacheKey(scenarios, options);
  std::size_t used_threads = 1;

  for (std::size_t b = 0; b < bases.size(); ++b) {
    // Materialize (or fetch) the per-base overlay. Bases after the first
    // consult the overlay cache read-only: a hit reuses the cached plan's
    // overlay, a miss binds a fresh one locally without inserting — so the
    // grid cannot evict the overlays a serving tier depends on.
    std::shared_ptr<const PlanBaseOverlay> overlay;
    if (b == 0) {
      overlay = std::shared_ptr<const PlanBaseOverlay>((*first),
                                                       &(*first)->overlay());
    } else {
      util::Timer overlay_timer;
      const BaseFingerprint fp =
          FingerprintBase(bases[b], artifacts_->frozen_pool_size);
      {
        std::shared_lock<std::shared_mutex> lock(plan_mutex_);
        auto it = plan_cache_.find(key);
        if (it != plan_cache_.end()) {
          for (const auto& [cached_fp, cached] : it->second.overlays) {
            if (cached_fp == fp) {
              overlay = std::shared_ptr<const PlanBaseOverlay>(
                  cached, &cached->overlay());
              ++grid.overlay_cache_hits;
              break;
            }
          }
        }
      }
      if (overlay == nullptr) overlay = core->MakeOverlay(bases[b], &fp);
      grid.overlay_seconds += overlay_timer.ElapsedSeconds();
    }

    if (core->engine() == BatchOptions::Sweep::kDenseCopy) {
      // The legacy dense engine has no flat sweep core; run it through
      // Execute and copy the per-scenario rows into the grid cells.
      util::Result<BatchAssignReport> batch =
          Execute(*BatchPlan::FromParts(core, overlay));
      if (!batch.ok()) return batch.status();
      grid.full_sweep_seconds += batch->full_sweep_seconds;
      grid.compressed_sweep_seconds += batch->compressed_sweep_seconds;
      used_threads = std::max(used_threads, batch->num_threads);
      for (std::size_t s = 0; s < n; ++s) {
        const ResultDelta& delta = batch->reports[s].delta;
        for (std::size_t g = 0; g < grid.num_groups; ++g) {
          grid.full_values[(b * n + s) * polys_full + g] =
              delta.rows[g].full;
          grid.compressed_values[(b * n + s) * polys_comp + g] =
              delta.rows[g].compressed;
        }
      }
      continue;
    }

    util::Timer timer;
    SweepPlanProgram(*core, *overlay, artifacts_->sweep_full_program,
                     core->full_image().get(), core->full_schedule(),
                     grid.full_values.data() + b * n * polys_full,
                     &used_threads);
    grid.full_sweep_seconds += timer.ElapsedSeconds();
    timer.Reset();
    SweepPlanProgram(*core, *overlay, artifacts_->compressed_program,
                     core->compressed_image().get(),
                     core->compressed_schedule(),
                     grid.compressed_values.data() + b * n * polys_comp,
                     &used_threads);
    grid.compressed_sweep_seconds += timer.ElapsedSeconds();
  }
  grid.num_threads = used_threads;

  // Deterministic fixed-order reduction: cells are visited in (base,
  // scenario, group) order regardless of how the sweeps were threaded.
  double sum_abs = 0.0;
  const std::size_t total = grid.cells();
  for (std::size_t c = 0; c < total; ++c) {
    const double abs_err =
        std::abs(grid.full_values[c] - grid.compressed_values[c]);
    if (abs_err > grid.max_abs_error) grid.max_abs_error = abs_err;
    sum_abs += abs_err;
  }
  grid.mean_abs_error =
      total == 0 ? 0.0 : sum_abs / static_cast<double>(total);
  return grid;
}

util::Result<BatchAssignReport> CompiledSession::AssignBatch(
    const ScenarioSet& scenarios, const prov::Valuation& base_meta_valuation,
    const BatchOptions& options) const {
  bool cache_hit = false;
  bool core_hit = false;
  util::Result<std::shared_ptr<const BatchPlan>> plan = PlanBatchImpl(
      scenarios, base_meta_valuation,
      FingerprintBase(base_meta_valuation, artifacts_->frozen_pool_size),
      options, &cache_hit, &core_hit);
  if (!plan.ok()) return plan.status();
  util::Result<BatchAssignReport> report = Execute(**plan);
  if (!report.ok()) return report.status();
  report->plan_cache_hit = cache_hit;
  report->plan_core_hit = core_hit;
  return report;
}

util::Result<BatchAssignReport> CompiledSession::AssignBatch(
    const ScenarioSet& scenarios, const BatchOptions& options) const {
  // Routed through the default-base fingerprint precomputed at construction
  // so the warm path never rehashes the (immutable) default valuation.
  bool cache_hit = false;
  bool core_hit = false;
  util::Result<std::shared_ptr<const BatchPlan>> plan =
      PlanBatchImpl(scenarios, default_meta_, default_base_fingerprint_,
                    options, &cache_hit, &core_hit);
  if (!plan.ok()) return plan.status();
  util::Result<BatchAssignReport> report = Execute(**plan);
  if (!report.ok()) return report.status();
  report->plan_cache_hit = cache_hit;
  report->plan_core_hit = core_hit;
  return report;
}

std::string SweepSummary::ToString(std::size_t max_rows) const {
  std::string out = util::StrFormat(
      "stream:      %llu/%llu scenario(s) in %llu block(s) of %zu%s\n"
      "engine:      %s, %zu lane(s), %zu thread(s)\n"
      "source:      fp=%s\n"
      "full rows:   computed=%llu skipped=%llu matched=%llu\n"
      "metric:      sum=%.6g min=%.6g@%llu max=%.6g@%llu\n"
      "time:        generate=%.1fms plan=%.1fms full=%.1fms "
      "compressed=%.1fms\n",
      static_cast<unsigned long long>(scenarios),
      static_cast<unsigned long long>(source_size),
      static_cast<unsigned long long>(chunks), window,
      stopped_early ? " (stopped early)" : "", SweepName(engine), block_lanes,
      num_threads, source_fingerprint.ToHex().c_str(),
      static_cast<unsigned long long>(full_rows_computed),
      static_cast<unsigned long long>(full_rows_skipped),
      static_cast<unsigned long long>(matched), metric_sum, metric_min,
      static_cast<unsigned long long>(metric_argmin), metric_max,
      static_cast<unsigned long long>(metric_argmax), generate_seconds * 1e3,
      plan_seconds * 1e3, full_sweep_seconds * 1e3,
      compressed_sweep_seconds * 1e3);
  for (std::size_t g = 0; g < labels.size(); ++g) {
    out += util::StrFormat("group:       %-24s [%.6g, %.6g]\n",
                           labels[g].c_str(), group_min[g], group_max[g]);
  }
  const std::size_t rows = std::min(max_rows, entries.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const StreamEntry& e = entries[i];
    out += util::StrFormat("entry:       #%-10llu %-24s metric=%.6g\n",
                           static_cast<unsigned long long>(e.index),
                           e.name.c_str(), e.metric);
  }
  if (entries.size() > rows) {
    out += util::StrFormat("entry:       ... %zu more\n",
                           entries.size() - rows);
  }
  return out;
}

util::Result<SweepSummary> CompiledSession::AssignStream(
    const ScenarioSource& source, const prov::Valuation& base_meta_valuation,
    const StreamOptions& options, const StreamConsumer& consumer) const {
  const StreamQuery& query = options.query;
  switch (query.kind) {
    case StreamQuery::Kind::kAll:
    case StreamQuery::Kind::kTopK:
    case StreamQuery::Kind::kThreshold:
      break;
    default:
      return util::Status::InvalidArgument(util::StrFormat(
          "AssignStream: invalid StreamQuery.kind = %d (accepted: kAll, "
          "kTopK, kThreshold)",
          static_cast<int>(query.kind)));
  }
  switch (query.metric) {
    case StreamQuery::Metric::kSumAbsDelta:
    case StreamQuery::Metric::kMaxAbsDelta:
      break;
    case StreamQuery::Metric::kGroupValue:
      if (query.group >= artifacts_->labels.size()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "AssignStream: StreamQuery.group = %zu out of range (the "
            "session has %zu output group(s))",
            query.group, artifacts_->labels.size()));
      }
      break;
    default:
      return util::Status::InvalidArgument(util::StrFormat(
          "AssignStream: invalid StreamQuery.metric = %d (accepted: "
          "kSumAbsDelta, kMaxAbsDelta, kGroupValue)",
          static_cast<int>(query.metric)));
  }
  if (query.kind == StreamQuery::Kind::kTopK && query.k == 0) {
    return util::Status::InvalidArgument(
        "AssignStream: StreamQuery.k = 0 (a top-k query must keep at least "
        "one scenario)");
  }

  util::Result<std::shared_ptr<const StreamPlan>> plan_result =
      StreamPlan::Create(shared_from_this(), source, options.batch);
  if (!plan_result.ok()) return plan_result.status();
  const StreamPlan& plan = **plan_result;

  // Trust boundary, mirroring PlanBatch: audit the generator spec (and,
  // below, the first chunk's freshly compiled plan) before a million-row
  // sweep replays it. Always in debug builds, opt-in via `verify_plans`.
#ifdef NDEBUG
  const bool audit = options.batch.verify_plans;
#else
  const bool audit = true;
#endif
  if (audit) {
    const verify::VerifyReport report = verify::VerifySource(source);
    if (!report.ok()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "AssignStream: scenario source failed verification with %zu "
          "error finding(s); first: %s",
          report.num_errors(), report.FirstError()->ToString().c_str()));
    }
  }

  SweepSummary summary;
  summary.source_size = plan.source_size();
  summary.source_fingerprint = plan.source_fingerprint();
  summary.engine = plan.engine();
  summary.block_lanes = plan.lanes();
  summary.layout = plan.layout() == BatchOptions::Layout::kSoA
                       ? prov::EvalLayout::kSoA
                       : prov::EvalLayout::kAoS;
  summary.num_threads = plan.num_threads();
  summary.window = plan.window();
  summary.labels = artifacts_->labels;
  const std::size_t groups = summary.labels.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  summary.group_min.assign(groups, kInf);
  summary.group_max.assign(groups, -kInf);
  summary.metric_min = kInf;
  summary.metric_max = -kInf;

  // The base compressed row is the metric's reference point, shared by
  // every chunk; the pool-sized base feeds the per-chunk overlay rebinds.
  const prov::Valuation base = PoolSized(base_meta_valuation);
  const BaseFingerprint base_fp =
      FingerprintBase(base_meta_valuation, artifacts_->frozen_pool_size);
  std::vector<double> base_comp;
  artifacts_->compressed_program.Eval(base, &base_comp);

  const prov::EvalProgram& sweep_full = artifacts_->sweep_full_program;
  const prov::EvalProgram& compressed = artifacts_->compressed_program;
  const std::size_t polys_full = sweep_full.NumPolys();
  const std::size_t polys_comp = compressed.NumPolys();

  auto metric_of = [&](const double* comp_row) -> double {
    switch (query.metric) {
      case StreamQuery::Metric::kMaxAbsDelta: {
        double m = 0.0;
        for (std::size_t g = 0; g < groups; ++g) {
          m = std::max(m, std::abs(comp_row[g] - base_comp[g]));
        }
        return m;
      }
      case StreamQuery::Metric::kGroupValue:
        return comp_row[query.group];
      case StreamQuery::Metric::kSumAbsDelta:
      default: {
        double m = 0.0;
        for (std::size_t g = 0; g < groups; ++g) {
          m += std::abs(comp_row[g] - base_comp[g]);
        }
        return m;
      }
    }
  };

  // kTopK working set, unsorted; `worst` tracks the current eviction
  // candidate so the common reject path is one compare. Ties break toward
  // the earlier ordinal (a later equal metric never evicts).
  std::vector<StreamEntry> top;
  std::size_t worst = 0;
  auto recompute_worst = [&]() {
    worst = 0;
    for (std::size_t j = 1; j < top.size(); ++j) {
      if (top[j].metric < top[worst].metric ||
          (top[j].metric == top[worst].metric &&
           top[j].index > top[worst].index)) {
        worst = j;
      }
    }
  };

  ScenarioSet chunk;
  std::vector<std::string> names;
  std::vector<double> full_flat;
  std::vector<double> comp_flat;
  std::vector<double> metrics;
  std::vector<std::uint8_t> need_full;
  std::vector<std::uint8_t> mask;
  util::Timer timer;

  std::uint64_t begin = 0;
  while (begin < summary.source_size) {
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(summary.window, summary.source_size - begin));

    timer.Reset();
    chunk.Clear();
    chunk.Reserve(count);
    COBRA_RETURN_IF_ERROR(source.Generate(begin, count, &chunk));
    if (chunk.size() != count) {
      return util::Status::Internal(util::StrFormat(
          "AssignStream: source produced %zu scenario(s) for window "
          "[%llu, %llu) — generators must fill the window exactly",
          chunk.size(), static_cast<unsigned long long>(begin),
          static_cast<unsigned long long>(begin + count)));
    }
    summary.generate_seconds += timer.ElapsedSeconds();

    timer.Reset();
    util::Result<std::shared_ptr<const PlanCore>> core_result =
        plan.LowerChunk(chunk);
    if (!core_result.ok()) return core_result.status();
    const PlanCore& core = **core_result;
    const std::shared_ptr<const PlanBaseOverlay> overlay =
        core.MakeOverlay(base, &base_fp);
    summary.plan_seconds += timer.ElapsedSeconds();

    if (audit && summary.chunks == 0) {
      const std::shared_ptr<const BatchPlan> first_plan =
          BatchPlan::FromParts(*core_result, overlay);
      const verify::VerifyReport report =
          verify::VerifyPlan(*first_plan, *this, &chunk);
      if (!report.ok()) {
        return util::Status::Internal(util::StrFormat(
            "AssignStream: freshly compiled first-chunk plan failed "
            "verification with %zu error finding(s); first: %s",
            report.num_errors(), report.FirstError()->ToString().c_str()));
      }
    }

    // The compressed side always runs in full: it IS the metric, and
    // COBRA's premise makes it the cheap side.
    comp_flat.assign(count * polys_comp, 0.0);
    std::size_t used_threads = 1;
    timer.Reset();
    SweepPlanProgram(core, *overlay, compressed,
                     core.compressed_image().get(),
                     core.compressed_schedule(), comp_flat.data(),
                     &used_threads);
    summary.compressed_sweep_seconds += timer.ElapsedSeconds();

    // Fixed-order metric pass: aggregates and early-exit decisions walk
    // scenarios in stream order, so every running statistic is
    // deterministic across thread counts and chunkings.
    metrics.assign(count, 0.0);
    need_full.assign(count, 1);
    std::vector<std::uint8_t> keep(
        query.kind == StreamQuery::Kind::kThreshold ? count : 0, 0);
    std::size_t kept_this_chunk = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const double* comp_row = comp_flat.data() + i * polys_comp;
      const double m = metric_of(comp_row);
      metrics[i] = m;
      const std::uint64_t ordinal = begin + i;
      summary.metric_sum += m;
      if (m < summary.metric_min) {
        summary.metric_min = m;
        summary.metric_argmin = ordinal;
      }
      if (m > summary.metric_max) {
        summary.metric_max = m;
        summary.metric_argmax = ordinal;
      }
      for (std::size_t g = 0; g < groups; ++g) {
        summary.group_min[g] = std::min(summary.group_min[g], comp_row[g]);
        summary.group_max[g] = std::max(summary.group_max[g], comp_row[g]);
      }
      switch (query.kind) {
        case StreamQuery::Kind::kAll:
          break;
        case StreamQuery::Kind::kThreshold: {
          const bool hit = m >= query.cutoff;
          if (hit) ++summary.matched;
          const bool carry =
              hit && (query.max_entries == 0 ||
                      summary.entries.size() + kept_this_chunk <
                          query.max_entries);
          keep[i] = carry ? 1 : 0;
          if (carry) ++kept_this_chunk;
          need_full[i] = carry ? 1 : 0;
          break;
        }
        case StreamQuery::Kind::kTopK: {
          if (top.size() < query.k) {
            top.push_back(
                {ordinal, chunk.scenario(i).name, m, {}, {}});
            recompute_worst();
          } else if (m > top[worst].metric) {
            top[worst] = {ordinal, chunk.scenario(i).name, m, {}, {}};
            recompute_worst();
          } else {
            need_full[i] = 0;
          }
          break;
        }
      }
    }

    // Full side, pruned at block granularity: a block runs iff any of its
    // lanes still matters to the query.
    full_flat.assign(count * polys_full, 0.0);
    timer.Reset();
    if (query.kind == StreamQuery::Kind::kAll) {
      SweepPlanProgram(core, *overlay, sweep_full, core.full_image().get(),
                       core.full_schedule(), full_flat.data(),
                       &used_threads);
      summary.full_rows_computed += count;
    } else {
      const std::size_t lanes = core.lanes();
      const std::size_t num_blocks = core.num_blocks();
      mask.assign(num_blocks, 0);
      bool any = false;
      for (std::size_t i = 0; i < count; ++i) {
        if (need_full[i] != 0) {
          mask[i / lanes] = 1;
          any = true;
        }
      }
      std::uint64_t rows_run = 0;
      for (std::size_t b = 0; b < num_blocks; ++b) {
        if (mask[b] != 0) {
          rows_run += std::min(lanes, count - b * lanes);
        }
      }
      summary.full_rows_computed += rows_run;
      summary.full_rows_skipped += count - rows_run;
      if (any) {
        SweepPlanProgram(core, *overlay, sweep_full, core.full_image().get(),
                         core.full_schedule(), full_flat.data(),
                         &used_threads, mask.data());
      }
      // Report rows the consumer may read: only surviving blocks' rows.
      for (std::size_t i = 0; i < count; ++i) {
        need_full[i] = mask[i / lanes];
      }
    }
    summary.full_sweep_seconds += timer.ElapsedSeconds();

    switch (query.kind) {
      case StreamQuery::Kind::kThreshold:
        for (std::size_t i = 0; i < count; ++i) {
          if (keep[i] == 0) continue;
          StreamEntry entry;
          entry.index = begin + i;
          entry.name = chunk.scenario(i).name;
          entry.metric = metrics[i];
          entry.full.assign(full_flat.begin() + i * polys_full,
                            full_flat.begin() + (i + 1) * polys_full);
          entry.compressed.assign(comp_flat.begin() + i * polys_comp,
                                  comp_flat.begin() + (i + 1) * polys_comp);
          summary.entries.push_back(std::move(entry));
        }
        break;
      case StreamQuery::Kind::kTopK:
        // Backfill rows for survivors born in this chunk. A scenario kept
        // then evicted within the same chunk wasted its block's full rows —
        // harmless, and bounded by the window.
        for (StreamEntry& e : top) {
          if (!e.full.empty()) continue;
          if (e.index < begin || e.index >= begin + count) continue;
          const std::size_t i = static_cast<std::size_t>(e.index - begin);
          e.full.assign(full_flat.begin() + i * polys_full,
                        full_flat.begin() + (i + 1) * polys_full);
          e.compressed.assign(comp_flat.begin() + i * polys_comp,
                              comp_flat.begin() + (i + 1) * polys_comp);
        }
        break;
      case StreamQuery::Kind::kAll:
        break;
    }

    summary.scenarios += count;
    ++summary.chunks;
    begin += count;

    if (consumer) {
      names = chunk.Names();
      StreamBlockView view;
      view.begin = begin - count;
      view.count = count;
      view.num_groups = groups;
      view.names = &names;
      view.metrics = metrics.data();
      view.full_computed = need_full.data();
      view.full = full_flat.data();
      view.compressed = comp_flat.data();
      if (!consumer(view)) {
        summary.stopped_early = true;
        break;
      }
    }
  }

  if (query.kind == StreamQuery::Kind::kTopK) {
    std::sort(top.begin(), top.end(),
              [](const StreamEntry& a, const StreamEntry& b) {
                if (a.metric != b.metric) return a.metric > b.metric;
                return a.index < b.index;
              });
    summary.entries = std::move(top);
  }
  return summary;
}

util::Result<SweepSummary> CompiledSession::AssignStream(
    const ScenarioSource& source, const StreamOptions& options,
    const StreamConsumer& consumer) const {
  return AssignStream(source, default_meta_, options, consumer);
}

}  // namespace cobra::core
