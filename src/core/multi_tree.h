#ifndef COBRA_CORE_MULTI_TREE_H_
#define COBRA_CORE_MULTI_TREE_H_

#include <string>
#include <vector>

#include "core/apply.h"
#include "core/tree.h"
#include "prov/poly_set.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

/// Result of multi-tree compression: one cut per tree plus the combined
/// abstraction.
struct MultiTreeSolution {
  std::vector<Cut> cuts;                 ///< One per input tree, same order.
  std::size_t compressed_size = 0;       ///< Total monomials after merging.
  std::size_t num_cut_nodes = 0;         ///< Σ |cut| over trees.
  bool feasible = false;                 ///< compressed_size <= bound.
  std::size_t moves_applied = 0;         ///< Collapse moves taken.
};

/// Greedy compression with several abstraction trees, where a monomial may
/// contain abstractable variables from more than one tree (e.g. the plan
/// tree of Figure 2 *and* a month→quarter tree, Section 4).
///
/// The single-tree size identity no longer decomposes per node (merging in
/// one tree changes which monomials can merge in another — the source of
/// NP-hardness shown in the SIGMOD companion), so the greedy works on the
/// polynomials themselves: it maintains the current variable mapping and a
/// multiset of substituted monomial keys, evaluates each candidate collapse
/// move (replace the children of a node, all currently active, by the node)
/// by *exactly* recomputing the keys of affected monomials, and applies the
/// move with the best size-saving per lost variable until the bound is met
/// or everything is collapsed. Trees must be variable-disjoint.
util::Result<MultiTreeSolution> GreedyMultiTreeCut(
    const prov::PolySet& polys, const std::vector<AbstractionTree>& trees,
    std::size_t bound, const prov::VarPool& pool);

/// Applies a MultiTreeSolution: composes the per-tree cut mappings and
/// substitutes, producing the combined abstraction (meta-variables from all
/// trees, interned into `pool`).
util::Result<Abstraction> ApplyMultiTreeCuts(
    const prov::PolySet& polys, const std::vector<AbstractionTree>& trees,
    const std::vector<Cut>& cuts, prov::VarPool* pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_MULTI_TREE_H_
