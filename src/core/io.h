#ifndef COBRA_CORE_IO_H_
#define COBRA_CORE_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/apply.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

/// A self-contained compressed-provenance package — what the meta-analyst
/// ships to analysts (Section 1: provenance is generated and compressed on
/// powerful hardware, but valuations are applied "by multiple analysts,
/// possibly using weaker hardware"). The package holds the compressed
/// polynomials, the meta-variable groups (so the analyst sees what each
/// meta-variable stands for), and the default valuation.
struct CompressedPackage {
  prov::PolySet polynomials;
  /// Meta-variable name -> names of the original variables it replaces.
  std::vector<std::pair<std::string, std::vector<std::string>>> meta_groups;
  /// Variable name -> default value (only non-neutral entries).
  std::vector<std::pair<std::string, double>> defaults;
};

/// Serializes a package to the textual interchange format:
///
///     [polynomials]
///     <label> = <polynomial>
///     [meta]
///     <MetaVar> <- <leaf> <leaf> ...
///     [defaults]
///     <var> = <value>
///
/// Lines are order-preserving; `#` comments and blank lines are ignored on
/// load. Variables are rendered by name, so the package is independent of
/// any particular VarPool's ids.
std::string SerializePackage(const CompressedPackage& package,
                             const prov::VarPool& pool);

/// Parses a package, interning all variables into `pool`.
util::Result<CompressedPackage> ParsePackage(std::string_view text,
                                             prov::VarPool* pool);

/// Builds a package from a compression result: the abstraction's compressed
/// polynomials, its meta groups, and its default meta-valuation relative to
/// `base` (entries equal to 1.0 are omitted).
CompressedPackage MakePackage(const Abstraction& abstraction,
                              const prov::Valuation& base,
                              const prov::VarPool& pool);

/// Writes/reads a package to/from a file.
util::Status SavePackage(const CompressedPackage& package,
                         const prov::VarPool& pool, const std::string& path);
util::Result<CompressedPackage> LoadPackage(const std::string& path,
                                            prov::VarPool* pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_IO_H_
