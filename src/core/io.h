#ifndef COBRA_CORE_IO_H_
#define COBRA_CORE_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/apply.h"
#include "prov/eval_program.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

class CompiledSession;

/// A self-contained compressed-provenance package — what the meta-analyst
/// ships to analysts (Section 1: provenance is generated and compressed on
/// powerful hardware, but valuations are applied "by multiple analysts,
/// possibly using weaker hardware"). The package holds the compressed
/// polynomials, the meta-variable groups (so the analyst sees what each
/// meta-variable stands for), and the default valuation.
struct CompressedPackage {
  prov::PolySet polynomials;
  /// Meta-variable name -> names of the original variables it replaces.
  std::vector<std::pair<std::string, std::vector<std::string>>> meta_groups;
  /// Variable name -> default value (only non-neutral entries).
  std::vector<std::pair<std::string, double>> defaults;
};

/// Serializes a package to the textual interchange format:
///
///     [polynomials]
///     <label> = <polynomial>
///     [meta]
///     <MetaVar> <- <leaf> <leaf> ...
///     [defaults]
///     <var> = <value>
///
/// Lines are order-preserving; `#` comments and blank lines are ignored on
/// load. Variables are rendered by name, so the package is independent of
/// any particular VarPool's ids.
///
/// The format is line- and token-delimited, so it cannot represent every
/// string: variable names must match the identifier charset
/// (`[A-Za-z0-9_.]+` — in particular no whitespace and none of the
/// delimiters `=`, `#`, `<-`), variables appearing in polynomials must
/// additionally start with a letter or `_` (the parser lexes digit- and
/// dot-leading tokens as numbers), and labels must be `=`-free, trimmed,
/// and must not look like a comment or section header. A package whose
/// names fall outside that set would silently corrupt the round trip, so
/// serialization rejects it with `InvalidArgument` instead.
util::Result<std::string> SerializePackage(const CompressedPackage& package,
                                           const prov::VarPool& pool);

/// Parses a package, interning all variables into `pool`.
util::Result<CompressedPackage> ParsePackage(std::string_view text,
                                             prov::VarPool* pool);

/// Builds a package from a compression result: the abstraction's compressed
/// polynomials, its meta groups, and its default meta-valuation relative to
/// `base` (entries equal to 1.0 are omitted).
CompressedPackage MakePackage(const Abstraction& abstraction,
                              const prov::Valuation& base,
                              const prov::VarPool& pool);

/// Writes/reads a package to/from a file. Load failures identify the file:
/// a missing or unreadable path, an empty file, and a malformed body each
/// produce a Status naming `path` and what was wrong with it. Failures are
/// classified for retry decisions (`util::IsRetryable`): a missing,
/// unreadable, or empty file is `Unavailable` (transient — the writer may
/// not have published yet), a malformed body is `DataLoss` (permanent).
util::Status SavePackage(const CompressedPackage& package,
                         const prov::VarPool& pool, const std::string& path);
util::Result<CompressedPackage> LoadPackage(const std::string& path,
                                            prov::VarPool* pool);

// ---------------------------------------------------------------------------
// Serving snapshots: the binary artifact a replica process loads.
// ---------------------------------------------------------------------------

/// Version of the binary snapshot format written by SerializeSnapshot().
/// Readers accept exactly this version; any change to the payload layout
/// must bump it (see README "Shipping snapshots to replicas" for the
/// compatibility policy).
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// The compiled arrays of one `prov::EvalProgram`, exactly as exported by
/// its accessors. Rebuilding via `EvalProgram::FromParts` yields a program
/// that evaluates bit-identically (evaluation reads nothing else).
struct EvalProgramImage {
  std::vector<std::uint32_t> poly_starts;
  std::vector<std::uint32_t> term_starts;
  std::vector<double> coeffs;
  std::vector<prov::VarId> factors;
};

/// Everything `CompiledSession` serves from, in process-independent form —
/// the multi-node counterpart of `CompressedPackage`: where the text package
/// ships *source* polynomials for an analyst to recompile, the snapshot
/// ships the *compiled* serving artifact, so a replica reconstructs a
/// `CompiledSession` with zero recompilation and bit-identical results.
///
/// Contents:
///   - the frozen variable pool (names in id order up to the snapshot's
///     `pool_size()`; a replica re-interns them in order and recovers
///     identical `VarId`s);
///   - group labels and the abstraction's meta-variables (ids, names, leaf
///     lists — `MetaVar::node` is carried as opaque metadata; the replica
///     has no tree);
///   - the leaf→meta mapping and the compiled full/compressed programs.
///     The third program the serving layer uses (`sweep_full_program`) is
///     *not* stored: it is by construction `full.RemapFactors(leaf_to_meta)`
///     and is rebuilt deterministically on load, which keeps the artifact
///     smaller and structurally impossible to de-synchronize;
///   - the default compressed-side valuation, dense over the frozen pool
///     (the full-side expansion is likewise recomputed deterministically).
struct SnapshotPackage {
  std::vector<std::string> pool_names;   ///< Frozen pool, id order.
  std::vector<std::string> labels;       ///< One per polynomial group.
  std::vector<MetaVar> meta_vars;
  std::vector<prov::VarId> leaf_to_meta; ///< Identity-extended remap.
  EvalProgramImage full_program;
  EvalProgramImage compressed_program;
  std::vector<double> default_meta;      ///< Dense, pool_names.size() values.
};

/// Captures `session`'s complete serving state as a `SnapshotPackage`.
SnapshotPackage MakeSnapshot(const CompiledSession& session);

/// Encodes a snapshot to the versioned binary format: an 8-byte magic, the
/// format version, the payload length, and an FNV-1a checksum of the
/// payload, followed by the little-endian payload. Doubles are stored as
/// IEEE-754 bit patterns, so values round-trip exactly.
std::string SerializeSnapshot(const SnapshotPackage& snapshot);

/// Decodes the binary format. `source` names the origin (a file path) in
/// every error: bad magic, unsupported version, length/checksum mismatch,
/// or a payload truncated mid-field all produce a descriptive Status.
///
/// Errors are classified transient-vs-permanent so callers (the serving
/// daemon's snapshot watcher) can decide whether to retry: an empty file or
/// one holding fewer bytes than the header promises reads as an in-progress
/// torn write and fails `Unavailable` (retryable); bad magic, an
/// unsupported version, a checksum mismatch, or a malformed checksummed
/// payload is permanent corruption and fails `DataLoss`.
util::Result<SnapshotPackage> ParseSnapshot(std::string_view data,
                                            const std::string& source);

/// Writes `session`'s snapshot to `path` in the binary format.
util::Status SaveSnapshot(const CompiledSession& session,
                          const std::string& path);

/// Reads a snapshot file and reconstructs a serving session from it — the
/// replica-side entry point. No recompilation happens: the compiled arrays
/// are loaded as-is (and the sweep-side program re-derived by the same
/// deterministic remap the origin used), so `Assign`/`AssignBatch` results
/// are bit-identical to the origin process under every sweep engine.
/// Missing, empty, truncated, and corrupted files all fail with a Status
/// naming `path` and the specific problem, classified transient-vs-
/// permanent (see `ParseSnapshot`): missing/unreadable/torn files are
/// `Unavailable` (retry may succeed), while corruption and verifier
/// rejection are `DataLoss` (retrying reproduces the failure — quarantine
/// instead).
util::Result<std::shared_ptr<const CompiledSession>> LoadSnapshot(
    const std::string& path);

}  // namespace cobra::core

#endif  // COBRA_CORE_IO_H_
