#include "core/io.h"

#include "prov/parser.h"
#include "util/csv.h"
#include "util/str.h"

namespace cobra::core {

std::string SerializePackage(const CompressedPackage& package,
                             const prov::VarPool& pool) {
  std::string out = "[polynomials]\n";
  out += package.polynomials.ToString(pool);
  out += "[meta]\n";
  for (const auto& [meta, leaves] : package.meta_groups) {
    out += meta;
    out += " <-";
    for (const std::string& leaf : leaves) {
      out += " ";
      out += leaf;
    }
    out += "\n";
  }
  out += "[defaults]\n";
  for (const auto& [name, value] : package.defaults) {
    out += name;
    out += " = ";
    out += util::FormatDouble(value, 12);
    out += "\n";
  }
  return out;
}

util::Result<CompressedPackage> ParsePackage(std::string_view text,
                                             prov::VarPool* pool) {
  CompressedPackage package;
  enum class Section { kNone, kPolynomials, kMeta, kDefaults };
  Section section = Section::kNone;
  std::string poly_lines;
  std::size_t line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line == "[polynomials]") {
      section = Section::kPolynomials;
      continue;
    }
    if (line == "[meta]") {
      section = Section::kMeta;
      continue;
    }
    if (line == "[defaults]") {
      section = Section::kDefaults;
      continue;
    }
    switch (section) {
      case Section::kNone:
        return util::Status::ParseError(
            "line " + std::to_string(line_no) +
            ": content before any [section] header");
      case Section::kPolynomials:
        poly_lines += std::string(line) + "\n";
        break;
      case Section::kMeta: {
        std::size_t arrow = line.find("<-");
        if (arrow == std::string_view::npos) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": expected '<meta> <- <leaves>'");
        }
        std::string meta(util::Trim(line.substr(0, arrow)));
        std::vector<std::string> leaves =
            util::SplitWhitespace(line.substr(arrow + 2));
        if (meta.empty() || leaves.empty()) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": empty meta group");
        }
        pool->Intern(meta);
        for (const std::string& leaf : leaves) pool->Intern(leaf);
        package.meta_groups.emplace_back(std::move(meta), std::move(leaves));
        break;
      }
      case Section::kDefaults: {
        std::size_t eq = line.find('=');
        if (eq == std::string_view::npos) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": expected '<var> = <value>'");
        }
        std::string name(util::Trim(line.substr(0, eq)));
        util::Result<double> value = util::ParseDouble(line.substr(eq + 1));
        if (!value.ok() || name.empty()) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": bad default entry");
        }
        pool->Intern(name);
        package.defaults.emplace_back(std::move(name), *value);
        break;
      }
    }
  }
  util::Result<prov::PolySet> polys = prov::ParsePolySet(poly_lines, pool);
  if (!polys.ok()) return polys.status();
  package.polynomials = std::move(*polys);
  return package;
}

CompressedPackage MakePackage(const Abstraction& abstraction,
                              const prov::Valuation& base,
                              const prov::VarPool& pool) {
  CompressedPackage package;
  package.polynomials = abstraction.compressed;
  for (const MetaVar& mv : abstraction.meta_vars) {
    std::vector<std::string> leaves;
    leaves.reserve(mv.leaves.size());
    for (prov::VarId leaf : mv.leaves) leaves.push_back(pool.Name(leaf));
    package.meta_groups.emplace_back(mv.name, std::move(leaves));
  }
  prov::Valuation defaults = abstraction.DefaultMetaValuation(base);
  for (prov::VarId v = 0; v < defaults.size(); ++v) {
    if (defaults.Get(v) != 1.0 && v < pool.size()) {
      package.defaults.emplace_back(pool.Name(v), defaults.Get(v));
    }
  }
  return package;
}

util::Status SavePackage(const CompressedPackage& package,
                         const prov::VarPool& pool, const std::string& path) {
  return util::WriteFile(path, SerializePackage(package, pool));
}

util::Result<CompressedPackage> LoadPackage(const std::string& path,
                                            prov::VarPool* pool) {
  util::Result<std::string> text = util::ReadFile(path);
  if (!text.ok()) return text.status();
  return ParsePackage(*text, pool);
}

}  // namespace cobra::core
