#include "core/io.h"

#include <bit>
#include <cctype>
#include <cstring>

#include "core/compiled_session.h"
#include "prov/parser.h"
#include "util/csv.h"
#include "util/hash.h"
#include "util/str.h"

namespace cobra::core {

namespace {

/// True iff `name` survives the text package round trip in the [meta] and
/// [defaults] sections: the identifier charset, which also excludes the
/// format's delimiters (`=`, `#`, `<-`) and any whitespace.
bool IsPackageVarName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      return false;
    }
  }
  return true;
}

/// Variables rendered inside a polynomial face a stricter rule: the parser
/// lexes a token starting with a digit or '.' as a *number*, so a name like
/// "1e5" would serialize fine and re-parse as the constant 100000 — a
/// silently different polynomial. Identifiers must start with a letter or
/// underscore.
bool IsPolyParsableName(std::string_view name) {
  if (!IsPackageVarName(name)) return false;
  return std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_';
}

util::Status BadName(const char* role, std::string_view name) {
  return util::Status::InvalidArgument(util::StrFormat(
      "SerializePackage: %s \"%s\" cannot be represented in the package "
      "format (names must match [A-Za-z0-9_.]+; polynomial variables must "
      "also start with a letter or '_')",
      role, std::string(name).c_str()));
}

/// Labels sit on the left of `label = polynomial` lines: they may contain
/// spaces, but an embedded `=` or newline, surrounding whitespace (trimmed
/// away on load), or a first character that reads as a comment or section
/// header would corrupt the round trip.
util::Status ValidateLabel(std::string_view label) {
  if (label.empty() || util::Trim(label) != label ||
      label.find('=') != std::string_view::npos ||
      label.find('\n') != std::string_view::npos || label[0] == '#' ||
      label[0] == '[') {
    return util::Status::InvalidArgument(util::StrFormat(
        "SerializePackage: label \"%s\" cannot be represented in the "
        "package format (labels must be trimmed, '='-free, and must not "
        "start with '#' or '[')",
        std::string(label).c_str()));
  }
  return util::Status::OK();
}

util::Status ValidatePackageNames(const CompressedPackage& package,
                                  const prov::VarPool& pool) {
  for (const std::string& label : package.polynomials.labels()) {
    COBRA_RETURN_IF_ERROR(ValidateLabel(label));
  }
  for (prov::VarId var : package.polynomials.AllVariables()) {
    if (var >= pool.size()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "SerializePackage: polynomial references variable id %u outside "
          "the pool (%zu variables)",
          var, pool.size()));
    }
    if (!IsPolyParsableName(pool.Name(var))) {
      return BadName("polynomial variable", pool.Name(var));
    }
  }
  for (const auto& [meta, leaves] : package.meta_groups) {
    if (!IsPackageVarName(meta)) return BadName("meta-variable", meta);
    for (const std::string& leaf : leaves) {
      if (!IsPackageVarName(leaf)) return BadName("meta-group leaf", leaf);
    }
  }
  for (const auto& [name, value] : package.defaults) {
    (void)value;
    if (!IsPackageVarName(name)) return BadName("default entry", name);
  }
  return util::Status::OK();
}

}  // namespace

util::Result<std::string> SerializePackage(const CompressedPackage& package,
                                           const prov::VarPool& pool) {
  COBRA_RETURN_IF_ERROR(ValidatePackageNames(package, pool));
  std::string out = "[polynomials]\n";
  out += package.polynomials.ToString(pool);
  out += "[meta]\n";
  for (const auto& [meta, leaves] : package.meta_groups) {
    out += meta;
    out += " <-";
    for (const std::string& leaf : leaves) {
      out += " ";
      out += leaf;
    }
    out += "\n";
  }
  out += "[defaults]\n";
  for (const auto& [name, value] : package.defaults) {
    out += name;
    out += " = ";
    out += util::FormatDouble(value, 12);
    out += "\n";
  }
  return out;
}

util::Result<CompressedPackage> ParsePackage(std::string_view text,
                                             prov::VarPool* pool) {
  CompressedPackage package;
  enum class Section { kNone, kPolynomials, kMeta, kDefaults };
  Section section = Section::kNone;
  std::string poly_lines;
  std::size_t line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line == "[polynomials]") {
      section = Section::kPolynomials;
      continue;
    }
    if (line == "[meta]") {
      section = Section::kMeta;
      continue;
    }
    if (line == "[defaults]") {
      section = Section::kDefaults;
      continue;
    }
    switch (section) {
      case Section::kNone:
        return util::Status::ParseError(
            "line " + std::to_string(line_no) +
            ": content before any [section] header");
      case Section::kPolynomials:
        poly_lines += std::string(line) + "\n";
        break;
      case Section::kMeta: {
        std::size_t arrow = line.find("<-");
        if (arrow == std::string_view::npos) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": expected '<meta> <- <leaves>'");
        }
        std::string meta(util::Trim(line.substr(0, arrow)));
        std::vector<std::string> leaves =
            util::SplitWhitespace(line.substr(arrow + 2));
        if (meta.empty() || leaves.empty()) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": empty meta group");
        }
        pool->Intern(meta);
        for (const std::string& leaf : leaves) pool->Intern(leaf);
        package.meta_groups.emplace_back(std::move(meta), std::move(leaves));
        break;
      }
      case Section::kDefaults: {
        std::size_t eq = line.find('=');
        if (eq == std::string_view::npos) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": expected '<var> = <value>'");
        }
        std::string name(util::Trim(line.substr(0, eq)));
        util::Result<double> value = util::ParseDouble(line.substr(eq + 1));
        if (!value.ok() || name.empty()) {
          return util::Status::ParseError("line " + std::to_string(line_no) +
                                          ": bad default entry");
        }
        pool->Intern(name);
        package.defaults.emplace_back(std::move(name), *value);
        break;
      }
    }
  }
  util::Result<prov::PolySet> polys = prov::ParsePolySet(poly_lines, pool);
  if (!polys.ok()) return polys.status();
  package.polynomials = std::move(*polys);
  return package;
}

CompressedPackage MakePackage(const Abstraction& abstraction,
                              const prov::Valuation& base,
                              const prov::VarPool& pool) {
  CompressedPackage package;
  package.polynomials = abstraction.compressed;
  for (const MetaVar& mv : abstraction.meta_vars) {
    std::vector<std::string> leaves;
    leaves.reserve(mv.leaves.size());
    for (prov::VarId leaf : mv.leaves) leaves.push_back(pool.Name(leaf));
    package.meta_groups.emplace_back(mv.name, std::move(leaves));
  }
  prov::Valuation defaults = abstraction.DefaultMetaValuation(base);
  for (prov::VarId v = 0; v < defaults.size(); ++v) {
    if (defaults.Get(v) != 1.0 && v < pool.size()) {
      package.defaults.emplace_back(pool.Name(v), defaults.Get(v));
    }
  }
  return package;
}

util::Status SavePackage(const CompressedPackage& package,
                         const prov::VarPool& pool, const std::string& path) {
  util::Result<std::string> text = SerializePackage(package, pool);
  if (!text.ok()) return text.status();
  return util::WriteFile(path, *text);
}

util::Result<CompressedPackage> LoadPackage(const std::string& path,
                                            prov::VarPool* pool) {
  util::Result<std::string> text = util::ReadFile(path);
  if (!text.ok()) {
    // Transient: the file may simply not be published (or readable) yet.
    // The message already names the path.
    return util::Status::Unavailable(text.status().message());
  }
  if (util::Trim(*text).empty()) {
    // Also transient: an empty file is what a writer that has opened but
    // not yet flushed the package looks like.
    return util::Status::Unavailable("package file " + path +
                                     ": file is empty");
  }
  util::Result<CompressedPackage> package = ParsePackage(*text, pool);
  if (!package.ok()) {
    // Permanent: the file is fully present but malformed — re-reading it
    // reproduces the same failure, so callers should not retry.
    return util::Status::DataLoss("package file " + path + ": " +
                                  package.status().message());
  }
  return package;
}

// ---------------------------------------------------------------------------
// Binary snapshot format.
//
// Layout (all integers little-endian):
//
//   magic              8 bytes  "COBRASNP"
//   format_version     u32      kSnapshotFormatVersion
//   payload_size       u64      bytes following the header
//   payload_checksum   u64      FNV-1a (util::HashBytes) of the payload
//   payload:
//     pool_names       u64 count, then per name: u32 length + bytes
//     labels           u64 count, then strings as above
//     meta_vars        u64 count, then per entry:
//                        u32 var, u32 node, string name,
//                        u64 leaf count, u32 leaves...
//     leaf_to_meta     u64 count, u32 entries
//     full_program     4 arrays, each u64 count + elements
//                        (u32 poly_starts / u32 term_starts /
//                         f64-as-u64-bits coeffs / u32 factors)
//     compressed_program  same shape
//     default_meta     u64 count, f64-as-u64-bits values
// ---------------------------------------------------------------------------

namespace {

constexpr char kSnapshotMagic[8] = {'C', 'O', 'B', 'R', 'A', 'S', 'N', 'P'};
constexpr std::size_t kSnapshotHeaderSize = 8 + 4 + 8 + 8;

class BinaryWriter {
 public:
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void U32Vec(const std::vector<std::uint32_t>& v) {
    U64(v.size());
    for (std::uint32_t x : v) U32(x);
  }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    for (double x : v) F64(x);
  }
  void StrVec(const std::vector<std::string>& v) {
    U64(v.size());
    for (const std::string& s : v) Str(s);
  }
  void Program(const EvalProgramImage& p) {
    U32Vec(p.poly_starts);
    U32Vec(p.term_starts);
    F64Vec(p.coeffs);
    U32Vec(p.factors);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over the snapshot payload. Every
/// failure names the source (file path) and the byte offset, so a truncated
/// or corrupted artifact is diagnosable from the message alone.
class BinaryReader {
 public:
  BinaryReader(std::string_view data, const std::string& source)
      : data_(data), source_(source) {}

  util::Status U32(std::uint32_t* out) {
    COBRA_RETURN_IF_ERROR(Need(4, "a 32-bit field"));
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return util::Status::OK();
  }

  util::Status U64(std::uint64_t* out) {
    COBRA_RETURN_IF_ERROR(Need(8, "a 64-bit field"));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return util::Status::OK();
  }

  util::Status F64(double* out) {
    std::uint64_t bits = 0;
    COBRA_RETURN_IF_ERROR(U64(&bits));
    *out = std::bit_cast<double>(bits);
    return util::Status::OK();
  }

  util::Status Str(std::string* out) {
    std::uint32_t length = 0;
    COBRA_RETURN_IF_ERROR(U32(&length));
    COBRA_RETURN_IF_ERROR(Need(length, "string bytes"));
    out->assign(data_.substr(pos_, length));
    pos_ += length;
    return util::Status::OK();
  }

  /// Reads a u64 element count, guarding against counts that could not
  /// possibly fit in the remaining bytes (`min_elem_size` bytes each), so a
  /// corrupted length reads as "truncated" instead of an allocation bomb.
  util::Status Count(std::size_t min_elem_size, std::size_t* out) {
    std::uint64_t count = 0;
    COBRA_RETURN_IF_ERROR(U64(&count));
    if (count > (data_.size() - pos_) / min_elem_size) {
      return Fail("an element count larger than the remaining payload");
    }
    *out = static_cast<std::size_t>(count);
    return util::Status::OK();
  }

  util::Status U32Vec(std::vector<std::uint32_t>* out) {
    std::size_t count = 0;
    COBRA_RETURN_IF_ERROR(Count(4, &count));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      COBRA_RETURN_IF_ERROR(U32(&(*out)[i]));
    }
    return util::Status::OK();
  }

  util::Status F64Vec(std::vector<double>* out) {
    std::size_t count = 0;
    COBRA_RETURN_IF_ERROR(Count(8, &count));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      COBRA_RETURN_IF_ERROR(F64(&(*out)[i]));
    }
    return util::Status::OK();
  }

  util::Status StrVec(std::vector<std::string>* out) {
    std::size_t count = 0;
    COBRA_RETURN_IF_ERROR(Count(4, &count));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      COBRA_RETURN_IF_ERROR(Str(&(*out)[i]));
    }
    return util::Status::OK();
  }

  util::Status Program(EvalProgramImage* out) {
    COBRA_RETURN_IF_ERROR(U32Vec(&out->poly_starts));
    COBRA_RETURN_IF_ERROR(U32Vec(&out->term_starts));
    COBRA_RETURN_IF_ERROR(F64Vec(&out->coeffs));
    COBRA_RETURN_IF_ERROR(U32Vec(&out->factors));
    return util::Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t pos() const { return pos_; }

  util::Status Fail(const std::string& what) const {
    // The reader only ever walks a payload whose checksum already matched,
    // so a malformed field means the artifact is intact but wrong —
    // permanent corruption, not a torn write.
    return util::Status::DataLoss(
        util::StrFormat("snapshot %s: %s at payload byte %zu",
                        source_.c_str(), what.c_str(), pos_));
  }

 private:
  util::Status Need(std::size_t bytes, const char* what) const {
    if (data_.size() - pos_ < bytes) {
      return Fail(std::string("truncated payload: expected ") + what);
    }
    return util::Status::OK();
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  const std::string& source_;
};

EvalProgramImage ImageOf(const prov::EvalProgram& program) {
  return EvalProgramImage{program.poly_starts(), program.term_starts(),
                          program.coeffs(), program.factors()};
}

}  // namespace

SnapshotPackage MakeSnapshot(const CompiledSession& session) {
  SnapshotPackage snapshot;
  snapshot.pool_names = session.pool().NamesUpTo(session.pool_size());
  snapshot.labels = session.labels();
  snapshot.meta_vars = session.meta_vars();
  snapshot.leaf_to_meta = session.leaf_to_meta();
  snapshot.full_program = ImageOf(session.full_program());
  snapshot.compressed_program = ImageOf(session.compressed_program());
  // The default valuation is serialized dense over exactly the frozen pool:
  // entries beyond it (possible after WithDefaultMetaValuation with an
  // oversized valuation) are unobservable through any snapshot evaluation,
  // since the programs and meta-variables only reference frozen ids.
  snapshot.default_meta.reserve(session.pool_size());
  for (prov::VarId v = 0; v < session.pool_size(); ++v) {
    snapshot.default_meta.push_back(session.default_meta_valuation().Get(v));
  }
  return snapshot;
}

std::string SerializeSnapshot(const SnapshotPackage& snapshot) {
  BinaryWriter payload;
  payload.StrVec(snapshot.pool_names);
  payload.StrVec(snapshot.labels);
  payload.U64(snapshot.meta_vars.size());
  for (const MetaVar& mv : snapshot.meta_vars) {
    payload.U32(mv.var);
    payload.U32(mv.node);
    payload.Str(mv.name);
    payload.U64(mv.leaves.size());
    for (prov::VarId leaf : mv.leaves) payload.U32(leaf);
  }
  payload.U32Vec(snapshot.leaf_to_meta);
  payload.Program(snapshot.full_program);
  payload.Program(snapshot.compressed_program);
  payload.F64Vec(snapshot.default_meta);
  const std::string body = payload.Take();

  BinaryWriter out;
  std::string header(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.U32(kSnapshotFormatVersion);
  out.U64(body.size());
  out.U64(util::HashBytes(body));
  return header + out.Take() + body;
}

util::Result<SnapshotPackage> ParseSnapshot(std::string_view data,
                                            const std::string& source) {
  // Failure classification (the serve-layer retry loops branch on it):
  // an empty or short file is what an in-progress (torn) write looks like,
  // so those fail `Unavailable` — transient, retry may succeed once the
  // writer finishes. A file with the wrong magic, version, or checksum is
  // complete but damaged: `DataLoss`, permanent, quarantine instead of
  // retrying.
  auto transient = [&source](const std::string& what) {
    return util::Status::Unavailable("snapshot " + source + ": " + what);
  };
  auto corrupt = [&source](const std::string& what) {
    return util::Status::DataLoss("snapshot " + source + ": " + what);
  };
  if (data.empty()) return transient("file is empty");
  if (data.size() < kSnapshotHeaderSize) {
    return transient(util::StrFormat(
        "file is only %zu bytes — smaller than the %zu-byte header",
        data.size(), kSnapshotHeaderSize));
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return corrupt("bad magic (not a COBRA snapshot file)");
  }
  BinaryReader header(data.substr(sizeof(kSnapshotMagic)), source);
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
  COBRA_RETURN_IF_ERROR(header.U32(&version));
  COBRA_RETURN_IF_ERROR(header.U64(&payload_size));
  COBRA_RETURN_IF_ERROR(header.U64(&checksum));
  if (version != kSnapshotFormatVersion) {
    return corrupt(util::StrFormat(
        "unsupported format version %u (this build reads version %u)",
        version, kSnapshotFormatVersion));
  }
  std::string_view payload = data.substr(kSnapshotHeaderSize);
  if (payload.size() < payload_size) {
    // Fewer bytes than the header promises: a torn write that may still be
    // in progress — transient.
    return transient(util::StrFormat(
        "truncated: header promises %llu payload bytes but %zu are present",
        static_cast<unsigned long long>(payload_size), payload.size()));
  }
  if (payload.size() > payload_size) {
    return corrupt(util::StrFormat(
        "oversized: header promises %llu payload bytes but %zu are present",
        static_cast<unsigned long long>(payload_size), payload.size()));
  }
  if (util::HashBytes(payload) != checksum) {
    return corrupt("payload checksum mismatch (file is corrupted)");
  }

  BinaryReader reader(payload, source);
  SnapshotPackage snapshot;
  COBRA_RETURN_IF_ERROR(reader.StrVec(&snapshot.pool_names));
  COBRA_RETURN_IF_ERROR(reader.StrVec(&snapshot.labels));
  std::size_t meta_count = 0;
  COBRA_RETURN_IF_ERROR(reader.Count(4 + 4 + 4 + 8, &meta_count));
  snapshot.meta_vars.resize(meta_count);
  for (MetaVar& mv : snapshot.meta_vars) {
    COBRA_RETURN_IF_ERROR(reader.U32(&mv.var));
    COBRA_RETURN_IF_ERROR(reader.U32(&mv.node));
    COBRA_RETURN_IF_ERROR(reader.Str(&mv.name));
    std::size_t leaf_count = 0;
    COBRA_RETURN_IF_ERROR(reader.Count(4, &leaf_count));
    mv.leaves.resize(leaf_count);
    for (prov::VarId& leaf : mv.leaves) {
      COBRA_RETURN_IF_ERROR(reader.U32(&leaf));
    }
  }
  COBRA_RETURN_IF_ERROR(reader.U32Vec(&snapshot.leaf_to_meta));
  COBRA_RETURN_IF_ERROR(reader.Program(&snapshot.full_program));
  COBRA_RETURN_IF_ERROR(reader.Program(&snapshot.compressed_program));
  COBRA_RETURN_IF_ERROR(reader.F64Vec(&snapshot.default_meta));
  if (!reader.AtEnd()) {
    return reader.Fail("trailing bytes after the last field");
  }
  return snapshot;
}

util::Status SaveSnapshot(const CompiledSession& session,
                          const std::string& path) {
  return util::WriteFile(path, SerializeSnapshot(MakeSnapshot(session)));
}

util::Result<std::shared_ptr<const CompiledSession>> LoadSnapshot(
    const std::string& path) {
  util::Result<std::string> data = util::ReadFile(path);
  if (!data.ok()) {
    // Transient: a missing or unreadable file is the not-yet-published /
    // mid-rename case. The message already names the path.
    return util::Status::Unavailable(data.status().message());
  }
  util::Result<SnapshotPackage> snapshot = ParseSnapshot(*data, path);
  if (!snapshot.ok()) return snapshot.status();
  util::Result<std::shared_ptr<const CompiledSession>> session =
      CompiledSession::FromSnapshot(*snapshot);
  if (!session.ok()) {
    // The bytes parsed (format + checksum OK) but the content failed the
    // structural verifier or session rebuild: permanently bad artifact.
    return util::Status::DataLoss("snapshot " + path + ": " +
                                  session.status().message());
  }
  return session;
}

}  // namespace cobra::core
