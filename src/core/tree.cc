#include "core/tree.h"

#include <algorithm>
#include <unordered_set>

#include "util/str.h"

namespace cobra::core {

NodeId AbstractionTree::AddRoot(std::string name) {
  COBRA_CHECK_MSG(nodes_.empty(), "AddRoot: root already exists");
  nodes_.push_back(Node{std::move(name), kNoNode, {}, prov::kInvalidVar});
  return 0;
}

NodeId AbstractionTree::AddChild(NodeId parent, std::string name) {
  COBRA_CHECK_MSG(parent < nodes_.size(), "AddChild: bad parent");
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), parent, {}, prov::kInvalidVar});
  nodes_[parent].children.push_back(id);
  return id;
}

NodeId AbstractionTree::AddLeaf(NodeId parent, std::string_view var_name,
                                prov::VarPool* pool) {
  NodeId id = AddChild(parent, std::string(var_name));
  nodes_[id].var = pool->Intern(var_name);
  return id;
}

void AbstractionTree::SetLeafVar(NodeId id, prov::VarId var) {
  COBRA_CHECK_MSG(id < nodes_.size() && nodes_[id].IsLeaf(),
                  "SetLeafVar: not a leaf");
  nodes_[id].var = var;
}

std::size_t AbstractionTree::Depth(NodeId id) const {
  std::size_t depth = 0;
  while (nodes_[id].parent != kNoNode) {
    id = nodes_[id].parent;
    ++depth;
  }
  return depth;
}

std::size_t AbstractionTree::MaxDepth() const {
  std::size_t depth = 0;
  for (NodeId leaf : Leaves()) depth = std::max(depth, Depth(leaf));
  return depth;
}

std::vector<NodeId> AbstractionTree::Leaves() const {
  return LeavesUnder(root());
}

std::vector<NodeId> AbstractionTree::LeavesUnder(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    const Node& n = nodes_[v];
    if (n.IsLeaf()) {
      out.push_back(v);
    } else {
      // Push children reversed so DFS emits them left to right.
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return out;
}

std::vector<NodeId> AbstractionTree::PostOrder() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  std::vector<std::pair<NodeId, bool>> stack{{root(), false}};
  while (!stack.empty()) {
    auto [v, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      out.push_back(v);
      continue;
    }
    stack.push_back({v, true});
    const Node& n = nodes_[v];
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }
  return out;
}

NodeId AbstractionTree::FindByName(std::string_view name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return kNoNode;
}

NodeId AbstractionTree::FindLeafByVar(prov::VarId var) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].IsLeaf() && nodes_[i].var == var) return i;
  }
  return kNoNode;
}

std::uint64_t AbstractionTree::CountCutsAt(NodeId id) const {
  constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
  const Node& n = nodes_[id];
  if (n.IsLeaf()) return 1;
  std::uint64_t product = 1;
  for (NodeId c : n.children) {
    std::uint64_t cc = CountCutsAt(c);
    if (product > kCap / cc) return kCap;  // saturate
    product *= cc;
  }
  return product >= kCap ? kCap : product + 1;
}

std::uint64_t AbstractionTree::CountCuts() const {
  if (nodes_.empty()) return 0;
  return CountCutsAt(root());
}

util::Status AbstractionTree::Validate() const {
  if (nodes_.empty()) {
    return util::Status::FailedPrecondition("abstraction tree is empty");
  }
  std::unordered_set<std::string> names;
  std::unordered_set<prov::VarId> vars;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!names.insert(n.name).second) {
      return util::Status::InvalidArgument("duplicate node name in tree: " +
                                           n.name);
    }
    if (i == 0) {
      if (n.parent != kNoNode) {
        return util::Status::Internal("root has a parent");
      }
    } else if (n.parent == kNoNode || n.parent >= nodes_.size()) {
      return util::Status::Internal("node " + n.name + " has no valid parent");
    }
    if (n.IsLeaf()) {
      if (n.var == prov::kInvalidVar) {
        return util::Status::InvalidArgument(
            "leaf without a variable: " + n.name +
            " (inner nodes need at least one child)");
      }
      if (!vars.insert(n.var).second) {
        return util::Status::InvalidArgument(
            "variable appears on two leaves: " + n.name);
      }
    }
  }
  return util::Status::OK();
}

std::string AbstractionTree::ToString() const {
  std::string out;
  std::vector<std::pair<NodeId, std::size_t>> stack{{root(), 0}};
  while (!stack.empty()) {
    auto [v, depth] = stack.back();
    stack.pop_back();
    out.append(depth * 2, ' ');
    out += nodes_[v].name;
    out += "\n";
    const Node& n = nodes_[v];
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

util::Result<AbstractionTree> ParseTree(std::string_view text,
                                        prov::VarPool* pool) {
  AbstractionTree tree;
  // Stack of (indent, node) along the current root-to-node path.
  std::vector<std::pair<std::size_t, NodeId>> path;
  std::size_t line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = raw;
    // Strip comments and trailing whitespace.
    std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    std::size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    std::string_view name = util::Trim(line);
    if (name.empty()) continue;
    if (name.find('\t') != std::string_view::npos) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": tabs are not allowed; use spaces");
    }
    if (!tree.HasRoot()) {
      if (indent != 0) {
        return util::Status::ParseError("line " + std::to_string(line_no) +
                                        ": first node must not be indented");
      }
      NodeId id = tree.AddRoot(std::string(name));
      path.push_back({0, id});
      continue;
    }
    // Pop to the nearest ancestor with smaller indentation.
    while (!path.empty() && path.back().first >= indent) path.pop_back();
    if (path.empty()) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": multiple roots (indentation 0)");
    }
    NodeId id = tree.AddChild(path.back().second, std::string(name));
    path.push_back({indent, id});
  }
  if (!tree.HasRoot()) {
    return util::Status::ParseError("tree text contained no nodes");
  }
  // Childless nodes are leaves: intern their names as variables.
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.node(i).IsLeaf()) {
      tree.SetLeafVar(i, pool->Intern(tree.node(i).name));
    }
  }
  util::Status valid = tree.Validate();
  if (!valid.ok()) return valid;
  return tree;
}

}  // namespace cobra::core
