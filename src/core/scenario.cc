#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/rng.h"

namespace cobra::core {
namespace {

// All source fingerprints share one seed pair and lead with a kind tag, so
// two different generator kinds can never collide by feeding the same spec
// words. The seeds differ from the plan-layer scenario/base fingerprint
// seeds (batch_plan.cc), keeping the two fingerprint families disjoint.
constexpr std::uint64_t kSourceSeedLo = 0x452821e638d01377ULL;
constexpr std::uint64_t kSourceSeedHi = 0xbe5466cf34e90c6cULL;

enum class SourceKind : std::uint64_t {
  kExplicit = 1,
  kCartesian = 2,
  kSampled = 3,
  kConcat = 4,
  kCompose = 5,
};

util::Hash128 NewSourceHash(SourceKind kind) {
  util::Hash128 hash(kSourceSeedLo, kSourceSeedHi);
  hash.Feed(static_cast<std::uint64_t>(kind));
  return hash;
}

std::uint64_t DoubleBits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void FeedScenario(util::Hash128* hash, const Scenario& scenario) {
  hash->FeedBytes(scenario.name);
  hash->Feed(scenario.deltas.size());
  for (const Scenario::Delta& delta : scenario.deltas) {
    hash->FeedBytes(delta.var);
    hash->Feed(DoubleBits(delta.value));
  }
}

SourceFingerprint Finish(const util::Hash128& hash) {
  return SourceFingerprint{hash.lo(), hash.hi()};
}

// Sources cap their space at 2^62 so begin+count arithmetic in Generate and
// outer*inner products in ComposeSource cannot overflow uint64.
constexpr std::uint64_t kMaxSourceSize = 1ULL << 62;

util::Status CheckWindow(std::uint64_t begin, std::uint64_t count,
                         std::uint64_t size, const char* what) {
  if (begin > size || count > size - begin) {
    return util::Status::InvalidArgument(
        std::string(what) + ": Generate window [" + std::to_string(begin) +
        ", " + std::to_string(begin + count) + ") exceeds source size " +
        std::to_string(size));
  }
  return util::Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- ScenarioSet

util::Result<ScenarioSet::Handle> ScenarioSet::Add(std::string name) {
  if (!names_.insert(name).second) {
    return util::Status::InvalidArgument("ScenarioSet: duplicate scenario name \"" +
                                         name + "\"");
  }
  scenarios_.push_back(Scenario{std::move(name), {}});
  return Handle(this, scenarios_.size() - 1);
}

util::Result<ScenarioSet::Handle> ScenarioSet::Add(Scenario scenario) {
  if (!names_.insert(scenario.name).second) {
    return util::Status::InvalidArgument("ScenarioSet: duplicate scenario name \"" +
                                         scenario.name + "\"");
  }
  scenarios_.push_back(std::move(scenario));
  return Handle(this, scenarios_.size() - 1);
}

void ScenarioSet::Reserve(std::size_t n) {
  scenarios_.reserve(n);
  names_.reserve(n);
}

void ScenarioSet::Clear() {
  scenarios_.clear();
  names_.clear();
}

std::vector<std::string> ScenarioSet::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) names.push_back(s.name);
  return names;
}

// ---------------------------------------------------------- SourceFingerprint

std::string SourceFingerprint::ToHex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buffer);
}

// ------------------------------------------------------------- ScenarioSource

util::Result<ScenarioSet> ScenarioSource::Materialize() const {
  const std::uint64_t n = size();
  ScenarioSet out;
  out.Reserve(static_cast<std::size_t>(n));
  COBRA_RETURN_IF_ERROR(Generate(0, n, &out));
  return out;
}

// ------------------------------------------------------------- ExplicitSource

ExplicitSource::ExplicitSource(ScenarioSet scenarios)
    : scenarios_(std::move(scenarios)) {
  util::Hash128 hash = NewSourceHash(SourceKind::kExplicit);
  hash.Feed(scenarios_.size());
  for (const Scenario& s : scenarios_.scenarios()) {
    max_deltas_ = std::max(max_deltas_, s.deltas.size());
    FeedScenario(&hash, s);
  }
  fingerprint_ = Finish(hash);
}

util::Result<std::shared_ptr<const ExplicitSource>> ExplicitSource::Create(
    ScenarioSet scenarios) {
  if (scenarios.empty()) {
    return util::Status::InvalidArgument(
        "ExplicitSource: empty scenario set");
  }
  return std::shared_ptr<const ExplicitSource>(
      new ExplicitSource(std::move(scenarios)));
}

std::uint64_t ExplicitSource::size() const { return scenarios_.size(); }

std::size_t ExplicitSource::max_deltas() const { return max_deltas_; }

SourceFingerprint ExplicitSource::fingerprint() const { return fingerprint_; }

util::Status ExplicitSource::Generate(std::uint64_t begin, std::uint64_t count,
                                      ScenarioSet* out) const {
  COBRA_RETURN_IF_ERROR(CheckWindow(begin, count, size(), "ExplicitSource"));
  for (std::uint64_t i = begin; i < begin + count; ++i) {
    util::Result<ScenarioSet::Handle> added =
        out->Add(scenarios_.scenario(static_cast<std::size_t>(i)));
    if (!added.ok()) return added.status();
  }
  return util::Status::OK();
}

// ------------------------------------------------------------ CartesianSource

ValueAxis LinSpace(std::string var, double lo, double hi, std::size_t steps) {
  ValueAxis axis;
  axis.var = std::move(var);
  axis.values.reserve(steps);
  for (std::size_t j = 0; j < steps; ++j) {
    // Endpoints are exact (no accumulated increment error): the last value
    // is `hi` itself, not lo + (steps-1)*step.
    axis.values.push_back(
        j + 1 == steps && steps > 1
            ? hi
            : lo + (hi - lo) * static_cast<double>(j) /
                  static_cast<double>(steps > 1 ? steps - 1 : 1));
  }
  return axis;
}

CartesianSource::CartesianSource(std::vector<ValueAxis> axes,
                                 std::string name_prefix, std::uint64_t size)
    : axes_(std::move(axes)),
      name_prefix_(std::move(name_prefix)),
      size_(size) {}

util::Result<std::shared_ptr<const CartesianSource>> CartesianSource::Create(
    std::vector<ValueAxis> axes, std::string name_prefix) {
  if (axes.empty()) {
    return util::Status::InvalidArgument("CartesianSource: no axes");
  }
  std::unordered_set<std::string> vars;
  std::uint64_t size = 1;
  for (const ValueAxis& axis : axes) {
    if (axis.var.empty()) {
      return util::Status::InvalidArgument(
          "CartesianSource: empty axis variable name");
    }
    if (!vars.insert(axis.var).second) {
      return util::Status::InvalidArgument(
          "CartesianSource: variable \"" + axis.var +
          "\" appears on more than one axis");
    }
    if (axis.values.empty()) {
      return util::Status::InvalidArgument(
          "CartesianSource: axis \"" + axis.var + "\" has no values");
    }
    for (double v : axis.values) {
      if (!std::isfinite(v)) {
        return util::Status::InvalidArgument(
            "CartesianSource: axis \"" + axis.var +
            "\" contains a non-finite value");
      }
    }
    if (size > kMaxSourceSize / axis.values.size()) {
      return util::Status::InvalidArgument(
          "CartesianSource: grid size overflows 2^62 scenarios");
    }
    size *= axis.values.size();
  }
  return std::shared_ptr<const CartesianSource>(new CartesianSource(
      std::move(axes), std::move(name_prefix), size));
}

SourceFingerprint CartesianSource::fingerprint() const {
  util::Hash128 hash = NewSourceHash(SourceKind::kCartesian);
  hash.FeedBytes(name_prefix_);
  hash.Feed(axes_.size());
  for (const ValueAxis& axis : axes_) {
    hash.FeedBytes(axis.var);
    hash.Feed(axis.values.size());
    for (double v : axis.values) hash.Feed(DoubleBits(v));
  }
  return Finish(hash);
}

util::Status CartesianSource::Generate(std::uint64_t begin,
                                       std::uint64_t count,
                                       ScenarioSet* out) const {
  COBRA_RETURN_IF_ERROR(CheckWindow(begin, count, size_, "CartesianSource"));
  const std::size_t num_axes = axes_.size();
  std::vector<std::size_t> digits(num_axes, 0);
  for (std::uint64_t i = begin; i < begin + count; ++i) {
    // Mixed-radix decomposition, last axis fastest (row major).
    std::uint64_t rem = i;
    for (std::size_t a = num_axes; a-- > 0;) {
      const std::uint64_t radix = axes_[a].values.size();
      digits[a] = static_cast<std::size_t>(rem % radix);
      rem /= radix;
    }
    Scenario scenario;
    scenario.name = name_prefix_ + "-" + std::to_string(i);
    scenario.deltas.reserve(num_axes);
    for (std::size_t a = 0; a < num_axes; ++a) {
      scenario.deltas.push_back({axes_[a].var, axes_[a].values[digits[a]]});
    }
    util::Result<ScenarioSet::Handle> added = out->Add(std::move(scenario));
    if (!added.ok()) return added.status();
  }
  return util::Status::OK();
}

// -------------------------------------------------------------- SampledSource

SampledSource::SampledSource(std::vector<RangeAxis> axes, std::uint64_t count,
                             std::uint64_t seed, std::string name_prefix)
    : axes_(std::move(axes)),
      count_(count),
      seed_(seed),
      name_prefix_(std::move(name_prefix)) {}

util::Result<std::shared_ptr<const SampledSource>> SampledSource::Create(
    std::vector<RangeAxis> axes, std::uint64_t count, std::uint64_t seed,
    std::string name_prefix) {
  if (count == 0) {
    return util::Status::InvalidArgument("SampledSource: count must be > 0");
  }
  if (count > kMaxSourceSize) {
    return util::Status::InvalidArgument(
        "SampledSource: count overflows 2^62 scenarios");
  }
  if (axes.empty()) {
    return util::Status::InvalidArgument("SampledSource: no axes");
  }
  std::unordered_set<std::string> vars;
  for (const RangeAxis& axis : axes) {
    if (axis.var.empty()) {
      return util::Status::InvalidArgument(
          "SampledSource: empty axis variable name");
    }
    if (!vars.insert(axis.var).second) {
      return util::Status::InvalidArgument(
          "SampledSource: variable \"" + axis.var +
          "\" appears on more than one axis");
    }
    if (!std::isfinite(axis.lo) || !std::isfinite(axis.hi) ||
        axis.lo > axis.hi) {
      return util::Status::InvalidArgument(
          "SampledSource: axis \"" + axis.var +
          "\" range is not a finite [lo, hi] interval");
    }
  }
  return std::shared_ptr<const SampledSource>(new SampledSource(
      std::move(axes), count, seed, std::move(name_prefix)));
}

SourceFingerprint SampledSource::fingerprint() const {
  util::Hash128 hash = NewSourceHash(SourceKind::kSampled);
  hash.FeedBytes(name_prefix_);
  hash.Feed(count_);
  hash.Feed(seed_);
  hash.Feed(axes_.size());
  for (const RangeAxis& axis : axes_) {
    hash.FeedBytes(axis.var);
    hash.Feed(DoubleBits(axis.lo));
    hash.Feed(DoubleBits(axis.hi));
  }
  return Finish(hash);
}

util::Status SampledSource::Generate(std::uint64_t begin, std::uint64_t count,
                                     ScenarioSet* out) const {
  COBRA_RETURN_IF_ERROR(CheckWindow(begin, count, count_, "SampledSource"));
  for (std::uint64_t i = begin; i < begin + count; ++i) {
    // One decorrelated stream per ordinal: the draw depends only on
    // (seed, i), so any chunking of the space samples identically.
    util::Rng rng = util::Rng(seed_).Fork(i);
    Scenario scenario;
    scenario.name = name_prefix_ + "-" + std::to_string(i);
    scenario.deltas.reserve(axes_.size());
    for (const RangeAxis& axis : axes_) {
      scenario.deltas.push_back(
          {axis.var, rng.NextDoubleInRange(axis.lo, axis.hi)});
    }
    util::Result<ScenarioSet::Handle> added = out->Add(std::move(scenario));
    if (!added.ok()) return added.status();
  }
  return util::Status::OK();
}

// --------------------------------------------------------------- ConcatSource

ConcatSource::ConcatSource(
    std::vector<std::shared_ptr<const ScenarioSource>> parts,
    std::uint64_t size, std::size_t max_deltas)
    : parts_(std::move(parts)), size_(size), max_deltas_(max_deltas) {}

util::Result<std::shared_ptr<const ConcatSource>> ConcatSource::Create(
    std::vector<std::shared_ptr<const ScenarioSource>> parts) {
  if (parts.empty()) {
    return util::Status::InvalidArgument("ConcatSource: no parts");
  }
  std::uint64_t size = 0;
  std::size_t max_deltas = 0;
  for (const std::shared_ptr<const ScenarioSource>& part : parts) {
    if (part == nullptr) {
      return util::Status::InvalidArgument("ConcatSource: null part");
    }
    if (part->size() > kMaxSourceSize - size) {
      return util::Status::InvalidArgument(
          "ConcatSource: total size overflows 2^62 scenarios");
    }
    size += part->size();
    max_deltas = std::max(max_deltas, part->max_deltas());
  }
  return std::shared_ptr<const ConcatSource>(
      new ConcatSource(std::move(parts), size, max_deltas));
}

SourceFingerprint ConcatSource::fingerprint() const {
  util::Hash128 hash = NewSourceHash(SourceKind::kConcat);
  hash.Feed(parts_.size());
  for (const std::shared_ptr<const ScenarioSource>& part : parts_) {
    SourceFingerprint fp = part->fingerprint();
    hash.Feed(fp.lo);
    hash.Feed(fp.hi);
  }
  return Finish(hash);
}

util::Status ConcatSource::Generate(std::uint64_t begin, std::uint64_t count,
                                    ScenarioSet* out) const {
  COBRA_RETURN_IF_ERROR(CheckWindow(begin, count, size_, "ConcatSource"));
  std::uint64_t part_begin = 0;
  for (const std::shared_ptr<const ScenarioSource>& part : parts_) {
    if (count == 0) break;
    const std::uint64_t part_end = part_begin + part->size();
    if (begin < part_end) {
      const std::uint64_t local = begin - part_begin;
      const std::uint64_t take = std::min(count, part->size() - local);
      COBRA_RETURN_IF_ERROR(part->Generate(local, take, out));
      begin += take;
      count -= take;
    }
    part_begin = part_end;
  }
  return util::Status::OK();
}

// -------------------------------------------------------------- ComposeSource

ComposeSource::ComposeSource(std::shared_ptr<const ScenarioSource> outer,
                             std::shared_ptr<const ScenarioSource> inner,
                             std::string name_sep, std::uint64_t size,
                             std::size_t max_deltas)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      name_sep_(std::move(name_sep)),
      size_(size),
      max_deltas_(max_deltas) {}

util::Result<std::shared_ptr<const ComposeSource>> ComposeSource::Create(
    std::shared_ptr<const ScenarioSource> outer,
    std::shared_ptr<const ScenarioSource> inner, std::string name_sep) {
  if (outer == nullptr || inner == nullptr) {
    return util::Status::InvalidArgument("ComposeSource: null child source");
  }
  if (outer->size() == 0 || inner->size() == 0) {
    return util::Status::InvalidArgument("ComposeSource: empty child source");
  }
  if (outer->size() > kMaxSourceSize / inner->size()) {
    return util::Status::InvalidArgument(
        "ComposeSource: product overflows 2^62 scenarios");
  }
  const std::uint64_t size = outer->size() * inner->size();
  const std::size_t max_deltas = outer->max_deltas() + inner->max_deltas();
  return std::shared_ptr<const ComposeSource>(
      new ComposeSource(std::move(outer), std::move(inner),
                        std::move(name_sep), size, max_deltas));
}

SourceFingerprint ComposeSource::fingerprint() const {
  util::Hash128 hash = NewSourceHash(SourceKind::kCompose);
  hash.FeedBytes(name_sep_);
  const SourceFingerprint a = outer_->fingerprint();
  const SourceFingerprint b = inner_->fingerprint();
  hash.Feed(a.lo);
  hash.Feed(a.hi);
  hash.Feed(b.lo);
  hash.Feed(b.hi);
  return Finish(hash);
}

util::Status ComposeSource::Generate(std::uint64_t begin, std::uint64_t count,
                                     ScenarioSet* out) const {
  COBRA_RETURN_IF_ERROR(CheckWindow(begin, count, size_, "ComposeSource"));
  const std::uint64_t inner_n = inner_->size();
  std::uint64_t i = begin;
  const std::uint64_t end = begin + count;
  while (i < end) {
    // One outer scenario covers the contiguous run [oi*inner_n,
    // (oi+1)*inner_n); generate it once and cross it with the inner slice.
    const std::uint64_t oi = i / inner_n;
    const std::uint64_t inner_lo = i % inner_n;
    const std::uint64_t inner_hi = std::min(inner_n, inner_lo + (end - i));
    ScenarioSet outer_one;
    COBRA_RETURN_IF_ERROR(outer_->Generate(oi, 1, &outer_one));
    ScenarioSet inner_slice;
    inner_slice.Reserve(static_cast<std::size_t>(inner_hi - inner_lo));
    COBRA_RETURN_IF_ERROR(
        inner_->Generate(inner_lo, inner_hi - inner_lo, &inner_slice));
    const Scenario& outer_scenario = outer_one.scenario(0);
    for (const Scenario& inner_scenario : inner_slice.scenarios()) {
      Scenario composed;
      composed.name = outer_scenario.name + name_sep_ + inner_scenario.name;
      composed.deltas.reserve(outer_scenario.deltas.size() +
                              inner_scenario.deltas.size());
      composed.deltas.insert(composed.deltas.end(),
                             outer_scenario.deltas.begin(),
                             outer_scenario.deltas.end());
      composed.deltas.insert(composed.deltas.end(),
                             inner_scenario.deltas.begin(),
                             inner_scenario.deltas.end());
      util::Result<ScenarioSet::Handle> added = out->Add(std::move(composed));
      if (!added.ok()) return added.status();
    }
    i += inner_hi - inner_lo;
  }
  return util::Status::OK();
}

// ---------------------------------------------------------------- combinators

util::Result<std::shared_ptr<const ScenarioSource>> Concat(
    std::vector<std::shared_ptr<const ScenarioSource>> parts) {
  util::Result<std::shared_ptr<const ConcatSource>> source =
      ConcatSource::Create(std::move(parts));
  if (!source.ok()) return source.status();
  return std::shared_ptr<const ScenarioSource>(*source);
}

util::Result<std::shared_ptr<const ScenarioSource>> Compose(
    std::shared_ptr<const ScenarioSource> outer,
    std::shared_ptr<const ScenarioSource> inner, std::string name_sep) {
  util::Result<std::shared_ptr<const ComposeSource>> source =
      ComposeSource::Create(std::move(outer), std::move(inner),
                            std::move(name_sep));
  if (!source.ok()) return source.status();
  return std::shared_ptr<const ScenarioSource>(*source);
}

const char* SweepName(BatchOptions::Sweep sweep) {
  switch (sweep) {
    case BatchOptions::Sweep::kAuto:
      return "kAuto";
    case BatchOptions::Sweep::kBlocked:
      return "kBlocked";
    case BatchOptions::Sweep::kSparseDelta:
      return "kSparseDelta";
    case BatchOptions::Sweep::kDenseCopy:
      return "kDenseCopy";
  }
  return "?";
}

const char* LayoutName(BatchOptions::Layout layout) {
  switch (layout) {
    case BatchOptions::Layout::kAuto:
      return "kAuto";
    case BatchOptions::Layout::kAoS:
      return "kAoS";
    case BatchOptions::Layout::kSoA:
      return "kSoA";
  }
  return "?";
}

}  // namespace cobra::core
