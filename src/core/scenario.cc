#include "core/scenario.h"

namespace cobra::core {

std::vector<std::string> ScenarioSet::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) names.push_back(s.name);
  return names;
}

const char* SweepName(BatchOptions::Sweep sweep) {
  switch (sweep) {
    case BatchOptions::Sweep::kAuto:
      return "kAuto";
    case BatchOptions::Sweep::kBlocked:
      return "kBlocked";
    case BatchOptions::Sweep::kSparseDelta:
      return "kSparseDelta";
    case BatchOptions::Sweep::kDenseCopy:
      return "kDenseCopy";
  }
  return "?";
}

}  // namespace cobra::core
