#include "core/scenario.h"

namespace cobra::core {

std::vector<std::string> ScenarioSet::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) names.push_back(s.name);
  return names;
}

}  // namespace cobra::core
