#ifndef COBRA_CORE_APPLY_H_
#define COBRA_CORE_APPLY_H_

#include <string>
#include <vector>

#include "core/cut.h"
#include "core/tree.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

/// One meta-variable introduced by an abstraction.
struct MetaVar {
  prov::VarId var;                  ///< Id of the meta-variable in the pool.
  NodeId node;                      ///< The cut node it comes from.
  std::string name;                 ///< Node name (== variable name).
  std::vector<prov::VarId> leaves;  ///< The original variables it replaces.
};

/// The result of applying a cut: the compressed polynomials plus the
/// variable mapping that produced them.
struct Abstraction {
  Cut cut;
  prov::PolySet compressed;

  /// mapping[v] is the variable that replaces v (identity off the tree).
  std::vector<prov::VarId> mapping;

  /// One entry per cut node, in cut order. Cut nodes that are leaves keep
  /// their original variable (their `leaves` list has exactly one entry).
  std::vector<MetaVar> meta_vars;

  std::size_t compressed_size = 0;       ///< Total monomials after merging.
  std::size_t compressed_variables = 0;  ///< Distinct variables after.

  /// The paper's default assignment for meta-variables: the (unweighted)
  /// average of the replaced variables' values under `full`. Off-tree
  /// variables keep their `full` values.
  prov::Valuation DefaultMetaValuation(const prov::Valuation& full) const;
};

/// Applies `cut` to `polys`: replaces every descendant leaf of each cut node
/// by that node's meta-variable (interned into `pool`; cut nodes that are
/// leaves keep their variable) and merges monomials that become identical by
/// summing coefficients. Fails if the cut is invalid for `tree`.
util::Result<Abstraction> ApplyCut(const prov::PolySet& polys,
                                   const AbstractionTree& tree, const Cut& cut,
                                   prov::VarPool* pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_APPLY_H_
