#include "core/cut.h"

#include <algorithm>

namespace cobra::core {

Cut::Cut(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

Cut Cut::Leaves(const AbstractionTree& tree) { return Cut(tree.Leaves()); }

Cut Cut::Root(const AbstractionTree& tree) { return Cut({tree.root()}); }

util::Result<Cut> Cut::FromNames(const AbstractionTree& tree,
                                 const std::vector<std::string>& names) {
  std::vector<NodeId> nodes;
  nodes.reserve(names.size());
  for (const std::string& name : names) {
    NodeId id = tree.FindByName(name);
    if (id == kNoNode) {
      return util::Status::NotFound("no tree node named: " + name);
    }
    nodes.push_back(id);
  }
  Cut cut{std::move(nodes)};
  COBRA_RETURN_IF_ERROR(cut.Validate(tree));
  return cut;
}

Cut Cut::AtDepth(const AbstractionTree& tree, std::size_t depth) {
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < tree.size(); ++i) {
    std::size_t d = tree.Depth(i);
    if (d == depth || (d < depth && tree.node(i).IsLeaf())) {
      nodes.push_back(i);
    }
  }
  return Cut(std::move(nodes));
}

bool Cut::Contains(NodeId id) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), id);
}

util::Status Cut::Validate(const AbstractionTree& tree) const {
  for (NodeId leaf : tree.Leaves()) {
    std::size_t covered = 0;
    NodeId v = leaf;
    for (;;) {
      if (Contains(v)) ++covered;
      if (tree.node(v).parent == kNoNode) break;
      v = tree.node(v).parent;
    }
    if (covered != 1) {
      return util::Status::InvalidArgument(
          "cut covers leaf '" + tree.node(leaf).name + "' " +
          std::to_string(covered) + " times (must be exactly once)");
    }
  }
  return util::Status::OK();
}

std::vector<NodeId> Cut::CoveringNode(const AbstractionTree& tree) const {
  std::vector<NodeId> covering(tree.size(), kNoNode);
  for (NodeId leaf : tree.Leaves()) {
    NodeId v = leaf;
    for (;;) {
      if (Contains(v)) {
        covering[leaf] = v;
        break;
      }
      if (tree.node(v).parent == kNoNode) break;
      v = tree.node(v).parent;
    }
  }
  return covering;
}

std::string Cut::ToString(const AbstractionTree& tree) const {
  std::string out = "{";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tree.node(nodes_[i]).name;
  }
  out += "}";
  return out;
}

namespace {

// Recursively enumerates the cuts of the subtree at `v` as node-id vectors.
util::Status EnumerateAt(const AbstractionTree& tree, NodeId v,
                         std::uint64_t limit,
                         std::vector<std::vector<NodeId>>* out) {
  out->clear();
  if (tree.node(v).IsLeaf()) {
    out->push_back({v});
    return util::Status::OK();
  }
  // Combine children cuts by cartesian product.
  std::vector<std::vector<NodeId>> combined{{}};
  for (NodeId c : tree.node(v).children) {
    std::vector<std::vector<NodeId>> child_cuts;
    COBRA_RETURN_IF_ERROR(EnumerateAt(tree, c, limit, &child_cuts));
    std::vector<std::vector<NodeId>> next;
    if (combined.size() * child_cuts.size() > limit) {
      return util::Status::OutOfRange(
          "tree has too many cuts to enumerate (limit " +
          std::to_string(limit) + ")");
    }
    next.reserve(combined.size() * child_cuts.size());
    for (const auto& prefix : combined) {
      for (const auto& suffix : child_cuts) {
        std::vector<NodeId> merged = prefix;
        merged.insert(merged.end(), suffix.begin(), suffix.end());
        next.push_back(std::move(merged));
      }
    }
    combined = std::move(next);
  }
  combined.push_back({v});  // taking v itself
  if (combined.size() > limit) {
    return util::Status::OutOfRange("tree has too many cuts to enumerate");
  }
  *out = std::move(combined);
  return util::Status::OK();
}

}  // namespace

util::Result<std::vector<Cut>> EnumerateCuts(const AbstractionTree& tree,
                                             std::uint64_t limit) {
  if (tree.CountCuts() > limit) {
    return util::Status::OutOfRange(
        "tree has " + std::to_string(tree.CountCuts()) +
        " cuts; enumeration limit is " + std::to_string(limit));
  }
  std::vector<std::vector<NodeId>> raw;
  COBRA_RETURN_IF_ERROR(EnumerateAt(tree, tree.root(), limit, &raw));
  std::vector<Cut> cuts;
  cuts.reserve(raw.size());
  for (auto& nodes : raw) cuts.emplace_back(std::move(nodes));
  return cuts;
}

}  // namespace cobra::core
