#ifndef COBRA_CORE_METRICS_H_
#define COBRA_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prov/eval_program.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"

namespace cobra::core {

class CompiledSession;  // core/compiled_session.h

/// Measured cost of applying valuations to full vs compressed provenance —
/// the "assignment speedup" the demo reports (§4: 47% and 79%).
struct AssignmentTiming {
  double full_seconds = 0.0;        ///< Per assignment over full provenance.
  double compressed_seconds = 0.0;  ///< Per assignment over compressed.
  std::size_t repetitions = 0;      ///< Assignments timed per side.

  /// The paper's speedup figure: (t_full - t_compressed) / t_full, in
  /// percent. 47 means the compressed assignment costs 53% of the full one.
  double SpeedupPercent() const {
    if (full_seconds <= 0.0) return 0.0;
    return 100.0 * (full_seconds - compressed_seconds) / full_seconds;
  }
};

/// Times `valuation` application to both polynomial sets using compiled
/// evaluation programs. Runs `min_reps` assignments per side (at least; more
/// when each run is very short) and reports per-assignment averages.
/// These PolySet overloads accept externally-supplied valuations: an
/// undersized valuation is extended neutrally (1.0 per the `Valuation`
/// contract) instead of aborting. The program overloads below keep the
/// pre-validated hot-path contract.
AssignmentTiming MeasureAssignment(const prov::PolySet& full,
                                   const prov::PolySet& compressed,
                                   const prov::Valuation& full_valuation,
                                   const prov::Valuation& compressed_valuation,
                                   std::size_t min_reps = 5);

/// Same measurement over already-compiled programs. This is the overload
/// `Session` uses: compiling an `EvalProgram` walks the whole polynomial
/// object graph, so callers that assign repeatedly (interactive sessions,
/// scenario batches) compile once and pass the programs here.
AssignmentTiming MeasureAssignment(const prov::EvalProgram& full_program,
                                   const prov::EvalProgram& compressed_program,
                                   const prov::Valuation& full_valuation,
                                   const prov::Valuation& compressed_valuation,
                                   std::size_t min_reps = 5);

/// Same measurement over a `CompiledSession` snapshot's programs (the
/// serving layer's precompiled artifacts). Read-only on the snapshot, so
/// safe to call from many threads concurrently.
AssignmentTiming MeasureAssignment(const CompiledSession& snapshot,
                                   const prov::Valuation& full_valuation,
                                   const prov::Valuation& compressed_valuation,
                                   std::size_t min_reps = 5);

/// Per-group difference between the answers computed from full and from
/// compressed provenance under corresponding valuations — the "changes in
/// the analysis query results" panel of the demo UI.
struct ResultDelta {
  struct Row {
    std::string label;
    double full = 0.0;
    double compressed = 0.0;
    double abs_error = 0.0;
    double rel_error = 0.0;  ///< abs / |full| (0 when full == 0).
  };
  std::vector<Row> rows;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  double mean_rel_error = 0.0;

  /// Renders the top-`max_rows` rows plus the error summary.
  std::string ToString(std::size_t max_rows = 10) const;
};

/// Evaluates both sides and computes the deltas. The sets must be label-
/// aligned (same group order), which `ApplyCut` preserves.
ResultDelta CompareResults(const prov::PolySet& full,
                           const prov::PolySet& compressed,
                           const prov::Valuation& full_valuation,
                           const prov::Valuation& compressed_valuation);

/// Same comparison over already-compiled programs; `labels` supplies the
/// group names (usually `full.labels()`).
ResultDelta CompareResults(const prov::EvalProgram& full_program,
                           const prov::EvalProgram& compressed_program,
                           const std::vector<std::string>& labels,
                           const prov::Valuation& full_valuation,
                           const prov::Valuation& compressed_valuation);

/// Same comparison over a `CompiledSession` snapshot's programs and labels.
/// Read-only on the snapshot, so safe to call from many threads
/// concurrently.
ResultDelta CompareResults(const CompiledSession& snapshot,
                           const prov::Valuation& full_valuation,
                           const prov::Valuation& compressed_valuation);

/// Builds the delta report from already-evaluated per-group values. The
/// batched scenario engine evaluates many scenarios in one sweep and calls
/// this per scenario.
ResultDelta DeltaFromValues(const std::vector<std::string>& labels,
                            const std::vector<double>& full_values,
                            const std::vector<double>& compressed_values);

/// Sensitivity ranking: which hypothetical parameter moves the answers
/// most? For every variable v in `polys`, the impact is
/// `Σ_groups |∂P_g/∂v|` evaluated at `at` — the total absolute change of
/// all results per unit change of v around the current scenario. Rows are
/// sorted by descending impact. A natural companion to compression: it
/// tells the analyst which meta-variables are worth assigning first.
struct SensitivityReport {
  struct Row {
    prov::VarId var;
    std::string name;
    double impact;
  };
  std::vector<Row> rows;  ///< Descending by impact.

  /// Renders the top-`max_rows` variables.
  std::string ToString(std::size_t max_rows = 10) const;
};
SensitivityReport AnalyzeSensitivity(const prov::PolySet& polys,
                                     const prov::Valuation& at,
                                     const prov::VarPool& pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_METRICS_H_
