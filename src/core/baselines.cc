#include "core/baselines.h"

#include <algorithm>
#include <set>

namespace cobra::core {

util::Result<CutSolution> GreedyBottomUpCut(const AbstractionTree& tree,
                                            const TreeProfile& profile,
                                            std::size_t bound) {
  if (profile.weight.size() != tree.size()) {
    return util::Status::InvalidArgument("profile does not match tree");
  }
  std::set<NodeId> cut;
  for (NodeId leaf : tree.Leaves()) cut.insert(leaf);
  std::size_t size = profile.base_monomials;
  for (NodeId v : cut) size += profile.weight[v];

  while (size > bound) {
    // Candidate moves: nodes whose children are all in the current cut.
    NodeId best = kNoNode;
    double best_ratio = -1.0;
    std::size_t best_saving = 0;
    for (NodeId u = 0; u < tree.size(); ++u) {
      const auto& children = tree.node(u).children;
      if (children.empty()) continue;
      bool ready = std::all_of(children.begin(), children.end(),
                               [&cut](NodeId c) { return cut.count(c) > 0; });
      if (!ready) continue;
      std::size_t child_weight = 0;
      for (NodeId c : children) child_weight += profile.weight[c];
      std::size_t saving = child_weight - profile.weight[u];
      std::size_t vars_lost = children.size() - 1;
      // Single-child chains are free moves (no variables lost); their ratio
      // is effectively infinite when they save anything.
      double ratio = vars_lost == 0
                         ? (saving > 0 ? 1e18 : 0.0)
                         : static_cast<double>(saving) /
                               static_cast<double>(vars_lost);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = u;
        best_saving = saving;
      }
    }
    if (best == kNoNode) break;  // cut == {root}: nothing left to merge
    for (NodeId c : tree.node(best).children) cut.erase(c);
    cut.insert(best);
    size -= best_saving;
  }

  CutSolution solution;
  solution.cut = Cut(std::vector<NodeId>(cut.begin(), cut.end()));
  solution.compressed_size = profile.SizeOfCut(solution.cut);
  solution.num_cut_nodes = solution.cut.size();
  solution.feasible = solution.compressed_size <= bound;
  return solution;
}

util::Result<CutSolution> LevelCut(const AbstractionTree& tree,
                                   const TreeProfile& profile,
                                   std::size_t bound) {
  if (profile.weight.size() != tree.size()) {
    return util::Status::InvalidArgument("profile does not match tree");
  }
  std::size_t max_depth = tree.MaxDepth();
  CutSolution solution;
  for (std::size_t depth = max_depth + 1; depth-- > 0;) {
    Cut cut = Cut::AtDepth(tree, depth);
    std::size_t size = profile.SizeOfCut(cut);
    solution.cut = cut;
    solution.compressed_size = size;
    solution.num_cut_nodes = cut.size();
    solution.feasible = size <= bound;
    if (solution.feasible) return solution;
  }
  return solution;  // depth-0 (root) result, possibly infeasible
}

util::Result<CutSolution> BruteForceCut(const AbstractionTree& tree,
                                        const TreeProfile& profile,
                                        std::size_t bound,
                                        std::uint64_t enumeration_limit) {
  if (profile.weight.size() != tree.size()) {
    return util::Status::InvalidArgument("profile does not match tree");
  }
  util::Result<std::vector<Cut>> cuts = EnumerateCuts(tree, enumeration_limit);
  if (!cuts.ok()) return cuts.status();
  CutSolution best;
  bool found = false;
  for (const Cut& cut : *cuts) {
    std::size_t size = profile.SizeOfCut(cut);
    if (size > bound) continue;
    bool better = !found || cut.size() > best.num_cut_nodes ||
                  (cut.size() == best.num_cut_nodes &&
                   size < best.compressed_size);
    if (better) {
      best.cut = cut;
      best.compressed_size = size;
      best.num_cut_nodes = cut.size();
      best.feasible = true;
      found = true;
    }
  }
  if (!found) {
    // No feasible cut: report the minimum-size one (the root cut may not be
    // minimal when a single-child chain is lighter, but SizeOfCut of every
    // enumerated cut tells us the true minimum).
    std::size_t min_size = static_cast<std::size_t>(-1);
    for (const Cut& cut : *cuts) {
      std::size_t size = profile.SizeOfCut(cut);
      if (size < min_size ||
          (size == min_size && cut.size() > best.num_cut_nodes)) {
        min_size = size;
        best.cut = cut;
        best.compressed_size = size;
        best.num_cut_nodes = cut.size();
      }
    }
    best.feasible = false;
  }
  return best;
}

}  // namespace cobra::core
