#ifndef COBRA_CORE_BATCH_PLAN_H_
#define COBRA_CORE_BATCH_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.h"
#include "prov/eval_program.h"
#include "prov/valuation.h"
#include "util/status.h"

namespace cobra::core {

class CompiledSession;

/// 128-bit content fingerprint of a `ScenarioSet`: a hash over the scenario
/// names and their override lists (variable names and IEEE-754 value bit
/// patterns, in order). Two sets with the same content — including delta
/// order — fingerprint identically; mutating a set after planning (adding a
/// scenario, changing a delta) changes the fingerprint, so a stale plan can
/// never be replayed for the mutated set. The fingerprint is computed from
/// the raw set without resolving variable names against the pool, which is
/// what makes a warm plan-cache hit cheap: one pass over the bytes instead
/// of recompiling every scenario.
struct PlanFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const PlanFingerprint& a, const PlanFingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const PlanFingerprint& a, const PlanFingerprint& b) {
    return !(a == b);
  }

  /// 32 hex digits, for display (shell `plan` table, bench JSON).
  std::string ToHex() const;
};

/// Computes the content fingerprint of `scenarios` (see PlanFingerprint).
PlanFingerprint FingerprintScenarios(const ScenarioSet& scenarios);

/// One scenario lowered to pool ids: a sorted, duplicate-free override list
/// (later deltas on the same variable keep the last value).
struct CompiledScenario {
  std::vector<prov::VarOverride> overrides;
};

/// The tile schedule for one compiled program: whole-polynomial ranges,
/// plus (when one polynomial dominates and whole-poly splitting could not
/// fill the requested partitions) term-range slices of that polynomial
/// whose partial sums are reduced in fixed slice order after the sweep.
/// Derived once at planning time from the program shape, the thread budget
/// and the partitioning knobs; execution only reads it.
struct ProgramSchedule {
  /// Whole-poly [begin, end) ranges; every polynomial not term-split is
  /// covered by exactly one range.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;

  /// The term-split polynomial, or `num_polys` when no splitting applies.
  std::size_t split_poly = 0;

  /// NumPolys() of the scheduled program (the "no split" sentinel value).
  std::size_t num_polys = 0;

  /// Absolute term bounds of the split polynomial's slices (empty when
  /// split_poly == num_polys).
  std::vector<std::uint32_t> term_bounds;

  std::size_t term_slices() const {
    return term_bounds.empty() ? 0 : term_bounds.size() - 1;
  }

  /// Tiles per scenario block for this program.
  std::size_t slices() const { return ranges.size() + term_slices(); }
};

/// The resolved engine choice of the `Sweep::kAuto` policy.
struct EnginePick {
  BatchOptions::Sweep engine = BatchOptions::Sweep::kSparseDelta;
  std::size_t lanes = 1;  ///< 4 or 8 for kBlocked, 1 for the scalar engines.
};

/// The adaptive engine policy: picks the sweep engine and lane count from
/// the combined program weight (terms + factors of both sides), the
/// scenario count, and the widest per-scenario override list. Deliberately
/// independent of the thread count (and of anything else nondeterministic),
/// so the same workload always plans the same way:
///
///   - tiny programs, single scenarios, or programs small relative to the
///     override width fall back to `kSparseDelta` — the per-batch fixed
///     costs (block-table builds, tile dispatch) would dominate the scan;
///   - everything else runs the blocked kernel, 8 lanes when there are at
///     least 8 scenarios to fill a block, 4 otherwise.
EnginePick ChooseAutoEngine(std::size_t program_weight,
                            std::size_t num_scenarios,
                            std::size_t max_override_width);

/// An immutable, reusable execution plan for one (scenario set, base meta
/// valuation, BatchOptions) triple against one `CompiledSession` — the
/// plan-once / execute-many half of the batched serving path.
///
/// Planning owns everything `AssignBatch` used to redo per call: scenario
/// compilation (name→id resolution into sorted override lists), the
/// per-block override-union tables of the blocked kernel, the engine/lane
/// choice (resolving `Sweep::kAuto` through the adaptive policy), and the
/// (scenario-block × poly-range) tile schedule for both program sides.
/// `CompiledSession::Execute(plan)` then runs the sweep reading only this
/// plan, and `AssignBatch` is a thin PlanBatch + Execute wrapper over a
/// fingerprint-keyed plan cache — a serving tier replaying the same
/// scenario set against fresh snapshot defaults (or simply again) skips
/// recompilation entirely.
///
/// A plan is deeply immutable after construction and may be executed
/// concurrently from any number of threads. It references its origin
/// session through a weak_ptr: plans live in the session's own cache, so a
/// strong back-reference would make every snapshot that ever planned a
/// batch immortal (a reference cycle). Executing requires the session
/// anyway — `Execute` rejects a plan whose origin is gone or different.
class BatchPlan {
 public:
  /// Compiles a plan. Validates `options` (naming the offending field and
  /// the accepted values) and the scenario set (non-empty, unique names,
  /// every delta variable known to the snapshot) once, here — execution
  /// never re-validates. `session` must be non-null. A caller that already
  /// fingerprinted the set (the plan cache keys on it before planning) may
  /// pass the digest to skip the second content pass; null recomputes it.
  static util::Result<std::shared_ptr<const BatchPlan>> Create(
      std::shared_ptr<const CompiledSession> session,
      const ScenarioSet& scenarios,
      const prov::Valuation& base_meta_valuation, const BatchOptions& options,
      const PlanFingerprint* precomputed_fingerprint = nullptr);

  /// The session this plan was built against, or null if that session has
  /// since been destroyed (the plan does not keep it alive — see the class
  /// comment). The weak_ptr makes the check ABA-safe: a new session reusing
  /// the old one's address still fails to lock the old control block.
  std::shared_ptr<const CompiledSession> session() const {
    return session_.lock();
  }

  /// Content fingerprint of the planned scenario set.
  const PlanFingerprint& fingerprint() const { return fingerprint_; }

  /// The resolved engine — never `kAuto` (the policy resolves it at
  /// planning time so the choice is inspectable and cacheable).
  BatchOptions::Sweep engine() const { return engine_; }

  /// Scenario lanes per block: 4 or 8 for the blocked kernel, 1 otherwise.
  std::size_t lanes() const { return lanes_; }

  /// Worker threads the sweep will use (the resolved `num_threads`).
  std::size_t num_threads() const { return num_threads_; }

  std::size_t num_scenarios() const { return scenario_names_.size(); }

  /// Scenario blocks of the sweep (== ceil(scenarios / lanes)).
  std::size_t num_blocks() const { return num_blocks_; }

  /// Total (block × range) tiles across both program sides — the unit of
  /// work the sweep's worker threads claim.
  std::size_t num_tiles() const {
    return num_blocks_ * (full_schedule_.slices() + compressed_schedule_.slices());
  }

  /// The options the plan was built from (with `sweep` still as requested;
  /// see engine() for the resolved choice).
  const BatchOptions& options() const { return options_; }

  const std::vector<std::string>& scenario_names() const {
    return scenario_names_;
  }

  /// The pool-sized base meta valuation scenarios apply on top of.
  const prov::Valuation& base() const { return base_; }

  const std::vector<CompiledScenario>& compiled() const { return compiled_; }

  /// Per-block override-union tables (empty unless engine() == kBlocked).
  const std::vector<prov::BlockOverrides>& block_tables() const {
    return block_tables_;
  }

  /// Tile schedule of the sweep-side full program.
  const ProgramSchedule& full_schedule() const { return full_schedule_; }

  /// Tile schedule of the compressed program.
  const ProgramSchedule& compressed_schedule() const {
    return compressed_schedule_;
  }

 private:
  BatchPlan() = default;

  std::weak_ptr<const CompiledSession> session_;
  PlanFingerprint fingerprint_;
  BatchOptions options_;
  BatchOptions::Sweep engine_ = BatchOptions::Sweep::kSparseDelta;
  std::size_t lanes_ = 1;
  std::size_t num_threads_ = 1;
  std::size_t num_blocks_ = 0;
  std::vector<std::string> scenario_names_;
  prov::Valuation base_{0};
  std::vector<CompiledScenario> compiled_;
  std::vector<prov::BlockOverrides> block_tables_;
  ProgramSchedule full_schedule_;
  ProgramSchedule compressed_schedule_;
};

}  // namespace cobra::core

#endif  // COBRA_CORE_BATCH_PLAN_H_
