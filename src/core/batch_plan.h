#ifndef COBRA_CORE_BATCH_PLAN_H_
#define COBRA_CORE_BATCH_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.h"
#include "prov/eval_program.h"
#include "prov/valuation.h"
#include "util/status.h"

namespace cobra::core {

class CompiledSession;

/// 128-bit content fingerprint of a `ScenarioSet`: a hash over the scenario
/// names and their override lists (variable names and IEEE-754 value bit
/// patterns, in order). Two sets with the same content — including delta
/// order — fingerprint identically; mutating a set after planning (adding a
/// scenario, changing a delta) changes the fingerprint, so a stale plan can
/// never be replayed for the mutated set. The fingerprint is computed from
/// the raw set without resolving variable names against the pool, which is
/// what makes a warm plan-cache hit cheap: one pass over the bytes instead
/// of recompiling every scenario.
struct PlanFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const PlanFingerprint& a, const PlanFingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const PlanFingerprint& a, const PlanFingerprint& b) {
    return !(a == b);
  }

  /// 32 hex digits, for display (shell `plan` table, bench JSON).
  std::string ToHex() const;
};

/// Computes the content fingerprint of `scenarios` (see PlanFingerprint).
PlanFingerprint FingerprintScenarios(const ScenarioSet& scenarios);

/// 128-bit content hash of a base valuation as seen through a frozen pool —
/// the per-base half of the plan-cache key. Like the scenario fingerprint,
/// plan *identity* rests on its equality, so it is two independently-seeded
/// 64-bit chains, not one.
struct BaseFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const BaseFingerprint& a, const BaseFingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const BaseFingerprint& a, const BaseFingerprint& b) {
    return !(a == b);
  }
};

/// Hashes exactly `pool_size` entries of `base`: positions past
/// `base.size()` hash as the neutral 1.0 the `Valuation` contract extends
/// with, and entries beyond the frozen pool are ignored (the kernels never
/// read them). A short valuation and its pool-sized extension therefore
/// fingerprint identically and share one overlay.
BaseFingerprint FingerprintBase(const prov::Valuation& base,
                                std::size_t pool_size);

/// One scenario lowered to pool ids: a sorted, duplicate-free override list
/// (later deltas on the same variable keep the last value).
struct CompiledScenario {
  std::vector<prov::VarOverride> overrides;
};

/// The tile schedule for one compiled program: whole-polynomial ranges,
/// plus (when one polynomial dominates and whole-poly splitting could not
/// fill the requested partitions) term-range slices of that polynomial
/// whose partial sums are reduced in fixed slice order after the sweep.
/// Derived once at planning time from the program shape, the thread budget
/// and the partitioning knobs; execution only reads it.
struct ProgramSchedule {
  /// Whole-poly [begin, end) ranges; every polynomial not term-split is
  /// covered by exactly one range.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;

  /// The term-split polynomial, or `num_polys` when no splitting applies.
  std::size_t split_poly = 0;

  /// NumPolys() of the scheduled program (the "no split" sentinel value).
  std::size_t num_polys = 0;

  /// Absolute term bounds of the split polynomial's slices (empty when
  /// split_poly == num_polys).
  std::vector<std::uint32_t> term_bounds;

  std::size_t term_slices() const {
    return term_bounds.empty() ? 0 : term_bounds.size() - 1;
  }

  /// Tiles per scenario block for this program.
  std::size_t slices() const { return ranges.size() + term_slices(); }
};

/// The resolved engine choice of the `Sweep::kAuto` policy.
struct EnginePick {
  BatchOptions::Sweep engine = BatchOptions::Sweep::kSparseDelta;
  std::size_t lanes = 1;  ///< 4, 8 or 16 for kBlocked, 1 for the scalars.
};

/// The adaptive engine policy: picks the sweep engine and lane count from
/// the combined program weight (terms + factors of both sides), the
/// scenario count, and the widest per-scenario override list. Deliberately
/// independent of the thread count (and of anything else nondeterministic),
/// so the same workload always plans the same way.
///
/// The thresholds are fit from the accumulated BENCH_a6/a7 measurements
/// (blocked-vs-sparse ratio 0.79x at 64 scenarios, 3.5x at 1024 on the CI
/// box): the blocked kernel's per-batch fixed costs — block-table
/// sort/unique/index builds, tile dispatch — only amortize once there are a
/// couple hundred scenarios to spread them over, and the 16-lane width only
/// pays once blocks are plentiful enough that its wider ragged tail cannot
/// dominate. Policy table:
///
///   scenarios < 128, weight < 2048, or weight < 32 x override width
///                      -> kSparseDelta (scalar, 1 lane)
///   128 <= scenarios < 512                    -> kBlocked, 8 lanes
///   scenarios >= 512                          -> kBlocked, 16 lanes
///
/// (4 lanes remains reachable by pinning `block_lanes = 4` explicitly; the
/// policy never picks it because a batch small enough to want narrow blocks
/// is below the blocked crossover entirely.)
EnginePick ChooseAutoEngine(std::size_t program_weight,
                            std::size_t num_scenarios,
                            std::size_t max_override_width);

/// The adaptive layout policy (`BatchOptions::Layout::kAuto`, blocked engine
/// only): selects the SoA `prov::EvalImage` re-layout when the sweep is
/// large enough to amortize building it — program weight x scenario count at
/// or above the re-layout threshold (the image build is one O(weight) pass,
/// the sweep reads the program O(scenarios / lanes) times, so any
/// non-trivial batch clears it quickly). Deterministic, like
/// ChooseAutoEngine; both layouts are bit-identical, so the choice never
/// changes results. Scalar engines always execute AoS regardless.
prov::EvalLayout ChooseAutoLayout(std::size_t program_weight,
                                  std::size_t num_scenarios);

/// The cheap per-base half of a plan: the pool-sized base valuation the
/// scenarios apply on top of, its content fingerprint, and — for the
/// blocked engine — the block patch tables with value rows bound to that
/// base. Materialized from a `PlanCore` in O(pool + union sizes): no
/// scenario lowering, no sorting, no index builds. Immutable once published
/// inside a `BatchPlan`.
struct PlanBaseOverlay {
  /// The shared base valuation both program sides evaluate under,
  /// pool-sized (the kernels index it with any factor id the programs
  /// carry).
  prov::Valuation base{0};

  /// FingerprintBase(base, frozen pool size) — the overlay's cache key.
  BaseFingerprint base_fingerprint;

  /// Per-block override-union tables bound to `base` (empty unless the
  /// core's engine is kBlocked). Structurally identical to the core's
  /// skeletons; only the value rows differ per base.
  std::vector<prov::BlockOverrides> block_tables;
};

/// The base-independent core of a plan: everything derived from the
/// (scenario set, options, session) triple alone — scenario lowering into
/// sorted override lists, the resolved engine/lane/thread choice, the
/// per-block override-union *skeletons* (sorted unions + dense row indexes,
/// values unbound), and the (scenario-block × poly-range) tile schedules
/// for both program sides. This is the expensive half of planning; a grid
/// sweep or a per-user-defaults serving tier compiles it once and stamps
/// out a `PlanBaseOverlay` per base.
///
/// A core is deeply immutable after construction and references its origin
/// session through a weak_ptr (plans live in the session's own cache, so a
/// strong back-reference would make every snapshot that ever planned a
/// batch immortal).
class PlanCore {
 public:
  /// Compiles the base-independent half. Validates `options` (naming the
  /// offending field and the accepted values) and the scenario set
  /// (non-empty, unique names, every delta variable known to the snapshot)
  /// once, here — execution never re-validates. `session` must be non-null.
  /// A caller that already fingerprinted the set (the plan cache keys on it
  /// before planning) may pass the digest to skip the second content pass;
  /// null recomputes it.
  static util::Result<std::shared_ptr<const PlanCore>> Create(
      std::shared_ptr<const CompiledSession> session,
      const ScenarioSet& scenarios, const BatchOptions& options,
      const PlanFingerprint* precomputed_fingerprint = nullptr);

  /// Materializes the per-base half: copies `base_meta_valuation` pool-sized
  /// and (for the blocked engine) rebinds every block skeleton's value rows
  /// to it. A caller that already fingerprinted the base (the overlay cache
  /// keys on it before materializing) may pass the digest; null recomputes
  /// it.
  std::shared_ptr<const PlanBaseOverlay> MakeOverlay(
      const prov::Valuation& base_meta_valuation,
      const BaseFingerprint* precomputed_fingerprint = nullptr) const;

  /// The session this core was built against, or null if that session has
  /// since been destroyed (see the class comment). The weak_ptr makes the
  /// check ABA-safe: a new session reusing the old one's address still
  /// fails to lock the old control block.
  std::shared_ptr<const CompiledSession> session() const {
    return session_.lock();
  }

  /// Content fingerprint of the planned scenario set.
  const PlanFingerprint& fingerprint() const { return fingerprint_; }

  /// The resolved engine — never `kAuto` (the policy resolves it at
  /// planning time so the choice is inspectable and cacheable).
  BatchOptions::Sweep engine() const { return engine_; }

  /// Scenario lanes per block: 4, 8 or 16 for the blocked kernel, 1
  /// otherwise.
  std::size_t lanes() const { return lanes_; }

  /// The resolved execution layout — never `BatchOptions::Layout::kAuto`
  /// (the policy resolves at planning time, like the engine). Always
  /// `kAoS` for the scalar engines.
  prov::EvalLayout layout() const { return layout_; }

  /// The cached SoA execution images of the two program sides (null unless
  /// layout() == kSoA). Built once at Create; grid/stream replays of this
  /// core reuse them as-is.
  const std::shared_ptr<const prov::EvalImage>& full_image() const {
    return full_image_;
  }
  const std::shared_ptr<const prov::EvalImage>& compressed_image() const {
    return compressed_image_;
  }

  /// Returns a copy of this core with the two execution images replaced — a
  /// fault-injection hook for verifier tests (an image whose layout tag or
  /// arrays disagree with the plan must be reported by VerifyPlan). The
  /// normal path builds images in Create() and never swaps them.
  std::shared_ptr<const PlanCore> WithImages(
      std::shared_ptr<const prov::EvalImage> full,
      std::shared_ptr<const prov::EvalImage> compressed) const;

  /// Worker threads the sweep will use (the resolved `num_threads`).
  std::size_t num_threads() const { return num_threads_; }

  std::size_t num_scenarios() const { return scenario_names_.size(); }

  /// Scenario blocks of the sweep (== ceil(scenarios / lanes)).
  std::size_t num_blocks() const { return num_blocks_; }

  /// Total (block × range) tiles across both program sides — the unit of
  /// work the sweep's worker threads claim.
  std::size_t num_tiles() const {
    return num_blocks_ *
           (full_schedule_.slices() + compressed_schedule_.slices());
  }

  /// The options the core was built from (with `sweep` still as requested;
  /// see engine() for the resolved choice).
  const BatchOptions& options() const { return options_; }

  const std::vector<std::string>& scenario_names() const {
    return scenario_names_;
  }

  const std::vector<CompiledScenario>& compiled() const { return compiled_; }

  /// Per-block override-union skeletons (empty unless engine() ==
  /// kBlocked): the base-invariant structure of the block tables, value
  /// rows unbound. MakeOverlay() rebinds them per base; the kernels never
  /// read these directly.
  const std::vector<prov::BlockOverrides>& block_skeletons() const {
    return block_skeletons_;
  }

  /// Tile schedule of the sweep-side full program.
  const ProgramSchedule& full_schedule() const { return full_schedule_; }

  /// Tile schedule of the compressed program.
  const ProgramSchedule& compressed_schedule() const {
    return compressed_schedule_;
  }

  /// The pool size frozen into this core (== the origin session's
  /// pool_size()); overlays size their base valuation to it.
  std::size_t frozen_pool_size() const { return frozen_pool_size_; }

 private:
  PlanCore() = default;

  std::weak_ptr<const CompiledSession> session_;
  PlanFingerprint fingerprint_;
  BatchOptions options_;
  BatchOptions::Sweep engine_ = BatchOptions::Sweep::kSparseDelta;
  std::size_t lanes_ = 1;
  prov::EvalLayout layout_ = prov::EvalLayout::kAoS;
  std::shared_ptr<const prov::EvalImage> full_image_;
  std::shared_ptr<const prov::EvalImage> compressed_image_;
  std::size_t num_threads_ = 1;
  std::size_t num_blocks_ = 0;
  std::size_t frozen_pool_size_ = 0;
  std::vector<std::string> scenario_names_;
  std::vector<CompiledScenario> compiled_;
  std::vector<prov::BlockOverrides> block_skeletons_;
  ProgramSchedule full_schedule_;
  ProgramSchedule compressed_schedule_;
};

/// The plan-time half of a streaming sweep: everything about evaluating a
/// `ScenarioSource` that does NOT depend on the scenarios themselves —
/// the resolved engine/lane/thread choice (made once, from the program
/// shapes, the source's size and its `max_deltas()` bound) and the
/// streaming window. The per-scenario half (lowering to sorted override
/// lists, block-override skeletons, tile schedules) is deferred to
/// `LowerChunk`, which compiles one window-sized `PlanCore` at a time as
/// the source streams — so plan memory, like sweep memory, is bounded by
/// `BatchOptions::stream_block_scenarios` and never by `size()`.
///
/// Engine/lane decisions are pinned at Create time: every chunk's core is
/// compiled with the same resolved engine, so a streamed sweep behaves like
/// one large batch cut into windows (and is bit-identical to it on any
/// materialized prefix). The `kDenseCopy` legacy engine is not streamable
/// and is rejected here.
class StreamPlan {
 public:
  /// Resolves the stream-invariant plan half. Validates `options` like
  /// `PlanCore::Create` (plus `stream_block_scenarios > 0` and the
  /// no-kDenseCopy rule) and rejects a null session or an empty source.
  static util::Result<std::shared_ptr<const StreamPlan>> Create(
      std::shared_ptr<const CompiledSession> session,
      const ScenarioSource& source, const BatchOptions& options);

  /// Compiles the per-scenario plan half for one generated window — sorted
  /// override lists, block-override skeletons, tile schedules — under the
  /// pinned engine. Fails with `FailedPrecondition` when the origin session
  /// has been destroyed.
  util::Result<std::shared_ptr<const PlanCore>> LowerChunk(
      const ScenarioSet& chunk) const;

  /// The session this plan was built against, or null if destroyed.
  std::shared_ptr<const CompiledSession> session() const {
    return session_.lock();
  }

  /// The resolved engine — never `kAuto`, never `kDenseCopy`.
  BatchOptions::Sweep engine() const { return resolved_.sweep; }

  /// Scenario lanes per block (4/8/16 blocked, 1 scalar).
  std::size_t lanes() const { return lanes_; }

  /// Resolved worker thread count.
  std::size_t num_threads() const { return resolved_.num_threads; }

  /// Scenarios generated/lowered/swept per streamed block:
  /// min(stream_block_scenarios, source size).
  std::size_t window() const { return window_; }

  /// The streamed space's spec fingerprint and size, recorded at Create.
  const SourceFingerprint& source_fingerprint() const {
    return source_fingerprint_;
  }
  std::uint64_t source_size() const { return source_size_; }

  /// The resolved execution layout — never `kAuto`. Every chunk core is
  /// compiled with it pinned, so a streamed sweep keeps one layout
  /// throughout (each window-sized core builds its own window-lifetime
  /// image; the build is O(program), amortized across the window's
  /// scenarios exactly like a batch of that size).
  BatchOptions::Layout layout() const { return resolved_.layout; }

  /// The options every chunk core is compiled with: the caller's options
  /// with `sweep`/`block_lanes`/`layout`/`num_threads` pinned to the
  /// resolved choice.
  const BatchOptions& resolved_options() const { return resolved_; }

 private:
  StreamPlan() = default;

  std::weak_ptr<const CompiledSession> session_;
  BatchOptions resolved_;
  std::size_t lanes_ = 1;
  std::size_t window_ = 0;
  SourceFingerprint source_fingerprint_;
  std::uint64_t source_size_ = 0;
};

/// An immutable, reusable execution plan for one (scenario set, base meta
/// valuation, BatchOptions) triple against one `CompiledSession` — the
/// plan-once / execute-many half of the batched serving path.
///
/// Internally a plan is a pair: a shared, base-independent `PlanCore`
/// (scenario lowering, engine/lane resolution, override-union skeletons,
/// tile schedules) plus a cheap `PlanBaseOverlay` binding one base
/// valuation (pool-sized base + per-block value rows). The plan cache keys
/// cores on the scenario fingerprint and options alone and attaches one
/// overlay per distinct base, so replaying the same scenario set against a
/// different base — the grid / per-user-defaults workload — reuses the
/// expensive half and pays only the overlay. `CompiledSession::Execute`
/// runs the sweep reading only this plan; `AssignBatch` is a thin
/// PlanBatch + Execute wrapper; `AssignGrid` stamps out overlays in its
/// inner loop.
///
/// A plan is deeply immutable after construction and may be executed
/// concurrently from any number of threads. Like its core it references the
/// origin session through a weak_ptr — `Execute` rejects a plan whose
/// origin is gone or different.
class BatchPlan {
 public:
  /// Compiles a full plan (core + overlay) in one call — the single-base
  /// convenience path. See `PlanCore::Create` for the validation contract.
  static util::Result<std::shared_ptr<const BatchPlan>> Create(
      std::shared_ptr<const CompiledSession> session,
      const ScenarioSet& scenarios,
      const prov::Valuation& base_meta_valuation, const BatchOptions& options,
      const PlanFingerprint* precomputed_fingerprint = nullptr);

  /// Pairs an existing core with an overlay (both non-null) — the grid /
  /// overlay-cache path. The overlay should have been produced by
  /// `core->MakeOverlay()`; `VerifyPlan` audits the pairing.
  static std::shared_ptr<const BatchPlan> FromParts(
      std::shared_ptr<const PlanCore> core,
      std::shared_ptr<const PlanBaseOverlay> overlay);

  /// The shared base-independent half.
  const std::shared_ptr<const PlanCore>& core() const { return core_; }

  /// The per-base half.
  const PlanBaseOverlay& overlay() const { return *overlay_; }

  /// @name Flat accessors (delegating to the core/overlay pair).
  /// @{
  std::shared_ptr<const CompiledSession> session() const {
    return core_->session();
  }
  const PlanFingerprint& fingerprint() const { return core_->fingerprint(); }
  BatchOptions::Sweep engine() const { return core_->engine(); }
  std::size_t lanes() const { return core_->lanes(); }
  prov::EvalLayout layout() const { return core_->layout(); }
  std::size_t num_threads() const { return core_->num_threads(); }
  std::size_t num_scenarios() const { return core_->num_scenarios(); }
  std::size_t num_blocks() const { return core_->num_blocks(); }
  std::size_t num_tiles() const { return core_->num_tiles(); }
  const BatchOptions& options() const { return core_->options(); }
  const std::vector<std::string>& scenario_names() const {
    return core_->scenario_names();
  }
  const std::vector<CompiledScenario>& compiled() const {
    return core_->compiled();
  }

  /// The pool-sized base meta valuation scenarios apply on top of.
  const prov::Valuation& base() const { return overlay_->base; }

  /// Per-block override-union tables bound to base() (empty unless
  /// engine() == kBlocked).
  const std::vector<prov::BlockOverrides>& block_tables() const {
    return overlay_->block_tables;
  }

  const ProgramSchedule& full_schedule() const {
    return core_->full_schedule();
  }
  const ProgramSchedule& compressed_schedule() const {
    return core_->compressed_schedule();
  }
  /// @}

 private:
  BatchPlan(std::shared_ptr<const PlanCore> core,
            std::shared_ptr<const PlanBaseOverlay> overlay)
      : core_(std::move(core)), overlay_(std::move(overlay)) {}

  std::shared_ptr<const PlanCore> core_;
  std::shared_ptr<const PlanBaseOverlay> overlay_;
};

}  // namespace cobra::core

#endif  // COBRA_CORE_BATCH_PLAN_H_
