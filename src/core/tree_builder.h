#ifndef COBRA_CORE_TREE_BUILDER_H_
#define COBRA_CORE_TREE_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/tree.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::core {

/// One parent-child edge of an ontology.
struct HierarchyEdge {
  std::string parent;
  std::string child;
};

/// Builds an abstraction tree from parent-child edges — the natural way to
/// import an existing ontology (the paper: "abstraction trees may be
/// obtained by leveraging existing ontologies on the annotated data").
///
/// Requirements checked: exactly one root (a parent that never appears as a
/// child), every node except the root has exactly one parent, no cycles,
/// and names are unique. Nodes that never appear as parents become leaves
/// and their names are interned as variables in `pool`. Children keep the
/// order of first appearance in `edges`.
util::Result<AbstractionTree> BuildTreeFromEdges(
    const std::vector<HierarchyEdge>& edges, prov::VarPool* pool);

/// Builds the edges from CSV text with a `parent,child` header (extra
/// columns are ignored), then delegates to BuildTreeFromEdges.
util::Result<AbstractionTree> BuildTreeFromCsv(std::string_view csv_text,
                                               prov::VarPool* pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_TREE_BUILDER_H_
