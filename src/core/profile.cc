#include "core/profile.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace cobra::core {

std::size_t TreeProfile::SizeOfCut(const Cut& cut) const {
  std::size_t size = base_monomials;
  for (NodeId v : cut.nodes()) {
    COBRA_CHECK_MSG(v < weight.size(), "SizeOfCut: node outside profile");
    size += weight[v];
  }
  return size;
}

std::size_t TreeProfile::VariablesOfCut(const Cut& cut) const {
  return base_variables + cut.size();
}

namespace {

/// Key identifying a triple (polynomial id, exponent, residue monomial).
struct TripleKey {
  std::size_t poly;
  std::uint32_t exp;
  prov::Monomial residue;

  bool operator==(const TripleKey& other) const = default;
};

struct TripleKeyHash {
  std::size_t operator()(const TripleKey& k) const {
    std::uint64_t h = util::Mix64(k.poly ^ 0xabcdef12345ULL);
    h = util::HashCombine(h, k.exp);
    h = util::HashCombine(h, k.residue.Hash());
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

util::Result<TreeProfile> AnalyzeSingleTree(const prov::PolySet& polys,
                                            const AbstractionTree& tree,
                                            const prov::VarPool& pool) {
  COBRA_RETURN_IF_ERROR(tree.Validate());

  // Map variable id -> leaf node (kNoNode for non-tree variables).
  std::vector<NodeId> var_to_leaf(pool.size(), kNoNode);
  for (NodeId leaf : tree.Leaves()) {
    prov::VarId v = tree.node(leaf).var;
    if (v < var_to_leaf.size()) var_to_leaf[v] = leaf;
  }

  // Inner node names must not collide with variables used in the input.
  std::unordered_set<prov::VarId> used_vars;
  for (const prov::Polynomial& p : polys.polys()) p.CollectVariables(&used_vars);
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.node(i).IsLeaf()) continue;
    prov::VarId existing = pool.Find(tree.node(i).name);
    if (existing != prov::kInvalidVar && used_vars.count(existing) > 0) {
      return util::Status::InvalidArgument(
          "inner node name '" + tree.node(i).name +
          "' collides with a variable used in the provenance");
    }
  }

  TreeProfile profile;
  profile.weight.assign(tree.size(), 0);

  // Intern triples and collect, per leaf, the sorted set of triple ids.
  std::unordered_map<TripleKey, std::uint32_t, TripleKeyHash> triple_ids;
  std::vector<std::vector<std::uint32_t>> leaf_triples(tree.size());
  std::unordered_set<prov::VarId> base_vars;

  for (std::size_t q = 0; q < polys.size(); ++q) {
    for (const prov::Term& term : polys.poly(q).terms()) {
      NodeId leaf = kNoNode;
      std::uint32_t exp = 0;
      for (const prov::VarPower& vp : term.monomial.powers()) {
        NodeId candidate =
            vp.var < var_to_leaf.size() ? var_to_leaf[vp.var] : kNoNode;
        if (candidate == kNoNode) {
          base_vars.insert(vp.var);
          continue;
        }
        if (leaf != kNoNode) {
          return util::Status::FailedPrecondition(
              "monomial contains two tree variables ('" +
              pool.Name(tree.node(leaf).var) + "' and '" + pool.Name(vp.var) +
              "'); single-tree mode requires at most one — use the "
              "multi-tree compressor");
        }
        leaf = candidate;
        exp = vp.exp;
      }
      ++profile.total_monomials;
      if (leaf == kNoNode) {
        ++profile.base_monomials;
        continue;
      }
      TripleKey key{q, exp, term.monomial.Without(tree.node(leaf).var)};
      auto [it, inserted] = triple_ids.emplace(
          std::move(key), static_cast<std::uint32_t>(triple_ids.size()));
      leaf_triples[leaf].push_back(it->second);
    }
  }
  profile.num_triples = triple_ids.size();
  profile.base_variables = base_vars.size();

  // Bottom-up union of triple-id sets; weight[v] = |S(v)|.
  std::vector<std::vector<std::uint32_t>> sets(tree.size());
  for (NodeId v : tree.PostOrder()) {
    std::vector<std::uint32_t>& set = sets[v];
    if (tree.node(v).IsLeaf()) {
      set = std::move(leaf_triples[v]);
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    } else {
      // Merge children sets (then release them — only the parent's survives).
      std::size_t total = 0;
      for (NodeId c : tree.node(v).children) total += sets[c].size();
      set.reserve(total);
      for (NodeId c : tree.node(v).children) {
        std::size_t mid = set.size();
        set.insert(set.end(), sets[c].begin(), sets[c].end());
        std::inplace_merge(set.begin(),
                           set.begin() + static_cast<std::ptrdiff_t>(mid),
                           set.end());
        sets[c].clear();
        sets[c].shrink_to_fit();
      }
      set.erase(std::unique(set.begin(), set.end()), set.end());
    }
    profile.weight[v] = set.size();
  }

  return profile;
}

}  // namespace cobra::core
