#include "core/dp_optimal.h"

#include <algorithm>
#include <limits>

#include "util/str.h"

namespace cobra::core {

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 4;

/// frontier[k-1] = min Σweight over cuts with exactly k nodes (kInf = none).
using Frontier = std::vector<std::size_t>;

/// (min,+) convolution of two frontiers: distributing k nodes over both.
Frontier Convolve(const Frontier& a, const Frontier& b) {
  Frontier out(a.size() + b.size(), kInf);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= kInf) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b[j] >= kInf) continue;
      std::size_t k = i + j + 1;  // (i+1) + (j+1) nodes -> index k = sum-1
      out[k] = std::min(out[k], a[i] + b[j]);
    }
  }
  return out;
}

/// Sequential convolution over all children of `v`.
Frontier ConvolveChildren(const AbstractionTree& tree, NodeId v,
                          const std::vector<Frontier>& frontiers) {
  const auto& children = tree.node(v).children;
  Frontier acc = frontiers[children[0]];
  for (std::size_t i = 1; i < children.size(); ++i) {
    acc = Convolve(acc, frontiers[children[i]]);
  }
  return acc;
}

/// Reconstructs the optimal cut of subtree(v) using exactly k nodes with
/// cost frontiers[v][k-1]. Appends the chosen nodes to `out`.
void Reconstruct(const AbstractionTree& tree, const TreeProfile& profile,
                 const std::vector<Frontier>& frontiers, NodeId v,
                 std::size_t k, std::vector<NodeId>* out) {
  const Frontier& f = frontiers[v];
  COBRA_CHECK_MSG(k >= 1 && k <= f.size() && f[k - 1] < kInf,
                  "Reconstruct: invalid (node, k)");
  if (k == 1 && f[0] == profile.weight[v]) {
    // Prefer taking the node itself when it ties with a descendant chain —
    // deterministic and yields the shallowest representative.
    out->push_back(v);
    return;
  }
  const auto& children = tree.node(v).children;
  COBRA_CHECK_MSG(!children.empty(), "Reconstruct: leaf with k > 1");
  // Recompute the sequential prefix convolutions to find the split.
  std::vector<Frontier> prefix(children.size());
  prefix[0] = frontiers[children[0]];
  for (std::size_t i = 1; i < children.size(); ++i) {
    prefix[i] = Convolve(prefix[i - 1], frontiers[children[i]]);
  }
  std::size_t remaining = k;
  std::size_t target = f[k - 1];
  for (std::size_t i = children.size(); i-- > 1;) {
    const Frontier& child = frontiers[children[i]];
    bool split_found = false;
    for (std::size_t kc = 1; kc <= child.size() && kc < remaining; ++kc) {
      if (child[kc - 1] >= kInf) continue;
      std::size_t k_rest = remaining - kc;
      if (k_rest < 1 || k_rest > prefix[i - 1].size()) continue;
      if (prefix[i - 1][k_rest - 1] >= kInf) continue;
      if (prefix[i - 1][k_rest - 1] + child[kc - 1] == target) {
        Reconstruct(tree, profile, frontiers, children[i], kc, out);
        remaining = k_rest;
        target = prefix[i - 1][k_rest - 1];
        split_found = true;
        break;
      }
    }
    COBRA_CHECK_MSG(split_found, "Reconstruct: no consistent split");
  }
  Reconstruct(tree, profile, frontiers, children[0], remaining, out);
}

}  // namespace

std::string DpExplain::ToString(const AbstractionTree& tree) const {
  std::string out = util::StrFormat(
      "DP trace: base=%zu bound=%zu (budget for tree monomials: %zu)\n",
      base_monomials, bound,
      bound > base_monomials ? bound - base_monomials : 0);
  for (const NodeTrace& n : nodes) {
    out += util::StrFormat("  node %-20s depth=%zu w=%-8zu frontier=[",
                           n.name.c_str(), tree.Depth(n.node), n.weight);
    for (std::size_t k = 0; k < n.frontier.size(); ++k) {
      if (k > 0) out += ", ";
      out += n.frontier[k] >= kInf / 2 ? "-" : std::to_string(n.frontier[k]);
    }
    out += "]";
    if (n.chosen_in_cut) out += "  <- chosen";
    out += "\n";
  }
  return out;
}

util::Result<CutSolution> OptimalSingleTreeCut(const AbstractionTree& tree,
                                               const TreeProfile& profile,
                                               std::size_t bound,
                                               DpExplain* explain) {
  if (profile.weight.size() != tree.size()) {
    return util::Status::InvalidArgument(
        "profile does not match tree (run AnalyzeSingleTree on this tree)");
  }

  std::vector<Frontier> frontiers(tree.size());
  std::vector<NodeId> order = tree.PostOrder();
  for (NodeId v : order) {
    if (tree.node(v).IsLeaf()) {
      frontiers[v] = {profile.weight[v]};
      continue;
    }
    Frontier conv = ConvolveChildren(tree, v, frontiers);
    // Option "take v": one node of weight w(v). Refinement monotonicity
    // guarantees w(v) <= any children combination's weight, so k=1 takes
    // the min of w(v) and a possible single-node chain through one child.
    if (conv.empty()) conv.resize(1, kInf);
    conv[0] = std::min(conv[0], profile.weight[v]);
    frontiers[v] = std::move(conv);
  }

  const Frontier& root_frontier = frontiers[tree.root()];
  std::size_t budget =
      bound >= profile.base_monomials ? bound - profile.base_monomials : 0;

  CutSolution solution;
  std::size_t best_k = 0;
  for (std::size_t k = root_frontier.size(); k >= 1; --k) {
    if (root_frontier[k - 1] <= budget) {
      best_k = k;
      break;
    }
  }
  if (best_k == 0) {
    // Even the coarsest abstraction misses the bound; return it anyway.
    best_k = 1;
    solution.feasible = false;
  } else {
    solution.feasible = true;
  }

  std::vector<NodeId> nodes;
  Reconstruct(tree, profile, frontiers, tree.root(), best_k, &nodes);
  solution.cut = Cut(std::move(nodes));
  solution.num_cut_nodes = solution.cut.size();
  solution.compressed_size = profile.SizeOfCut(solution.cut);
  COBRA_CHECK_MSG(solution.compressed_size ==
                      profile.base_monomials + root_frontier[best_k - 1],
                  "DP cost mismatch after reconstruction");

  if (explain != nullptr) {
    explain->nodes.clear();
    explain->base_monomials = profile.base_monomials;
    explain->bound = bound;
    for (NodeId v : order) {
      DpExplain::NodeTrace trace;
      trace.node = v;
      trace.name = tree.node(v).name;
      trace.weight = profile.weight[v];
      trace.frontier = frontiers[v];
      trace.chosen_in_cut = solution.cut.Contains(v);
      explain->nodes.push_back(std::move(trace));
    }
  }
  return solution;
}

}  // namespace cobra::core
