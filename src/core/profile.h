#ifndef COBRA_CORE_PROFILE_H_
#define COBRA_CORE_PROFILE_H_

#include <cstdint>
#include <vector>

#include "core/cut.h"
#include "core/tree.h"
#include "prov/poly_set.h"
#include "util/status.h"

namespace cobra::core {

/// Precomputed size analysis of a PolySet against one abstraction tree.
///
/// Write each monomial as `c · x^e · r` with `x` a tree leaf (possibly
/// absent) and `r` the residue over non-tree variables. A *triple* is the
/// distinct combination (polynomial id, e, r). For a tree node v,
/// `S(v) = { triples of monomials whose leaf lies under v }`; if v is chosen
/// in a cut it contributes exactly `|S(v)|` monomials to the compressed
/// provenance (all leaves below it collapse to one meta-variable, so
/// monomials that agree on the triple merge). Hence for any cut C:
///
///     compressed_size(C) = base_monomials + Σ_{v∈C} weight[v]
///
/// with `weight[v] = |S(v)|`. This identity is what makes the optimal cut
/// computable by tree dynamic programming, and it is verified against
/// actual substitution in the tests.
struct TreeProfile {
  /// |S(v)| per tree node.
  std::vector<std::size_t> weight;

  /// Monomials containing no tree variable (they survive any cut unchanged).
  std::size_t base_monomials = 0;

  /// Distinct non-tree variables (in residues and base monomials). Total
  /// expressiveness of a cut C = base_variables + |C|.
  std::size_t base_variables = 0;

  /// Total monomials of the input (= base + Σ weight over leaves).
  std::size_t total_monomials = 0;

  /// Number of distinct (poly, exponent, residue) triples.
  std::size_t num_triples = 0;

  /// Compressed size under `cut` by the identity above (O(|cut|)).
  std::size_t SizeOfCut(const Cut& cut) const;

  /// Expressiveness (#distinct variables after compression) under `cut`.
  std::size_t VariablesOfCut(const Cut& cut) const;
};

/// Analyzes `polys` against `tree` in single-tree mode.
///
/// Fails with FailedPrecondition if some monomial contains two or more tree
/// variables (the demo paper's single-tree restriction; use the multi-tree
/// compressor for that case) and with InvalidArgument if an inner node name
/// collides with a variable that occurs in `polys` (the meta-variable would
/// capture it).
util::Result<TreeProfile> AnalyzeSingleTree(const prov::PolySet& polys,
                                            const AbstractionTree& tree,
                                            const prov::VarPool& pool);

}  // namespace cobra::core

#endif  // COBRA_CORE_PROFILE_H_
