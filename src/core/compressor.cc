#include "core/compressor.h"

#include "core/multi_tree.h"
#include "util/str.h"
#include "util/timer.h"

namespace cobra::core {

const char* AlgorithmToString(Algorithm a) {
  switch (a) {
    case Algorithm::kOptimalDp:
      return "optimal-dp";
    case Algorithm::kGreedy:
      return "greedy";
    case Algorithm::kLevelCut:
      return "level-cut";
    case Algorithm::kBruteForce:
      return "brute-force";
    case Algorithm::kMultiTreeGreedy:
      return "multi-tree-greedy";
  }
  return "?";
}

std::string CompressionReport::ToString() const {
  std::string out;
  out += util::StrFormat("algorithm:        %s\n", AlgorithmToString(algorithm));
  out += util::StrFormat("bound:            %zu\n", bound);
  out += util::StrFormat("feasible:         %s\n", feasible ? "yes" : "no");
  out += util::StrFormat("size:             %zu -> %zu (ratio %.3f)\n",
                         original_size, compressed_size, compression_ratio);
  out += util::StrFormat("variables:        %zu -> %zu\n", original_variables,
                         compressed_variables);
  out += util::StrFormat("cut:              %s\n", cut_description.c_str());
  out += util::StrFormat("time (s):         analyze=%.4f solve=%.4f apply=%.4f\n",
                         analyze_seconds, solve_seconds, apply_seconds);
  return out;
}

util::Result<CompressionOutcome> Compress(const prov::PolySet& polys,
                                          const AbstractionTree& tree,
                                          const CompressionRequest& request,
                                          prov::VarPool* pool) {
  CompressionOutcome outcome;
  CompressionReport& report = outcome.report;
  report.algorithm = request.algorithm;
  report.bound = request.bound;

  util::Timer timer;
  util::Result<TreeProfile> profile = AnalyzeSingleTree(polys, tree, *pool);
  if (!profile.ok()) return profile.status();
  report.analyze_seconds = timer.ElapsedSeconds();
  report.original_size = profile->total_monomials;
  report.original_variables = polys.NumDistinctVariables();

  timer.Reset();
  util::Result<CutSolution> solution = util::Status::Internal("unset");
  DpExplain explain;
  switch (request.algorithm) {
    case Algorithm::kOptimalDp:
      solution = OptimalSingleTreeCut(
          tree, *profile, request.bound,
          request.collect_explain ? &explain : nullptr);
      break;
    case Algorithm::kGreedy:
      solution = GreedyBottomUpCut(tree, *profile, request.bound);
      break;
    case Algorithm::kLevelCut:
      solution = LevelCut(tree, *profile, request.bound);
      break;
    case Algorithm::kBruteForce:
      solution = BruteForceCut(tree, *profile, request.bound);
      break;
    case Algorithm::kMultiTreeGreedy:
      return util::Status::InvalidArgument(
          "multi-tree-greedy needs several trees; use "
          "CompressMultiTree / Session::SetTrees");
  }
  if (!solution.ok()) return solution.status();
  report.solve_seconds = timer.ElapsedSeconds();
  report.feasible = solution->feasible;
  report.cut_description = solution->cut.ToString(tree);
  if (request.collect_explain) {
    report.explain_text = explain.ToString(tree);
  }

  timer.Reset();
  util::Result<Abstraction> abstraction =
      ApplyCut(polys, tree, solution->cut, pool);
  if (!abstraction.ok()) return abstraction.status();
  report.apply_seconds = timer.ElapsedSeconds();

  report.compressed_size = abstraction->compressed_size;
  report.compressed_variables = abstraction->compressed_variables;
  report.compression_ratio =
      report.original_size == 0
          ? 1.0
          : static_cast<double>(report.compressed_size) /
                static_cast<double>(report.original_size);
  // The profile identity must agree with the actual substitution. This is
  // an internal invariant, but a violation must not abort a long-running
  // service, so it is reported as a Status instead of a CHECK.
  if (report.compressed_size != solution->compressed_size) {
    return util::Status::Internal(util::StrFormat(
        "size identity violated: profile predicts %zu monomials but "
        "substitution produced %zu",
        solution->compressed_size, report.compressed_size));
  }
  outcome.abstraction = std::move(*abstraction);
  return outcome;
}

util::Result<CompressionOutcome> CompressMultiTree(
    const prov::PolySet& polys, const std::vector<AbstractionTree>& trees,
    std::size_t bound, prov::VarPool* pool) {
  CompressionOutcome outcome;
  CompressionReport& report = outcome.report;
  report.algorithm = Algorithm::kMultiTreeGreedy;
  report.bound = bound;
  report.original_size = polys.TotalMonomials();
  report.original_variables = polys.NumDistinctVariables();

  util::Timer timer;
  util::Result<MultiTreeSolution> solution =
      GreedyMultiTreeCut(polys, trees, bound, *pool);
  if (!solution.ok()) return solution.status();
  report.solve_seconds = timer.ElapsedSeconds();
  report.feasible = solution->feasible;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (t > 0) report.cut_description += " x ";
    report.cut_description += solution->cuts[t].ToString(trees[t]);
  }

  timer.Reset();
  util::Result<Abstraction> abstraction =
      ApplyMultiTreeCuts(polys, trees, solution->cuts, pool);
  if (!abstraction.ok()) return abstraction.status();
  report.apply_seconds = timer.ElapsedSeconds();
  report.compressed_size = abstraction->compressed_size;
  report.compressed_variables = abstraction->compressed_variables;
  report.compression_ratio =
      report.original_size == 0
          ? 1.0
          : static_cast<double>(report.compressed_size) /
                static_cast<double>(report.original_size);
  if (report.compressed_size != solution->compressed_size) {
    return util::Status::Internal(util::StrFormat(
        "multi-tree size bookkeeping disagrees with substitution: "
        "predicted %zu monomials, produced %zu",
        solution->compressed_size, report.compressed_size));
  }
  outcome.abstraction = std::move(*abstraction);
  return outcome;
}

}  // namespace cobra::core
