#include "rel/expr.h"

#include "util/str.h"

namespace cobra::rel {

ExprPtr Expr::Column(std::string name) {
  return ExprPtr(new Expr(ExprOp::kColumn, std::move(name), Value(), nullptr,
                          nullptr));
}

ExprPtr Expr::Literal(Value v) {
  return ExprPtr(new Expr(ExprOp::kLiteral, "", std::move(v), nullptr,
                          nullptr));
}

ExprPtr Expr::Binary(ExprOp op, ExprPtr lhs, ExprPtr rhs) {
  return ExprPtr(new Expr(op, "", Value(), std::move(lhs), std::move(rhs)));
}

ExprPtr Expr::Unary(ExprOp op, ExprPtr operand) {
  return ExprPtr(new Expr(op, "", Value(), std::move(operand), nullptr));
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (op_ == ExprOp::kColumn) {
    out->push_back(name_);
    return;
  }
  if (lhs_ != nullptr) lhs_->CollectColumns(out);
  if (rhs_ != nullptr) rhs_->CollectColumns(out);
}

namespace {

const char* OpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kEq: return "=";
    case ExprOp::kNe: return "<>";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAnd: return "AND";
    case ExprOp::kOr: return "OR";
    default: return "?";
  }
}

}  // namespace

std::string Expr::ToString() const {
  // Built via append instead of `"lit" + std::string` chains: GCC 12's
  // -Wrestrict misfires on const char* + basic_string&& at -O2 and the
  // repo builds with -Werror.
  std::string out;
  switch (op_) {
    case ExprOp::kColumn:
      return name_;
    case ExprOp::kLiteral:
      if (literal_.type() == Type::kString) {
        out += '\'';
        out += literal_.ToString();
        out += '\'';
        return out;
      }
      return literal_.ToString();
    case ExprOp::kNeg:
      out += "(-";
      out += lhs_->ToString();
      out += ')';
      return out;
    case ExprOp::kNot:
      out += "(NOT ";
      out += lhs_->ToString();
      out += ')';
      return out;
    default:
      out += '(';
      out += lhs_->ToString();
      out += ' ';
      out += OpSymbol(op_);
      out += ' ';
      out += rhs_->ToString();
      out += ')';
      return out;
  }
}

util::Result<BoundExpr> BoundExpr::Bind(const ExprPtr& expr,
                                        const Schema& schema) {
  BoundExpr bound;
  util::Result<int> root = BindNode(expr, schema, &bound.nodes_);
  if (!root.ok()) return root.status();
  bound.root_ = *root;
  bound.result_type_ = bound.nodes_[static_cast<std::size_t>(*root)].type;
  return bound;
}

util::Result<int> BoundExpr::BindNode(const ExprPtr& expr,
                                      const Schema& schema,
                                      std::vector<Node>* nodes) {
  if (expr == nullptr) {
    return util::Status::InvalidArgument("null expression");
  }
  Node node;
  node.op = expr->op();
  switch (expr->op()) {
    case ExprOp::kColumn: {
      util::Result<std::size_t> col = schema.Resolve(expr->column_name());
      if (!col.ok()) return col.status();
      node.column = *col;
      node.type = schema.column(*col).type;
      break;
    }
    case ExprOp::kLiteral:
      node.literal = expr->literal();
      node.type = node.literal.type();
      break;
    case ExprOp::kNeg:
    case ExprOp::kNot: {
      util::Result<int> l = BindNode(expr->lhs(), schema, nodes);
      if (!l.ok()) return l.status();
      node.lhs = *l;
      Type lt = (*nodes)[static_cast<std::size_t>(*l)].type;
      if (lt == Type::kString) {
        return util::Status::InvalidArgument("unary operator on string");
      }
      node.type = expr->op() == ExprOp::kNot ? Type::kInt64 : lt;
      break;
    }
    default: {
      util::Result<int> l = BindNode(expr->lhs(), schema, nodes);
      if (!l.ok()) return l.status();
      util::Result<int> r = BindNode(expr->rhs(), schema, nodes);
      if (!r.ok()) return r.status();
      node.lhs = *l;
      node.rhs = *r;
      Type lt = (*nodes)[static_cast<std::size_t>(*l)].type;
      Type rt = (*nodes)[static_cast<std::size_t>(*r)].type;
      switch (expr->op()) {
        case ExprOp::kAdd:
        case ExprOp::kSub:
        case ExprOp::kMul:
        case ExprOp::kDiv:
          if (lt == Type::kString || rt == Type::kString) {
            return util::Status::InvalidArgument(
                "arithmetic on string operands: " + expr->ToString());
          }
          node.type = (lt == Type::kDouble || rt == Type::kDouble ||
                       expr->op() == ExprOp::kDiv)
                          ? Type::kDouble
                          : Type::kInt64;
          break;
        case ExprOp::kEq:
        case ExprOp::kNe:
        case ExprOp::kLt:
        case ExprOp::kLe:
        case ExprOp::kGt:
        case ExprOp::kGe:
          if ((lt == Type::kString) != (rt == Type::kString)) {
            return util::Status::InvalidArgument(
                "comparison between string and number: " + expr->ToString());
          }
          node.type = Type::kInt64;
          break;
        case ExprOp::kAnd:
        case ExprOp::kOr:
          if (lt == Type::kString || rt == Type::kString) {
            return util::Status::InvalidArgument(
                "boolean operator on string operands");
          }
          node.type = Type::kInt64;
          break;
        default:
          return util::Status::Internal("unexpected binary operator");
      }
      break;
    }
  }
  nodes->push_back(std::move(node));
  return static_cast<int>(nodes->size() - 1);
}

Value BoundExpr::Eval(const Table& table, std::size_t row) const {
  return EvalNode(root_, table, row);
}

bool BoundExpr::EvalBool(const Table& table, std::size_t row) const {
  Value v = EvalNode(root_, table, row);
  COBRA_CHECK_MSG(v.is_numeric(), "predicate evaluated to a string");
  return v.AsDouble() != 0.0;
}

Value BoundExpr::EvalNode(int index, const Table& table,
                          std::size_t row) const {
  const Node& node = nodes_[static_cast<std::size_t>(index)];
  switch (node.op) {
    case ExprOp::kColumn:
      return table.Get(row, node.column);
    case ExprOp::kLiteral:
      return node.literal;
    case ExprOp::kNeg: {
      Value v = EvalNode(node.lhs, table, row);
      if (v.type() == Type::kInt64) return Value(-v.AsInt64());
      return Value(-v.AsDouble());
    }
    case ExprOp::kNot: {
      Value v = EvalNode(node.lhs, table, row);
      return Value(static_cast<std::int64_t>(v.AsDouble() == 0.0 ? 1 : 0));
    }
    default:
      break;
  }
  Value l = EvalNode(node.lhs, table, row);
  Value r = EvalNode(node.rhs, table, row);
  auto bool_val = [](bool b) { return Value(static_cast<std::int64_t>(b)); };
  switch (node.op) {
    case ExprOp::kAdd:
      if (node.type == Type::kInt64) return Value(l.AsInt64() + r.AsInt64());
      return Value(l.AsDouble() + r.AsDouble());
    case ExprOp::kSub:
      if (node.type == Type::kInt64) return Value(l.AsInt64() - r.AsInt64());
      return Value(l.AsDouble() - r.AsDouble());
    case ExprOp::kMul:
      if (node.type == Type::kInt64) return Value(l.AsInt64() * r.AsInt64());
      return Value(l.AsDouble() * r.AsDouble());
    case ExprOp::kDiv:
      return Value(l.AsDouble() / r.AsDouble());
    case ExprOp::kEq:
      return bool_val(l == r);
    case ExprOp::kNe:
      return bool_val(!(l == r));
    case ExprOp::kLt:
      return bool_val(l < r);
    case ExprOp::kLe:
      return bool_val(!(r < l));
    case ExprOp::kGt:
      return bool_val(r < l);
    case ExprOp::kGe:
      return bool_val(!(l < r));
    case ExprOp::kAnd:
      return bool_val(l.AsDouble() != 0.0 && r.AsDouble() != 0.0);
    case ExprOp::kOr:
      return bool_val(l.AsDouble() != 0.0 || r.AsDouble() != 0.0);
    default:
      COBRA_CHECK_MSG(false, "unexpected operator in EvalNode");
      return Value();
  }
}

}  // namespace cobra::rel
