#include "rel/annot.h"

#include "util/status.h"

namespace cobra::rel {

AnnotPool::AnnotPool() {
  // Reserve id 0 for One.
  AnnotId one = Intern(prov::Polynomial::Constant(1.0));
  COBRA_CHECK(one == kOne);
}

AnnotId AnnotPool::Intern(const prov::Polynomial& p) {
  auto it = index_.find(p);
  if (it != index_.end()) return it->second;
  AnnotId id = static_cast<AnnotId>(polys_.size());
  polys_.push_back(p);
  index_.emplace(p, id);
  return id;
}

AnnotId AnnotPool::InternVar(prov::VarId v) {
  return Intern(prov::Polynomial::Var(v));
}

const prov::Polynomial& AnnotPool::Get(AnnotId id) const {
  COBRA_CHECK_MSG(id < polys_.size(), "AnnotPool::Get: id out of range");
  return polys_[id];
}

AnnotId AnnotPool::Product(AnnotId a, AnnotId b) {
  if (a == kOne) return b;
  if (b == kOne) return a;
  if (a > b) std::swap(a, b);  // products commute; canonical key order
  auto it = product_cache_.find({a, b});
  if (it != product_cache_.end()) return it->second;
  AnnotId id = Intern(Get(a).TimesPoly(Get(b)));
  product_cache_.emplace(std::make_pair(a, b), id);
  return id;
}

AnnotId AnnotPool::Sum(AnnotId a, AnnotId b) {
  if (a > b) std::swap(a, b);
  auto it = sum_cache_.find({a, b});
  if (it != sum_cache_.end()) return it->second;
  AnnotId id = Intern(Get(a).Plus(Get(b)));
  sum_cache_.emplace(std::make_pair(a, b), id);
  return id;
}

AnnotatedTable AnnotatedTable::FromTable(Table t,
                                         std::shared_ptr<AnnotPool> pool) {
  AnnotatedTable out{std::move(t), {}, std::move(pool)};
  out.annots.assign(out.table.NumRows(), AnnotPool::kOne);
  return out;
}

}  // namespace cobra::rel
