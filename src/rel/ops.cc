#include "rel/ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/hash.h"

namespace cobra::rel {

namespace {

using util::Result;
using util::Status;

// Copies row `row` of `src` onto the end of `dst` (schemas must align,
// possibly as a prefix/suffix starting at dst column `col_offset`).
void CopyRow(const Table& src, std::size_t row, Table* dst,
             std::size_t col_offset) {
  for (std::size_t c = 0; c < src.NumColumns(); ++c) {
    Column* out = dst->mutable_column(col_offset + c);
    const Column& in = src.column(c);
    switch (in.type()) {
      case Type::kInt64:
        out->AppendInt64(in.GetInt64(row));
        break;
      case Type::kDouble:
        out->AppendDouble(in.GetDouble(row));
        break;
      case Type::kString:
        out->AppendString(in.GetString(row));
        break;
    }
  }
}

// Hash of the tuple of values of `cols` on `row`.
std::uint64_t HashKey(const Table& table, std::size_t row,
                      const std::vector<std::size_t>& cols) {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  for (std::size_t c : cols) h = util::HashCombine(h, table.Get(row, c).Hash());
  return h;
}

bool KeysEqual(const Table& a, std::size_t ra, const std::vector<std::size_t>& ca,
               const Table& b, std::size_t rb,
               const std::vector<std::size_t>& cb) {
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (!(a.Get(ra, ca[i]) == b.Get(rb, cb[i]))) return false;
  }
  return true;
}

Result<std::vector<std::size_t>> ResolveAll(const Schema& schema,
                                            const std::vector<std::string>& refs) {
  std::vector<std::size_t> out;
  out.reserve(refs.size());
  for (const std::string& ref : refs) {
    Result<std::size_t> idx = schema.Resolve(ref);
    if (!idx.ok()) return idx.status();
    out.push_back(*idx);
  }
  return out;
}

}  // namespace

Result<AnnotatedTable> Select(const AnnotatedTable& input,
                              const ExprPtr& predicate) {
  Result<BoundExpr> bound = BoundExpr::Bind(predicate, input.schema());
  if (!bound.ok()) return bound.status();
  Table out_table(input.schema());
  std::vector<AnnotId> out_annots;
  std::size_t appended = 0;
  for (std::size_t r = 0; r < input.NumRows(); ++r) {
    if (!bound->EvalBool(input.table, r)) continue;
    CopyRow(input.table, r, &out_table, 0);
    out_annots.push_back(input.annots[r]);
    ++appended;
  }
  out_table.CommitAppendedRows(appended);
  return AnnotatedTable{std::move(out_table), std::move(out_annots), input.pool};
}

Result<AnnotatedTable> Project(const AnnotatedTable& input,
                               const std::vector<ExprPtr>& exprs,
                               const std::vector<std::string>& names) {
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("Project: exprs/names arity mismatch");
  }
  std::vector<BoundExpr> bound;
  bound.reserve(exprs.size());
  Schema out_schema;
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    Result<BoundExpr> b = BoundExpr::Bind(exprs[i], input.schema());
    if (!b.ok()) return b.status();
    out_schema.AddColumn("", {names[i], b->result_type()});
    bound.push_back(std::move(*b));
  }
  Table out_table(out_schema);
  out_table.Reserve(input.NumRows());
  for (std::size_t r = 0; r < input.NumRows(); ++r) {
    for (std::size_t c = 0; c < bound.size(); ++c) {
      Value v = bound[c].Eval(input.table, r);
      switch (out_schema.column(c).type) {
        case Type::kInt64:
          out_table.mutable_column(c)->AppendInt64(v.AsInt64());
          break;
        case Type::kDouble:
          out_table.mutable_column(c)->AppendDouble(v.AsDouble());
          break;
        case Type::kString:
          out_table.mutable_column(c)->AppendString(v.AsString());
          break;
      }
    }
  }
  out_table.CommitAppendedRows(input.NumRows());
  return AnnotatedTable{std::move(out_table), input.annots, input.pool};
}

Result<AnnotatedTable> HashJoin(const AnnotatedTable& left,
                                const AnnotatedTable& right,
                                const std::vector<std::string>& left_keys,
                                const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("HashJoin: bad key lists");
  }
  if (left.pool != right.pool) {
    return Status::InvalidArgument("HashJoin: inputs from different databases");
  }
  Result<std::vector<std::size_t>> lcols = ResolveAll(left.schema(), left_keys);
  if (!lcols.ok()) return lcols.status();
  Result<std::vector<std::size_t>> rcols = ResolveAll(right.schema(), right_keys);
  if (!rcols.ok()) return rcols.status();
  for (std::size_t i = 0; i < lcols->size(); ++i) {
    Type lt = left.schema().column((*lcols)[i]).type;
    Type rt = right.schema().column((*rcols)[i]).type;
    if ((lt == Type::kString) != (rt == Type::kString)) {
      return Status::InvalidArgument("HashJoin: key type mismatch on " +
                                     left_keys[i]);
    }
  }

  // Build side: the smaller input.
  bool build_left = left.NumRows() <= right.NumRows();
  const AnnotatedTable& build = build_left ? left : right;
  const AnnotatedTable& probe = build_left ? right : left;
  const std::vector<std::size_t>& build_cols = build_left ? *lcols : *rcols;
  const std::vector<std::size_t>& probe_cols = build_left ? *rcols : *lcols;

  std::unordered_multimap<std::uint64_t, std::size_t> index;
  index.reserve(build.NumRows() * 2);
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    index.emplace(HashKey(build.table, r, build_cols), r);
  }

  Schema out_schema = Schema::Concat(left.schema(), right.schema());
  Table out_table(out_schema);
  std::vector<AnnotId> out_annots;
  std::size_t appended = 0;
  std::size_t left_width = left.schema().size();
  for (std::size_t pr = 0; pr < probe.NumRows(); ++pr) {
    std::uint64_t h = HashKey(probe.table, pr, probe_cols);
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      std::size_t br = it->second;
      if (!KeysEqual(probe.table, pr, probe_cols, build.table, br, build_cols))
        continue;
      std::size_t lr = build_left ? br : pr;
      std::size_t rr = build_left ? pr : br;
      CopyRow(left.table, lr, &out_table, 0);
      CopyRow(right.table, rr, &out_table, left_width);
      out_annots.push_back(
          left.pool->Product(left.annots[lr], right.annots[rr]));
      ++appended;
    }
  }
  out_table.CommitAppendedRows(appended);
  return AnnotatedTable{std::move(out_table), std::move(out_annots), left.pool};
}

Result<AnnotatedTable> NestedLoopJoin(const AnnotatedTable& left,
                                      const AnnotatedTable& right,
                                      const ExprPtr& predicate) {
  if (left.pool != right.pool) {
    return Status::InvalidArgument(
        "NestedLoopJoin: inputs from different databases");
  }
  Schema out_schema = Schema::Concat(left.schema(), right.schema());
  Result<BoundExpr> bound = BoundExpr::Bind(predicate, out_schema);
  if (!bound.ok()) return bound.status();
  Table out_table(out_schema);
  std::vector<AnnotId> out_annots;
  std::size_t appended = 0;
  std::size_t left_width = left.schema().size();
  for (std::size_t lr = 0; lr < left.NumRows(); ++lr) {
    // Materialize each candidate pair into a one-row scratch table and test
    // the predicate there; only matches are copied to the output.
    for (std::size_t rr = 0; rr < right.NumRows(); ++rr) {
      Table scratch(out_schema);
      CopyRow(left.table, lr, &scratch, 0);
      CopyRow(right.table, rr, &scratch, left_width);
      scratch.CommitAppendedRows(1);
      if (!bound->EvalBool(scratch, 0)) continue;
      CopyRow(scratch, 0, &out_table, 0);
      out_annots.push_back(
          left.pool->Product(left.annots[lr], right.annots[rr]));
      ++appended;
    }
  }
  out_table.CommitAppendedRows(appended);
  return AnnotatedTable{std::move(out_table), std::move(out_annots), left.pool};
}

Result<AnnotatedTable> Union(const AnnotatedTable& a, const AnnotatedTable& b) {
  if (a.pool != b.pool) {
    return Status::InvalidArgument("Union: inputs from different databases");
  }
  if (a.schema().size() != b.schema().size()) {
    return Status::InvalidArgument("Union: schema arity mismatch");
  }
  for (std::size_t i = 0; i < a.schema().size(); ++i) {
    if (a.schema().column(i).type != b.schema().column(i).type) {
      return Status::InvalidArgument("Union: column type mismatch at index " +
                                     std::to_string(i));
    }
  }
  Table out_table(a.schema());
  out_table.Reserve(a.NumRows() + b.NumRows());
  for (std::size_t r = 0; r < a.NumRows(); ++r) CopyRow(a.table, r, &out_table, 0);
  for (std::size_t r = 0; r < b.NumRows(); ++r) CopyRow(b.table, r, &out_table, 0);
  out_table.CommitAppendedRows(a.NumRows() + b.NumRows());
  std::vector<AnnotId> annots = a.annots;
  annots.insert(annots.end(), b.annots.begin(), b.annots.end());
  return AnnotatedTable{std::move(out_table), std::move(annots), a.pool};
}

AnnotatedTable Distinct(const AnnotatedTable& input) {
  std::vector<std::size_t> all_cols(input.schema().size());
  std::iota(all_cols.begin(), all_cols.end(), 0);
  // Group rows by full-tuple hash; first occurrence keeps the row, later
  // equal rows fold their annotations in with semiring Plus.
  std::unordered_multimap<std::uint64_t, std::size_t> seen;  // hash -> out row
  Table out_table(input.schema());
  std::vector<AnnotId> out_annots;
  std::vector<std::size_t> out_to_in;  // representative input row per out row
  std::size_t appended = 0;
  for (std::size_t r = 0; r < input.NumRows(); ++r) {
    std::uint64_t h = HashKey(input.table, r, all_cols);
    auto range = seen.equal_range(h);
    std::size_t found = static_cast<std::size_t>(-1);
    for (auto it = range.first; it != range.second; ++it) {
      if (KeysEqual(input.table, r, all_cols, input.table, out_to_in[it->second],
                    all_cols)) {
        found = it->second;
        break;
      }
    }
    if (found == static_cast<std::size_t>(-1)) {
      CopyRow(input.table, r, &out_table, 0);
      out_annots.push_back(input.annots[r]);
      out_to_in.push_back(r);
      seen.emplace(h, appended);
      ++appended;
    } else {
      out_annots[found] = input.pool->Sum(out_annots[found], input.annots[r]);
    }
  }
  out_table.CommitAppendedRows(appended);
  return AnnotatedTable{std::move(out_table), std::move(out_annots), input.pool};
}

Result<AnnotatedTable> OrderBy(const AnnotatedTable& input,
                               const std::vector<SortKey>& keys) {
  std::vector<BoundExpr> bound;
  bound.reserve(keys.size());
  for (const SortKey& k : keys) {
    Result<BoundExpr> b = BoundExpr::Bind(k.expr, input.schema());
    if (!b.ok()) return b.status();
    bound.push_back(std::move(*b));
  }
  std::vector<std::size_t> order(input.NumRows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t i = 0; i < bound.size(); ++i) {
                       Value va = bound[i].Eval(input.table, a);
                       Value vb = bound[i].Eval(input.table, b);
                       if (va == vb) continue;
                       bool lt = va < vb;
                       return keys[i].descending ? !lt : lt;
                     }
                     return false;
                   });
  Table out_table(input.schema());
  out_table.Reserve(input.NumRows());
  std::vector<AnnotId> out_annots;
  out_annots.reserve(input.NumRows());
  for (std::size_t r : order) {
    CopyRow(input.table, r, &out_table, 0);
    out_annots.push_back(input.annots[r]);
  }
  out_table.CommitAppendedRows(input.NumRows());
  return AnnotatedTable{std::move(out_table), std::move(out_annots), input.pool};
}

AnnotatedTable Limit(const AnnotatedTable& input, std::size_t n) {
  std::size_t keep = std::min(n, input.NumRows());
  Table out_table(input.schema());
  out_table.Reserve(keep);
  for (std::size_t r = 0; r < keep; ++r) CopyRow(input.table, r, &out_table, 0);
  out_table.CommitAppendedRows(keep);
  std::vector<AnnotId> annots(input.annots.begin(),
                              input.annots.begin() + static_cast<std::ptrdiff_t>(keep));
  return AnnotatedTable{std::move(out_table), std::move(annots), input.pool};
}

}  // namespace cobra::rel
