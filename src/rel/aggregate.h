#ifndef COBRA_REL_AGGREGATE_H_
#define COBRA_REL_AGGREGATE_H_

#include <string>
#include <vector>

#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "rel/annot.h"
#include "rel/expr.h"
#include "util/status.h"

namespace cobra::rel {

/// Supported aggregate functions.
enum class AggFunc {
  kSum,    ///< SUM(expr) — symbolic (semimodule), the paper's workhorse.
  kCount,  ///< COUNT(*) or COUNT(expr) — symbolic (value 1 per tuple).
  kAvg,    ///< AVG(expr) — numeric only (ratio of two semimodule values).
  kMin,    ///< MIN(expr) — numeric only.
  kMax,    ///< MAX(expr) — numeric only.
};

/// Returns "SUM", "COUNT", ...
const char* AggFuncToString(AggFunc f);

/// One aggregate of a GROUP BY query.
struct AggSpec {
  AggFunc func;
  ExprPtr input;     ///< Aggregated expression (null for COUNT(*)).
  std::string name;  ///< Output column name.
};

/// Result of a GROUP BY query with provenance.
///
/// Group keys are stored as a plain table (one row per group); each
/// symbolic aggregate cell is a provenance polynomial from the aggregate
/// semimodule: `SUM(e)` over a group = `Σ_rows annotation(row) · e(row)`,
/// normalized in N[X] (see `semiring/semimodule.h`). Numeric-only
/// aggregates (AVG/MIN/MAX) are stored as constants.
class GroupedResult {
 public:
  GroupedResult(Schema key_schema, std::vector<AggSpec> specs)
      : keys_(std::move(key_schema)), specs_(std::move(specs)) {}

  /// Number of groups.
  std::size_t NumGroups() const { return keys_.NumRows(); }

  /// Number of aggregates per group.
  std::size_t NumAggs() const { return specs_.size(); }

  /// The group-key table (one row per group).
  const Table& keys() const { return keys_; }
  Table* mutable_keys() { return &keys_; }

  /// The aggregate specs.
  const std::vector<AggSpec>& specs() const { return specs_; }

  /// The polynomial of aggregate `agg` in group `group`.
  const prov::Polynomial& PolyAt(std::size_t group, std::size_t agg) const {
    return cells_[group * specs_.size() + agg];
  }

  /// Appends one group's polynomials (must match NumAggs()).
  void AddGroup(std::vector<prov::Polynomial> aggs);

  /// A human-readable label for group `g`: key values joined with ",".
  std::string GroupLabel(std::size_t g) const;

  /// Extracts aggregate column `agg` as a labelled PolySet — the provenance
  /// input that COBRA compresses.
  prov::PolySet ToPolySet(std::size_t agg = 0) const;

  /// Evaluates all aggregates under `valuation` into a numeric table
  /// (key columns followed by one DOUBLE column per aggregate). Passing the
  /// neutral valuation reproduces the ordinary query answer.
  Table Evaluate(const prov::Valuation& valuation) const;

 private:
  Table keys_;
  std::vector<AggSpec> specs_;
  std::vector<prov::Polynomial> cells_;  // row-major: group * NumAggs + agg
};

/// Grouped aggregation over an annotated input.
///
/// `group_cols` name the grouping columns (empty = single global group).
/// SUM/COUNT cells are symbolic; AVG/MIN/MAX require every contributing
/// tuple to be annotated with One (otherwise the result would not commute
/// with valuations) and fail with FailedPrecondition if not.
util::Result<GroupedResult> GroupByAggregate(
    const AnnotatedTable& input, const std::vector<std::string>& group_cols,
    const std::vector<AggSpec>& aggs);

}  // namespace cobra::rel

#endif  // COBRA_REL_AGGREGATE_H_
