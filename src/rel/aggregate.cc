#include "rel/aggregate.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/hash.h"

namespace cobra::rel {

namespace {

using util::Result;
using util::Status;

std::uint64_t HashKey(const Table& table, std::size_t row,
                      const std::vector<std::size_t>& cols) {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  for (std::size_t c : cols) h = util::HashCombine(h, table.Get(row, c).Hash());
  return h;
}

bool KeysEqual(const Table& t, std::size_t a, std::size_t b,
               const std::vector<std::size_t>& cols) {
  for (std::size_t c : cols) {
    if (!(t.Get(a, c) == t.Get(b, c))) return false;
  }
  return true;
}

}  // namespace

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

void GroupedResult::AddGroup(std::vector<prov::Polynomial> aggs) {
  COBRA_CHECK_MSG(aggs.size() == specs_.size(),
                  "GroupedResult::AddGroup: arity mismatch");
  for (prov::Polynomial& p : aggs) cells_.push_back(std::move(p));
}

std::string GroupedResult::GroupLabel(std::size_t g) const {
  if (keys_.NumColumns() == 0) return "<all>";
  std::string label;
  for (std::size_t c = 0; c < keys_.NumColumns(); ++c) {
    if (c > 0) label += ",";
    label += keys_.Get(g, c).ToString();
  }
  return label;
}

prov::PolySet GroupedResult::ToPolySet(std::size_t agg) const {
  COBRA_CHECK_MSG(agg < specs_.size(), "ToPolySet: aggregate index range");
  prov::PolySet out;
  for (std::size_t g = 0; g < NumGroups(); ++g) {
    out.Add(GroupLabel(g), PolyAt(g, agg));
  }
  return out;
}

Table GroupedResult::Evaluate(const prov::Valuation& valuation) const {
  Schema schema = keys_.schema();
  for (const AggSpec& spec : specs_) {
    schema.AddColumn("", {spec.name, Type::kDouble});
  }
  Table out(schema);
  std::size_t key_width = keys_.NumColumns();
  for (std::size_t g = 0; g < NumGroups(); ++g) {
    for (std::size_t c = 0; c < key_width; ++c) {
      out.mutable_column(c)->Append(keys_.Get(g, c));
    }
    for (std::size_t a = 0; a < specs_.size(); ++a) {
      out.mutable_column(key_width + a)
          ->AppendDouble(PolyAt(g, a).Eval(valuation));
    }
  }
  out.CommitAppendedRows(NumGroups());
  return out;
}

Result<GroupedResult> GroupByAggregate(const AnnotatedTable& input,
                                       const std::vector<std::string>& group_cols,
                                       const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) {
    return Status::InvalidArgument("GroupByAggregate: no aggregates");
  }
  std::vector<std::size_t> key_cols;
  Schema key_schema;
  for (const std::string& ref : group_cols) {
    Result<std::size_t> idx = input.schema().Resolve(ref);
    if (!idx.ok()) return idx.status();
    key_cols.push_back(*idx);
    key_schema.AddColumn(input.schema().qualifier(*idx),
                         input.schema().column(*idx));
  }

  // Bind aggregate inputs.
  std::vector<BoundExpr> bound;
  std::vector<bool> has_input;
  for (const AggSpec& spec : aggs) {
    if (spec.input == nullptr) {
      if (spec.func != AggFunc::kCount) {
        return Status::InvalidArgument(
            "only COUNT may omit its input expression");
      }
      has_input.push_back(false);
      bound.emplace_back();  // placeholder
      continue;
    }
    Result<BoundExpr> b = BoundExpr::Bind(spec.input, input.schema());
    if (!b.ok()) return b.status();
    if (b->result_type() == Type::kString) {
      return Status::InvalidArgument("cannot aggregate a string expression: " +
                                     spec.name);
    }
    has_input.push_back(true);
    bound.push_back(std::move(*b));
  }

  // Assign group ids by hashing the key tuple.
  std::unordered_multimap<std::uint64_t, std::size_t> index;  // hash -> group
  std::vector<std::size_t> representative;  // group -> first input row
  std::vector<std::size_t> row_group(input.NumRows());
  for (std::size_t r = 0; r < input.NumRows(); ++r) {
    std::uint64_t h = HashKey(input.table, r, key_cols);
    std::size_t group = static_cast<std::size_t>(-1);
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (KeysEqual(input.table, r, representative[it->second], key_cols)) {
        group = it->second;
        break;
      }
    }
    if (group == static_cast<std::size_t>(-1)) {
      group = representative.size();
      representative.push_back(r);
      index.emplace(h, group);
    }
    row_group[r] = group;
  }
  std::size_t num_groups = representative.size();

  // Accumulate per (group, aggregate).
  struct NumericAcc {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::vector<prov::PolynomialBuilder> sym(num_groups * aggs.size());
  std::vector<NumericAcc> num(num_groups * aggs.size());

  for (std::size_t r = 0; r < input.NumRows(); ++r) {
    std::size_t g = row_group[r];
    AnnotId annot = input.annots[r];
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      std::size_t cell = g * aggs.size() + a;
      double v = 1.0;
      if (has_input[a]) v = bound[a].Eval(input.table, r).AsDouble();
      switch (aggs[a].func) {
        case AggFunc::kSum:
        case AggFunc::kCount: {
          double contribution = aggs[a].func == AggFunc::kCount ? 1.0 : v;
          // Semimodule tensor: annotation ⊗ value, normalized to value·annot.
          sym[cell].AddPolynomial(input.pool->Get(annot), contribution);
          break;
        }
        case AggFunc::kAvg:
        case AggFunc::kMin:
        case AggFunc::kMax: {
          if (annot != AnnotPool::kOne) {
            return Status::FailedPrecondition(
                std::string(AggFuncToString(aggs[a].func)) +
                " does not support symbolic annotations (tuple provenance "
                "must be 1)");
          }
          NumericAcc& acc = num[cell];
          acc.min = std::min(acc.min, v);
          acc.max = std::max(acc.max, v);
          acc.sum += v;
          acc.count += 1;
          break;
        }
      }
    }
  }

  // Emit groups in order of first appearance (deterministic).
  GroupedResult result(key_schema, aggs);
  Table* keys = result.mutable_keys();
  for (std::size_t g = 0; g < num_groups; ++g) {
    for (std::size_t c = 0; c < key_cols.size(); ++c) {
      keys->mutable_column(c)->Append(
          input.table.Get(representative[g], key_cols[c]));
    }
    std::vector<prov::Polynomial> row;
    row.reserve(aggs.size());
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      std::size_t cell = g * aggs.size() + a;
      switch (aggs[a].func) {
        case AggFunc::kSum:
        case AggFunc::kCount:
          row.push_back(sym[cell].Build());
          break;
        case AggFunc::kAvg:
          row.push_back(prov::Polynomial::Constant(
              num[cell].count == 0 ? 0.0
                                   : num[cell].sum /
                                         static_cast<double>(num[cell].count)));
          break;
        case AggFunc::kMin:
          row.push_back(prov::Polynomial::Constant(num[cell].min));
          break;
        case AggFunc::kMax:
          row.push_back(prov::Polynomial::Constant(num[cell].max));
          break;
      }
    }
    result.AddGroup(std::move(row));
  }
  keys->CommitAppendedRows(num_groups);
  return result;
}

}  // namespace cobra::rel
