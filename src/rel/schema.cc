#include "rel/schema.h"

#include "util/str.h"

namespace cobra::rel {

Schema::Schema(std::string qualifier, std::vector<ColumnDef> columns)
    : columns_(std::move(columns)),
      qualifiers_(columns_.size(), std::move(qualifier)) {}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out = left;
  out.columns_.insert(out.columns_.end(), right.columns_.begin(),
                      right.columns_.end());
  out.qualifiers_.insert(out.qualifiers_.end(), right.qualifiers_.begin(),
                         right.qualifiers_.end());
  return out;
}

std::string Schema::QualifiedName(std::size_t index) const {
  if (qualifiers_[index].empty()) return columns_[index].name;
  return qualifiers_[index] + "." + columns_[index].name;
}

void Schema::AddColumn(std::string qualifier, ColumnDef def) {
  qualifiers_.push_back(std::move(qualifier));
  columns_.push_back(std::move(def));
}

util::Result<std::size_t> Schema::Resolve(std::string_view ref) const {
  std::string_view qualifier;
  std::string_view name = ref;
  std::size_t dot = ref.rfind('.');
  if (dot != std::string_view::npos) {
    qualifier = ref.substr(0, dot);
    name = ref.substr(dot + 1);
  }
  std::size_t found = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (!util::EqualsIgnoreCase(columns_[i].name, name)) continue;
    if (!qualifier.empty() && !util::EqualsIgnoreCase(qualifiers_[i], qualifier))
      continue;
    if (found != static_cast<std::size_t>(-1)) {
      return util::Status::AlreadyExists("ambiguous column reference: " +
                                         std::string(ref));
    }
    found = i;
  }
  if (found == static_cast<std::size_t>(-1)) {
    return util::Status::NotFound("unknown column: " + std::string(ref));
  }
  return found;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += QualifiedName(i);
    out += " ";
    out += TypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace cobra::rel
