#ifndef COBRA_REL_DATABASE_H_
#define COBRA_REL_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "prov/variable.h"
#include "rel/annot.h"
#include "util/status.h"

namespace cobra::rel {

/// A catalog of annotated tables sharing one annotation pool and one
/// provenance variable pool — the instrumented database the paper's
/// provenance engine evaluates over.
class Database {
 public:
  Database()
      : annot_pool_(std::make_shared<AnnotPool>()),
        var_pool_(std::make_shared<prov::VarPool>()) {}

  /// Registers `table` (rows annotated with One) under `name`.
  util::Status AddTable(const std::string& name, Table table);

  /// Registers an already-annotated table; its pool must be this database's.
  util::Status AddAnnotatedTable(const std::string& name, AnnotatedTable table);

  /// True iff `name` exists.
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Returns the table named `name`.
  util::Result<const AnnotatedTable*> GetTable(const std::string& name) const;

  /// Mutable access (used by instrumentation).
  util::Result<AnnotatedTable*> GetMutableTable(const std::string& name);

  /// The shared annotation pool.
  const std::shared_ptr<AnnotPool>& annot_pool() const { return annot_pool_; }

  /// The shared provenance variable pool.
  const std::shared_ptr<prov::VarPool>& var_pool() const { return var_pool_; }
  prov::VarPool* mutable_var_pool() { return var_pool_.get(); }

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::shared_ptr<AnnotPool> annot_pool_;
  std::shared_ptr<prov::VarPool> var_pool_;
  std::unordered_map<std::string, AnnotatedTable> tables_;
};

}  // namespace cobra::rel

#endif  // COBRA_REL_DATABASE_H_
