#ifndef COBRA_REL_INSTRUMENT_H_
#define COBRA_REL_INSTRUMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "rel/database.h"
#include "util/status.h"

namespace cobra::rel {

/// Instrumentation: attaching symbolic variables to base data.
///
/// The paper instruments data "at the cell or tuple level" so that query
/// results become polynomials over the attached variables. COBRA's
/// hypothetical scenarios are *multiplicative* changes ("decrease March
/// prices by 20%"), so attaching the variable to the tuple annotation is
/// equivalent to scaling the parameterized measure column, provided that
/// column enters the aggregate multiplicatively for those tuples (true for
/// all workloads in this repo; documented per query in DESIGN.md).

/// Returns the variable names to attach to one row (empty = leave as-is).
using VarNamer =
    std::function<std::vector<std::string>(const Table& table, std::size_t row)>;

/// Multiplies the annotation of every row of `table_name` by one variable
/// per name produced by `namer` (names are interned in the database's
/// variable pool). Typical use: tag each Plans row with its plan variable
/// and its month variable, yielding annotations like `p1 * m1`.
util::Status InstrumentTable(Database* db, const std::string& table_name,
                             const VarNamer& namer);

/// Convenience: tags each row with variables derived from column values.
/// For each instruction `{column, prefix}` the row gains the variable
/// `prefix + value_of(column)` (e.g. {"Mo", "m"} -> "m3").
struct ColumnVarSpec {
  std::string column;
  std::string prefix;
};
util::Status InstrumentByColumns(Database* db, const std::string& table_name,
                                 const std::vector<ColumnVarSpec>& specs);

/// Tags each row with a variable derived from a column value through an
/// explicit dictionary (e.g. plan name -> paper's variable name: "A" -> "p1").
util::Status InstrumentByDictionary(
    Database* db, const std::string& table_name, const std::string& column,
    const std::vector<std::pair<std::string, std::string>>& value_to_var);

/// Tuple-level provenance: tags row `r` of the table with the fresh variable
/// `prefix + r` (classical tuple-annotation instrumentation).
util::Status InstrumentTuples(Database* db, const std::string& table_name,
                              const std::string& prefix);

}  // namespace cobra::rel

#endif  // COBRA_REL_INSTRUMENT_H_
