#ifndef COBRA_REL_OPS_H_
#define COBRA_REL_OPS_H_

#include <string>
#include <vector>

#include "rel/annot.h"
#include "rel/expr.h"
#include "util/status.h"

namespace cobra::rel {

/// Annotated relational operators (bag semantics over the semiring N[X]).
///
/// Each operator follows the Green-Karvounarakis-Tannen rules:
///  * selection keeps the annotation of surviving tuples,
///  * projection keeps annotations (duplicates remain distinct tuples;
///    `Distinct` merges them with semiring Plus),
///  * join multiplies annotations,
///  * union adds tables (annotations pass through),
///  * duplicate elimination sums annotations of equal tuples.

/// σ: rows of `input` where `predicate` holds.
util::Result<AnnotatedTable> Select(const AnnotatedTable& input,
                                    const ExprPtr& predicate);

/// π (generalized): evaluates `exprs` per row; `names[i]` is the output
/// column name (unqualified).
util::Result<AnnotatedTable> Project(const AnnotatedTable& input,
                                     const std::vector<ExprPtr>& exprs,
                                     const std::vector<std::string>& names);

/// Equi-join on `left_keys[i] == right_keys[i]` (hash join; annotations
/// multiply). Output schema is the concatenation of both inputs.
util::Result<AnnotatedTable> HashJoin(const AnnotatedTable& left,
                                      const AnnotatedTable& right,
                                      const std::vector<std::string>& left_keys,
                                      const std::vector<std::string>& right_keys);

/// θ-join by nested loops for arbitrary predicates (small inputs/tests).
util::Result<AnnotatedTable> NestedLoopJoin(const AnnotatedTable& left,
                                            const AnnotatedTable& right,
                                            const ExprPtr& predicate);

/// Bag union; schemas must have identical column types and names.
util::Result<AnnotatedTable> Union(const AnnotatedTable& a,
                                   const AnnotatedTable& b);

/// δ: collapses equal rows, summing their annotations (semiring Plus).
AnnotatedTable Distinct(const AnnotatedTable& input);

/// Sort specification for OrderBy.
struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

/// Sorts rows (stable) by the given keys.
util::Result<AnnotatedTable> OrderBy(const AnnotatedTable& input,
                                     const std::vector<SortKey>& keys);

/// Keeps the first `n` rows.
AnnotatedTable Limit(const AnnotatedTable& input, std::size_t n);

}  // namespace cobra::rel

#endif  // COBRA_REL_OPS_H_
