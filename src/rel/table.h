#ifndef COBRA_REL_TABLE_H_
#define COBRA_REL_TABLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "rel/schema.h"
#include "rel/value.h"
#include "util/status.h"

namespace cobra::rel {

/// Typed columnar storage for one column.
///
/// The engine is columnar so that large generated workloads (12M call rows
/// in experiment E3, TPC-H lineitem at SF 0.1) stay compact: an INT64 column
/// is a flat `std::vector<int64_t>`, not a vector of boxed values.
class Column {
 public:
  /// Creates an empty column of `type`.
  explicit Column(Type type);

  Type type() const { return type_; }
  std::size_t size() const;

  /// Appends a value; must match the column type (int promotes to double).
  void Append(const Value& v);
  void AppendInt64(std::int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  /// Reads the cell at `row` as a boxed Value.
  Value Get(std::size_t row) const;

  /// Typed accessors (abort on type mismatch).
  std::int64_t GetInt64(std::size_t row) const { return Ints()[row]; }
  double GetDouble(std::size_t row) const { return Doubles()[row]; }
  const std::string& GetString(std::size_t row) const { return Strings()[row]; }

  /// Raw typed vectors (abort on type mismatch).
  const std::vector<std::int64_t>& Ints() const;
  const std::vector<double>& Doubles() const;
  const std::vector<std::string>& Strings() const;
  std::vector<std::int64_t>* MutableInts();
  std::vector<double>* MutableDoubles();
  std::vector<std::string>* MutableStrings();

  /// Reserves storage for `n` rows.
  void Reserve(std::size_t n);

 private:
  Type type_;
  std::variant<std::vector<std::int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
};

/// A materialized relation: schema + columns, all of equal length.
class Table {
 public:
  /// Creates an empty table with `schema`.
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t NumRows() const { return num_rows_; }
  std::size_t NumColumns() const { return columns_.size(); }

  const Column& column(std::size_t index) const { return columns_[index]; }
  Column* mutable_column(std::size_t index) { return &columns_[index]; }

  /// Appends a full row; `values.size()` must equal the column count.
  void AppendRow(const std::vector<Value>& values);

  /// Marks `n` rows appended directly through mutable columns.
  /// All columns must already have exactly `NumRows() + n` entries.
  void CommitAppendedRows(std::size_t n);

  /// Reads a full row as boxed values.
  std::vector<Value> GetRow(std::size_t row) const;

  /// Reads one cell.
  Value Get(std::size_t row, std::size_t col) const {
    return columns_[col].Get(row);
  }

  /// Reserves storage in every column.
  void Reserve(std::size_t n);

  /// Renders the table (header + up to `max_rows` rows) for debugging.
  std::string ToString(std::size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace cobra::rel

#endif  // COBRA_REL_TABLE_H_
