#include "rel/csv_loader.h"

#include "util/csv.h"
#include "util/str.h"

namespace cobra::rel {

util::Result<Table> TableFromCsv(std::string_view csv_text,
                                 const std::string& table_qualifier) {
  util::Result<util::CsvDocument> doc = util::ParseCsv(csv_text);
  if (!doc.ok()) return doc.status();
  const std::size_t width = doc->header.size();

  // Infer each column's type from the strictest parse that accepts all
  // values: INT64 ⊂ DOUBLE ⊂ STRING.
  std::vector<Type> types(width, Type::kInt64);
  for (const auto& row : doc->rows) {
    for (std::size_t c = 0; c < width; ++c) {
      if (types[c] == Type::kString) continue;
      if (types[c] == Type::kInt64 && !util::ParseInt64(row[c]).ok()) {
        types[c] = Type::kDouble;
      }
      if (types[c] == Type::kDouble && !util::ParseDouble(row[c]).ok()) {
        types[c] = Type::kString;
      }
    }
  }
  if (doc->rows.empty()) types.assign(width, Type::kString);

  Schema schema;
  for (std::size_t c = 0; c < width; ++c) {
    schema.AddColumn(table_qualifier,
                     {std::string(util::Trim(doc->header[c])), types[c]});
  }
  Table table(schema);
  table.Reserve(doc->rows.size());
  for (const auto& row : doc->rows) {
    for (std::size_t c = 0; c < width; ++c) {
      switch (types[c]) {
        case Type::kInt64:
          table.mutable_column(c)->AppendInt64(
              util::ParseInt64(row[c]).ValueOrDie());
          break;
        case Type::kDouble:
          table.mutable_column(c)->AppendDouble(
              util::ParseDouble(row[c]).ValueOrDie());
          break;
        case Type::kString:
          table.mutable_column(c)->AppendString(row[c]);
          break;
      }
    }
  }
  table.CommitAppendedRows(doc->rows.size());
  return table;
}

util::Status LoadCsvTable(Database* db, const std::string& name,
                          const std::string& path) {
  util::Result<std::string> content = util::ReadFile(path);
  if (!content.ok()) return content.status();
  util::Result<Table> table = TableFromCsv(*content, name);
  if (!table.ok()) return table.status();
  return db->AddTable(name, std::move(*table));
}

std::string TableToCsv(const Table& table) {
  util::CsvDocument doc;
  for (std::size_t c = 0; c < table.NumColumns(); ++c) {
    doc.header.push_back(table.schema().column(c).name);
  }
  for (std::size_t r = 0; r < table.NumRows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.NumColumns());
    for (std::size_t c = 0; c < table.NumColumns(); ++c) {
      row.push_back(table.Get(r, c).ToString());
    }
    doc.rows.push_back(std::move(row));
  }
  return util::WriteCsv(doc);
}

}  // namespace cobra::rel
