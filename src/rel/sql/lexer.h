#ifndef COBRA_REL_SQL_LEXER_H_
#define COBRA_REL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cobra::rel::sql {

/// Token kinds of the SQL subset.
enum class TokenKind {
  kIdent,    ///< Identifier or keyword (keywords resolved by the parser).
  kNumber,   ///< Integer or decimal literal.
  kString,   ///< Single-quoted string literal (unescaped content).
  kSymbol,   ///< Punctuation / operator: ( ) , * + - / = <> < <= > >= .
  kEnd,      ///< End of input.
};

/// One lexical token with its source offset (for diagnostics).
struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset;

  bool Is(TokenKind k) const { return kind == k; }
  /// True for an identifier matching `keyword` case-insensitively.
  bool IsKeyword(std::string_view keyword) const;
  /// True for the exact symbol `sym`.
  bool IsSymbol(std::string_view sym) const;
};

/// Tokenizes `text`. The final token is always kEnd.
util::Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace cobra::rel::sql

#endif  // COBRA_REL_SQL_LEXER_H_
