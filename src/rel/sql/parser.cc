#include "rel/sql/parser.h"

#include "rel/sql/lexer.h"
#include "util/str.h"

namespace cobra::rel::sql {

namespace {

using util::Result;
using util::Status;

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseStatement() {
    SelectStmt stmt;
    if (!ConsumeKeyword("SELECT")) return Err("expected SELECT");
    // Select list.
    for (;;) {
      Result<SelectItem> item = ParseSelectItem();
      if (!item.ok()) return item.status();
      stmt.items.push_back(std::move(*item));
      if (!ConsumeSymbol(",")) break;
    }
    if (!ConsumeKeyword("FROM")) return Err("expected FROM");
    for (;;) {
      Result<TableRef> table = ParseTableRef();
      if (!table.ok()) return table.status();
      stmt.from.push_back(std::move(*table));
      if (!ConsumeSymbol(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      Result<ExprPtr> predicate = ParseExpr();
      if (!predicate.ok()) return predicate.status();
      stmt.where = std::move(*predicate);
    }
    if (ConsumeKeyword("GROUP")) {
      if (!ConsumeKeyword("BY")) return Err("expected BY after GROUP");
      for (;;) {
        if (!Current().Is(TokenKind::kIdent)) return Err("expected column");
        stmt.group_by.push_back(Current().text);
        Advance();
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("ORDER")) {
      if (!ConsumeKeyword("BY")) return Err("expected BY after ORDER");
      for (;;) {
        OrderItem item;
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(*e);
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (!Current().Is(TokenKind::kNumber)) return Err("expected limit count");
      Result<std::int64_t> n = util::ParseInt64(Current().text);
      if (!n.ok() || *n < 0) return Err("bad LIMIT value");
      stmt.limit = static_cast<std::size_t>(*n);
      Advance();
    }
    ConsumeSymbol(";");
    if (!Current().Is(TokenKind::kEnd)) {
      return Err("unexpected trailing input: '" + Current().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (Current().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(std::string_view sym) {
    if (Current().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(const std::string& message) const {
    return Status::ParseError(message + " (near offset " +
                              std::to_string(Current().offset) + ")");
  }

  static bool IsAggName(const std::string& name, AggFunc* out) {
    struct Entry {
      const char* name;
      AggFunc func;
    };
    static constexpr Entry kAggs[] = {{"SUM", AggFunc::kSum},
                                      {"COUNT", AggFunc::kCount},
                                      {"AVG", AggFunc::kAvg},
                                      {"MIN", AggFunc::kMin},
                                      {"MAX", AggFunc::kMax}};
    for (const Entry& e : kAggs) {
      if (util::EqualsIgnoreCase(name, e.name)) {
        *out = e.func;
        return true;
      }
    }
    return false;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    AggFunc func;
    if (Current().Is(TokenKind::kIdent) && IsAggName(Current().text, &func) &&
        tokens_[pos_ + 1].IsSymbol("(")) {
      item.agg = func;
      Advance();  // name
      Advance();  // (
      if (func == AggFunc::kCount && ConsumeSymbol("*")) {
        item.count_star = true;
      } else {
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(*e);
      }
      if (!ConsumeSymbol(")")) return Err("expected ) after aggregate");
    } else {
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(*e);
    }
    if (ConsumeKeyword("AS")) {
      if (!Current().Is(TokenKind::kIdent)) return Err("expected alias");
      item.alias = Current().text;
      Advance();
    } else if (Current().Is(TokenKind::kIdent) &&
               !Current().IsKeyword("FROM")) {
      // Bare alias (e.g. "SUM(x) total") — only when not a clause keyword.
      static constexpr const char* kClauses[] = {"WHERE", "GROUP", "ORDER",
                                                 "LIMIT"};
      bool is_clause = false;
      for (const char* kw : kClauses) {
        if (Current().IsKeyword(kw)) is_clause = true;
      }
      if (!is_clause) {
        item.alias = Current().text;
        Advance();
      }
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    if (!Current().Is(TokenKind::kIdent)) return Err("expected table name");
    TableRef ref;
    ref.table = Current().text;
    Advance();
    if (Current().Is(TokenKind::kIdent) && !Current().IsKeyword("WHERE") &&
        !Current().IsKeyword("GROUP") && !Current().IsKeyword("ORDER") &&
        !Current().IsKeyword("LIMIT")) {
      ref.alias = Current().text;
      Advance();
    }
    return ref;
  }

  // Expression grammar (lowest to highest precedence):
  //   or_expr  := and_expr (OR and_expr)*
  //   and_expr := not_expr (AND not_expr)*
  //   not_expr := NOT not_expr | cmp
  //   cmp      := add (( = | <> | < | <= | > | >= ) add)?
  //   add      := mul (( + | - ) mul)*
  //   mul      := unary (( * | / ) unary)*
  //   unary    := - unary | primary
  //   primary  := NUMBER | STRING | IDENT | ( or_expr )
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    while (ConsumeKeyword("OR")) {
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      expr = Expr::Or(expr, std::move(*rhs));
    }
    return expr;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    while (ConsumeKeyword("AND")) {
      Result<ExprPtr> rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      expr = Expr::And(expr, std::move(*rhs));
    }
    return expr;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      Result<ExprPtr> operand = ParseNot();
      if (!operand.ok()) return operand;
      return Expr::Not(std::move(*operand));
    }
    return ParseCmp();
  }

  Result<ExprPtr> ParseCmp() {
    Result<ExprPtr> lhs = ParseAdd();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    struct CmpOp {
      const char* sym;
      ExprOp op;
    };
    static constexpr CmpOp kOps[] = {{"<=", ExprOp::kLe}, {">=", ExprOp::kGe},
                                     {"<>", ExprOp::kNe}, {"=", ExprOp::kEq},
                                     {"<", ExprOp::kLt},  {">", ExprOp::kGt}};
    for (const CmpOp& c : kOps) {
      if (Current().IsSymbol(c.sym)) {
        Advance();
        Result<ExprPtr> rhs = ParseAdd();
        if (!rhs.ok()) return rhs;
        return Expr::Binary(c.op, expr, std::move(*rhs));
      }
    }
    return expr;
  }

  Result<ExprPtr> ParseAdd() {
    Result<ExprPtr> lhs = ParseMul();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    for (;;) {
      if (ConsumeSymbol("+")) {
        Result<ExprPtr> rhs = ParseMul();
        if (!rhs.ok()) return rhs;
        expr = Expr::Add(expr, std::move(*rhs));
      } else if (ConsumeSymbol("-")) {
        Result<ExprPtr> rhs = ParseMul();
        if (!rhs.ok()) return rhs;
        expr = Expr::Sub(expr, std::move(*rhs));
      } else {
        return expr;
      }
    }
  }

  Result<ExprPtr> ParseMul() {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    for (;;) {
      if (ConsumeSymbol("*")) {
        Result<ExprPtr> rhs = ParseUnary();
        if (!rhs.ok()) return rhs;
        expr = Expr::Mul(expr, std::move(*rhs));
      } else if (ConsumeSymbol("/")) {
        Result<ExprPtr> rhs = ParseUnary();
        if (!rhs.ok()) return rhs;
        expr = Expr::Div(expr, std::move(*rhs));
      } else {
        return expr;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Expr::Unary(ExprOp::kNeg, std::move(*operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Current().Is(TokenKind::kNumber)) {
      std::string text = Current().text;
      Advance();
      if (text.find('.') == std::string::npos) {
        Result<std::int64_t> v = util::ParseInt64(text);
        if (!v.ok()) return v.status();
        return Expr::Int(*v);
      }
      Result<double> v = util::ParseDouble(text);
      if (!v.ok()) return v.status();
      return Expr::Double(*v);
    }
    if (Current().Is(TokenKind::kString)) {
      std::string text = Current().text;
      Advance();
      return Expr::Str(std::move(text));
    }
    if (Current().Is(TokenKind::kIdent)) {
      std::string name = Current().text;
      Advance();
      return Expr::Column(std::move(name));
    }
    if (ConsumeSymbol("(")) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!ConsumeSymbol(")")) return Err("expected )");
      return inner;
    }
    return Err("expected expression, found '" + Current().text + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<SelectStmt> ParseSelect(std::string_view text) {
  util::Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(*tokens)).ParseStatement();
}

}  // namespace cobra::rel::sql
