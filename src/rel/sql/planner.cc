#include "rel/sql/planner.h"

#include <algorithm>
#include <numeric>

#include "rel/ops.h"
#include "rel/sql/parser.h"
#include "util/str.h"

namespace cobra::rel::sql {

namespace {

using util::Result;
using util::Status;

/// Splits a predicate tree into AND-ed conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->op() == ExprOp::kAnd) {
    SplitConjuncts(expr->lhs(), out);
    SplitConjuncts(expr->rhs(), out);
    return;
  }
  out->push_back(expr);
}

/// AND-combines conjuncts back into one predicate (nullptr when empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    out = out == nullptr ? c : Expr::And(out, c);
  }
  return out;
}

/// Re-qualifies a table copy under `alias` (used when FROM introduces one).
AnnotatedTable Requalify(const AnnotatedTable& input, const std::string& alias) {
  Schema schema;
  for (std::size_t i = 0; i < input.schema().size(); ++i) {
    schema.AddColumn(alias, input.schema().column(i));
  }
  Table table(schema);
  table.Reserve(input.NumRows());
  for (std::size_t c = 0; c < input.schema().size(); ++c) {
    *table.mutable_column(c) = input.table.column(c);
  }
  table.CommitAppendedRows(input.NumRows());
  return AnnotatedTable{std::move(table), input.annots, input.pool};
}

/// A join-graph edge: relations[left].left_col == relations[right].right_col.
struct JoinEdge {
  std::size_t left_rel, right_rel;
  std::string left_col, right_col;
  bool used = false;
};

/// Finds the unique relation whose schema resolves `column`.
Result<std::size_t> OwnerOf(const std::vector<AnnotatedTable>& rels,
                            const std::string& column) {
  std::size_t owner = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < rels.size(); ++i) {
    if (!rels[i].schema().CanResolve(column)) continue;
    if (owner != static_cast<std::size_t>(-1)) {
      return Status::InvalidArgument("ambiguous column across tables: " +
                                     column);
    }
    owner = i;
  }
  if (owner == static_cast<std::size_t>(-1)) {
    return Status::NotFound("column not found in any FROM table: " + column);
  }
  return owner;
}

/// Reorders (and truncates) the groups of `input` by `order`.
GroupedResult ReorderGroups(const GroupedResult& input,
                            const std::vector<std::size_t>& order,
                            std::size_t limit) {
  GroupedResult out(input.keys().schema(), input.specs());
  Table* keys = out.mutable_keys();
  std::size_t n = std::min(limit, order.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t g = order[i];
    for (std::size_t c = 0; c < input.keys().NumColumns(); ++c) {
      keys->mutable_column(c)->Append(input.keys().Get(g, c));
    }
    std::vector<prov::Polynomial> row;
    row.reserve(input.NumAggs());
    for (std::size_t a = 0; a < input.NumAggs(); ++a) {
      row.push_back(input.PolyAt(g, a));
    }
    out.AddGroup(std::move(row));
  }
  keys->CommitAppendedRows(n);
  return out;
}

/// Output-column name for a select item (alias, column tail, or func name).
std::string DerivedName(const SelectItem& item, std::size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.agg.has_value()) {
    return util::ToLower(AggFuncToString(*item.agg)) + "_" +
           std::to_string(index);
  }
  if (item.expr != nullptr && item.expr->op() == ExprOp::kColumn) {
    const std::string& name = item.expr->column_name();
    std::size_t dot = name.rfind('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
  }
  return "col_" + std::to_string(index);
}

}  // namespace

Table QueryResult::Evaluate(const prov::Valuation& valuation) const {
  if (grouped.has_value()) {
    Table raw = grouped->Evaluate(valuation);
    if (output_layout.empty()) return raw;
    // Re-emit columns in SELECT-list order (keys table holds the group
    // columns; aggregates follow them in `raw`).
    std::size_t key_width = grouped->keys().NumColumns();
    Schema schema;
    for (const OutputColumn& col : output_layout) {
      std::size_t raw_index =
          col.is_aggregate ? key_width + col.index : col.index;
      schema.AddColumn("", {col.name, raw.schema().column(raw_index).type});
    }
    Table out(schema);
    out.Reserve(raw.NumRows());
    for (std::size_t r = 0; r < raw.NumRows(); ++r) {
      for (std::size_t c = 0; c < output_layout.size(); ++c) {
        const OutputColumn& col = output_layout[c];
        std::size_t raw_index =
            col.is_aggregate ? key_width + col.index : col.index;
        out.mutable_column(c)->Append(raw.Get(r, raw_index));
      }
    }
    out.CommitAppendedRows(raw.NumRows());
    return out;
  }
  COBRA_CHECK_MSG(flat.has_value(), "empty QueryResult");
  return flat->table;
}

prov::PolySet QueryResult::Provenance(std::size_t agg) const {
  COBRA_CHECK_MSG(grouped.has_value(),
                  "Provenance() requires an aggregate query");
  return grouped->ToPolySet(agg);
}

Result<QueryResult> ExecuteSelect(const Database& db, const SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  if (stmt.items.empty()) {
    return Status::InvalidArgument("SELECT list is empty");
  }

  // 1. Scan the FROM tables.
  std::vector<AnnotatedTable> rels;
  rels.reserve(stmt.from.size());
  for (const TableRef& ref : stmt.from) {
    Result<const AnnotatedTable*> table = db.GetTable(ref.table);
    if (!table.ok()) return table.status();
    if (!ref.alias.empty() && ref.alias != ref.table) {
      rels.push_back(Requalify(**table, ref.alias));
    } else {
      rels.push_back(**table);
    }
  }

  // 2. Classify WHERE conjuncts.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt.where, &conjuncts);
  std::vector<std::vector<ExprPtr>> pushed(rels.size());
  std::vector<JoinEdge> edges;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& conjunct : conjuncts) {
    std::vector<std::string> columns;
    conjunct->CollectColumns(&columns);
    std::vector<std::size_t> owners;
    for (const std::string& col : columns) {
      Result<std::size_t> owner = OwnerOf(rels, col);
      if (!owner.ok()) return owner.status();
      owners.push_back(*owner);
    }
    bool single_rel =
        !owners.empty() &&
        std::all_of(owners.begin(), owners.end(),
                    [&owners](std::size_t o) { return o == owners[0]; });
    if (single_rel) {
      pushed[owners[0]].push_back(conjunct);
      continue;
    }
    bool is_equi_join =
        conjunct->op() == ExprOp::kEq && columns.size() == 2 &&
        conjunct->lhs()->op() == ExprOp::kColumn &&
        conjunct->rhs()->op() == ExprOp::kColumn && owners[0] != owners[1];
    if (is_equi_join) {
      edges.push_back({owners[0], owners[1], conjunct->lhs()->column_name(),
                       conjunct->rhs()->column_name(), false});
      continue;
    }
    residual.push_back(conjunct);
  }

  // 3. Push single-table selections down.
  for (std::size_t i = 0; i < rels.size(); ++i) {
    if (pushed[i].empty()) continue;
    Result<AnnotatedTable> filtered =
        Select(rels[i], CombineConjuncts(pushed[i]));
    if (!filtered.ok()) return filtered.status();
    rels[i] = std::move(*filtered);
  }

  // 4. Greedy join along edges, cross join when disconnected.
  std::vector<bool> joined(rels.size(), false);
  AnnotatedTable current = std::move(rels[0]);
  joined[0] = true;
  std::size_t remaining = rels.size() - 1;
  while (remaining > 0) {
    // Find an unjoined relation connected to the joined set.
    std::size_t next = static_cast<std::size_t>(-1);
    for (const JoinEdge& e : edges) {
      if (e.used) continue;
      if (joined[e.left_rel] && !joined[e.right_rel]) next = e.right_rel;
      if (joined[e.right_rel] && !joined[e.left_rel]) next = e.left_rel;
      if (next != static_cast<std::size_t>(-1)) break;
    }
    if (next == static_cast<std::size_t>(-1)) {
      // Disconnected: cross join the first unjoined relation.
      for (std::size_t i = 0; i < rels.size(); ++i) {
        if (!joined[i]) {
          next = i;
          break;
        }
      }
      Result<AnnotatedTable> crossed =
          NestedLoopJoin(current, rels[next], Expr::Int(1));
      if (!crossed.ok()) return crossed.status();
      current = std::move(*crossed);
    } else {
      // Collect every edge between the joined set and `next`.
      std::vector<std::string> left_keys, right_keys;
      for (JoinEdge& e : edges) {
        if (e.used) continue;
        if (joined[e.left_rel] && e.right_rel == next) {
          left_keys.push_back(e.left_col);
          right_keys.push_back(e.right_col);
          e.used = true;
        } else if (joined[e.right_rel] && e.left_rel == next) {
          left_keys.push_back(e.right_col);
          right_keys.push_back(e.left_col);
          e.used = true;
        }
      }
      Result<AnnotatedTable> joined_table =
          HashJoin(current, rels[next], left_keys, right_keys);
      if (!joined_table.ok()) return joined_table.status();
      current = std::move(*joined_table);
    }
    joined[next] = true;
    --remaining;
  }
  // Edges whose both endpoints were already joined act as residual filters.
  for (const JoinEdge& e : edges) {
    if (!e.used) {
      residual.push_back(
          Expr::Eq(Expr::Column(e.left_col), Expr::Column(e.right_col)));
    }
  }
  if (!residual.empty()) {
    Result<AnnotatedTable> filtered =
        Select(current, CombineConjuncts(residual));
    if (!filtered.ok()) return filtered.status();
    current = std::move(*filtered);
  }

  // 5. Aggregate or project.
  bool has_agg = std::any_of(stmt.items.begin(), stmt.items.end(),
                             [](const SelectItem& i) { return i.agg.has_value(); });
  QueryResult result;
  if (has_agg || !stmt.group_by.empty()) {
    // Validate non-aggregate items (must be grouping columns) and record
    // the output layout in SELECT-list order.
    std::size_t agg_counter = 0, item_index = 0;
    for (const SelectItem& item : stmt.items) {
      ++item_index;
      if (item.agg.has_value()) {
        result.output_layout.push_back(
            {true, agg_counter++, DerivedName(item, item_index)});
        continue;
      }
      if (item.expr == nullptr || item.expr->op() != ExprOp::kColumn) {
        return Status::InvalidArgument(
            "non-aggregate SELECT items must be grouping columns");
      }
      Result<std::size_t> item_col = current.schema().Resolve(
          item.expr->column_name());
      if (!item_col.ok()) return item_col.status();
      std::size_t key_position = static_cast<std::size_t>(-1);
      for (std::size_t g = 0; g < stmt.group_by.size(); ++g) {
        Result<std::size_t> group_col =
            current.schema().Resolve(stmt.group_by[g]);
        if (!group_col.ok()) return group_col.status();
        if (*group_col == *item_col) key_position = g;
      }
      if (key_position == static_cast<std::size_t>(-1)) {
        return Status::InvalidArgument("column " + item.expr->column_name() +
                                       " is not in GROUP BY");
      }
      result.output_layout.push_back(
          {false, key_position, DerivedName(item, item_index)});
    }
    std::vector<AggSpec> specs;
    std::size_t index = 0;
    for (const SelectItem& item : stmt.items) {
      ++index;
      if (!item.agg.has_value()) continue;
      specs.push_back({*item.agg, item.count_star ? nullptr : item.expr,
                       DerivedName(item, index)});
    }
    if (specs.empty()) {
      return Status::InvalidArgument(
          "GROUP BY without aggregates is not supported (use DISTINCT "
          "semantics via an aggregate)");
    }
    Result<GroupedResult> grouped =
        GroupByAggregate(current, stmt.group_by, specs);
    if (!grouped.ok()) return grouped.status();
    result.grouped = std::move(*grouped);

    if (!stmt.order_by.empty() || stmt.limit.has_value()) {
      // Order groups by their numeric answer under the neutral valuation.
      prov::Valuation neutral(db.var_pool()->size());
      Table numeric = result.grouped->Evaluate(neutral);
      std::vector<BoundExpr> keys;
      for (const OrderItem& item : stmt.order_by) {
        Result<BoundExpr> b = BoundExpr::Bind(item.expr, numeric.schema());
        if (!b.ok()) return b.status();
        keys.push_back(std::move(*b));
      }
      std::vector<std::size_t> order(numeric.NumRows());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         for (std::size_t k = 0; k < keys.size(); ++k) {
                           Value va = keys[k].Eval(numeric, a);
                           Value vb = keys[k].Eval(numeric, b);
                           if (va == vb) continue;
                           bool lt = va < vb;
                           return stmt.order_by[k].descending ? !lt : lt;
                         }
                         return false;
                       });
      result.grouped = ReorderGroups(
          *result.grouped, order,
          stmt.limit.value_or(order.size()));
    }
    return result;
  }

  // Plain projection.
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  std::size_t index = 0;
  for (const SelectItem& item : stmt.items) {
    ++index;
    exprs.push_back(item.expr);
    names.push_back(DerivedName(item, index));
  }
  Result<AnnotatedTable> projected = Project(current, exprs, names);
  if (!projected.ok()) return projected.status();
  current = std::move(*projected);
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      keys.push_back({item.expr, item.descending});
    }
    // Column references in ORDER BY bind against the projected names.
    Result<AnnotatedTable> sorted = OrderBy(current, keys);
    if (!sorted.ok()) return sorted.status();
    current = std::move(*sorted);
  }
  if (stmt.limit.has_value()) {
    current = Limit(current, *stmt.limit);
  }
  result.flat = std::move(current);
  return result;
}

Result<QueryResult> RunSql(const Database& db, std::string_view sql_text) {
  Result<SelectStmt> stmt = ParseSelect(sql_text);
  if (!stmt.ok()) return stmt.status();
  return ExecuteSelect(db, *stmt);
}

}  // namespace cobra::rel::sql
