#ifndef COBRA_REL_SQL_AST_H_
#define COBRA_REL_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "rel/aggregate.h"
#include "rel/expr.h"

namespace cobra::rel::sql {

/// One item of the SELECT list: a scalar expression or an aggregate call,
/// with an optional alias.
struct SelectItem {
  ExprPtr expr;                  ///< Scalar part (aggregate input, or whole item).
  std::optional<AggFunc> agg;    ///< Set when the item is an aggregate call.
  bool count_star = false;       ///< COUNT(*) — expr is null.
  std::string alias;             ///< Output name ("" = derived).
};

/// One table in the FROM clause, with an optional alias.
struct TableRef {
  std::string table;
  std::string alias;  ///< "" = use the table name.

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

/// One ORDER BY key.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SELECT statement of the supported subset:
///
///   SELECT item [, item]*
///   FROM table [alias] [, table [alias]]*
///   [WHERE predicate]
///   [GROUP BY colref [, colref]*]
///   [ORDER BY expr [ASC|DESC] [, ...]]
///   [LIMIT n]
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  ///< null when absent
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  std::optional<std::size_t> limit;
};

}  // namespace cobra::rel::sql

#endif  // COBRA_REL_SQL_AST_H_
