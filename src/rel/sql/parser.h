#ifndef COBRA_REL_SQL_PARSER_H_
#define COBRA_REL_SQL_PARSER_H_

#include <string_view>

#include "rel/sql/ast.h"
#include "util/status.h"

namespace cobra::rel::sql {

/// Parses one SELECT statement (see SelectStmt for the grammar). A trailing
/// semicolon is allowed.
util::Result<SelectStmt> ParseSelect(std::string_view text);

}  // namespace cobra::rel::sql

#endif  // COBRA_REL_SQL_PARSER_H_
