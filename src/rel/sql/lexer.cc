#include "rel/sql/lexer.h"

#include <cctype>

#include "util/str.h"

namespace cobra::rel::sql {

bool Token::IsKeyword(std::string_view keyword) const {
  return kind == TokenKind::kIdent && util::EqualsIgnoreCase(text, keyword);
}

bool Token::IsSymbol(std::string_view sym) const {
  return kind == TokenKind::kSymbol && text == sym;
}

util::Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      // Line comment.
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      // Qualified names like Calls.Dur lex as one identifier token.
      while (i < text.size() && text[i] == '.' && i + 1 < text.size() &&
             (std::isalpha(static_cast<unsigned char>(text[i + 1])) ||
              text[i + 1] == '_')) {
        ++i;
        while (i < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[i])) ||
                text[i] == '_')) {
          ++i;
        }
      }
      tokens.push_back(
          {TokenKind::kIdent, std::string(text.substr(start, i - start)), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      bool seen_dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !seen_dot))) {
        if (text[i] == '.') seen_dot = true;
        ++i;
      }
      tokens.push_back(
          {TokenKind::kNumber, std::string(text.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string content;
      for (;;) {
        if (i >= text.size()) {
          return util::Status::ParseError("unterminated string literal");
        }
        if (text[i] == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            content.push_back('\'');
            i += 2;
          } else {
            ++i;
            break;
          }
        } else {
          content.push_back(text[i]);
          ++i;
        }
      }
      tokens.push_back({TokenKind::kString, std::move(content), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < text.size()) {
      std::string_view two = text.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back({TokenKind::kSymbol,
                          two == "!=" ? std::string("<>") : std::string(two),
                          start});
        i += 2;
        continue;
      }
    }
    if (std::string_view("(),*+-/=<>;").find(c) != std::string_view::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return util::Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(i));
  }
  tokens.push_back({TokenKind::kEnd, "", text.size()});
  return tokens;
}

}  // namespace cobra::rel::sql
