#ifndef COBRA_REL_SQL_PLANNER_H_
#define COBRA_REL_SQL_PLANNER_H_

#include <optional>
#include <string>
#include <string_view>

#include "rel/aggregate.h"
#include "rel/database.h"
#include "rel/sql/ast.h"
#include "util/status.h"

namespace cobra::rel::sql {

/// Result of running a SQL statement: either a flat annotated table (no
/// aggregates) or a grouped symbolic result (aggregate query).
struct QueryResult {
  std::optional<AnnotatedTable> flat;
  std::optional<GroupedResult> grouped;

  /// For grouped results: output columns in SELECT-list order. Each entry
  /// is (is_aggregate, index): a key-table column index or an aggregate
  /// index, plus the output column name.
  struct OutputColumn {
    bool is_aggregate;
    std::size_t index;
    std::string name;
  };
  std::vector<OutputColumn> output_layout;

  bool IsGrouped() const { return grouped.has_value(); }

  /// Numeric answer under `valuation`, with columns in SELECT-list order
  /// (flat results ignore annotations).
  Table Evaluate(const prov::Valuation& valuation) const;

  /// The provenance of aggregate column `agg` (grouped results only;
  /// `agg` counts aggregates in SELECT-list order).
  prov::PolySet Provenance(std::size_t agg = 0) const;
};

/// Plans and executes `stmt` against `db`.
///
/// Planning steps:
///  1. scan each FROM table (applying aliases),
///  2. split WHERE into conjuncts; single-table conjuncts become selections
///     pushed to their table; `a.x = b.y` conjuncts across tables become
///     hash-join edges; anything else is applied after the joins,
///  3. join greedily along available edges (cross product if disconnected),
///  4. evaluate GROUP BY / aggregates, or a final projection,
///  5. ORDER BY / LIMIT (grouped queries: over key columns and aggregate
///     aliases, evaluated under the neutral valuation).
util::Result<QueryResult> ExecuteSelect(const Database& db,
                                        const SelectStmt& stmt);

/// Parses and executes `sql_text` in one call.
util::Result<QueryResult> RunSql(const Database& db, std::string_view sql_text);

}  // namespace cobra::rel::sql

#endif  // COBRA_REL_SQL_PLANNER_H_
