#ifndef COBRA_REL_CSV_LOADER_H_
#define COBRA_REL_CSV_LOADER_H_

#include <string>
#include <string_view>

#include "rel/database.h"
#include "util/status.h"

namespace cobra::rel {

/// Builds a Table from CSV text. The header row gives the column names;
/// column types are inferred from the data: a column where every value
/// parses as an integer is INT64, else if every value parses as a number
/// it is DOUBLE, otherwise STRING. An empty data set (header only) yields
/// an empty table of STRING columns.
util::Result<Table> TableFromCsv(std::string_view csv_text,
                                 const std::string& table_qualifier);

/// Reads `path` and registers the table under `name` in `db`.
util::Status LoadCsvTable(Database* db, const std::string& name,
                          const std::string& path);

/// Serializes a table back to CSV text (header = unqualified column names).
std::string TableToCsv(const Table& table);

}  // namespace cobra::rel

#endif  // COBRA_REL_CSV_LOADER_H_
