#include "rel/value.h"

#include "util/str.h"

namespace cobra::rel {

const char* TypeToString(Type type) {
  switch (type) {
    case Type::kInt64:
      return "INT64";
    case Type::kDouble:
      return "DOUBLE";
    case Type::kString:
      return "STRING";
  }
  return "?";
}

std::int64_t Value::AsInt64() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_))
    return static_cast<std::int64_t>(*d);
  COBRA_CHECK_MSG(false, "Value::AsInt64 on a string");
  return 0;
}

double Value::AsDouble() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_))
    return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  COBRA_CHECK_MSG(false, "Value::AsDouble on a string");
  return 0.0;
}

const std::string& Value::AsString() const& {
  const auto* s = std::get_if<std::string>(&data_);
  COBRA_CHECK_MSG(s != nullptr, "Value::AsString on a non-string");
  return *s;
}

std::string Value::AsString() && {
  auto* s = std::get_if<std::string>(&data_);
  COBRA_CHECK_MSG(s != nullptr, "Value::AsString on a non-string");
  return std::move(*s);
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kInt64:
      return std::to_string(AsInt64());
    case Type::kDouble:
      return util::FormatDouble(AsDouble());
    case Type::kString:
      return AsString();
  }
  return "?";
}

std::uint64_t Value::Hash() const {
  switch (type()) {
    case Type::kInt64:
      return util::Mix64(static_cast<std::uint64_t>(AsInt64()) ^ 0x11);
    case Type::kDouble: {
      double d = AsDouble();
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return util::Mix64(bits ^ 0x22);
    }
    case Type::kString:
      return util::HashBytes(AsString());
  }
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == Type::kInt64 && other.type() == Type::kInt64) {
      return AsInt64() == other.AsInt64();
    }
    return AsDouble() == other.AsDouble();
  }
  if (type() != other.type()) return false;
  return AsString() == other.AsString();
}

bool Value::operator<(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == Type::kInt64 && other.type() == Type::kInt64) {
      return AsInt64() < other.AsInt64();
    }
    return AsDouble() < other.AsDouble();
  }
  COBRA_CHECK_MSG(type() == other.type(),
                  "Value::operator<: mixed string/numeric comparison");
  return AsString() < other.AsString();
}

}  // namespace cobra::rel
