#include "rel/database.h"

#include <algorithm>

namespace cobra::rel {

util::Status Database::AddTable(const std::string& name, Table table) {
  if (tables_.count(name) > 0) {
    return util::Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(name, AnnotatedTable::FromTable(std::move(table), annot_pool_));
  return util::Status::OK();
}

util::Status Database::AddAnnotatedTable(const std::string& name,
                                         AnnotatedTable table) {
  if (tables_.count(name) > 0) {
    return util::Status::AlreadyExists("table already exists: " + name);
  }
  if (table.pool != annot_pool_) {
    return util::Status::InvalidArgument(
        "annotated table uses a foreign annotation pool");
  }
  if (table.annots.size() != table.table.NumRows()) {
    return util::Status::InvalidArgument(
        "annotation vector length does not match row count");
  }
  tables_.emplace(name, std::move(table));
  return util::Status::OK();
}

util::Result<const AnnotatedTable*> Database::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return util::Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

util::Result<AnnotatedTable*> Database::GetMutableTable(
    const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return util::Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace cobra::rel
