#include "rel/instrument.h"

#include <unordered_map>

namespace cobra::rel {

util::Status InstrumentTable(Database* db, const std::string& table_name,
                             const VarNamer& namer) {
  util::Result<AnnotatedTable*> table = db->GetMutableTable(table_name);
  if (!table.ok()) return table.status();
  AnnotatedTable* at = *table;
  prov::VarPool* vars = db->mutable_var_pool();
  for (std::size_t r = 0; r < at->NumRows(); ++r) {
    std::vector<std::string> names = namer(at->table, r);
    for (const std::string& name : names) {
      AnnotId var_annot = at->pool->InternVar(vars->Intern(name));
      at->annots[r] = at->pool->Product(at->annots[r], var_annot);
    }
  }
  return util::Status::OK();
}

util::Status InstrumentByColumns(Database* db, const std::string& table_name,
                                 const std::vector<ColumnVarSpec>& specs) {
  util::Result<AnnotatedTable*> table = db->GetMutableTable(table_name);
  if (!table.ok()) return table.status();
  std::vector<std::size_t> cols;
  for (const ColumnVarSpec& spec : specs) {
    util::Result<std::size_t> idx = (*table)->schema().Resolve(spec.column);
    if (!idx.ok()) return idx.status();
    cols.push_back(*idx);
  }
  return InstrumentTable(
      db, table_name,
      [&specs, &cols](const Table& t, std::size_t row) {
        std::vector<std::string> names;
        names.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
          names.push_back(specs[i].prefix + t.Get(row, cols[i]).ToString());
        }
        return names;
      });
}

util::Status InstrumentByDictionary(
    Database* db, const std::string& table_name, const std::string& column,
    const std::vector<std::pair<std::string, std::string>>& value_to_var) {
  util::Result<AnnotatedTable*> table = db->GetMutableTable(table_name);
  if (!table.ok()) return table.status();
  util::Result<std::size_t> idx = (*table)->schema().Resolve(column);
  if (!idx.ok()) return idx.status();
  std::unordered_map<std::string, std::string> dict(value_to_var.begin(),
                                                    value_to_var.end());
  std::size_t col = *idx;
  return InstrumentTable(
      db, table_name,
      [&dict, col](const Table& t, std::size_t row) {
        std::vector<std::string> names;
        auto it = dict.find(t.Get(row, col).ToString());
        if (it != dict.end()) names.push_back(it->second);
        return names;
      });
}

util::Status InstrumentTuples(Database* db, const std::string& table_name,
                              const std::string& prefix) {
  return InstrumentTable(db, table_name,
                         [&prefix](const Table&, std::size_t row) {
                           return std::vector<std::string>{
                               prefix + std::to_string(row)};
                         });
}

}  // namespace cobra::rel
