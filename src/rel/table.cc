#include "rel/table.h"

#include "util/str.h"

namespace cobra::rel {

Column::Column(Type type) : type_(type) {
  switch (type) {
    case Type::kInt64:
      data_ = std::vector<std::int64_t>{};
      break;
    case Type::kDouble:
      data_ = std::vector<double>{};
      break;
    case Type::kString:
      data_ = std::vector<std::string>{};
      break;
  }
}

std::size_t Column::size() const {
  switch (type_) {
    case Type::kInt64:
      return Ints().size();
    case Type::kDouble:
      return Doubles().size();
    case Type::kString:
      return Strings().size();
  }
  return 0;
}

void Column::Append(const Value& v) {
  switch (type_) {
    case Type::kInt64:
      AppendInt64(v.AsInt64());
      return;
    case Type::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case Type::kString:
      AppendString(v.AsString());
      return;
  }
}

void Column::AppendInt64(std::int64_t v) { MutableInts()->push_back(v); }
void Column::AppendDouble(double v) { MutableDoubles()->push_back(v); }
void Column::AppendString(std::string v) {
  MutableStrings()->push_back(std::move(v));
}

Value Column::Get(std::size_t row) const {
  switch (type_) {
    case Type::kInt64:
      return Value(Ints()[row]);
    case Type::kDouble:
      return Value(Doubles()[row]);
    case Type::kString:
      return Value(Strings()[row]);
  }
  return Value();
}

const std::vector<std::int64_t>& Column::Ints() const {
  const auto* v = std::get_if<std::vector<std::int64_t>>(&data_);
  COBRA_CHECK_MSG(v != nullptr, "Column::Ints on non-INT64 column");
  return *v;
}

const std::vector<double>& Column::Doubles() const {
  const auto* v = std::get_if<std::vector<double>>(&data_);
  COBRA_CHECK_MSG(v != nullptr, "Column::Doubles on non-DOUBLE column");
  return *v;
}

const std::vector<std::string>& Column::Strings() const {
  const auto* v = std::get_if<std::vector<std::string>>(&data_);
  COBRA_CHECK_MSG(v != nullptr, "Column::Strings on non-STRING column");
  return *v;
}

std::vector<std::int64_t>* Column::MutableInts() {
  auto* v = std::get_if<std::vector<std::int64_t>>(&data_);
  COBRA_CHECK_MSG(v != nullptr, "Column::MutableInts on non-INT64 column");
  return v;
}

std::vector<double>* Column::MutableDoubles() {
  auto* v = std::get_if<std::vector<double>>(&data_);
  COBRA_CHECK_MSG(v != nullptr, "Column::MutableDoubles on non-DOUBLE column");
  return v;
}

std::vector<std::string>* Column::MutableStrings() {
  auto* v = std::get_if<std::vector<std::string>>(&data_);
  COBRA_CHECK_MSG(v != nullptr, "Column::MutableStrings on non-STRING column");
  return v;
}

void Column::Reserve(std::size_t n) {
  switch (type_) {
    case Type::kInt64:
      MutableInts()->reserve(n);
      return;
    case Type::kDouble:
      MutableDoubles()->reserve(n);
      return;
    case Type::kString:
      MutableStrings()->reserve(n);
      return;
  }
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

void Table::AppendRow(const std::vector<Value>& values) {
  COBRA_CHECK_MSG(values.size() == columns_.size(),
                  "Table::AppendRow: wrong arity");
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].Append(values[i]);
  }
  ++num_rows_;
}

void Table::CommitAppendedRows(std::size_t n) {
  num_rows_ += n;
  for (const Column& c : columns_) {
    COBRA_CHECK_MSG(c.size() == num_rows_,
                    "Table::CommitAppendedRows: ragged columns");
  }
}

std::vector<Value> Table::GetRow(std::size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.Get(row));
  return out;
}

void Table::Reserve(std::size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

std::string Table::ToString(std::size_t max_rows) const {
  std::string out;
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema_.QualifiedName(i);
  }
  out += "\n";
  std::size_t shown = std::min(max_rows, num_rows_);
  for (std::size_t r = 0; r < shown; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c].Get(r).ToString();
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace cobra::rel
