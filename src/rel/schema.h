#ifndef COBRA_REL_SCHEMA_H_
#define COBRA_REL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "rel/value.h"
#include "util/status.h"

namespace cobra::rel {

/// A named, typed column of a relation schema.
struct ColumnDef {
  std::string name;  ///< Unqualified name, e.g. "Dur".
  Type type;

  bool operator==(const ColumnDef& other) const = default;
};

/// An ordered list of columns. Column lookup supports both unqualified
/// ("Dur") and qualified ("Calls.Dur") references; a qualified reference
/// matches when the schema's qualifier for that column equals the prefix.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema with one shared `qualifier` (typically the table name
  /// or alias) for all columns.
  Schema(std::string qualifier, std::vector<ColumnDef> columns);

  /// Concatenates two schemas (used by joins). Column qualifiers are kept.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Number of columns.
  std::size_t size() const { return columns_.size(); }

  /// The column definition at `index`.
  const ColumnDef& column(std::size_t index) const { return columns_[index]; }

  /// The qualifier of the column at `index` ("" when unqualified).
  const std::string& qualifier(std::size_t index) const {
    return qualifiers_[index];
  }

  /// Display name at `index`: "Qualifier.Name" or "Name".
  std::string QualifiedName(std::size_t index) const;

  /// Appends a column.
  void AddColumn(std::string qualifier, ColumnDef def);

  /// Resolves `ref` ("Name" or "Qualifier.Name") to a column index.
  /// Unqualified lookup fails with AlreadyExists if ambiguous.
  util::Result<std::size_t> Resolve(std::string_view ref) const;

  /// True iff `ref` resolves uniquely.
  bool CanResolve(std::string_view ref) const { return Resolve(ref).ok(); }

  /// Renders "(Qualifier.Name TYPE, ...)".
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<std::string> qualifiers_;
};

}  // namespace cobra::rel

#endif  // COBRA_REL_SCHEMA_H_
