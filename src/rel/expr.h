#ifndef COBRA_REL_EXPR_H_
#define COBRA_REL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "rel/schema.h"
#include "rel/table.h"
#include "rel/value.h"
#include "util/status.h"

namespace cobra::rel {

/// Operators of the scalar expression language.
enum class ExprOp {
  kColumn,   ///< Column reference (by name until bound, then by index).
  kLiteral,  ///< Constant value.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

/// A scalar expression tree over the columns of one schema.
///
/// Expressions are built unbound (columns referenced by name), then `Bind`
/// resolves names to column indices against a concrete schema. Booleans are
/// represented as INT64 0/1. The tree is immutable and shared via
/// `std::shared_ptr`, so plans can reuse subexpressions.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  /// Column reference, e.g. "Dur" or "Calls.Dur".
  static ExprPtr Column(std::string name);

  /// Literal constant.
  static ExprPtr Literal(Value v);
  static ExprPtr Int(std::int64_t v) { return Literal(Value(v)); }
  static ExprPtr Double(double v) { return Literal(Value(v)); }
  static ExprPtr Str(std::string v) { return Literal(Value(std::move(v))); }

  /// Binary / unary constructors.
  static ExprPtr Binary(ExprOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(ExprOp op, ExprPtr operand);
  static ExprPtr Add(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kAdd, a, b); }
  static ExprPtr Sub(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kSub, a, b); }
  static ExprPtr Mul(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kMul, a, b); }
  static ExprPtr Div(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kDiv, a, b); }
  static ExprPtr Eq(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kEq, a, b); }
  static ExprPtr Ne(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kNe, a, b); }
  static ExprPtr Lt(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kLt, a, b); }
  static ExprPtr Le(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kLe, a, b); }
  static ExprPtr Gt(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kGt, a, b); }
  static ExprPtr Ge(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kGe, a, b); }
  static ExprPtr And(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kAnd, a, b); }
  static ExprPtr Or(ExprPtr a, ExprPtr b) { return Binary(ExprOp::kOr, a, b); }
  static ExprPtr Not(ExprPtr a) { return Unary(ExprOp::kNot, a); }

  ExprOp op() const { return op_; }
  const std::string& column_name() const { return name_; }
  const Value& literal() const { return literal_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Inserts the names of all referenced columns into `out`.
  void CollectColumns(std::vector<std::string>* out) const;

  /// Renders the expression for diagnostics.
  std::string ToString() const;

 private:
  friend class BoundExpr;
  Expr(ExprOp op, std::string name, Value literal, ExprPtr lhs, ExprPtr rhs)
      : op_(op),
        name_(std::move(name)),
        literal_(std::move(literal)),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  ExprOp op_;
  std::string name_;   // kColumn
  Value literal_;      // kLiteral
  ExprPtr lhs_, rhs_;  // operands (rhs null for unary)
};

/// An expression resolved against a schema, ready to evaluate row by row.
class BoundExpr {
 public:
  /// Resolves all column references of `expr` against `schema`.
  static util::Result<BoundExpr> Bind(const ExprPtr& expr, const Schema& schema);

  /// Evaluates on row `row` of `table` (whose schema was used to bind).
  Value Eval(const Table& table, std::size_t row) const;

  /// Evaluates and coerces to a boolean (nonzero numeric = true).
  bool EvalBool(const Table& table, std::size_t row) const;

  /// Static result type of the expression.
  Type result_type() const { return result_type_; }

 private:
  struct Node {
    ExprOp op;
    std::size_t column = 0;  // kColumn
    Value literal;           // kLiteral
    int lhs = -1, rhs = -1;  // indices into nodes_
    Type type = Type::kInt64;
  };

  static util::Result<int> BindNode(const ExprPtr& expr, const Schema& schema,
                                    std::vector<Node>* nodes);
  Value EvalNode(int node, const Table& table, std::size_t row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  Type result_type_ = Type::kInt64;
};

}  // namespace cobra::rel

#endif  // COBRA_REL_EXPR_H_
