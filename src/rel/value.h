#ifndef COBRA_REL_VALUE_H_
#define COBRA_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/hash.h"
#include "util/status.h"

namespace cobra::rel {

/// Column / value type of the relational engine.
enum class Type {
  kInt64,
  kDouble,
  kString,
};

/// Returns "INT64", "DOUBLE" or "STRING".
const char* TypeToString(Type type);

/// A single scalar value. Arithmetic between kInt64 and kDouble promotes to
/// kDouble; comparisons across numeric types compare numerically.
class Value {
 public:
  /// Constructs the integer 0.
  Value() : data_(std::int64_t{0}) {}

  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  /// Dynamic type of this value.
  Type type() const {
    if (std::holds_alternative<std::int64_t>(data_)) return Type::kInt64;
    if (std::holds_alternative<double>(data_)) return Type::kDouble;
    return Type::kString;
  }

  bool is_numeric() const { return type() != Type::kString; }

  std::int64_t AsInt64() const;
  double AsDouble() const;  ///< Numeric values convert; strings abort.

  /// String accessor. The lvalue overload returns a reference into the
  /// Value; the rvalue overload returns by value so that
  /// `table.Get(r, c).AsString()` (a temporary) can never dangle.
  const std::string& AsString() const&;
  std::string AsString() &&;

  /// Renders the value for display (doubles compactly, see FormatDouble).
  std::string ToString() const;

  /// Structural hash consistent with operator== (numeric cross-type equal
  /// values may hash differently; join keys are type-homogeneous).
  std::uint64_t Hash() const;

  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

 private:
  std::variant<std::int64_t, double, std::string> data_;
};

/// Hash functor for containers keyed by Value.
struct ValueHash {
  std::size_t operator()(const Value& v) const {
    return static_cast<std::size_t>(v.Hash());
  }
};

}  // namespace cobra::rel

#endif  // COBRA_REL_VALUE_H_
