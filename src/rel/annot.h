#ifndef COBRA_REL_ANNOT_H_
#define COBRA_REL_ANNOT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "prov/polynomial.h"
#include "rel/table.h"
#include "util/hash.h"

namespace cobra::rel {

/// Dense id of an interned annotation polynomial. Id 0 is always the
/// semiring One (the annotation of un-instrumented base tuples).
using AnnotId = std::uint32_t;

/// Interning pool for tuple annotations (elements of N[X]).
///
/// Provenance-annotated evaluation touches millions of tuples, but the
/// number of *distinct* annotations is tiny (e.g. 132 plan-month monomials
/// in experiment E3). The pool interns each distinct polynomial once and
/// tuples carry 32-bit ids; annotation products along joins are memoized
/// per id pair, so a 12M-row join performs 12M hash-map lookups instead of
/// 12M polynomial multiplications.
class AnnotPool {
 public:
  AnnotPool();

  /// Id of the annotation One (polynomial 1).
  static constexpr AnnotId kOne = 0;

  /// Interns `p`, returning its id.
  AnnotId Intern(const prov::Polynomial& p);

  /// Interns the single-variable polynomial `v`.
  AnnotId InternVar(prov::VarId v);

  /// The polynomial of `id`.
  const prov::Polynomial& Get(AnnotId id) const;

  /// Id of the product of two interned annotations (memoized).
  AnnotId Product(AnnotId a, AnnotId b);

  /// Id of the sum of two interned annotations (memoized; used by
  /// duplicate-eliminating operators).
  AnnotId Sum(AnnotId a, AnnotId b);

  /// Number of distinct interned annotations.
  std::size_t size() const { return polys_.size(); }

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<AnnotId, AnnotId>& p) const {
      return static_cast<std::size_t>(
          util::HashCombine(util::Mix64(p.first), p.second));
    }
  };

  struct PolyHash {
    std::size_t operator()(const prov::Polynomial& p) const {
      std::uint64_t h = 0x2d358dccaa6c78a5ULL;
      for (const prov::Term& t : p.terms()) {
        h = util::HashCombine(h, t.monomial.Hash());
        double c = t.coeff;
        std::uint64_t bits;
        __builtin_memcpy(&bits, &c, sizeof(bits));
        h = util::HashCombine(h, bits);
      }
      return static_cast<std::size_t>(h);
    }
  };

  std::vector<prov::Polynomial> polys_;
  std::unordered_map<prov::Polynomial, AnnotId, PolyHash> index_;
  std::unordered_map<std::pair<AnnotId, AnnotId>, AnnotId, PairHash>
      product_cache_;
  std::unordered_map<std::pair<AnnotId, AnnotId>, AnnotId, PairHash>
      sum_cache_;
};

/// A relation whose tuples carry provenance annotations.
///
/// `annots[r]` is the AnnotId of row r; the pool is shared across all
/// tables of a database so ids compose across joins.
struct AnnotatedTable {
  Table table;
  std::vector<AnnotId> annots;
  std::shared_ptr<AnnotPool> pool;

  /// Creates a table whose rows are all annotated with One.
  static AnnotatedTable FromTable(Table t, std::shared_ptr<AnnotPool> pool);

  std::size_t NumRows() const { return table.NumRows(); }
  const Schema& schema() const { return table.schema(); }

  /// The annotation polynomial of row `r`.
  const prov::Polynomial& Annotation(std::size_t r) const {
    return pool->Get(annots[r]);
  }
};

}  // namespace cobra::rel

#endif  // COBRA_REL_ANNOT_H_
