#ifndef COBRA_SEMIRING_HOMOMORPHISM_H_
#define COBRA_SEMIRING_HOMOMORPHISM_H_

#include <vector>

#include "prov/polynomial.h"
#include "prov/valuation.h"
#include "semiring/instances.h"

namespace cobra::semiring {

/// Semiring homomorphisms out of N[X].
///
/// The fundamental property of provenance polynomials (Green et al.) is that
/// any variable assignment X -> K extends uniquely to a semiring
/// homomorphism N[X] -> K, and query evaluation *commutes* with such
/// homomorphisms. COBRA's correctness rests on the special case K = R:
/// applying a valuation to the polynomial equals re-running the query on the
/// re-scaled database. The functions here compute homomorphic images used by
/// tests to verify that commutation and by the engine to derive coarser
/// provenance from N[X].

/// Evaluates `p` in R under `valuation` (the identity coefficient action).
double EvalReal(const prov::Polynomial& p, const prov::Valuation& valuation);

/// Image of `p` in the boolean semiring: true iff some monomial has all of
/// its variables mapped to true. `truth[v]` gives the base-tuple presence.
bool EvalBool(const prov::Polynomial& p, const std::vector<bool>& truth);

/// Image of `p` in the counting semiring, mapping variable v to count[v]
/// and every coefficient c (which must be integral) to itself.
std::int64_t EvalCounting(const prov::Polynomial& p,
                          const std::vector<std::int64_t>& counts);

/// Image of `p` in the tropical semiring: min over monomials of
/// (cost-of-coefficient-ignored) the sum of variable costs times exponents.
double EvalTropical(const prov::Polynomial& p,
                    const std::vector<double>& costs);

/// Drops coefficients and exponents: the Why(X) image of `p`.
WhySemiring::Value EvalWhy(const prov::Polynomial& p);

}  // namespace cobra::semiring

#endif  // COBRA_SEMIRING_HOMOMORPHISM_H_
