#ifndef COBRA_SEMIRING_INSTANCES_H_
#define COBRA_SEMIRING_INSTANCES_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>

#include "prov/polynomial.h"
#include "semiring/semiring.h"

namespace cobra::semiring {

/// The boolean semiring ({false,true}, OR, AND): set semantics / lineage
/// presence. The most abstract provenance; a homomorphic image of N[X].
struct BoolSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Plus(Value a, Value b) { return a || b; }
  static Value Times(Value a, Value b) { return a && b; }
  static bool Equal(Value a, Value b) { return a == b; }
};

/// The counting semiring (N, +, *): bag semantics; annotation of a tuple is
/// its multiplicity in the result.
struct CountingSemiring {
  using Value = std::int64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
  static bool Equal(Value a, Value b) { return a == b; }
};

/// The tropical semiring (R ∪ {∞}, min, +): minimal-cost derivation.
struct TropicalSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
  static bool Equal(Value a, Value b) { return a == b; }
};

/// The Why(X) semiring: sets of witness sets (Buneman et al. why-provenance).
/// Plus is union; Times is pairwise union of witnesses.
struct WhySemiring {
  using Witness = std::set<prov::VarId>;
  using Value = std::set<Witness>;
  static Value Zero() { return {}; }
  static Value One() { return {Witness{}}; }
  static Value Plus(const Value& a, const Value& b) {
    Value out = a;
    out.insert(b.begin(), b.end());
    return out;
  }
  static Value Times(const Value& a, const Value& b) {
    Value out;
    for (const Witness& wa : a) {
      for (const Witness& wb : b) {
        Witness w = wa;
        w.insert(wb.begin(), wb.end());
        out.insert(std::move(w));
      }
    }
    return out;
  }
  static bool Equal(const Value& a, const Value& b) { return a == b; }
  /// The singleton witness {v} — annotation of a base tuple tagged `v`.
  static Value Var(prov::VarId v) { return {Witness{v}}; }
};

/// The polynomial semiring N[X] (with real coefficients): the most general
/// commutative semiring over X — the paper's provenance representation.
struct PolySemiring {
  using Value = prov::Polynomial;
  static Value Zero() { return prov::Polynomial(); }
  static Value One() { return prov::Polynomial::Constant(1.0); }
  static Value Plus(const Value& a, const Value& b) { return a.Plus(b); }
  static Value Times(const Value& a, const Value& b) { return a.TimesPoly(b); }
  static bool Equal(const Value& a, const Value& b) { return a == b; }
  /// The polynomial `v` — annotation of a base tuple tagged `v`.
  static Value Var(prov::VarId v) { return prov::Polynomial::Var(v); }
};

static_assert(Semiring<BoolSemiring>);
static_assert(Semiring<CountingSemiring>);
static_assert(Semiring<TropicalSemiring>);
static_assert(Semiring<WhySemiring>);
static_assert(Semiring<PolySemiring>);

}  // namespace cobra::semiring

#endif  // COBRA_SEMIRING_INSTANCES_H_
