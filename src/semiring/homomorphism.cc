#include "semiring/homomorphism.h"

#include <cmath>

#include "util/status.h"

namespace cobra::semiring {

double EvalReal(const prov::Polynomial& p, const prov::Valuation& valuation) {
  return p.Eval(valuation);
}

bool EvalBool(const prov::Polynomial& p, const std::vector<bool>& truth) {
  for (const prov::Term& t : p.terms()) {
    if (t.coeff == 0.0) continue;
    bool all = true;
    for (const prov::VarPower& vp : t.monomial.powers()) {
      COBRA_CHECK_MSG(vp.var < truth.size(), "EvalBool: var out of range");
      if (!truth[vp.var]) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

std::int64_t EvalCounting(const prov::Polynomial& p,
                          const std::vector<std::int64_t>& counts) {
  std::int64_t sum = 0;
  for (const prov::Term& t : p.terms()) {
    double c = t.coeff;
    COBRA_CHECK_MSG(c == std::floor(c),
                    "EvalCounting: non-integral coefficient");
    std::int64_t prod = static_cast<std::int64_t>(c);
    for (const prov::VarPower& vp : t.monomial.powers()) {
      COBRA_CHECK_MSG(vp.var < counts.size(), "EvalCounting: var out of range");
      for (std::uint32_t e = 0; e < vp.exp; ++e) prod *= counts[vp.var];
    }
    sum += prod;
  }
  return sum;
}

double EvalTropical(const prov::Polynomial& p, const std::vector<double>& costs) {
  double best = TropicalSemiring::Zero();
  for (const prov::Term& t : p.terms()) {
    double total = 0.0;
    for (const prov::VarPower& vp : t.monomial.powers()) {
      COBRA_CHECK_MSG(vp.var < costs.size(), "EvalTropical: var out of range");
      total += costs[vp.var] * vp.exp;
    }
    best = TropicalSemiring::Plus(best, total);
  }
  return best;
}

WhySemiring::Value EvalWhy(const prov::Polynomial& p) {
  WhySemiring::Value out;
  for (const prov::Term& t : p.terms()) {
    WhySemiring::Witness w;
    for (const prov::VarPower& vp : t.monomial.powers()) w.insert(vp.var);
    out.insert(std::move(w));
  }
  return out;
}

}  // namespace cobra::semiring
