#ifndef COBRA_SEMIRING_SEMIMODULE_H_
#define COBRA_SEMIRING_SEMIMODULE_H_

#include <string>
#include <vector>

#include "prov/polynomial.h"
#include "prov/valuation.h"
#include "prov/variable.h"

namespace cobra::semiring {

/// Provenance for SUM aggregates, after Amsterdamer, Deutch & Tannen,
/// "Provenance for aggregate queries" (PODS 2011).
///
/// An aggregated value is a formal sum `Σ_i  k_i ⊗ v_i` in the tensor
/// semimodule K ⊗ R, where `k_i` is the N[X] annotation of the contributing
/// tuple and `v_i` the aggregated number. For K = N[X] and numeric scenarios
/// this normalizes to a single polynomial with real coefficients: each
/// tensor `k ⊗ v` distributes to `v·k` and like monomials merge. That is
/// exactly how the paper's revenue polynomials (Example 2) arise: tuple
/// annotation `p1·m1` tensored with the value `522·0.4` contributes the
/// term `208.8·p1·m1`.
class AggregateValue {
 public:
  /// The empty aggregate (sum of nothing).
  AggregateValue() = default;

  /// The tensor `annotation ⊗ value`.
  static AggregateValue Tensor(const prov::Polynomial& annotation,
                               double value);

  /// Semimodule addition: concatenates the formal sums.
  AggregateValue Plus(const AggregateValue& other) const;

  /// Action of the semiring on the module: `k * (Σ k_i ⊗ v_i)
  /// = Σ (k*k_i) ⊗ v_i`. Used when a join multiplies annotations after
  /// aggregation (e.g. HAVING-style composition).
  AggregateValue ScalarTimes(const prov::Polynomial& k) const;

  /// Normalizes to the polynomial `Σ v_i · k_i`.
  const prov::Polynomial& AsPolynomial() const { return poly_; }

  /// Evaluates the aggregate under a valuation (commutation property:
  /// equal to re-running the aggregation on the re-scaled inputs).
  double Eval(const prov::Valuation& valuation) const {
    return poly_.Eval(valuation);
  }

  bool operator==(const AggregateValue& other) const = default;

 private:
  // We keep the normalized polynomial representation directly: for numeric
  // domains the tensor construction is canonically a polynomial, and the
  // paper's compression operates on this normal form.
  prov::Polynomial poly_;
};

}  // namespace cobra::semiring

#endif  // COBRA_SEMIRING_SEMIMODULE_H_
