#ifndef COBRA_SEMIRING_SEMIRING_H_
#define COBRA_SEMIRING_SEMIRING_H_

#include <concepts>

namespace cobra::semiring {

/// A commutative semiring (K, +, *, 0, 1) in the sense of Green,
/// Karvounarakis & Tannen, "Provenance semirings" (PODS 2007).
///
/// Each model type provides value type `Value`, the two distinguished
/// elements, and the two operations. Annotated relational evaluation
/// (`rel/operators`) is written generically against this concept, so the
/// same engine computes N[X] polynomials, boolean lineage, tuple counts or
/// tropical costs — and the semiring laws are property-tested per instance.
template <typename S>
concept Semiring = requires(typename S::Value a, typename S::Value b) {
  { S::Zero() } -> std::convertible_to<typename S::Value>;
  { S::One() } -> std::convertible_to<typename S::Value>;
  { S::Plus(a, b) } -> std::convertible_to<typename S::Value>;
  { S::Times(a, b) } -> std::convertible_to<typename S::Value>;
  { S::Equal(a, b) } -> std::convertible_to<bool>;
};

}  // namespace cobra::semiring

#endif  // COBRA_SEMIRING_SEMIRING_H_
