#include "semiring/semimodule.h"

namespace cobra::semiring {

AggregateValue AggregateValue::Tensor(const prov::Polynomial& annotation,
                                      double value) {
  AggregateValue out;
  out.poly_ = annotation.Scale(value);
  return out;
}

AggregateValue AggregateValue::Plus(const AggregateValue& other) const {
  AggregateValue out;
  out.poly_ = poly_.Plus(other.poly_);
  return out;
}

AggregateValue AggregateValue::ScalarTimes(const prov::Polynomial& k) const {
  AggregateValue out;
  out.poly_ = poly_.TimesPoly(k);
  return out;
}

}  // namespace cobra::semiring
