#include "verify/verify.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "prov/variable.h"
#include "util/str.h"

namespace cobra::verify {

namespace {

/// Bitwise double equality: override values are content, so -0.0 and +0.0
/// (or two different NaN payloads) must not compare equal.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Verifies one side's tile schedule against the program it will scan: the
/// whole-poly ranges must be sorted, disjoint, non-empty and — together
/// with the term-split polynomial, when one exists — cover [0, NumPolys())
/// exactly once; the term slices must exactly tile the split polynomial's
/// term range.
void VerifySchedule(const core::ProgramSchedule& schedule,
                    const prov::EvalProgram& program,
                    std::string_view artifact, VerifyReport* report) {
  const std::size_t num_polys = program.NumPolys();
  if (schedule.num_polys != num_polys) {
    report->AddError(artifact, 0,
                     util::StrFormat(
                         "schedule is for %zu polynomials but the program "
                         "compiles %zu",
                         schedule.num_polys, num_polys));
    return;  // Everything below keys off the poly count.
  }
  const bool split = schedule.split_poly < num_polys;
  if (!split && schedule.split_poly != num_polys) {
    report->AddError(artifact, 0,
                     util::StrFormat(
                         "split_poly %zu is outside [0, %zu] (NumPolys is "
                         "the no-split sentinel)",
                         schedule.split_poly, num_polys));
    return;
  }

  // The ranges as planned are already in scan order; verify without
  // re-sorting so an out-of-order schedule is itself a finding.
  std::size_t next = 0;
  auto skip_split = [&] {
    if (split && next == schedule.split_poly) ++next;
  };
  skip_split();
  for (std::size_t r = 0; r < schedule.ranges.size(); ++r) {
    const auto [begin, end] = schedule.ranges[r];
    if (begin >= end || end > num_polys) {
      report->AddError(artifact, r,
                       util::StrFormat("range %zu [%u, %u) is empty or "
                                       "exceeds the %zu polynomials",
                                       r, begin, end, num_polys));
      return;
    }
    if (begin != next) {
      report->AddError(
          artifact, r,
          util::StrFormat("range %zu starts at poly %u but poly %zu is the "
                          "next uncovered (ranges must tile the program "
                          "exactly once)",
                          r, begin, next));
      return;
    }
    next = end;
    skip_split();
  }
  if (next != num_polys) {
    report->AddError(artifact, schedule.ranges.size(),
                     util::StrFormat("ranges cover polys [0, %zu) but the "
                                     "program has %zu",
                                     next, num_polys));
  }

  // Term slices: present exactly when a polynomial is split, and exactly
  // tiling its term range.
  if (!split) {
    if (!schedule.term_bounds.empty()) {
      report->AddError(artifact, 0,
                       "term_bounds present without a split polynomial");
    }
    return;
  }
  const std::vector<std::uint32_t>& starts = program.poly_starts();
  const std::uint32_t term_begin = starts[schedule.split_poly];
  const std::uint32_t term_end = starts[schedule.split_poly + 1];
  if (schedule.term_bounds.size() < 2) {
    report->AddError(artifact, 0,
                     util::StrFormat("split polynomial %zu has no term "
                                     "slices",
                                     schedule.split_poly));
    return;
  }
  if (schedule.term_bounds.front() != term_begin ||
      schedule.term_bounds.back() != term_end) {
    report->AddError(
        artifact, 0,
        util::StrFormat("term slices cover [%u, %u) but split polynomial "
                        "%zu owns terms [%u, %u)",
                        schedule.term_bounds.front(),
                        schedule.term_bounds.back(), schedule.split_poly,
                        term_begin, term_end));
    return;
  }
  for (std::size_t k = 0; k + 1 < schedule.term_bounds.size(); ++k) {
    if (schedule.term_bounds[k] >= schedule.term_bounds[k + 1]) {
      report->AddError(artifact, k,
                       util::StrFormat("term slice %zu [%u, %u) is empty or "
                                       "out of order",
                                       k, schedule.term_bounds[k],
                                       schedule.term_bounds[k + 1]));
      return;
    }
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Finding::ToString() const {
  return util::StrFormat("%s %s[%zu]: %s", SeverityName(severity),
                         artifact.c_str(), offset, message.c_str());
}

void VerifyReport::AddError(std::string_view artifact, std::size_t offset,
                            std::string message) {
  findings_.push_back(Finding{Severity::kError, std::string(artifact), offset,
                              std::move(message)});
  ++num_errors_;
}

void VerifyReport::AddWarning(std::string_view artifact, std::size_t offset,
                              std::string message) {
  findings_.push_back(Finding{Severity::kWarning, std::string(artifact),
                              offset, std::move(message)});
}

void VerifyReport::Merge(const VerifyReport& other) {
  findings_.insert(findings_.end(), other.findings_.begin(),
                   other.findings_.end());
  num_errors_ += other.num_errors_;
}

const Finding* VerifyReport::FirstError() const {
  for (const Finding& finding : findings_) {
    if (finding.severity == Severity::kError) return &finding;
  }
  return nullptr;
}

std::string VerifyReport::ToString() const {
  std::string out;
  if (!findings_.empty()) {
    out += util::StrFormat("%-8s %-24s %8s  %s\n", "severity", "artifact",
                           "offset", "message");
    for (const Finding& finding : findings_) {
      out += util::StrFormat("%-8s %-24s %8zu  %s\n",
                             SeverityName(finding.severity),
                             finding.artifact.c_str(), finding.offset,
                             finding.message.c_str());
    }
  }
  out += util::StrFormat("%zu finding(s): %zu error(s), %zu warning(s)%s\n",
                         findings_.size(), num_errors(), num_warnings(),
                         ok() ? " — artifact is servable" : "");
  return out;
}

namespace {

/// The shared single walk over the four compiled arrays (used for both an
/// `EvalProgram` and a raw snapshot image). Returns max(factor id) + 1 so
/// the EvalProgram entry point can cross-check the cached MinValuationSize,
/// or kNoPoolBound when a factor check already failed.
std::size_t VerifyProgramArrays(const std::vector<std::uint32_t>& poly_starts,
                                const std::vector<std::uint32_t>& term_starts,
                                const std::vector<double>& coeffs,
                                const std::vector<prov::VarId>& factors,
                                std::size_t pool_size,
                                std::string_view artifact,
                                VerifyReport* out) {
  VerifyReport& report = *out;
  // Polynomial term ranges: contiguous, non-overlapping, covering.
  if (poly_starts.empty() || poly_starts.front() != 0) {
    report.AddError(artifact, 0,
                    "poly_starts must be non-empty and start at 0");
  } else {
    for (std::size_t p = 0; p + 1 < poly_starts.size(); ++p) {
      if (poly_starts[p] > poly_starts[p + 1]) {
        report.AddError(artifact, p + 1,
                        util::StrFormat("poly_starts decreases at entry %zu "
                                        "(%u after %u): term ranges would "
                                        "overlap",
                                        p + 1, poly_starts[p + 1],
                                        poly_starts[p]));
        break;
      }
    }
    if (poly_starts.back() != coeffs.size()) {
      report.AddError(artifact, poly_starts.size() - 1,
                      util::StrFormat("poly_starts ends at %u but the "
                                      "program has %zu terms: term ranges "
                                      "must cover the term array exactly",
                                      poly_starts.back(), coeffs.size()));
    }
  }

  // Term factor ranges: one entry per term plus a bound, partitioning the
  // factor array.
  if (term_starts.size() != coeffs.size() + 1 || term_starts.front() != 0) {
    report.AddError(artifact, 0,
                    util::StrFormat("term_starts has %zu entries for %zu "
                                    "terms (want terms + 1, starting at 0)",
                                    term_starts.size(), coeffs.size()));
  } else {
    for (std::size_t t = 0; t + 1 < term_starts.size(); ++t) {
      if (term_starts[t] > term_starts[t + 1]) {
        report.AddError(artifact, t + 1,
                        util::StrFormat("term_starts decreases at entry %zu "
                                        "(%u after %u): factor ranges would "
                                        "overlap",
                                        t + 1, term_starts[t + 1],
                                        term_starts[t]));
        break;
      }
    }
    if (term_starts.back() != factors.size()) {
      report.AddError(artifact, term_starts.size() - 1,
                      util::StrFormat("term_starts ends at %u but the "
                                      "program has %zu factors",
                                      term_starts.back(), factors.size()));
    }
  }

  // Coefficient literals: finite, or evaluation would launder NaN/Inf into
  // every answer the polynomial touches.
  for (std::size_t t = 0; t < coeffs.size(); ++t) {
    if (!std::isfinite(coeffs[t])) {
      report.AddError(artifact, t,
                      util::StrFormat("coefficient %zu is %s (literals must "
                                      "be finite)",
                                      t, std::isnan(coeffs[t]) ? "NaN"
                                                               : "infinite"));
      break;
    }
  }

  // Factor ids: valid, and inside the pool when a bound is known.
  std::size_t max_factor_plus_one = 0;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    if (factors[f] == prov::kInvalidVar) {
      report.AddError(artifact, f,
                      util::StrFormat("factor %zu is kInvalidVar", f));
      return kNoPoolBound;
    }
    max_factor_plus_one = std::max(
        max_factor_plus_one, static_cast<std::size_t>(factors[f]) + 1);
    if (pool_size != kNoPoolBound && factors[f] >= pool_size) {
      report.AddError(artifact, f,
                      util::StrFormat("factor %zu references variable id %u "
                                      "outside the pool (%zu variables)",
                                      f, factors[f], pool_size));
      return kNoPoolBound;
    }
  }
  return max_factor_plus_one;
}

}  // namespace

VerifyReport VerifyProgram(const prov::EvalProgram& program,
                           std::size_t pool_size, std::string_view artifact) {
  VerifyReport report;
  const std::size_t max_factor_plus_one = VerifyProgramArrays(
      program.poly_starts(), program.term_starts(), program.coeffs(),
      program.factors(), pool_size, artifact, &report);
  if (max_factor_plus_one != kNoPoolBound &&
      program.MinValuationSize() != max_factor_plus_one) {
    report.AddError(artifact, 0,
                    util::StrFormat("MinValuationSize %zu disagrees with the "
                                    "largest factor id (+1 = %zu)",
                                    program.MinValuationSize(),
                                    max_factor_plus_one));
  }
  return report;
}

VerifyReport VerifyProgram(const core::EvalProgramImage& image,
                           std::size_t pool_size, std::string_view artifact) {
  VerifyReport report;
  VerifyProgramArrays(image.poly_starts, image.term_starts, image.coeffs,
                      image.factors, pool_size, artifact, &report);
  return report;
}

namespace {

/// Checks one SoA execution image against the compiled program it claims to
/// mirror: the layout tag must agree with the plan, the boundary and payload
/// arrays must re-derive bitwise from the program, and the fused count
/// streams must be the first differences of the boundary arrays. The image
/// is everything the SoA kernels read, so any drift here is silent
/// wrong-answers at sweep time.
void VerifyPlanImage(const prov::EvalImage* image,
                     const prov::EvalProgram& program,
                     std::string_view artifact, VerifyReport* out) {
  VerifyReport& report = *out;
  if (image == nullptr) {
    report.AddError(artifact, 0, "SoA plan is missing its execution image");
    return;
  }
  if (image->layout() != prov::EvalLayout::kSoA) {
    report.AddError(artifact, 0,
                    util::StrFormat("image layout tag %s disagrees with the "
                                    "plan layout SoA",
                                    prov::EvalLayoutName(image->layout())));
  }
  const auto& ps = program.poly_starts();
  const auto& ts = program.term_starts();
  const bool boundaries_ok =
      image->poly_starts().size() == ps.size() &&
      std::equal(ps.begin(), ps.end(), image->poly_starts().begin()) &&
      image->term_starts().size() == ts.size() &&
      std::equal(ts.begin(), ts.end(), image->term_starts().begin());
  if (!boundaries_ok) {
    report.AddError(artifact, 0,
                    "image boundary arrays do not re-derive from the "
                    "compiled program");
    return;  // The count-stream checks below would only cascade.
  }
  bool counts_ok = image->poly_term_counts().size() + 1 == ps.size() &&
                   image->term_factor_counts().size() + 1 == ts.size();
  for (std::size_t p = 0; counts_ok && p + 1 < ps.size(); ++p) {
    counts_ok = image->poly_term_counts()[p] == ps[p + 1] - ps[p];
  }
  for (std::size_t t = 0; counts_ok && t + 1 < ts.size(); ++t) {
    counts_ok = image->term_factor_counts()[t] == ts[t + 1] - ts[t];
  }
  if (!counts_ok) {
    report.AddError(artifact, 0,
                    "image count streams are not the first differences of "
                    "the boundary arrays");
  }
  const auto& coeffs = program.coeffs();
  bool payload_ok = image->coeffs().size() == coeffs.size();
  for (std::size_t t = 0; payload_ok && t < coeffs.size(); ++t) {
    payload_ok = SameBits(image->coeffs()[t], coeffs[t]);
  }
  const auto& factors = program.factors();
  payload_ok = payload_ok && image->factors().size() == factors.size() &&
               std::equal(factors.begin(), factors.end(),
                          image->factors().begin());
  if (!payload_ok) {
    report.AddError(artifact, 0,
                    "image coefficient/factor arrays do not re-derive "
                    "bitwise from the compiled program");
  }
  if (image->MinValuationSize() != program.MinValuationSize()) {
    report.AddError(artifact, 0,
                    util::StrFormat("image MinValuationSize %zu disagrees "
                                    "with the program (%zu)",
                                    image->MinValuationSize(),
                                    program.MinValuationSize()));
  }
}

}  // namespace

VerifyReport VerifyPlan(const core::BatchPlan& plan,
                        const core::CompiledSession& session,
                        const core::ScenarioSet* scenarios) {
  VerifyReport report;

  // Origin: a plan references its session by weak_ptr, so a foreign (or
  // orphaned) plan is detectable before execution ever dereferences
  // program arrays that may not match the plan's schedules.
  if (plan.session().get() != &session) {
    report.AddError("plan", 0,
                    "plan was built against a different (or since-destroyed) "
                    "session");
    return report;
  }

  const std::size_t n = plan.num_scenarios();
  const std::size_t pool_size = session.pool_size();

  // Engine and lanes: kAuto must have been resolved at planning time; the
  // blocked kernel only compiles 4-, 8- and 16-lane widths.
  if (plan.engine() == core::BatchOptions::Sweep::kAuto) {
    report.AddError("plan", 0, "engine is unresolved kAuto");
  }
  const bool blocked = plan.engine() == core::BatchOptions::Sweep::kBlocked;
  if (blocked) {
    if (plan.lanes() != 4 && plan.lanes() != 8 && plan.lanes() != 16) {
      report.AddError("plan", 0,
                      util::StrFormat("blocked engine with %zu lanes "
                                      "(compiled widths are 4, 8 and 16)",
                                      plan.lanes()));
    }
  } else if (plan.lanes() != 1) {
    report.AddError("plan", 0,
                    util::StrFormat("scalar engine with %zu lanes (want 1)",
                                    plan.lanes()));
  }
  if (plan.num_threads() == 0) {
    report.AddError("plan", 0, "num_threads is 0");
  }

  // Layout and execution images: the layout must be AoS for the scalar
  // engines (they have no image kernels), the prefetch knob must be inside
  // the validated range, and the SoA images must exist exactly when the
  // plan says so — with the matching layout tag and arrays that re-derive
  // from the session's compiled programs (the kernels read nothing else).
  const prov::EvalLayout layout = plan.layout();
  if (!blocked && layout != prov::EvalLayout::kAoS) {
    report.AddError("plan", 0,
                    util::StrFormat("scalar engine with %s layout (want AoS)",
                                    prov::EvalLayoutName(layout)));
  }
  if (plan.options().prefetch_distance > 64) {
    report.AddError("plan", 0,
                    util::StrFormat("prefetch distance %zu out of range "
                                    "(accepted: 0 to 64 cache lines)",
                                    plan.options().prefetch_distance));
  }
  if (layout == prov::EvalLayout::kSoA) {
    VerifyPlanImage(plan.core()->full_image().get(),
                    session.sweep_full_program(), "plan full image", &report);
    VerifyPlanImage(plan.core()->compressed_image().get(),
                    session.compressed_program(), "plan compressed image",
                    &report);
  } else {
    if (plan.core()->full_image() != nullptr ||
        plan.core()->compressed_image() != nullptr) {
      report.AddError("plan", 0,
                      "AoS plan carries SoA execution images");
    }
  }

  // Scenario blocks: the sweep schedules num_blocks × slices tiles, so a
  // wrong block count either drops scenarios or reads past the compiled
  // lists.
  const std::size_t lanes = std::max<std::size_t>(1, plan.lanes());
  const std::size_t want_blocks = (n + lanes - 1) / lanes;
  if (plan.num_blocks() != want_blocks) {
    report.AddError("plan", 0,
                    util::StrFormat("%zu scenario blocks for %zu scenarios "
                                    "at %zu lanes (want %zu)",
                                    plan.num_blocks(), n, lanes, want_blocks));
  }
  if (plan.scenario_names().size() != plan.compiled().size()) {
    report.AddError("plan", 0,
                    util::StrFormat("%zu scenario names but %zu compiled "
                                    "scenarios",
                                    plan.scenario_names().size(),
                                    plan.compiled().size()));
  }

  // Compiled override lists: sorted, duplicate-free, inside the frozen
  // pool. The kernels binary-search these, so order is load-bearing.
  for (std::size_t i = 0; i < plan.compiled().size(); ++i) {
    const std::vector<prov::VarOverride>& overrides =
        plan.compiled()[i].overrides;
    for (std::size_t o = 0; o < overrides.size(); ++o) {
      if (overrides[o].var >= pool_size) {
        report.AddError("plan scenario", i,
                        util::StrFormat("override %zu references variable id "
                                        "%u outside the frozen pool (%zu)",
                                        o, overrides[o].var, pool_size));
        break;
      }
      if (o > 0 && overrides[o - 1].var >= overrides[o].var) {
        report.AddError("plan scenario", i,
                        util::StrFormat("override list is not strictly "
                                        "sorted at entry %zu (var %u after "
                                        "%u)",
                                        o, overrides[o].var,
                                        overrides[o - 1].var));
        break;
      }
      if (!std::isfinite(overrides[o].value)) {
        report.AddWarning("plan scenario", i,
                          util::StrFormat("override %zu value is not finite",
                                          o));
      }
    }
  }

  // Base valuation: the kernels index it with any factor id the programs
  // carry, so it must be dense over the frozen pool.
  if (plan.base().size() < pool_size) {
    report.AddError("plan", 0,
                    util::StrFormat("base valuation covers %zu variables "
                                    "but the frozen pool holds %zu",
                                    plan.base().size(), pool_size));
  }

  // Overlay base fingerprint: the plan cache keys overlays by this, so a
  // fingerprint that does not recompute from the stored base would serve
  // another base's value tables on the next warm lookup.
  {
    const core::BaseFingerprint recomputed =
        core::FingerprintBase(plan.base(), pool_size);
    if (recomputed != plan.overlay().base_fingerprint) {
      report.AddError("plan overlay", 0,
                      "base fingerprint does not recompute from the "
                      "overlay's base valuation");
    }
  }

  // Block override-union tables: one per block for the blocked engine
  // (ragged tail carries the real lane count), none otherwise.
  if (blocked) {
    if (plan.block_tables().size() != plan.num_blocks()) {
      report.AddError("plan", 0,
                      util::StrFormat("%zu block tables for %zu blocks",
                                      plan.block_tables().size(),
                                      plan.num_blocks()));
    } else if (plan.core()->block_skeletons().size() !=
               plan.block_tables().size()) {
      report.AddError("plan", 0,
                      util::StrFormat("core holds %zu block skeletons for "
                                      "%zu overlay tables",
                                      plan.core()->block_skeletons().size(),
                                      plan.block_tables().size()));
    } else {
      for (std::size_t b = 0; b < plan.block_tables().size(); ++b) {
        const prov::BlockOverrides& table = plan.block_tables()[b];
        const std::size_t want = std::min(lanes, n - b * lanes);
        if (table.num_lanes() != want) {
          report.AddError("plan block", b,
                          util::StrFormat("table carries %zu lanes (want "
                                          "%zu)",
                                          table.num_lanes(), want));
        }
        if (table.width() != 4 && table.width() != 8 && table.width() != 16) {
          report.AddError("plan block", b,
                          util::StrFormat("table width %zu (want 4, 8 or 16)",
                                          table.width()));
        }

        // Union table: sorted ascending, duplicate-free (the per-factor
        // binary search relies on it), inside the pool, and resolved via
        // the dense row index exactly when the id span permits.
        const std::vector<prov::VarId>& vars = table.vars();
        bool union_ok = true;
        for (std::size_t o = 0; o < vars.size(); ++o) {
          if (vars[o] >= pool_size) {
            report.AddError("plan block", b,
                            util::StrFormat("union entry %zu is variable id "
                                            "%u outside the frozen pool "
                                            "(%zu)",
                                            o, vars[o], pool_size));
            union_ok = false;
            break;
          }
          if (o > 0 && vars[o - 1] >= vars[o]) {
            report.AddError("plan block", b,
                            util::StrFormat("override union is not strictly "
                                            "sorted at entry %zu (var %u "
                                            "after %u)",
                                            o, vars[o], vars[o - 1]));
            union_ok = false;
            break;
          }
        }
        if (union_ok && !vars.empty()) {
          const std::size_t span = vars.back() - vars.front() + 1;
          const bool want_dense =
              span <= prov::BlockOverrides::kDenseIndexMaxSpan;
          if (table.uses_dense_index() != want_dense) {
            report.AddError("plan block", b,
                            util::StrFormat("dense row index %s for union "
                                            "id span %zu (threshold %zu)",
                                            table.uses_dense_index()
                                                ? "present"
                                                : "missing",
                                            span,
                                            prov::BlockOverrides::
                                                kDenseIndexMaxSpan));
          }
        }

        // The union must be exactly the union of the block's lanes'
        // compiled override variables — a missing entry silently serves
        // the base value for an overridden variable.
        if (union_ok && b * lanes < plan.compiled().size()) {
          std::vector<prov::VarId> expected;
          const std::size_t lane_end =
              std::min(plan.compiled().size(), b * lanes + want);
          for (std::size_t i = b * lanes; i < lane_end; ++i) {
            for (const prov::VarOverride& ov : plan.compiled()[i].overrides) {
              expected.push_back(ov.var);
            }
          }
          std::sort(expected.begin(), expected.end());
          expected.erase(std::unique(expected.begin(), expected.end()),
                         expected.end());
          if (expected != vars) {
            report.AddError("plan block", b,
                            util::StrFormat("override union holds %zu "
                                            "variables but the block's "
                                            "lanes override %zu distinct "
                                            "variables",
                                            vars.size(), expected.size()));
          }
        }

        // Core/overlay split: the overlay table must share the skeleton's
        // structure exactly — only the value rows may differ between bases.
        const prov::BlockOverrides& skeleton =
            plan.core()->block_skeletons()[b];
        if (skeleton.vars() != vars ||
            skeleton.num_lanes() != table.num_lanes() ||
            skeleton.width() != table.width() ||
            skeleton.uses_dense_index() != table.uses_dense_index()) {
          report.AddError("plan block", b,
                          "overlay table structure disagrees with the "
                          "core's block skeleton");
        }

        // Value rows: every (row, lane) cell must rebind bit-for-bit from
        // the overlay's base and the lane's compiled overrides. Any other
        // bit pattern means the table was bound against a different base
        // (or corrupted after binding).
        if (union_ok && plan.base().size() >= pool_size) {
          const std::vector<double>& values = table.values();
          bool rows_ok = values.size() == vars.size() * table.width();
          if (!rows_ok) {
            report.AddError("plan block", b,
                            util::StrFormat("value table holds %zu entries "
                                            "(want %zu rows of width %zu)",
                                            values.size(), vars.size(),
                                            table.width()));
          }
          for (std::size_t r = 0; rows_ok && r < vars.size(); ++r) {
            for (std::size_t l = 0; rows_ok && l < table.width(); ++l) {
              double expected = plan.base().values()[vars[r]];
              if (l < table.num_lanes() &&
                  b * lanes + l < plan.compiled().size()) {
                const std::vector<prov::VarOverride>& lane_overrides =
                    plan.compiled()[b * lanes + l].overrides;
                const auto it = std::lower_bound(
                    lane_overrides.begin(), lane_overrides.end(), vars[r],
                    [](const prov::VarOverride& o, prov::VarId v) {
                      return o.var < v;
                    });
                if (it != lane_overrides.end() && it->var == vars[r]) {
                  expected = it->value;
                }
              }
              if (!SameBits(values[r * table.width() + l], expected)) {
                report.AddError(
                    "plan block", b,
                    util::StrFormat("value row %zu lane %zu does not rebind "
                                    "from the overlay base and the lane's "
                                    "overrides",
                                    r, l));
                rows_ok = false;
              }
            }
          }
        }
      }
    }
  } else if (!plan.block_tables().empty()) {
    report.AddError("plan", 0,
                    util::StrFormat("%zu block tables on a scalar engine",
                                    plan.block_tables().size()));
  }

  // Tile schedules partition the (scenario-block × poly-range) space
  // exactly once per side. The dense-copy full side scans full_program;
  // the sparse/blocked full side scans the meta-indirected program — both
  // have the same shape, so verifying against sweep_full_program is exact.
  VerifySchedule(plan.full_schedule(), session.sweep_full_program(),
                 "plan full schedule", &report);
  VerifySchedule(plan.compressed_schedule(), session.compressed_program(),
                 "plan compressed schedule", &report);

  // Fingerprint and lowering cross-check against the scenario set the plan
  // claims to serve (available at the plan-cache insert boundary).
  if (scenarios != nullptr) {
    const core::PlanFingerprint recomputed =
        core::FingerprintScenarios(*scenarios);
    if (recomputed != plan.fingerprint()) {
      report.AddError("plan", 0,
                      util::StrFormat("fingerprint %s does not recompute "
                                      "from the scenario set (%s)",
                                      plan.fingerprint().ToHex().c_str(),
                                      recomputed.ToHex().c_str()));
    }
    if (scenarios->size() != n) {
      report.AddError("plan", 0,
                      util::StrFormat("plan compiles %zu scenarios but the "
                                      "set holds %zu",
                                      n, scenarios->size()));
      return report;
    }
    const prov::VarPool& pool = session.pool();
    for (std::size_t i = 0; i < n; ++i) {
      const core::Scenario& scenario = scenarios->scenario(i);
      if (scenario.name != plan.scenario_names()[i]) {
        report.AddError("plan scenario", i,
                        util::StrFormat("name \"%s\" does not match the "
                                        "set's \"%s\"",
                                        plan.scenario_names()[i].c_str(),
                                        scenario.name.c_str()));
        continue;
      }
      // Re-lower the deltas (last value wins per variable, sorted by id)
      // and demand the compiled list matches bit for bit.
      std::vector<prov::VarOverride> expected;
      for (const core::Scenario::Delta& delta : scenario.deltas) {
        const prov::VarId id = pool.Find(delta.var);
        if (id == prov::kInvalidVar || id >= pool_size) {
          report.AddError("plan scenario", i,
                          util::StrFormat("delta variable \"%s\" does not "
                                          "resolve in the frozen pool",
                                          delta.var.c_str()));
          expected.clear();
          break;
        }
        bool found = false;
        for (prov::VarOverride& existing : expected) {
          if (existing.var == id) {
            existing.value = delta.value;
            found = true;
          }
        }
        if (!found) expected.push_back({id, delta.value});
      }
      std::sort(expected.begin(), expected.end(),
                [](const prov::VarOverride& a, const prov::VarOverride& b) {
                  return a.var < b.var;
                });
      const std::vector<prov::VarOverride>& compiled =
          plan.compiled()[i].overrides;
      bool match = compiled.size() == expected.size();
      for (std::size_t o = 0; match && o < expected.size(); ++o) {
        match = compiled[o].var == expected[o].var &&
                SameBits(compiled[o].value, expected[o].value);
      }
      if (!match) {
        report.AddError("plan scenario", i,
                        "compiled override list does not match the "
                        "scenario's lowered deltas");
      }
    }
  }
  return report;
}

VerifyReport VerifySnapshot(const core::SnapshotPackage& snapshot) {
  VerifyReport report;
  const std::size_t pool_size = snapshot.pool_names.size();

  // Pool name ↔ id bijection: re-interning in id order must reproduce the
  // dense id sequence, which fails exactly when a name is empty or repeats.
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      const std::string& name = snapshot.pool_names[i];
      if (name.empty()) {
        report.AddError("pool", i,
                        util::StrFormat("pool name %zu is empty", i));
        continue;
      }
      if (!seen.insert(name).second) {
        report.AddError("pool", i,
                        util::StrFormat("duplicate pool name \"%s\" (id "
                                        "%zu): name/id mapping is not a "
                                        "bijection",
                                        name.c_str(), i));
      }
    }
  }

  // Both compiled programs, under the pool bound.
  report.Merge(
      VerifyProgram(snapshot.full_program, pool_size, "full program"));
  report.Merge(VerifyProgram(snapshot.compressed_program, pool_size,
                             "compressed program"));

  // Group alignment: answers are reported per label, so the two sides and
  // the label list must agree on the group count.
  const std::size_t full_polys = snapshot.full_program.poly_starts.empty()
                                     ? 0
                                     : snapshot.full_program.poly_starts.size() - 1;
  const std::size_t compressed_polys =
      snapshot.compressed_program.poly_starts.empty()
          ? 0
          : snapshot.compressed_program.poly_starts.size() - 1;
  if (full_polys != compressed_polys) {
    report.AddError("labels", 0,
                    util::StrFormat("group count mismatch (full=%zu "
                                    "compressed=%zu)",
                                    full_polys, compressed_polys));
  }
  if (snapshot.labels.size() != full_polys) {
    report.AddError("labels", 0,
                    util::StrFormat("label count %zu does not match the %zu "
                                    "polynomial groups",
                                    snapshot.labels.size(), full_polys));
  }

  // leaf→meta remap: pool-sized, closed over the pool, idempotent (a
  // remap target that itself remaps elsewhere would make the baked-in
  // sweep program and ExpandValuation disagree).
  if (snapshot.leaf_to_meta.size() != pool_size) {
    report.AddError("leaf_to_meta", 0,
                    util::StrFormat("remap covers %zu variables but the "
                                    "pool holds %zu",
                                    snapshot.leaf_to_meta.size(), pool_size));
  } else {
    for (std::size_t v = 0; v < pool_size; ++v) {
      const prov::VarId mapped = snapshot.leaf_to_meta[v];
      if (mapped >= pool_size) {
        report.AddError("leaf_to_meta", v,
                        util::StrFormat("variable %zu remaps to id %u "
                                        "outside the pool: remap is not "
                                        "closed over the pool",
                                        v, mapped));
      } else if (snapshot.leaf_to_meta[mapped] != mapped) {
        report.AddError("leaf_to_meta", v,
                        util::StrFormat("remap is not idempotent: %zu -> %u "
                                        "-> %u",
                                        v, mapped,
                                        snapshot.leaf_to_meta[mapped]));
      }
    }
  }

  // Meta-variables: ids inside the pool, names matching their pooled
  // names, leaves inside the pool and agreeing with the remap.
  for (std::size_t m = 0; m < snapshot.meta_vars.size(); ++m) {
    const core::MetaVar& mv = snapshot.meta_vars[m];
    if (mv.var >= pool_size) {
      report.AddError("meta_vars", m,
                      util::StrFormat("meta-variable \"%s\" has id %u "
                                      "outside the pool",
                                      mv.name.c_str(), mv.var));
      continue;
    }
    if (mv.name != snapshot.pool_names[mv.var]) {
      report.AddError("meta_vars", m,
                      util::StrFormat("meta-variable name \"%s\" does not "
                                      "match pool name \"%s\" of id %u",
                                      mv.name.c_str(),
                                      snapshot.pool_names[mv.var].c_str(),
                                      mv.var));
    }
    if (mv.leaves.empty()) {
      report.AddWarning("meta_vars", m,
                        util::StrFormat("meta-variable \"%s\" abstracts no "
                                        "leaves",
                                        mv.name.c_str()));
    }
    for (prov::VarId leaf : mv.leaves) {
      if (leaf >= pool_size) {
        report.AddError("meta_vars", m,
                        util::StrFormat("meta-variable \"%s\" leaf id %u is "
                                        "outside the pool",
                                        mv.name.c_str(), leaf));
      } else if (snapshot.leaf_to_meta.size() == pool_size &&
                 snapshot.leaf_to_meta[leaf] != mv.var) {
        report.AddError("meta_vars", m,
                        util::StrFormat("leaf %u of meta-variable \"%s\" "
                                        "remaps to %u, not to it",
                                        leaf, mv.name.c_str(),
                                        snapshot.leaf_to_meta[leaf]));
      }
    }
  }

  // Default valuation: dense over the frozen pool, finite values.
  if (snapshot.default_meta.size() != pool_size) {
    report.AddError("default valuation", 0,
                    util::StrFormat("default valuation covers %zu variables "
                                    "but the pool holds %zu (must be dense)",
                                    snapshot.default_meta.size(), pool_size));
  }
  for (std::size_t v = 0; v < snapshot.default_meta.size(); ++v) {
    if (!std::isfinite(snapshot.default_meta[v])) {
      report.AddError("default valuation", v,
                      util::StrFormat("default value %zu is not finite", v));
      break;
    }
  }
  return report;
}

VerifyReport VerifySession(const core::CompiledSession& session) {
  VerifyReport report;
  const std::size_t pool_size = session.pool_size();
  report.Merge(
      VerifyProgram(session.full_program(), pool_size, "full program"));
  report.Merge(VerifyProgram(session.sweep_full_program(), pool_size,
                             "sweep full program"));
  report.Merge(VerifyProgram(session.compressed_program(), pool_size,
                             "compressed program"));
  report.Merge(VerifySnapshot(MakeSnapshot(session)));
  const std::vector<std::shared_ptr<const core::BatchPlan>> plans =
      session.CachedPlanHandles();
  for (const std::shared_ptr<const core::BatchPlan>& plan : plans) {
    report.Merge(VerifyPlan(*plan, session));
  }
  return report;
}

namespace {

/// Per-scenario contract checks shared by the head and tail probes.
/// `ordinal(i)` maps a window-local index to its source ordinal for
/// findings.
void VerifyProbedScenarios(const core::ScenarioSet& window,
                           std::uint64_t window_begin, std::size_t max_deltas,
                           VerifyReport* report) {
  std::unordered_set<std::string_view> names;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const core::Scenario& scenario = window.scenario(i);
    const std::size_t ordinal =
        static_cast<std::size_t>(window_begin) + i;
    if (scenario.name.empty()) {
      report->AddError("source scenario", ordinal,
                       "generated scenario has an empty name");
    } else if (!names.insert(scenario.name).second) {
      report->AddError(
          "source scenario", ordinal,
          util::StrFormat("generated scenario name \"%s\" repeats within "
                          "the probed window",
                          scenario.name.c_str()));
    }
    if (scenario.deltas.size() > max_deltas) {
      report->AddError(
          "source scenario", ordinal,
          util::StrFormat("scenario carries %zu override(s) but the source "
                          "advertises max_deltas() = %zu",
                          scenario.deltas.size(), max_deltas));
    }
    for (const core::Scenario::Delta& delta : scenario.deltas) {
      if (delta.var.empty()) {
        report->AddError("source scenario", ordinal,
                         "override has an empty variable name");
        break;
      }
      if (!std::isfinite(delta.value)) {
        report->AddError(
            "source scenario", ordinal,
            util::StrFormat("override \"%s\" has a non-finite value",
                            delta.var.c_str()));
        break;
      }
    }
  }
}

/// Bitwise scenario-set equality (names, override order, value bits).
bool SameScenarios(const core::ScenarioSet& a, const core::ScenarioSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::Scenario& sa = a.scenario(i);
    const core::Scenario& sb = b.scenario(i);
    if (sa.name != sb.name || sa.deltas.size() != sb.deltas.size()) {
      return false;
    }
    for (std::size_t d = 0; d < sa.deltas.size(); ++d) {
      if (sa.deltas[d].var != sb.deltas[d].var ||
          !SameBits(sa.deltas[d].value, sb.deltas[d].value)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

VerifyReport VerifySource(const core::ScenarioSource& source,
                          std::size_t probe) {
  VerifyReport report;
  const std::uint64_t size = source.size();
  if (size == 0) {
    report.AddError("source", 0, "source is empty (size() == 0)");
    return report;
  }
  if (probe == 0) probe = 1;

  // Spec fingerprint: recomputation must be a pure function of the spec.
  const core::SourceFingerprint fp1 = source.fingerprint();
  const core::SourceFingerprint fp2 = source.fingerprint();
  if (fp1 != fp2) {
    report.AddError("source", 0,
                    util::StrFormat("spec fingerprint is unstable across "
                                    "recomputation (%s vs %s)",
                                    fp1.ToHex().c_str(), fp2.ToHex().c_str()));
  }

  const std::size_t head = static_cast<std::size_t>(
      std::min<std::uint64_t>(probe, size));

  // Head probe: generate the window twice, then split — all three must be
  // bitwise identical (determinism + the chunking-invariance clause the
  // streaming sweep's bit-identity guarantee rests on).
  core::ScenarioSet whole;
  whole.Reserve(head);
  util::Status status = source.Generate(0, head, &whole);
  if (!status.ok()) {
    report.AddError("source", 0,
                    util::StrFormat("Generate(0, %zu) failed: %s", head,
                                    status.ToString().c_str()));
    return report;
  }
  if (whole.size() != head) {
    report.AddError("source", 0,
                    util::StrFormat("Generate(0, %zu) produced %zu "
                                    "scenario(s) — must fill the window",
                                    head, whole.size()));
    return report;
  }

  core::ScenarioSet again;
  again.Reserve(head);
  status = source.Generate(0, head, &again);
  if (!status.ok()) {
    report.AddError("source", 0,
                    util::StrFormat("repeated Generate(0, %zu) failed: %s",
                                    head, status.ToString().c_str()));
  } else if (!SameScenarios(whole, again)) {
    report.AddError("source", 0,
                    util::StrFormat("Generate(0, %zu) is nondeterministic: "
                                    "two runs produced different scenarios",
                                    head));
  }

  if (head > 1) {
    const std::size_t half = head / 2;
    core::ScenarioSet split;
    split.Reserve(head);
    status = source.Generate(0, half, &split);
    if (status.ok()) status = source.Generate(half, head - half, &split);
    if (!status.ok()) {
      report.AddError("source", 0,
                      util::StrFormat("split Generate over [0, %zu) failed: "
                                      "%s",
                                      head, status.ToString().c_str()));
    } else if (!SameScenarios(whole, split)) {
      report.AddError("source", 0,
                      util::StrFormat("chunking changes output: generating "
                                      "[0, %zu) as [0, %zu) + [%zu, %zu) "
                                      "differs from one window",
                                      head, half, half, head));
    }
  }

  VerifyProbedScenarios(whole, 0, source.max_deltas(), &report);

  // Tail probe: combinator range math (Concat part boundaries, Compose
  // outer/inner decomposition) is most fragile near size().
  if (size > head) {
    const std::uint64_t tail_begin =
        size - std::min<std::uint64_t>(probe, size - head);
    const std::size_t tail =
        static_cast<std::size_t>(size - tail_begin);
    core::ScenarioSet tail_window;
    tail_window.Reserve(tail);
    status = source.Generate(tail_begin, tail, &tail_window);
    if (!status.ok()) {
      report.AddError(
          "source", static_cast<std::size_t>(tail_begin),
          util::StrFormat("tail Generate(%llu, %zu) failed: %s",
                          static_cast<unsigned long long>(tail_begin), tail,
                          status.ToString().c_str()));
    } else if (tail_window.size() != tail) {
      report.AddError(
          "source", static_cast<std::size_t>(tail_begin),
          util::StrFormat("tail Generate(%llu, %zu) produced %zu "
                          "scenario(s) — must fill the window",
                          static_cast<unsigned long long>(tail_begin), tail,
                          tail_window.size()));
    } else {
      VerifyProbedScenarios(tail_window, tail_begin, source.max_deltas(),
                            &report);
    }
  }

  // Past-the-end windows must be rejected, not clamped: AssignStream's
  // chunk loop relies on precise range errors.
  core::ScenarioSet overflow;
  if (source.Generate(size, 1, &overflow).ok()) {
    report.AddError("source", static_cast<std::size_t>(size),
                    "Generate past size() succeeded (must reject windows "
                    "beyond the source)");
  }
  return report;
}

}  // namespace cobra::verify
