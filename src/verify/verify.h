#ifndef COBRA_VERIFY_VERIFY_H_
#define COBRA_VERIFY_VERIFY_H_

#include <cstddef>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/io.h"
#include "core/scenario.h"
#include "prov/eval_program.h"

/// cobra::verify — static artifact verification for compiled artifacts.
///
/// The serving path trusts three kinds of compiled artifacts it did not
/// author in-process: `EvalProgram`s rebuilt from snapshot arrays, cached
/// `BatchPlan`s replayed across calls, and `SnapshotPackage`s loaded from
/// disk on replicas. COBRA's value proposition rests on the compressed
/// artifact being a *sound* stand-in for the original provenance, so each
/// artifact is proven well-formed and internally consistent *before* it is
/// executed — a corrupt artifact is rejected with a precise diagnosis at
/// load time instead of surfacing as a wrong answer or a segfault under
/// traffic.
///
/// The three passes are bytecode-verifier-style single abstract walks over
/// the artifact's arrays; none executes anything. They are wired in at the
/// three trust boundaries:
///
///   - `CompiledSession::FromSnapshot` runs `VerifySnapshot` mandatorily
///     and refuses any snapshot with error findings;
///   - the plan cache runs `VerifyPlan` on every insert in debug builds
///     and under `BatchOptions::verify_plans`;
///   - the `cobra_verify` CLI audits snapshot files/directories offline
///     (fleet automation; see its exit-code contract in the README).
namespace cobra::verify {

/// How bad a finding is. Errors make the artifact unservable (executing it
/// could crash or silently answer wrong); warnings flag suspicious but
/// well-defined state.
enum class Severity {
  kWarning,
  kError,
};

/// Stable display name ("error" / "warning").
const char* SeverityName(Severity severity);

/// One verifier diagnosis: which artifact, where inside it, and what
/// invariant is violated. `offset` is the element index within the named
/// artifact array (the first violating element when several violate).
struct Finding {
  Severity severity = Severity::kError;
  std::string artifact;  ///< e.g. "compressed program", "plan full schedule"
  std::size_t offset = 0;
  std::string message;

  /// Renders "error <artifact>[<offset>]: <message>".
  std::string ToString() const;
};

/// The structured result of one (or several merged) verification passes.
/// `ok()` means no *error* findings — warnings alone leave an artifact
/// servable.
class VerifyReport {
 public:
  /// Records an error finding.
  void AddError(std::string_view artifact, std::size_t offset,
                std::string message);

  /// Records a warning finding.
  void AddWarning(std::string_view artifact, std::size_t offset,
                  std::string message);

  /// Appends every finding of `other` (used to combine passes).
  void Merge(const VerifyReport& other);

  /// True iff no error findings were recorded.
  bool ok() const { return num_errors_ == 0; }

  std::size_t num_errors() const { return num_errors_; }
  std::size_t num_warnings() const {
    return findings_.size() - num_errors_;
  }
  const std::vector<Finding>& findings() const { return findings_; }

  /// The first error finding, or nullptr when ok(). The pointer is
  /// invalidated by further Add*/Merge calls.
  const Finding* FirstError() const;

  /// Renders the findings as a fixed-width table (severity, artifact,
  /// offset, message) followed by a one-line summary; a clean report
  /// renders just the summary line.
  std::string ToString() const;

 private:
  std::vector<Finding> findings_;
  std::size_t num_errors_ = 0;
};

/// Sentinel for "no pool bound": VerifyProgram skips the factor-id bound
/// check (structural invariants are still checked).
inline constexpr std::size_t kNoPoolBound =
    std::numeric_limits<std::size_t>::max();

/// Statically verifies one compiled `EvalProgram` in a single walk over its
/// four arrays. Invariants (the catalog the README documents):
///
///   - `poly_starts` is non-empty, starts at 0, is non-decreasing, and ends
///     at the term count — polynomial term ranges are non-overlapping and
///     cover the term array exactly;
///   - `term_starts` has one entry per term plus a trailing bound, starts
///     at 0, is non-decreasing, and ends at the factor count — term factor
///     ranges partition the factor array;
///   - no coefficient is NaN or infinite;
///   - no factor is `kInvalidVar`, and when `pool_size` is bounded every
///     factor id lies inside the pool;
///   - the cached `MinValuationSize` equals max(factor) + 1.
///
/// `artifact` names the program in findings ("full program", ...).
VerifyReport VerifyProgram(const prov::EvalProgram& program,
                           std::size_t pool_size = kNoPoolBound,
                           std::string_view artifact = "program");

/// Same structural invariants for a not-yet-rebuilt snapshot image (the raw
/// arrays before `EvalProgram::FromParts` runs). The `MinValuationSize`
/// cache check does not apply — the image carries no cache.
VerifyReport VerifyProgram(const core::EvalProgramImage& image,
                           std::size_t pool_size = kNoPoolBound,
                           std::string_view artifact = "program");

/// Statically verifies a compiled `BatchPlan` against the session it will
/// execute on. Checks: the plan's origin is `session`; the resolved engine
/// is never `kAuto`; lane counts are 4, 8 or 16 for the blocked engine and
/// 1 for the scalar engines; the resolved layout is AoS for the scalar
/// engines and, when it is SoA, both execution images exist, carry the SoA
/// layout tag and re-derive bitwise from the session's compiled programs
/// (boundary arrays, first-difference count streams, coefficients and
/// factors); the prefetch distance is within the validated 0..64 range;
/// the block count and per-block override-union
/// tables are consistent with the scenario count; every compiled override
/// list is sorted, duplicate-free and within the frozen pool; the base
/// valuation is pool-sized; and each side's tile schedule partitions the
/// (scenario-block × poly-range) space exactly once — sorted disjoint
/// whole-poly ranges covering every polynomial, with the term-split
/// polynomial's slices exactly tiling its term range.
///
/// A plan is a base-invariant `PlanCore` plus a per-base
/// `PlanBaseOverlay`, and the pass proves the two halves agree: the
/// overlay's base fingerprint recomputes from its stored base valuation
/// (the plan cache keys overlays by it), each overlay block table shares
/// its core skeleton's structure (union, lane count, width, dense index),
/// and every value-table cell rebinds bit-for-bit from the overlay base
/// and the owning lane's compiled overrides.
///
/// When `scenarios` is non-null the pass additionally recomputes the
/// scenario-set content fingerprint and re-lowers every scenario, proving
/// the plan's cached key and compiled override lists match the set it
/// claims to serve (the plan-cache insert boundary passes the set).
VerifyReport VerifyPlan(const core::BatchPlan& plan,
                        const core::CompiledSession& session,
                        const core::ScenarioSet* scenarios = nullptr);

/// Statically verifies a parsed `SnapshotPackage` beyond the binary
/// format's checksum: pool names form a name↔id bijection (non-empty,
/// duplicate-free); both compiled programs satisfy `VerifyProgram` under
/// the pool bound and agree on the group count; labels align with the
/// groups; the leaf→meta remap is pool-sized, closed over the pool and
/// idempotent; meta-variables sit inside the pool, match their pooled
/// names, and agree with the remap on every leaf; and the default
/// valuation is dense over the pool with finite values.
VerifyReport VerifySnapshot(const core::SnapshotPackage& snapshot);

/// Convenience driver for operational tooling (`cobra_shell verify`): runs
/// all three passes against a live session — its three compiled programs,
/// its snapshot image (exactly what `SaveSnapshot` would write), and every
/// plan currently in its plan cache — and merges the reports.
VerifyReport VerifySession(const core::CompiledSession& session);

/// Audits a scenario generator spec before a streaming sweep replays it
/// millions of times (`CompiledSession::AssignStream` runs this at its
/// trust boundary, like the plan cache runs `VerifyPlan`). The source's
/// *code* cannot be inspected, so the pass probes its *contract*:
///
///   - the source is non-empty and its spec fingerprint is stable across
///     recomputation;
///   - a head window of `probe` scenarios generates identically twice, and
///     identically when split into two sub-windows (the chunking-invariance
///     clause of `ScenarioSource::Generate`) — bitwise, including -0.0/NaN
///     payload differences;
///   - every probed scenario has a non-empty name (unique within the
///     window), non-empty override variable names, finite override values
///     (no NaN/Inf deltas), and at most `max_deltas()` overrides;
///   - a tail window near `size()` generates without error and passes the
///     same per-scenario checks (catches off-by-one range math in
///     combinators).
///
/// Probing is O(probe), never O(size): a million-scenario grid is audited
/// through two small windows.
VerifyReport VerifySource(const core::ScenarioSource& source,
                          std::size_t probe = 64);

}  // namespace cobra::verify

#endif  // COBRA_VERIFY_VERIFY_H_
