#include "prov/polynomial.h"

#include <algorithm>
#include <cmath>

#include "prov/valuation.h"
#include "util/status.h"
#include "util/str.h"

namespace cobra::prov {

void Polynomial::Canonicalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.monomial < b.monomial; });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (Term& t : terms_) {
    if (!merged.empty() && merged.back().monomial == t.monomial) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(std::move(t));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coeff == 0.0; }),
               merged.end());
  terms_ = std::move(merged);
}

Polynomial Polynomial::FromTerms(std::vector<Term> terms) {
  Polynomial p;
  p.terms_ = std::move(terms);
  p.Canonicalize();
  return p;
}

Polynomial Polynomial::Constant(double c) {
  return FromTerms({{Monomial(), c}});
}

Polynomial Polynomial::Var(VarId v) {
  return FromTerms({{Monomial::Of(v), 1.0}});
}

Polynomial Polynomial::Plus(const Polynomial& other) const {
  std::vector<Term> terms = terms_;
  terms.insert(terms.end(), other.terms_.begin(), other.terms_.end());
  return FromTerms(std::move(terms));
}

Polynomial Polynomial::TimesPoly(const Polynomial& other) const {
  std::vector<Term> terms;
  terms.reserve(terms_.size() * other.terms_.size());
  for (const Term& a : terms_) {
    for (const Term& b : other.terms_) {
      terms.push_back({a.monomial.Times(b.monomial), a.coeff * b.coeff});
    }
  }
  return FromTerms(std::move(terms));
}

Polynomial Polynomial::Scale(double factor) const {
  std::vector<Term> terms = terms_;
  for (Term& t : terms) t.coeff *= factor;
  return FromTerms(std::move(terms));
}

Polynomial Polynomial::TimesMonomial(const Monomial& m) const {
  std::vector<Term> terms = terms_;
  for (Term& t : terms) t.monomial = t.monomial.Times(m);
  return FromTerms(std::move(terms));
}

double Polynomial::CoefficientOf(const Monomial& m) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), m,
      [](const Term& t, const Monomial& key) { return t.monomial < key; });
  if (it != terms_.end() && it->monomial == m) return it->coeff;
  return 0.0;
}

void Polynomial::CollectVariables(std::unordered_set<VarId>* out) const {
  for (const Term& t : terms_) {
    for (const VarPower& p : t.monomial.powers()) out->insert(p.var);
  }
}

std::vector<VarId> Polynomial::Variables() const {
  std::unordered_set<VarId> set;
  CollectVariables(&set);
  std::vector<VarId> vars(set.begin(), set.end());
  std::sort(vars.begin(), vars.end());
  return vars;
}

std::uint32_t Polynomial::Degree() const {
  std::uint32_t d = 0;
  for (const Term& t : terms_) d = std::max(d, t.monomial.Degree());
  return d;
}

double Polynomial::Eval(const Valuation& valuation) const {
  double out = 0.0;
  for (const Term& t : terms_) out += t.coeff * t.monomial.Eval(valuation.values());
  return out;
}

Polynomial Polynomial::SubstituteVars(const std::vector<VarId>& mapping) const {
  std::vector<Term> terms;
  terms.reserve(terms_.size());
  for (const Term& t : terms_) {
    terms.push_back({t.monomial.MapVars(mapping), t.coeff});
  }
  return FromTerms(std::move(terms));
}

Polynomial Polynomial::PartialEval(const Valuation& valuation,
                                   const std::vector<bool>& fixed) const {
  std::vector<Term> terms;
  terms.reserve(terms_.size());
  for (const Term& t : terms_) {
    double coeff = t.coeff;
    std::vector<VarPower> residual;
    for (const VarPower& vp : t.monomial.powers()) {
      if (vp.var < fixed.size() && fixed[vp.var]) {
        double v = valuation.Get(vp.var);
        for (std::uint32_t e = 0; e < vp.exp; ++e) coeff *= v;
      } else {
        residual.push_back(vp);
      }
    }
    terms.push_back({Monomial::FromFactors(std::move(residual)), coeff});
  }
  return FromTerms(std::move(terms));
}

std::string Polynomial::ToString(const VarPool& pool) const {
  if (terms_.empty()) return "0";
  std::string out;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    const Term& t = terms_[i];
    double coeff = t.coeff;
    if (i == 0) {
      if (coeff < 0) {
        out += "-";
        coeff = -coeff;
      }
    } else {
      out += coeff < 0 ? " - " : " + ";
      coeff = std::fabs(coeff);
    }
    bool coeff_is_one = coeff == 1.0;
    if (!coeff_is_one || t.monomial.IsConstant()) {
      out += util::FormatDouble(coeff);
      if (!t.monomial.IsConstant()) out += " * ";
    }
    if (!t.monomial.IsConstant()) out += t.monomial.ToString(pool);
  }
  return out;
}

bool Polynomial::AlmostEquals(const Polynomial& other, double eps) const {
  if (terms_.size() != other.terms_.size()) return false;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (!(terms_[i].monomial == other.terms_[i].monomial)) return false;
    if (std::fabs(terms_[i].coeff - other.terms_[i].coeff) > eps) return false;
  }
  return true;
}

Polynomial Polynomial::Derivative(VarId var) const {
  std::vector<Term> terms;
  for (const Term& t : terms_) {
    std::uint32_t exp = t.monomial.ExponentOf(var);
    if (exp == 0) continue;
    std::vector<VarPower> factors;
    for (const VarPower& vp : t.monomial.powers()) {
      if (vp.var == var) {
        if (vp.exp > 1) factors.push_back({vp.var, vp.exp - 1});
      } else {
        factors.push_back(vp);
      }
    }
    terms.push_back({Monomial::FromFactors(std::move(factors)),
                     t.coeff * static_cast<double>(exp)});
  }
  return FromTerms(std::move(terms));
}

void PolynomialBuilder::AddTerm(const Monomial& m, double coeff) {
  if (coeff == 0.0) return;
  acc_[m] += coeff;
}

void PolynomialBuilder::AddPolynomial(const Polynomial& p, double factor) {
  for (const Term& t : p.terms()) AddTerm(t.monomial, t.coeff * factor);
}

Polynomial PolynomialBuilder::Build() {
  std::vector<Term> terms;
  terms.reserve(acc_.size());
  for (auto& [monomial, coeff] : acc_) terms.push_back({monomial, coeff});
  acc_.clear();
  return Polynomial::FromTerms(std::move(terms));
}

}  // namespace cobra::prov
