#ifndef COBRA_PROV_POLYNOMIAL_H_
#define COBRA_PROV_POLYNOMIAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "prov/monomial.h"
#include "prov/variable.h"

namespace cobra::prov {

class Valuation;

/// One term of a polynomial: `coeff * monomial`.
struct Term {
  Monomial monomial;
  double coeff = 0.0;

  bool operator==(const Term& other) const = default;
};

/// A provenance polynomial: a finite sum of coefficient-weighted monomials.
///
/// This is the symbolic query result of the paper — an element of the
/// semiring N[X] (extended to rational coefficients by the aggregate
/// semimodule, see `semiring/`). Terms are kept in canonical form: distinct
/// monomials, sorted deterministically, no zero coefficients. Equality is
/// therefore structural equality of the mathematical object.
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;

  /// Builds a polynomial from arbitrary terms; monomials are deduplicated by
  /// summing coefficients and zero terms are dropped.
  static Polynomial FromTerms(std::vector<Term> terms);

  /// The constant polynomial `c` (zero polynomial when c == 0).
  static Polynomial Constant(double c);

  /// The polynomial consisting of the single variable `v`.
  static Polynomial Var(VarId v);

  /// Sum of two polynomials.
  Polynomial Plus(const Polynomial& other) const;

  /// Product of two polynomials (distributes and merges).
  Polynomial TimesPoly(const Polynomial& other) const;

  /// This polynomial scaled by `factor`.
  Polynomial Scale(double factor) const;

  /// This polynomial multiplied by a single monomial.
  Polynomial TimesMonomial(const Monomial& m) const;

  /// Number of monomials — the paper's measure of provenance size.
  std::size_t NumMonomials() const { return terms_.size(); }

  /// True iff this is the zero polynomial.
  bool IsZero() const { return terms_.empty(); }

  /// The canonical term list (sorted, deduplicated, non-zero).
  const std::vector<Term>& terms() const { return terms_; }

  /// Coefficient of `m` (0 when absent).
  double CoefficientOf(const Monomial& m) const;

  /// Inserts every distinct variable id into `out`.
  void CollectVariables(std::unordered_set<VarId>* out) const;

  /// The set of distinct variables, sorted.
  std::vector<VarId> Variables() const;

  /// Largest total degree over all monomials (0 for constants/zero).
  std::uint32_t Degree() const;

  /// Evaluates under a valuation of all contained variables.
  double Eval(const Valuation& valuation) const;

  /// Replaces every variable `v` by `mapping[v]` and merges monomials that
  /// become identical by summing their coefficients. This is how an
  /// abstraction is applied (Section 2 of the paper).
  Polynomial SubstituteVars(const std::vector<VarId>& mapping) const;

  /// Partial evaluation: fixes the variables for which `fixed[v]` is true
  /// to their value in `valuation`, folding them into the coefficients and
  /// merging monomials that become identical. The result is a polynomial
  /// over the remaining variables only — specialization for an analyst who
  /// has committed part of a scenario. For a fully-fixed variable set this
  /// equals `Constant(Eval(valuation))`.
  Polynomial PartialEval(const Valuation& valuation,
                         const std::vector<bool>& fixed) const;

  /// Formal partial derivative with respect to `var`: each monomial
  /// `c·var^e·r` becomes `(c·e)·var^(e-1)·r`; monomials without `var`
  /// vanish. Evaluated at a valuation this is the result's sensitivity to
  /// the variable — how much the answer moves per unit change of the
  /// hypothetical parameter.
  Polynomial Derivative(VarId var) const;

  /// Renders e.g. "208.8 * p1 * m1 + 240 * p1 * m3". The zero polynomial
  /// renders as "0". Term order follows the canonical monomial order.
  std::string ToString(const VarPool& pool) const;

  /// True iff all coefficients match `other` within `eps` and the monomial
  /// sets are identical. Structural operator== requires exact coefficients.
  bool AlmostEquals(const Polynomial& other, double eps) const;

  bool operator==(const Polynomial& other) const = default;

 private:
  void Canonicalize();

  std::vector<Term> terms_;
};

/// Incremental polynomial builder with O(1) amortized term insertion.
///
/// Query evaluation adds millions of contributions to group polynomials;
/// the builder accumulates them in a hash map and `Build()` produces the
/// canonical `Polynomial` once at the end.
class PolynomialBuilder {
 public:
  /// Adds `coeff * m` to the polynomial under construction.
  void AddTerm(const Monomial& m, double coeff);

  /// Adds every term of `p`, scaled by `factor`.
  void AddPolynomial(const Polynomial& p, double factor = 1.0);

  /// Number of distinct monomials currently accumulated.
  std::size_t NumMonomials() const { return acc_.size(); }

  /// Produces the canonical polynomial and resets the builder.
  Polynomial Build();

 private:
  std::unordered_map<Monomial, double, MonomialHash> acc_;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_POLYNOMIAL_H_
