#include "prov/valuation.h"

namespace cobra::prov {

util::Status Valuation::SetByName(const VarPool& pool, std::string_view name,
                                  double value) {
  VarId id = pool.Find(name);
  if (id == kInvalidVar) {
    return util::Status::NotFound("unknown variable: " + std::string(name));
  }
  Resize(pool.size());
  Set(id, value);
  return util::Status::OK();
}

}  // namespace cobra::prov
