#ifndef COBRA_PROV_STATS_H_
#define COBRA_PROV_STATS_H_

#include <cstdint>
#include <string>

#include "prov/poly_set.h"

namespace cobra::prov {

/// Summary statistics of a provenance polynomial set, used by reports,
/// benches and the explain output.
struct PolySetStats {
  std::size_t num_polys = 0;          ///< Number of result polynomials.
  std::size_t num_monomials = 0;      ///< The paper's provenance-size measure.
  std::size_t num_variables = 0;      ///< The paper's expressiveness measure.
  std::uint32_t max_degree = 0;       ///< Largest monomial total degree.
  double avg_monomials_per_poly = 0;  ///< num_monomials / num_polys.
  std::size_t max_monomials_in_poly = 0;

  /// Renders a one-line summary.
  std::string ToString() const;
};

/// Computes statistics for `set`.
PolySetStats ComputeStats(const PolySet& set);

}  // namespace cobra::prov

#endif  // COBRA_PROV_STATS_H_
