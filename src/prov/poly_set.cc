#include "prov/poly_set.h"

#include <algorithm>
#include <unordered_set>

namespace cobra::prov {

std::size_t PolySet::Add(std::string label, Polynomial poly) {
  labels_.push_back(std::move(label));
  polys_.push_back(std::move(poly));
  return polys_.size() - 1;
}

std::size_t PolySet::FindLabel(std::string_view label) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return i;
  }
  return npos;
}

std::size_t PolySet::TotalMonomials() const {
  std::size_t total = 0;
  for (const Polynomial& p : polys_) total += p.NumMonomials();
  return total;
}

std::size_t PolySet::NumDistinctVariables() const {
  std::unordered_set<VarId> vars;
  for (const Polynomial& p : polys_) p.CollectVariables(&vars);
  return vars.size();
}

std::vector<VarId> PolySet::AllVariables() const {
  std::unordered_set<VarId> set;
  for (const Polynomial& p : polys_) p.CollectVariables(&set);
  std::vector<VarId> vars(set.begin(), set.end());
  std::sort(vars.begin(), vars.end());
  return vars;
}

PolySet PolySet::SubstituteVars(const std::vector<VarId>& mapping) const {
  PolySet out;
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    out.Add(labels_[i], polys_[i].SubstituteVars(mapping));
  }
  return out;
}

std::string PolySet::ToString(const VarPool& pool) const {
  std::string out;
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    out += labels_[i];
    out += " = ";
    out += polys_[i].ToString(pool);
    out += "\n";
  }
  return out;
}

}  // namespace cobra::prov
