#include "prov/monomial.h"

#include <algorithm>

#include "util/status.h"

namespace cobra::prov {

Monomial Monomial::FromFactors(std::vector<VarPower> factors) {
  std::sort(factors.begin(), factors.end(),
            [](const VarPower& a, const VarPower& b) { return a.var < b.var; });
  Monomial m;
  for (const VarPower& f : factors) {
    if (f.exp == 0) continue;
    if (!m.powers_.empty() && m.powers_.back().var == f.var) {
      m.powers_.back().exp += f.exp;
    } else {
      m.powers_.push_back(f);
    }
  }
  return m;
}

Monomial Monomial::Times(const Monomial& other) const {
  Monomial out;
  out.powers_.reserve(powers_.size() + other.powers_.size());
  std::size_t i = 0, j = 0;
  while (i < powers_.size() && j < other.powers_.size()) {
    if (powers_[i].var < other.powers_[j].var) {
      out.powers_.push_back(powers_[i++]);
    } else if (powers_[i].var > other.powers_[j].var) {
      out.powers_.push_back(other.powers_[j++]);
    } else {
      out.powers_.push_back({powers_[i].var, powers_[i].exp + other.powers_[j].exp});
      ++i;
      ++j;
    }
  }
  while (i < powers_.size()) out.powers_.push_back(powers_[i++]);
  while (j < other.powers_.size()) out.powers_.push_back(other.powers_[j++]);
  return out;
}

std::uint32_t Monomial::ExponentOf(VarId var) const {
  for (const VarPower& p : powers_) {
    if (p.var == var) return p.exp;
    if (p.var > var) break;
  }
  return 0;
}

std::uint32_t Monomial::Degree() const {
  std::uint32_t d = 0;
  for (const VarPower& p : powers_) d += p.exp;
  return d;
}

Monomial Monomial::Without(VarId var) const {
  Monomial out;
  out.powers_.reserve(powers_.size());
  for (const VarPower& p : powers_) {
    if (p.var != var) out.powers_.push_back(p);
  }
  return out;
}

Monomial Monomial::MapVars(const std::vector<VarId>& mapping) const {
  std::vector<VarPower> factors;
  factors.reserve(powers_.size());
  for (const VarPower& p : powers_) {
    COBRA_CHECK_MSG(p.var < mapping.size(),
                    "Monomial::MapVars: variable outside mapping");
    factors.push_back({mapping[p.var], p.exp});
  }
  return FromFactors(std::move(factors));
}

double Monomial::Eval(const std::vector<double>& values) const {
  double out = 1.0;
  for (const VarPower& p : powers_) {
    COBRA_CHECK_MSG(p.var < values.size(),
                    "Monomial::Eval: variable outside valuation");
    double v = values[p.var];
    for (std::uint32_t e = 0; e < p.exp; ++e) out *= v;
  }
  return out;
}

std::uint64_t Monomial::Hash() const {
  std::uint64_t h = 0x517cc1b727220a95ULL;
  for (const VarPower& p : powers_) {
    h = util::HashCombine(h, p.var);
    h = util::HashCombine(h, p.exp);
  }
  return h;
}

std::string Monomial::ToString(const VarPool& pool) const {
  if (powers_.empty()) return "1";
  std::string out;
  for (std::size_t i = 0; i < powers_.size(); ++i) {
    if (i > 0) out += " * ";
    out += pool.Name(powers_[i].var);
    if (powers_[i].exp > 1) {
      out += "^";
      out += std::to_string(powers_[i].exp);
    }
  }
  return out;
}

bool Monomial::operator<(const Monomial& other) const {
  return std::lexicographical_compare(
      powers_.begin(), powers_.end(), other.powers_.begin(),
      other.powers_.end(), [](const VarPower& a, const VarPower& b) {
        if (a.var != b.var) return a.var < b.var;
        return a.exp < b.exp;
      });
}

}  // namespace cobra::prov
