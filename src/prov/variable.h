#ifndef COBRA_PROV_VARIABLE_H_
#define COBRA_PROV_VARIABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cobra::prov {

/// Dense identifier of an interned provenance variable.
using VarId = std::uint32_t;

/// Sentinel for "no variable".
constexpr VarId kInvalidVar = static_cast<VarId>(-1);

/// Interning table mapping variable names to dense `VarId`s.
///
/// Every polynomial in a COBRA session shares one pool, so monomials store
/// compact integer ids and never copy strings. Meta-variables created by an
/// abstraction are interned into the same pool, which keeps valuation arrays
/// dense.
///
/// The pool is append-only and safe to share between one authoring thread
/// and any number of concurrent readers: `Intern()` may run concurrently
/// with `Find()`/`Name()`/`size()` (a shared mutex guards the table, and
/// names live in a deque so `Name()` references stay stable as the pool
/// grows). This is what lets `Session` hand the same pool to its immutable
/// `CompiledSession` snapshots by `shared_ptr` instead of deep-copying it —
/// ids are stable forever, so a snapshot that captured the pool size at
/// creation simply ignores later additions.
class VarPool {
 public:
  VarPool() = default;

  VarPool(const VarPool& other);
  VarPool& operator=(const VarPool& other);

  /// Returns the id for `name`, interning it on first use.
  VarId Intern(std::string_view name);

  /// Returns the id for `name`, or `kInvalidVar` if it was never interned.
  VarId Find(std::string_view name) const;

  /// True iff `name` has been interned.
  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidVar;
  }

  /// Returns the name of `id`. Aborts on out-of-range ids. The reference
  /// stays valid for the pool's lifetime (names are never moved).
  const std::string& Name(VarId id) const;

  /// Number of interned variables.
  std::size_t size() const;

  /// Copies the names of ids `[0, count)` in id order (`count` is clamped to
  /// the current size). Because the pool is append-only, this is a complete,
  /// stable export of the pool as it existed when it held `count` variables
  /// — the snapshot serializer (core/io.h) uses it to ship a frozen pool
  /// prefix to replica processes, which re-intern the names in order and
  /// recover identical ids.
  std::vector<std::string> NamesUpTo(std::size_t count) const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> names_;  ///< Deque: stable refs under growth.
  std::unordered_map<std::string, VarId> index_;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_VARIABLE_H_
