#include "prov/eval_program.h"

#include <algorithm>

#include "util/status.h"
#include "util/str.h"

namespace cobra::prov {

EvalProgram::EvalProgram(const PolySet& set) {
  std::size_t total_terms = set.TotalMonomials();
  poly_starts_.reserve(set.size() + 1);
  term_starts_.reserve(total_terms + 1);
  coeffs_.reserve(total_terms);

  poly_starts_.push_back(0);
  term_starts_.push_back(0);
  for (const Polynomial& p : set.polys()) {
    for (const Term& t : p.terms()) {
      coeffs_.push_back(t.coeff);
      for (const VarPower& vp : t.monomial.powers()) {
        if (vp.var + 1 > min_valuation_size_) {
          min_valuation_size_ = vp.var + 1;
        }
        for (std::uint32_t e = 0; e < vp.exp; ++e) factors_.push_back(vp.var);
      }
      term_starts_.push_back(static_cast<std::uint32_t>(factors_.size()));
    }
    poly_starts_.push_back(static_cast<std::uint32_t>(coeffs_.size()));
  }
}

void EvalProgram::Eval(const Valuation& valuation,
                       std::vector<double>* out) const {
  COBRA_CHECK_MSG(valuation.size() >= min_valuation_size_,
                  "EvalProgram::Eval: valuation too small");
  EvalUnchecked(valuation, out);
}

util::Status EvalProgram::EvalChecked(const Valuation& valuation,
                                      std::vector<double>* out) const {
  if (valuation.size() < min_valuation_size_) {
    return util::Status::InvalidArgument(util::StrFormat(
        "EvalProgram::EvalChecked: valuation covers %zu variables but the "
        "program requires %zu (largest referenced VarId is %zu)",
        valuation.size(), min_valuation_size_, min_valuation_size_ - 1));
  }
  EvalUnchecked(valuation, out);
  return util::Status::OK();
}

void EvalProgram::EvalUnchecked(const Valuation& valuation,
                                std::vector<double>* out) const {
  const double* values = valuation.values().data();
  out->assign(NumPolys(), 0.0);
  for (std::size_t p = 0; p + 1 < poly_starts_.size(); ++p) {
    double sum = 0.0;
    for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
      double prod = coeffs_[t];
      for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
        prod *= values[factors_[f]];
      }
      sum += prod;
    }
    (*out)[p] = sum;
  }
}

void EvalProgram::EvalWithOverrides(const Valuation& base,
                                    const VarOverride* overrides,
                                    std::size_t num_overrides,
                                    std::vector<double>* out) const {
  out->assign(NumPolys(), 0.0);
  EvalRangeWithOverrides(base, overrides, num_overrides, 0, NumPolys(),
                         out->data());
}

void EvalProgram::EvalRangeWithOverrides(const Valuation& base,
                                         const VarOverride* overrides,
                                         std::size_t num_overrides,
                                         std::size_t poly_begin,
                                         std::size_t poly_end,
                                         double* out) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalProgram::EvalRangeWithOverrides: valuation too small");
  COBRA_CHECK_MSG(poly_begin <= poly_end && poly_end <= NumPolys(),
                  "EvalProgram::EvalRangeWithOverrides: bad poly range");
  const double* values = base.values().data();
  if (num_overrides == 0) {
    // Default-scenario fast path: a plain dense scan.
    for (std::size_t p = poly_begin; p < poly_end; ++p) {
      double sum = 0.0;
      for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
        double prod = coeffs_[t];
        for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
          prod *= values[factors_[f]];
        }
        sum += prod;
      }
      out[p] = sum;
    }
    return;
  }
  for (std::size_t p = poly_begin; p < poly_end; ++p) {
    double sum = 0.0;
    for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
      double prod = coeffs_[t];
      for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
        const VarId var = factors_[f];
        double v = values[var];
        // The override list is tiny (a few meta-variables), so a linear scan
        // over register-resident data beats any lookup structure here.
        for (std::size_t o = 0; o < num_overrides; ++o) {
          if (overrides[o].var == var) v = overrides[o].value;
        }
        prod *= v;
      }
      sum += prod;
    }
    out[p] = sum;
  }
}

EvalProgram EvalProgram::RemapFactors(const std::vector<VarId>& remap) const {
  EvalProgram out;
  out.poly_starts_ = poly_starts_;
  out.term_starts_ = term_starts_;
  out.coeffs_ = coeffs_;
  out.factors_.reserve(factors_.size());
  out.min_valuation_size_ = 0;
  for (VarId var : factors_) {
    VarId mapped = var < remap.size() ? remap[var] : var;
    if (mapped + 1 > out.min_valuation_size_) {
      out.min_valuation_size_ = mapped + 1;
    }
    out.factors_.push_back(mapped);
  }
  return out;
}

std::vector<std::uint32_t> EvalProgram::PartitionPolys(
    std::size_t parts) const {
  const std::uint32_t n = static_cast<std::uint32_t>(NumPolys());
  std::vector<std::uint32_t> bounds;
  bounds.push_back(0);
  if (parts <= 1 || n <= 1) {
    bounds.push_back(n);
    return bounds;
  }
  parts = std::min<std::size_t>(parts, n);
  auto weight = [this](std::uint32_t p) {
    const std::uint32_t terms = poly_starts_[p + 1] - poly_starts_[p];
    const std::uint32_t factors =
        term_starts_[poly_starts_[p + 1]] - term_starts_[poly_starts_[p]];
    return static_cast<double>(terms + factors + 1);
  };
  double total = 0.0;
  for (std::uint32_t p = 0; p < n; ++p) total += weight(p);
  double acc = 0.0;
  for (std::uint32_t p = 0; p < n; ++p) {
    acc += weight(p);
    // Close the current range once it reaches its proportional share, but
    // keep at least one polynomial for each remaining range.
    const std::size_t emitted = bounds.size();  // ranges closed so far + 1
    if (emitted < parts &&
        acc >= total * static_cast<double>(emitted) /
                   static_cast<double>(parts) &&
        p + 1 <= n - (parts - emitted)) {
      bounds.push_back(p + 1);
    }
  }
  bounds.push_back(n);
  return bounds;
}

}  // namespace cobra::prov
