#include "prov/eval_program.h"

#include <algorithm>

#include "util/status.h"
#include "util/str.h"

// Software-prefetch hint for the SoA image kernels: pull the coeff/factor
// streams a configurable number of cache lines ahead of the running cursors.
// A pure hint — never faults, never affects results — so the portable no-op
// fallback is exact.
#if defined(__GNUC__) || defined(__clang__)
#define COBRA_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 0)
#else
#define COBRA_PREFETCH_READ(addr) ((void)sizeof(addr))
#endif

namespace cobra::prov {

namespace {

/// The raw view of a BlockOverrides table the kernels scan: a sorted var
/// array with a W-wide value row per var, the [lo, hi] guard band, and the
/// optional dense row index covering [lo, hi].
struct LaneTableView {
  const VarId* vars = nullptr;
  const double* values = nullptr;
  const std::int32_t* dense = nullptr;  ///< nullptr => binary search.
  std::size_t rows = 0;
  VarId lo = kInvalidVar;
  VarId hi = 0;
};

/// Looks up `var`'s per-lane value row, or nullptr when the block does not
/// override `var`. The guard band rejects most factors with two compares;
/// inside the band the dense index resolves the row with one load when the
/// union's id span is small, and a binary search over the factor-sorted var
/// array (O(log k) in the union size k) otherwise — wide scenario unions no
/// longer pay a linear scan per factor.
template <int W>
inline const double* FindLaneRow(const LaneTableView& table, VarId var) {
  if (var < table.lo || var > table.hi) return nullptr;
  if (table.dense != nullptr) {
    const std::int32_t row = table.dense[var - table.lo];
    return row < 0 ? nullptr : table.values + static_cast<std::size_t>(row) * W;
  }
  const VarId* it = std::lower_bound(table.vars, table.vars + table.rows, var);
  if (it == table.vars + table.rows || *it != var) return nullptr;
  return table.values + static_cast<std::size_t>(it - table.vars) * W;
}

/// The blocked inner loop at compile-time lane width W. Per factor the base
/// value is loaded once and broadcast, overridden variables read their
/// per-lane row, and the W accumulators advance in lockstep — each lane runs
/// the scalar path's exact operation sequence (prod = coeff, prod *= value
/// per factor, sum += prod), so per-lane results are bit-identical to the
/// scalar sparse scan while one pass over poly_starts/term_starts/coeffs/
/// factors serves W scenarios.
template <int W>
void RunBlockedRange(const std::uint32_t* poly_starts,
                     const std::uint32_t* term_starts, const double* coeffs,
                     const VarId* factors, const double* base,
                     const LaneTableView& table, std::size_t poly_begin,
                     std::size_t poly_end, std::size_t num_lanes, double* out,
                     std::size_t lane_stride) {
  for (std::size_t p = poly_begin; p < poly_end; ++p) {
    double sum[W];
#pragma omp simd
    for (int l = 0; l < W; ++l) sum[l] = 0.0;
    for (std::uint32_t t = poly_starts[p]; t < poly_starts[p + 1]; ++t) {
      double prod[W];
      const double c = coeffs[t];
#pragma omp simd
      for (int l = 0; l < W; ++l) prod[l] = c;
      for (std::uint32_t f = term_starts[t]; f < term_starts[t + 1]; ++f) {
        const VarId var = factors[f];
        const double* row = FindLaneRow<W>(table, var);
        if (row != nullptr) {
#pragma omp simd
          for (int l = 0; l < W; ++l) prod[l] *= row[l];
        } else {
          const double v = base[var];
#pragma omp simd
          for (int l = 0; l < W; ++l) prod[l] *= v;
        }
      }
#pragma omp simd
      for (int l = 0; l < W; ++l) sum[l] += prod[l];
    }
    for (std::size_t l = 0; l < num_lanes; ++l) {
      out[l * lane_stride + p] = sum[l];
    }
  }
}

/// Term-range flavor of RunBlockedRange: accumulates the W partial sums for
/// terms [term_begin, term_end) (all inside one polynomial) and writes lane
/// l's partial to partials[l * lane_stride].
template <int W>
void RunBlockedTermRange(const std::uint32_t* term_starts,
                         const double* coeffs, const VarId* factors,
                         const double* base, const LaneTableView& table,
                         std::size_t term_begin, std::size_t term_end,
                         std::size_t num_lanes, double* partials,
                         std::size_t lane_stride) {
  double sum[W];
#pragma omp simd
  for (int l = 0; l < W; ++l) sum[l] = 0.0;
  for (std::size_t t = term_begin; t < term_end; ++t) {
    double prod[W];
    const double c = coeffs[t];
#pragma omp simd
    for (int l = 0; l < W; ++l) prod[l] = c;
    for (std::uint32_t f = term_starts[t]; f < term_starts[t + 1]; ++f) {
      const VarId var = factors[f];
      const double* row = FindLaneRow<W>(table, var);
      if (row != nullptr) {
#pragma omp simd
        for (int l = 0; l < W; ++l) prod[l] *= row[l];
      } else {
        const double v = base[var];
#pragma omp simd
        for (int l = 0; l < W; ++l) prod[l] *= v;
      }
    }
#pragma omp simd
    for (int l = 0; l < W; ++l) sum[l] += prod[l];
  }
  for (std::size_t l = 0; l < num_lanes; ++l) {
    partials[l * lane_stride] = sum[l];
  }
}

// Doubles / VarIds per 64-byte cache line, for prefetch-distance math.
constexpr std::size_t kDoublesPerLine = util::kCacheLineBytes / sizeof(double);
constexpr std::size_t kVarIdsPerLine = util::kCacheLineBytes / sizeof(VarId);

/// SoA-image flavor of RunBlockedRange: identical operation sequence, but
/// the loops advance running cursors (t over terms, f over factors) through
/// the fused count streams instead of re-reading the boundary arrays per
/// term, and optionally software-prefetch the coeff/factor streams `pf`
/// cache lines ahead of the cursors. Prefetch targets may point past the end
/// of the arrays — the hint never faults and never affects results.
template <int W>
void RunBlockedRangeImage(const std::uint32_t* poly_term_counts,
                          const std::uint32_t* term_factor_counts,
                          const double* coeffs, const VarId* factors,
                          std::uint32_t t, std::uint32_t f, const double* base,
                          const LaneTableView& table, std::size_t poly_begin,
                          std::size_t poly_end, std::size_t num_lanes,
                          double* out, std::size_t lane_stride,
                          std::size_t pf) {
  for (std::size_t p = poly_begin; p < poly_end; ++p) {
    double sum[W];
#pragma omp simd
    for (int l = 0; l < W; ++l) sum[l] = 0.0;
    for (std::uint32_t tc = poly_term_counts[p]; tc > 0; --tc, ++t) {
      if (pf != 0) {
        COBRA_PREFETCH_READ(coeffs + t + pf * kDoublesPerLine);
        COBRA_PREFETCH_READ(factors + f + pf * kVarIdsPerLine);
      }
      double prod[W];
      const double c = coeffs[t];
#pragma omp simd
      for (int l = 0; l < W; ++l) prod[l] = c;
      for (std::uint32_t fc = term_factor_counts[t]; fc > 0; --fc, ++f) {
        const VarId var = factors[f];
        const double* row = FindLaneRow<W>(table, var);
        if (row != nullptr) {
#pragma omp simd
          for (int l = 0; l < W; ++l) prod[l] *= row[l];
        } else {
          const double v = base[var];
#pragma omp simd
          for (int l = 0; l < W; ++l) prod[l] *= v;
        }
      }
#pragma omp simd
      for (int l = 0; l < W; ++l) sum[l] += prod[l];
    }
    for (std::size_t l = 0; l < num_lanes; ++l) {
      out[l * lane_stride + p] = sum[l];
    }
  }
}

/// SoA-image flavor of RunBlockedTermRange: running factor cursor + count
/// stream + optional prefetch, same bit-identity contract.
template <int W>
void RunBlockedTermRangeImage(const std::uint32_t* term_factor_counts,
                              const double* coeffs, const VarId* factors,
                              std::uint32_t f, const double* base,
                              const LaneTableView& table,
                              std::size_t term_begin, std::size_t term_end,
                              std::size_t num_lanes, double* partials,
                              std::size_t lane_stride, std::size_t pf) {
  double sum[W];
#pragma omp simd
  for (int l = 0; l < W; ++l) sum[l] = 0.0;
  for (std::size_t t = term_begin; t < term_end; ++t) {
    if (pf != 0) {
      COBRA_PREFETCH_READ(coeffs + t + pf * kDoublesPerLine);
      COBRA_PREFETCH_READ(factors + f + pf * kVarIdsPerLine);
    }
    double prod[W];
    const double c = coeffs[t];
#pragma omp simd
    for (int l = 0; l < W; ++l) prod[l] = c;
    for (std::uint32_t fc = term_factor_counts[t]; fc > 0; --fc, ++f) {
      const VarId var = factors[f];
      const double* row = FindLaneRow<W>(table, var);
      if (row != nullptr) {
#pragma omp simd
        for (int l = 0; l < W; ++l) prod[l] *= row[l];
      } else {
        const double v = base[var];
#pragma omp simd
        for (int l = 0; l < W; ++l) prod[l] *= v;
      }
    }
#pragma omp simd
    for (int l = 0; l < W; ++l) sum[l] += prod[l];
  }
  for (std::size_t l = 0; l < num_lanes; ++l) {
    partials[l * lane_stride] = sum[l];
  }
}

}  // namespace

BlockOverrides MakeBlockOverridesSkeleton(const OverrideSpan* lanes,
                                          std::size_t num_lanes) {
  COBRA_CHECK_MSG(
      num_lanes >= 1 && num_lanes <= EvalProgram::kMaxLanes,
      "MakeBlockOverridesSkeleton: lane count outside [1, kMaxLanes]");
  BlockOverrides block;
  block.num_lanes_ = num_lanes;
  block.width_ = num_lanes <= 4 ? 4 : (num_lanes <= 8 ? 8 : 16);
  for (std::size_t l = 0; l < num_lanes; ++l) {
    for (std::size_t o = 0; o < lanes[l].size; ++o) {
      block.vars_.push_back(lanes[l].data[o].var);
    }
  }
  std::sort(block.vars_.begin(), block.vars_.end());
  block.vars_.erase(std::unique(block.vars_.begin(), block.vars_.end()),
                    block.vars_.end());
  if (!block.vars_.empty()) {
    block.lo_ = block.vars_.front();
    block.hi_ = block.vars_.back();
  }
  // Value rows stay zero until RebindBlockOverrides() binds a base — a
  // skeleton handed to a kernel would multiply everything by 0, not crash,
  // which is why only the rebinding path may publish one.
  block.values_.assign(block.vars_.size() * block.width_, 0.0);
  // O(1) lookup fast path: when the union's id span is small, one row-index
  // array covers it (wider unions binary-search the sorted var array).
  if (!block.vars_.empty()) {
    const std::size_t span =
        static_cast<std::size_t>(block.hi_ - block.lo_) + 1;
    if (span <= BlockOverrides::kDenseIndexMaxSpan) {
      block.dense_index_.assign(span, -1);
      for (std::size_t r = 0; r < block.vars_.size(); ++r) {
        block.dense_index_[block.vars_[r] - block.lo_] =
            static_cast<std::int32_t>(r);
      }
    }
  }
  return block;
}

BlockOverrides RebindBlockOverrides(const BlockOverrides& block,
                                    const Valuation& base,
                                    const OverrideSpan* lanes,
                                    std::size_t num_lanes) {
  COBRA_CHECK_MSG(num_lanes == block.num_lanes_,
                  "RebindBlockOverrides: lane count does not match the "
                  "skeleton");
  BlockOverrides bound = block;
  if (!bound.vars_.empty()) {
    COBRA_CHECK_MSG(bound.vars_.back() < base.size(),
                    "RebindBlockOverrides: override variable outside the "
                    "base valuation");
  }
  // Every row defaults to the broadcast base value (this also covers the
  // padding lanes), then each lane patches in its own overrides.
  for (std::size_t r = 0; r < bound.vars_.size(); ++r) {
    const double v = base.values()[bound.vars_[r]];
    for (std::size_t l = 0; l < bound.width_; ++l) {
      bound.values_[r * bound.width_ + l] = v;
    }
  }
  for (std::size_t l = 0; l < num_lanes; ++l) {
    for (std::size_t o = 0; o < lanes[l].size; ++o) {
      const std::size_t r =
          std::lower_bound(bound.vars_.begin(), bound.vars_.end(),
                           lanes[l].data[o].var) -
          bound.vars_.begin();
      bound.values_[r * bound.width_ + l] = lanes[l].data[o].value;
    }
  }
  return bound;
}

BlockOverrides MakeBlockOverrides(const Valuation& base,
                                  const OverrideSpan* lanes,
                                  std::size_t num_lanes) {
  return RebindBlockOverrides(MakeBlockOverridesSkeleton(lanes, num_lanes),
                              base, lanes, num_lanes);
}

EvalProgram::EvalProgram(const PolySet& set) {
  std::size_t total_terms = set.TotalMonomials();
  poly_starts_.reserve(set.size() + 1);
  term_starts_.reserve(total_terms + 1);
  coeffs_.reserve(total_terms);

  poly_starts_.push_back(0);
  term_starts_.push_back(0);
  for (const Polynomial& p : set.polys()) {
    for (const Term& t : p.terms()) {
      coeffs_.push_back(t.coeff);
      for (const VarPower& vp : t.monomial.powers()) {
        if (vp.var + 1 > min_valuation_size_) {
          min_valuation_size_ = vp.var + 1;
        }
        for (std::uint32_t e = 0; e < vp.exp; ++e) factors_.push_back(vp.var);
      }
      term_starts_.push_back(static_cast<std::uint32_t>(factors_.size()));
    }
    poly_starts_.push_back(static_cast<std::uint32_t>(coeffs_.size()));
  }
}

util::Result<EvalProgram> EvalProgram::FromParts(
    std::vector<std::uint32_t> poly_starts,
    std::vector<std::uint32_t> term_starts, std::vector<double> coeffs,
    std::vector<VarId> factors) {
  auto invalid = [](const char* what) {
    return util::Status::InvalidArgument(
        std::string("EvalProgram::FromParts: ") + what);
  };
  if (poly_starts.empty() || poly_starts.front() != 0) {
    return invalid("poly_starts must be non-empty and start at 0");
  }
  if (!std::is_sorted(poly_starts.begin(), poly_starts.end())) {
    return invalid("poly_starts must be non-decreasing");
  }
  if (poly_starts.back() != coeffs.size()) {
    return invalid("poly_starts must end at the term count");
  }
  if (term_starts.size() != coeffs.size() + 1 || term_starts.front() != 0) {
    return invalid("term_starts must have one entry per term plus a 0 head");
  }
  if (!std::is_sorted(term_starts.begin(), term_starts.end())) {
    return invalid("term_starts must be non-decreasing");
  }
  if (term_starts.back() != factors.size()) {
    return invalid("term_starts must end at the factor count");
  }
  EvalProgram out;
  for (VarId var : factors) {
    if (var == kInvalidVar) return invalid("factor is kInvalidVar");
    const std::size_t need = static_cast<std::size_t>(var) + 1;
    if (need > out.min_valuation_size_) out.min_valuation_size_ = need;
  }
  out.poly_starts_ = std::move(poly_starts);
  out.term_starts_ = std::move(term_starts);
  out.coeffs_ = std::move(coeffs);
  out.factors_ = std::move(factors);
  return out;
}

void EvalProgram::Eval(const Valuation& valuation,
                       std::vector<double>* out) const {
  COBRA_CHECK_MSG(valuation.size() >= min_valuation_size_,
                  "EvalProgram::Eval: valuation too small");
  EvalUnchecked(valuation, out);
}

util::Status EvalProgram::EvalChecked(const Valuation& valuation,
                                      std::vector<double>* out) const {
  if (valuation.size() < min_valuation_size_) {
    return util::Status::InvalidArgument(util::StrFormat(
        "EvalProgram::EvalChecked: valuation covers %zu variables but the "
        "program requires %zu (largest referenced VarId is %zu)",
        valuation.size(), min_valuation_size_, min_valuation_size_ - 1));
  }
  EvalUnchecked(valuation, out);
  return util::Status::OK();
}

void EvalProgram::EvalUnchecked(const Valuation& valuation,
                                std::vector<double>* out) const {
  const double* values = valuation.values().data();
  out->assign(NumPolys(), 0.0);
  for (std::size_t p = 0; p + 1 < poly_starts_.size(); ++p) {
    double sum = 0.0;
    for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
      double prod = coeffs_[t];
      for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
        prod *= values[factors_[f]];
      }
      sum += prod;
    }
    (*out)[p] = sum;
  }
}

void EvalProgram::EvalWithOverrides(const Valuation& base,
                                    const VarOverride* overrides,
                                    std::size_t num_overrides,
                                    std::vector<double>* out) const {
  // Validate before touching *out, so an aborting call (and any future
  // checked variant) never leaves the caller's output half-written.
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalProgram::EvalWithOverrides: valuation too small");
  out->assign(NumPolys(), 0.0);
  EvalRangeWithOverrides(base, overrides, num_overrides, 0, NumPolys(),
                         out->data());
}

void EvalProgram::EvalRangeWithOverrides(const Valuation& base,
                                         const VarOverride* overrides,
                                         std::size_t num_overrides,
                                         std::size_t poly_begin,
                                         std::size_t poly_end,
                                         double* out) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalProgram::EvalRangeWithOverrides: valuation too small");
  COBRA_CHECK_MSG(poly_begin <= poly_end && poly_end <= NumPolys(),
                  "EvalProgram::EvalRangeWithOverrides: bad poly range");
  const double* values = base.values().data();
  if (num_overrides == 0) {
    // Default-scenario fast path: a plain dense scan.
    for (std::size_t p = poly_begin; p < poly_end; ++p) {
      double sum = 0.0;
      for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
        double prod = coeffs_[t];
        for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
          prod *= values[factors_[f]];
        }
        sum += prod;
      }
      out[p] = sum;
    }
    return;
  }
  for (std::size_t p = poly_begin; p < poly_end; ++p) {
    double sum = 0.0;
    for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
      double prod = coeffs_[t];
      for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
        const VarId var = factors_[f];
        double v = values[var];
        // The override list is tiny (a few meta-variables), so a linear scan
        // over register-resident data beats any lookup structure here.
        for (std::size_t o = 0; o < num_overrides; ++o) {
          if (overrides[o].var == var) v = overrides[o].value;
        }
        prod *= v;
      }
      sum += prod;
    }
    out[p] = sum;
  }
}

void EvalProgram::EvalRangeBlocked(const Valuation& base,
                                   const BlockOverrides& block,
                                   std::size_t poly_begin,
                                   std::size_t poly_end, double* out,
                                   std::size_t lane_stride) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalProgram::EvalRangeBlocked: valuation too small");
  COBRA_CHECK_MSG(poly_begin <= poly_end && poly_end <= NumPolys(),
                  "EvalProgram::EvalRangeBlocked: bad poly range");
  const double* values = base.values().data();
  const LaneTableView table{
      block.vars_.data(), block.values_.data(),
      block.dense_index_.empty() ? nullptr : block.dense_index_.data(),
      block.vars_.size(), block.lo_, block.hi_};
  if (block.width_ == 4) {
    RunBlockedRange<4>(poly_starts_.data(), term_starts_.data(),
                       coeffs_.data(), factors_.data(), values, table,
                       poly_begin, poly_end, block.num_lanes_, out,
                       lane_stride);
  } else if (block.width_ == 8) {
    RunBlockedRange<8>(poly_starts_.data(), term_starts_.data(),
                       coeffs_.data(), factors_.data(), values, table,
                       poly_begin, poly_end, block.num_lanes_, out,
                       lane_stride);
  } else {
    RunBlockedRange<16>(poly_starts_.data(), term_starts_.data(),
                        coeffs_.data(), factors_.data(), values, table,
                        poly_begin, poly_end, block.num_lanes_, out,
                        lane_stride);
  }
}

double EvalProgram::EvalTermRangeWithOverrides(const Valuation& base,
                                               const VarOverride* overrides,
                                               std::size_t num_overrides,
                                               std::size_t term_begin,
                                               std::size_t term_end) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalProgram::EvalTermRangeWithOverrides: valuation too "
                  "small");
  COBRA_CHECK_MSG(term_begin <= term_end && term_end <= NumTerms(),
                  "EvalProgram::EvalTermRangeWithOverrides: bad term range");
  const double* values = base.values().data();
  double sum = 0.0;
  for (std::size_t t = term_begin; t < term_end; ++t) {
    double prod = coeffs_[t];
    for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
      const VarId var = factors_[f];
      double v = values[var];
      for (std::size_t o = 0; o < num_overrides; ++o) {
        if (overrides[o].var == var) v = overrides[o].value;
      }
      prod *= v;
    }
    sum += prod;
  }
  return sum;
}

void EvalProgram::EvalTermRangeBlocked(const Valuation& base,
                                       const BlockOverrides& block,
                                       std::size_t term_begin,
                                       std::size_t term_end, double* partials,
                                       std::size_t lane_stride) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalProgram::EvalTermRangeBlocked: valuation too small");
  COBRA_CHECK_MSG(term_begin <= term_end && term_end <= NumTerms(),
                  "EvalProgram::EvalTermRangeBlocked: bad term range");
  const double* values = base.values().data();
  const LaneTableView table{
      block.vars_.data(), block.values_.data(),
      block.dense_index_.empty() ? nullptr : block.dense_index_.data(),
      block.vars_.size(), block.lo_, block.hi_};
  if (block.width_ == 4) {
    RunBlockedTermRange<4>(term_starts_.data(), coeffs_.data(),
                           factors_.data(), values, table, term_begin,
                           term_end, block.num_lanes_, partials, lane_stride);
  } else if (block.width_ == 8) {
    RunBlockedTermRange<8>(term_starts_.data(), coeffs_.data(),
                           factors_.data(), values, table, term_begin,
                           term_end, block.num_lanes_, partials, lane_stride);
  } else {
    RunBlockedTermRange<16>(term_starts_.data(), coeffs_.data(),
                            factors_.data(), values, table, term_begin,
                            term_end, block.num_lanes_, partials, lane_stride);
  }
}

EvalProgram EvalProgram::RemapFactors(const std::vector<VarId>& remap) const {
  EvalProgram out;
  out.poly_starts_ = poly_starts_;
  out.term_starts_ = term_starts_;
  out.coeffs_ = coeffs_;
  out.factors_.reserve(factors_.size());
  out.min_valuation_size_ = 0;
  for (VarId var : factors_) {
    VarId mapped = var < remap.size() ? remap[var] : var;
    if (mapped + 1 > out.min_valuation_size_) {
      out.min_valuation_size_ = mapped + 1;
    }
    out.factors_.push_back(mapped);
  }
  return out;
}

std::vector<std::uint32_t> EvalProgram::PartitionPolys(
    std::size_t parts) const {
  const std::uint32_t n = static_cast<std::uint32_t>(NumPolys());
  std::vector<std::uint32_t> bounds;
  bounds.push_back(0);
  if (parts <= 1 || n <= 1) {
    bounds.push_back(n);
    return bounds;
  }
  parts = std::min<std::size_t>(parts, n);
  auto weight = [this](std::uint32_t p) {
    const std::uint32_t terms = poly_starts_[p + 1] - poly_starts_[p];
    const std::uint32_t factors =
        term_starts_[poly_starts_[p + 1]] - term_starts_[poly_starts_[p]];
    return static_cast<double>(terms + factors + 1);
  };
  double total = 0.0;
  for (std::uint32_t p = 0; p < n; ++p) total += weight(p);
  double acc = 0.0;
  for (std::uint32_t p = 0; p < n; ++p) {
    acc += weight(p);
    // Close the current range once it reaches its proportional share, but
    // keep at least one polynomial for each remaining range.
    const std::size_t emitted = bounds.size();  // ranges closed so far + 1
    if (emitted < parts &&
        acc >= total * static_cast<double>(emitted) /
                   static_cast<double>(parts) &&
        p + 1 <= n - (parts - emitted)) {
      bounds.push_back(p + 1);
    }
  }
  bounds.push_back(n);
  return bounds;
}

std::vector<std::uint32_t> EvalProgram::PartitionTerms(
    std::size_t poly, std::size_t parts) const {
  COBRA_CHECK_MSG(poly < NumPolys(), "EvalProgram::PartitionTerms: bad poly");
  const std::uint32_t first = poly_starts_[poly];
  const std::uint32_t last = poly_starts_[poly + 1];
  std::vector<std::uint32_t> bounds;
  bounds.push_back(first);
  const std::uint32_t n = last - first;
  if (parts <= 1 || n <= 1) {
    bounds.push_back(last);
    return bounds;
  }
  parts = std::min<std::size_t>(parts, n);
  auto weight = [this](std::uint32_t t) {
    return static_cast<double>(term_starts_[t + 1] - term_starts_[t] + 1);
  };
  double total = 0.0;
  for (std::uint32_t t = first; t < last; ++t) total += weight(t);
  double acc = 0.0;
  for (std::uint32_t t = first; t < last; ++t) {
    acc += weight(t);
    const std::size_t emitted = bounds.size();  // ranges closed so far + 1
    if (emitted < parts &&
        acc >= total * static_cast<double>(emitted) /
                   static_cast<double>(parts) &&
        t + 1 <= last - (parts - emitted)) {
      bounds.push_back(t + 1);
    }
  }
  bounds.push_back(last);
  return bounds;
}

std::size_t EvalProgram::DominantPoly(std::size_t min_terms) const {
  const std::size_t n = NumPolys();
  if (n == 0 || min_terms == 0) return n;
  auto weight = [this](std::size_t p) {
    const std::uint32_t terms = poly_starts_[p + 1] - poly_starts_[p];
    const std::uint32_t factors =
        term_starts_[poly_starts_[p + 1]] - term_starts_[poly_starts_[p]];
    return static_cast<double>(terms + factors + 1);
  };
  double total = 0.0;
  double best_weight = -1.0;
  std::size_t best = n;
  for (std::size_t p = 0; p < n; ++p) {
    const double w = weight(p);
    total += w;
    if (w > best_weight) {
      best_weight = w;
      best = p;
    }
  }
  if (best == n || best_weight * 2.0 <= total) return n;
  const std::size_t terms = poly_starts_[best + 1] - poly_starts_[best];
  return terms >= min_terms ? best : n;
}

const char* EvalLayoutName(EvalLayout layout) {
  switch (layout) {
    case EvalLayout::kAoS:
      return "AoS";
    case EvalLayout::kSoA:
      return "SoA";
  }
  return "?";
}

EvalImage EvalImage::Build(const EvalProgram& program) {
  EvalImage img;
  const std::vector<std::uint32_t>& ps = program.poly_starts();
  const std::vector<std::uint32_t>& ts = program.term_starts();
  img.poly_starts_.assign(ps.begin(), ps.end());
  img.term_starts_.assign(ts.begin(), ts.end());
  img.poly_term_counts_.resize(ps.size() - 1);
  for (std::size_t p = 0; p + 1 < ps.size(); ++p) {
    img.poly_term_counts_[p] = ps[p + 1] - ps[p];
  }
  img.term_factor_counts_.resize(ts.size() - 1);
  for (std::size_t t = 0; t + 1 < ts.size(); ++t) {
    img.term_factor_counts_[t] = ts[t + 1] - ts[t];
  }
  img.coeffs_.assign(program.coeffs().begin(), program.coeffs().end());
  img.factors_.assign(program.factors().begin(), program.factors().end());
  img.min_valuation_size_ = program.MinValuationSize();
  return img;
}

EvalImage EvalImage::WithLayoutTag(EvalLayout tag) const {
  EvalImage copy = *this;
  copy.layout_ = tag;
  return copy;
}

void EvalImage::EvalRangeBlocked(const Valuation& base,
                                 const BlockOverrides& block,
                                 std::size_t poly_begin, std::size_t poly_end,
                                 double* out, std::size_t lane_stride,
                                 std::size_t prefetch_distance) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalImage::EvalRangeBlocked: valuation too small");
  COBRA_CHECK_MSG(poly_begin <= poly_end && poly_end <= NumPolys(),
                  "EvalImage::EvalRangeBlocked: bad poly range");
  const double* values = base.values().data();
  const LaneTableView table{
      block.vars_.data(), block.values_.data(),
      block.dense_index_.empty() ? nullptr : block.dense_index_.data(),
      block.vars_.size(), block.lo_, block.hi_};
  // Seed the running cursors for O(1) entry at an arbitrary tile boundary.
  const std::uint32_t t0 = poly_starts_[poly_begin];
  const std::uint32_t f0 = term_starts_[t0];
  if (block.width_ == 4) {
    RunBlockedRangeImage<4>(poly_term_counts_.data(),
                            term_factor_counts_.data(), coeffs_.data(),
                            factors_.data(), t0, f0, values, table, poly_begin,
                            poly_end, block.num_lanes_, out, lane_stride,
                            prefetch_distance);
  } else if (block.width_ == 8) {
    RunBlockedRangeImage<8>(poly_term_counts_.data(),
                            term_factor_counts_.data(), coeffs_.data(),
                            factors_.data(), t0, f0, values, table, poly_begin,
                            poly_end, block.num_lanes_, out, lane_stride,
                            prefetch_distance);
  } else {
    RunBlockedRangeImage<16>(poly_term_counts_.data(),
                             term_factor_counts_.data(), coeffs_.data(),
                             factors_.data(), t0, f0, values, table,
                             poly_begin, poly_end, block.num_lanes_, out,
                             lane_stride, prefetch_distance);
  }
}

void EvalImage::EvalTermRangeBlocked(const Valuation& base,
                                     const BlockOverrides& block,
                                     std::size_t term_begin,
                                     std::size_t term_end, double* partials,
                                     std::size_t lane_stride,
                                     std::size_t prefetch_distance) const {
  COBRA_CHECK_MSG(base.size() >= min_valuation_size_,
                  "EvalImage::EvalTermRangeBlocked: valuation too small");
  COBRA_CHECK_MSG(term_begin <= term_end && term_end <= NumTerms(),
                  "EvalImage::EvalTermRangeBlocked: bad term range");
  const double* values = base.values().data();
  const LaneTableView table{
      block.vars_.data(), block.values_.data(),
      block.dense_index_.empty() ? nullptr : block.dense_index_.data(),
      block.vars_.size(), block.lo_, block.hi_};
  const std::uint32_t f0 = term_starts_[term_begin];
  if (block.width_ == 4) {
    RunBlockedTermRangeImage<4>(term_factor_counts_.data(), coeffs_.data(),
                                factors_.data(), f0, values, table, term_begin,
                                term_end, block.num_lanes_, partials,
                                lane_stride, prefetch_distance);
  } else if (block.width_ == 8) {
    RunBlockedTermRangeImage<8>(term_factor_counts_.data(), coeffs_.data(),
                                factors_.data(), f0, values, table, term_begin,
                                term_end, block.num_lanes_, partials,
                                lane_stride, prefetch_distance);
  } else {
    RunBlockedTermRangeImage<16>(term_factor_counts_.data(), coeffs_.data(),
                                 factors_.data(), f0, values, table,
                                 term_begin, term_end, block.num_lanes_,
                                 partials, lane_stride, prefetch_distance);
  }
}

}  // namespace cobra::prov
