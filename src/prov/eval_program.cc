#include "prov/eval_program.h"

#include "util/status.h"
#include "util/str.h"

namespace cobra::prov {

EvalProgram::EvalProgram(const PolySet& set) {
  std::size_t total_terms = set.TotalMonomials();
  poly_starts_.reserve(set.size() + 1);
  term_starts_.reserve(total_terms + 1);
  coeffs_.reserve(total_terms);

  poly_starts_.push_back(0);
  term_starts_.push_back(0);
  for (const Polynomial& p : set.polys()) {
    for (const Term& t : p.terms()) {
      coeffs_.push_back(t.coeff);
      for (const VarPower& vp : t.monomial.powers()) {
        if (vp.var + 1 > min_valuation_size_) {
          min_valuation_size_ = vp.var + 1;
        }
        for (std::uint32_t e = 0; e < vp.exp; ++e) factors_.push_back(vp.var);
      }
      term_starts_.push_back(static_cast<std::uint32_t>(factors_.size()));
    }
    poly_starts_.push_back(static_cast<std::uint32_t>(coeffs_.size()));
  }
}

void EvalProgram::Eval(const Valuation& valuation,
                       std::vector<double>* out) const {
  COBRA_CHECK_MSG(valuation.size() >= min_valuation_size_,
                  "EvalProgram::Eval: valuation too small");
  EvalUnchecked(valuation, out);
}

util::Status EvalProgram::EvalChecked(const Valuation& valuation,
                                      std::vector<double>* out) const {
  if (valuation.size() < min_valuation_size_) {
    return util::Status::InvalidArgument(util::StrFormat(
        "EvalProgram::EvalChecked: valuation covers %zu variables but the "
        "program requires %zu (largest referenced VarId is %zu)",
        valuation.size(), min_valuation_size_, min_valuation_size_ - 1));
  }
  EvalUnchecked(valuation, out);
  return util::Status::OK();
}

void EvalProgram::EvalUnchecked(const Valuation& valuation,
                                std::vector<double>* out) const {
  const double* values = valuation.values().data();
  out->assign(NumPolys(), 0.0);
  for (std::size_t p = 0; p + 1 < poly_starts_.size(); ++p) {
    double sum = 0.0;
    for (std::uint32_t t = poly_starts_[p]; t < poly_starts_[p + 1]; ++t) {
      double prod = coeffs_[t];
      for (std::uint32_t f = term_starts_[t]; f < term_starts_[t + 1]; ++f) {
        prod *= values[factors_[f]];
      }
      sum += prod;
    }
    (*out)[p] = sum;
  }
}

}  // namespace cobra::prov
