#include "prov/variable.h"

#include <mutex>

namespace cobra::prov {

VarPool::VarPool(const VarPool& other) {
  std::shared_lock lock(other.mu_);
  names_ = other.names_;
  index_ = other.index_;
}

VarPool& VarPool::operator=(const VarPool& other) {
  if (this == &other) return *this;
  // Copy under the source lock first, then swap in under our own, so the
  // two locks are never held together (no ordering to get wrong).
  std::deque<std::string> names;
  std::unordered_map<std::string, VarId> index;
  {
    std::shared_lock lock(other.mu_);
    names = other.names_;
    index = other.index_;
  }
  std::unique_lock lock(mu_);
  names_ = std::move(names);
  index_ = std::move(index);
  return *this;
}

VarId VarPool::Intern(std::string_view name) {
  std::unique_lock lock(mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  VarId id = static_cast<VarId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

VarId VarPool::Find(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidVar : it->second;
}

const std::string& VarPool::Name(VarId id) const {
  std::shared_lock lock(mu_);
  COBRA_CHECK_MSG(id < names_.size(), "VarPool::Name: id out of range");
  // Safe to return by reference: deque elements are never relocated and the
  // pool is append-only.
  return names_[id];
}

std::size_t VarPool::size() const {
  std::shared_lock lock(mu_);
  return names_.size();
}

std::vector<std::string> VarPool::NamesUpTo(std::size_t count) const {
  std::shared_lock lock(mu_);
  if (count > names_.size()) count = names_.size();
  return std::vector<std::string>(
      names_.begin(),
      names_.begin() + static_cast<std::ptrdiff_t>(count));
}

}  // namespace cobra::prov
