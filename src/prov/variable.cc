#include "prov/variable.h"

namespace cobra::prov {

VarId VarPool::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  VarId id = static_cast<VarId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

VarId VarPool::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidVar : it->second;
}

const std::string& VarPool::Name(VarId id) const {
  COBRA_CHECK_MSG(id < names_.size(), "VarPool::Name: id out of range");
  return names_[id];
}

}  // namespace cobra::prov
