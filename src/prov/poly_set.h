#ifndef COBRA_PROV_POLY_SET_H_
#define COBRA_PROV_POLY_SET_H_

#include <string>
#include <vector>

#include "prov/polynomial.h"
#include "prov/variable.h"

namespace cobra::prov {

/// A labelled collection of provenance polynomials — the "multiset of
/// polynomials" the paper takes as input.
///
/// Each entry corresponds to one symbolic query-result value (e.g. one
/// GROUP BY key such as a zip code) and carries a human-readable label.
/// Monomials never merge *across* entries: two group results are distinct
/// output values even when their polynomials coincide.
class PolySet {
 public:
  PolySet() = default;

  /// Appends `poly` under `label`; returns its index.
  std::size_t Add(std::string label, Polynomial poly);

  /// Number of polynomials.
  std::size_t size() const { return polys_.size(); }

  bool empty() const { return polys_.empty(); }

  /// The polynomial at `index`.
  const Polynomial& poly(std::size_t index) const { return polys_[index]; }

  /// The label at `index`.
  const std::string& label(std::size_t index) const { return labels_[index]; }

  /// All polynomials in insertion order.
  const std::vector<Polynomial>& polys() const { return polys_; }

  /// All labels in insertion order.
  const std::vector<std::string>& labels() const { return labels_; }

  /// Index of the first entry labelled `label`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t FindLabel(std::string_view label) const;

  /// Total number of monomials — the paper's provenance-size measure.
  std::size_t TotalMonomials() const;

  /// Number of distinct variables across all polynomials — the paper's
  /// expressiveness measure.
  std::size_t NumDistinctVariables() const;

  /// Distinct variables across all polynomials, sorted.
  std::vector<VarId> AllVariables() const;

  /// Applies `mapping` to every polynomial (see Polynomial::SubstituteVars).
  PolySet SubstituteVars(const std::vector<VarId>& mapping) const;

  /// Renders every entry as "label = polynomial", one per line.
  std::string ToString(const VarPool& pool) const;

 private:
  std::vector<std::string> labels_;
  std::vector<Polynomial> polys_;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_POLY_SET_H_
