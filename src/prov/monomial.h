#ifndef COBRA_PROV_MONOMIAL_H_
#define COBRA_PROV_MONOMIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prov/variable.h"
#include "util/hash.h"

namespace cobra::prov {

/// One variable with its exponent inside a monomial.
struct VarPower {
  VarId var;
  std::uint32_t exp;

  bool operator==(const VarPower& other) const = default;
};

/// A product of variables with positive integer exponents (no coefficient).
///
/// Internally a vector of `(VarId, exponent)` pairs kept sorted by `VarId`
/// with strictly positive exponents, so equal monomials have equal
/// representations; equality, ordering and hashing are therefore structural.
/// The empty monomial represents the constant term `1`.
class Monomial {
 public:
  /// The constant monomial (empty product).
  Monomial() = default;

  /// Builds a monomial from possibly unsorted, possibly repeated factors;
  /// repeated variables have their exponents added, zero exponents dropped.
  static Monomial FromFactors(std::vector<VarPower> factors);

  /// Builds the monomial `var^1`.
  static Monomial Of(VarId var) { return FromFactors({{var, 1}}); }

  /// Builds the monomial `a * b`.
  static Monomial Of(VarId a, VarId b) {
    return FromFactors({{a, 1}, {b, 1}});
  }

  /// Product of two monomials (exponents add).
  Monomial Times(const Monomial& other) const;

  /// Exponent of `var` in this monomial (0 when absent).
  std::uint32_t ExponentOf(VarId var) const;

  /// Sum of all exponents (total degree); 0 for the constant monomial.
  std::uint32_t Degree() const;

  /// Number of distinct variables.
  std::size_t NumVars() const { return powers_.size(); }

  /// True iff this is the constant monomial `1`.
  bool IsConstant() const { return powers_.empty(); }

  /// Sorted `(var, exponent)` factors.
  const std::vector<VarPower>& powers() const { return powers_; }

  /// Returns a copy with `var` removed entirely (used to take residues).
  Monomial Without(VarId var) const;

  /// Returns a copy where every variable is replaced via `mapping`
  /// (`mapping[v]` must be a valid VarId for every contained v); exponents
  /// of variables that collide after mapping are added.
  Monomial MapVars(const std::vector<VarId>& mapping) const;

  /// Evaluates the monomial under dense `values` indexed by VarId.
  double Eval(const std::vector<double>& values) const;

  /// Structural hash.
  std::uint64_t Hash() const;

  /// Renders e.g. "p1 * m1" or "x^2 * y"; "1" for the constant monomial.
  std::string ToString(const VarPool& pool) const;

  bool operator==(const Monomial& other) const = default;

  /// Lexicographic order on the factor vectors; any total order works for
  /// canonicalization, and this one is deterministic across runs.
  bool operator<(const Monomial& other) const;

 private:
  std::vector<VarPower> powers_;
};

/// Hash functor for unordered containers keyed by Monomial.
struct MonomialHash {
  std::size_t operator()(const Monomial& m) const {
    return static_cast<std::size_t>(m.Hash());
  }
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_MONOMIAL_H_
