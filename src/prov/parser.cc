#include "prov/parser.h"

#include <cctype>

#include "util/str.h"

namespace cobra::prov {

namespace {

using util::Result;
using util::Status;

/// Hand-rolled recursive-descent parser over a string_view cursor.
class PolyParser {
 public:
  PolyParser(std::string_view text, VarPool* pool) : text_(text), pool_(pool) {}

  Result<Polynomial> Parse() {
    Result<Polynomial> p = ParseSum();
    if (!p.ok()) return p;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("unexpected character '" +
                                std::string(1, text_[pos_]) +
                                "' at offset " + std::to_string(pos_));
    }
    return p;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Polynomial> ParseSum() {
    bool negate = false;
    if (Consume('-')) negate = true;
    Result<std::vector<Term>> first = ParseTerm();
    if (!first.ok()) return first.status();
    std::vector<Term> terms = std::move(*first);
    if (negate) {
      for (Term& t : terms) t.coeff = -t.coeff;
    }
    for (;;) {
      double sign;
      if (Consume('+')) {
        sign = 1.0;
      } else if (Consume('-')) {
        sign = -1.0;
      } else {
        break;
      }
      Result<std::vector<Term>> next = ParseTerm();
      if (!next.ok()) return next.status();
      for (Term& t : *next) {
        t.coeff *= sign;
        terms.push_back(std::move(t));
      }
    }
    return Polynomial::FromTerms(std::move(terms));
  }

  // A term is a product of factors; returns it as a single Term.
  Result<std::vector<Term>> ParseTerm() {
    double coeff = 1.0;
    std::vector<VarPower> factors;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size())
        return Status::ParseError("unexpected end of polynomial");
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        Result<double> num = ParseNumber();
        if (!num.ok()) return num.status();
        coeff *= *num;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string name = ParseIdent();
        std::uint32_t exp = 1;
        if (Consume('^')) {
          Result<double> e = ParseNumber();
          if (!e.ok()) return e.status();
          if (*e < 1 || *e != static_cast<std::uint32_t>(*e)) {
            return Status::ParseError("exponent must be a positive integer");
          }
          exp = static_cast<std::uint32_t>(*e);
        }
        factors.push_back({pool_->Intern(name), exp});
      } else {
        return Status::ParseError("expected number or variable at offset " +
                                  std::to_string(pos_));
      }
      if (!Consume('*')) break;
    }
    std::vector<Term> out;
    out.push_back({Monomial::FromFactors(std::move(factors)), coeff});
    return out;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected a number");
    return util::ParseDouble(text_.substr(start, pos_ - start));
  }

  std::string ParseIdent() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  VarPool* pool_;
};

}  // namespace

util::Result<Polynomial> ParsePolynomial(std::string_view text, VarPool* pool) {
  std::string_view trimmed = util::Trim(text);
  if (trimmed == "0") return Polynomial();
  return PolyParser(trimmed, pool).Parse();
}

util::Result<PolySet> ParsePolySet(std::string_view text, VarPool* pool) {
  PolySet out;
  std::size_t line_no = 0;
  for (const std::string& raw_line : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": expected 'label = polynomial'");
    }
    std::string label(util::Trim(line.substr(0, eq)));
    if (label.empty()) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": empty label");
    }
    util::Result<Polynomial> poly = ParsePolynomial(line.substr(eq + 1), pool);
    if (!poly.ok()) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": " + poly.status().message());
    }
    out.Add(std::move(label), std::move(*poly));
  }
  return out;
}

}  // namespace cobra::prov
