#ifndef COBRA_PROV_VALUATION_H_
#define COBRA_PROV_VALUATION_H_

#include <string>
#include <vector>

#include "prov/variable.h"
#include "util/status.h"

namespace cobra::prov {

/// An assignment of numeric values to provenance variables.
///
/// In the hypothetical-reasoning workflow of the paper, variables are
/// *multiplicative change factors*: the neutral value is `1.0` ("no change"),
/// a scenario such as "decrease March prices by 20%" sets `m3 = 0.8`.
/// `Valuation` therefore defaults every variable to 1.0 and stores values in
/// a dense array indexed by `VarId` so evaluation is a flat array lookup.
class Valuation {
 public:
  /// Creates the neutral valuation (everything = 1.0) sized for `pool`.
  explicit Valuation(const VarPool& pool)
      : values_(pool.size(), 1.0) {}

  /// Creates a neutral valuation for `num_vars` variables.
  explicit Valuation(std::size_t num_vars) : values_(num_vars, 1.0) {}

  /// Sets `var` to `value`.
  void Set(VarId var, double value) {
    COBRA_CHECK_MSG(var < values_.size(), "Valuation::Set: var out of range");
    values_[var] = value;
  }

  /// Sets the variable named `name` (must exist in `pool`).
  util::Status SetByName(const VarPool& pool, std::string_view name,
                         double value);

  /// Returns the value of `var`.
  double Get(VarId var) const {
    COBRA_CHECK_MSG(var < values_.size(), "Valuation::Get: var out of range");
    return values_[var];
  }

  /// Grows the valuation to cover `num_vars` variables (new ones neutral).
  void Resize(std::size_t num_vars) {
    if (num_vars > values_.size()) values_.resize(num_vars, 1.0);
  }

  /// Number of covered variables.
  std::size_t size() const { return values_.size(); }

  /// Dense value array indexed by VarId.
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_VALUATION_H_
