#ifndef COBRA_PROV_EVAL_PROGRAM_H_
#define COBRA_PROV_EVAL_PROGRAM_H_

#include <cstdint>
#include <vector>

#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "util/aligned.h"
#include "util/status.h"

namespace cobra::prov {

/// One sparse valuation override: during evaluation, `var` takes `value`
/// instead of its entry in the base valuation. A scenario's override list is
/// small (a handful of meta-variables), sorted by `var`, and free of
/// duplicates — the batched serving path compiles each scenario into one of
/// these lists instead of copying a full-pool `Valuation` per scenario.
struct VarOverride {
  VarId var;
  double value;
};

/// Non-owning view of one scenario's override list (sorted by `var`,
/// duplicate-free) — one lane of a scenario block.
struct OverrideSpan {
  const VarOverride* data = nullptr;
  std::size_t size = 0;
};

/// The per-block patch table of the scenario-blocked kernel: the union of up
/// to `EvalProgram::kMaxLanes` scenarios' override variables, with one
/// lane-width row of values per variable (lane l reads its own override
/// value, or the shared base value when lane l does not override that
/// variable). Built once per scenario block by `MakeBlockOverrides()` and
/// reused across every (poly-range | term-range) tile the block is scheduled
/// on. Factor lookups are O(log k) in the union size k: a [lo, hi] guard
/// band rejects most factors with two compares, then either a dense
/// row-index array (when the union's id span is small — one load) or a
/// binary search over the factor-sorted var array resolves the row, so wide
/// scenarios (large unions) no longer pay a linear scan per factor.
class BlockOverrides {
 public:
  /// Number of scenario lanes the block carries (1..kMaxLanes).
  std::size_t num_lanes() const { return num_lanes_; }

  /// Padded kernel width (4, 8 or 16): the compile-time lane count the
  /// blocked kernel runs at. Padding lanes replicate the base value, so they
  /// execute the same instruction stream without affecting real lanes.
  std::size_t width() const { return width_; }

  /// Number of distinct variables in the block's override union.
  std::size_t union_size() const { return vars_.size(); }

  /// Whether lookups resolve through the dense per-span row index (true when
  /// the union's id span is at most kDenseIndexMaxSpan) instead of binary
  /// search. Exposed for tests; both paths return identical rows.
  bool uses_dense_index() const { return !dense_index_.empty(); }

  /// The block's override-union variables, sorted ascending and
  /// duplicate-free — the invariant the per-factor binary search relies on.
  /// Read-only; exposed for the static verifier (verify/verify.h).
  const std::vector<VarId>& vars() const { return vars_; }

  /// The value rows: union_size() rows of width() lane values, row-major
  /// (row r holds variable vars()[r]'s per-lane values). Read-only; exposed
  /// for the static verifier, which re-derives every row from the base
  /// valuation and the lanes' override lists.
  const std::vector<double>& values() const { return values_; }

  /// Largest (hi - lo + 1) id span for which the dense row index is built;
  /// wider unions fall back to binary search.
  static constexpr std::size_t kDenseIndexMaxSpan = 4096;

 private:
  friend class EvalProgram;
  friend class EvalImage;
  friend BlockOverrides MakeBlockOverridesSkeleton(const OverrideSpan* lanes,
                                                   std::size_t num_lanes);
  friend BlockOverrides RebindBlockOverrides(const BlockOverrides& block,
                                             const Valuation& base,
                                             const OverrideSpan* lanes,
                                             std::size_t num_lanes);

  std::vector<VarId> vars_;     ///< Sorted union of overridden variables.
  std::vector<double> values_;  ///< vars_.size() rows of `width_` lane values.
  /// When the union spans at most kDenseIndexMaxSpan ids, dense_index_[v -
  /// lo_] is the row index of variable v (or -1 when v is not overridden) —
  /// the O(1) fast path. Empty for wider unions (binary search instead).
  std::vector<std::int32_t> dense_index_;
  std::size_t num_lanes_ = 0;
  std::size_t width_ = 0;
  // Inclusive guard band so factors outside [lo_, hi_] skip the row lookup;
  // an empty table uses lo_ > hi_ so the guard never matches.
  VarId lo_ = kInvalidVar;
  VarId hi_ = 0;
};

/// Builds the base-independent skeleton of a block patch table: the sorted
/// override union, guard band and dense row index for `num_lanes`
/// (1..EvalProgram::kMaxLanes) scenario override lists, with every value
/// row zero-initialized. The skeleton is everything about the table that
/// does not depend on the base valuation — a plan core caches it and binds
/// it to each base with RebindBlockOverrides(), so sweeping many bases pays
/// the sort/unique/index construction once. The kernels must never read a
/// skeleton directly.
BlockOverrides MakeBlockOverridesSkeleton(const OverrideSpan* lanes,
                                          std::size_t num_lanes);

/// Returns a copy of `block` with every value row re-derived from `base`:
/// lane l reads its own override value (the same `lanes` lists the block
/// was built from), every other slot — non-overriding lanes and padding —
/// reads `base`. The union structure (vars, dense index, guard band, lane
/// count, width) is reused unchanged, so rebinding is O(union × width) with
/// no sorting and no index rebuild. Every union variable must be covered by
/// `base`.
BlockOverrides RebindBlockOverrides(const BlockOverrides& block,
                                    const Valuation& base,
                                    const OverrideSpan* lanes,
                                    std::size_t num_lanes);

/// Builds the block patch table for `num_lanes` (1..EvalProgram::kMaxLanes)
/// scenario override lists over the shared `base` valuation — equivalent to
/// rebinding a fresh skeleton. Every override variable must be covered by
/// `base`.
BlockOverrides MakeBlockOverrides(const Valuation& base,
                                  const OverrideSpan* lanes,
                                  std::size_t num_lanes);

/// A compiled, cache-friendly form of a `PolySet` for repeated valuation.
///
/// The assignment phase of the paper applies many valuations to the same
/// (possibly compressed) provenance. Walking the `Polynomial` object graph
/// for each assignment wastes cache; `EvalProgram` flattens the whole set
/// into three contiguous arrays (term boundaries, coefficients, variable
/// factors with exponents expanded) so one valuation is a single linear
/// scan. The speedups reported in EXPERIMENTS.md are measured with this
/// evaluator for both full and compressed provenance, which makes the
/// full-vs-compressed comparison an apples-to-apples size comparison.
///
/// An `EvalProgram` is immutable after construction and holds no mutable
/// state during evaluation, so one instance may be shared by any number of
/// threads concurrently.
class EvalProgram {
 public:
  /// Maximum scenario lanes per block of the blocked kernel.
  static constexpr std::size_t kMaxLanes = 16;

  /// Compiles `set`. The program remains valid as long as VarIds are stable.
  explicit EvalProgram(const PolySet& set);

  /// Reconstructs a program directly from its compiled arrays — the
  /// deserialization path of the snapshot format (core/io.h). The arrays
  /// must satisfy the compiled invariants (`poly_starts` starts at 0, is
  /// non-decreasing and ends at `coeffs.size()`; `term_starts` has
  /// `coeffs.size() + 1` entries, starts at 0, is non-decreasing and ends at
  /// `factors.size()`; no factor is `kInvalidVar`) or `InvalidArgument` is
  /// returned. A program rebuilt from another program's arrays evaluates
  /// bit-identically to the original: evaluation reads nothing but these
  /// arrays, in order.
  static util::Result<EvalProgram> FromParts(
      std::vector<std::uint32_t> poly_starts,
      std::vector<std::uint32_t> term_starts, std::vector<double> coeffs,
      std::vector<VarId> factors);

  /// Evaluates all polynomials under `valuation`; `out` is resized to the
  /// number of polynomials. Aborts (COBRA_CHECK) when the valuation does not
  /// cover `MinValuationSize()` variables — the hot-path contract for
  /// callers that already guarantee sizing.
  void Eval(const Valuation& valuation, std::vector<double>* out) const;

  /// Like Eval(), but rejects an undersized valuation with
  /// `InvalidArgument` instead of aborting. Use this for externally-supplied
  /// valuations so malformed inputs cannot kill the process. (The batched
  /// scenario engine validates sizes once up front and then stays on the
  /// unchecked hot path.)
  util::Status EvalChecked(const Valuation& valuation,
                           std::vector<double>* out) const;

  /// Evaluates all polynomials under `base` with `overrides` patched on top:
  /// each factor whose id appears in the override list takes the override
  /// value, everything else reads `base`. The override list must be
  /// duplicate-free (it is scanned linearly; with duplicates the last match
  /// wins). `out` is resized to NumPolys(). Aborts on an undersized base —
  /// same contract as Eval() — and validates before touching `*out`, so a
  /// failed call never leaves the output half-written.
  void EvalWithOverrides(const Valuation& base, const VarOverride* overrides,
                         std::size_t num_overrides,
                         std::vector<double>* out) const;

  /// Range form of EvalWithOverrides() for intra-program partitioning:
  /// evaluates polynomials [poly_begin, poly_end) and writes `out[p]` for
  /// exactly those indices (`out` must point at an array of NumPolys()
  /// doubles). Disjoint ranges touch disjoint output slots and share no
  /// mutable state, so concurrent calls on one program are race-free and the
  /// merged result is deterministic regardless of the range schedule.
  void EvalRangeWithOverrides(const Valuation& base,
                              const VarOverride* overrides,
                              std::size_t num_overrides,
                              std::size_t poly_begin, std::size_t poly_end,
                              double* out) const;

  /// Scenario-blocked kernel: evaluates polynomials [poly_begin, poly_end)
  /// for all of `block`'s scenario lanes in ONE scan of the compiled arrays.
  /// Per factor, the shared base value is loaded once and broadcast across
  /// lanes; variables in the block's patch table instead read their per-lane
  /// row. Lane l writes `out[l * lane_stride + p]` for each p in the range.
  /// Each lane performs exactly the scalar path's operation sequence
  /// (prod = coeff; prod *= value per factor; sum += prod), so per-lane
  /// results are bit-identical to EvalRangeWithOverrides() with that lane's
  /// override list — the lanes only amortize the program scan and vectorize
  /// the multiplies. Aborts on an undersized base or bad range.
  void EvalRangeBlocked(const Valuation& base, const BlockOverrides& block,
                        std::size_t poly_begin, std::size_t poly_end,
                        double* out, std::size_t lane_stride) const;

  /// Partial-sum form of EvalRangeWithOverrides() for term-range splitting:
  /// returns the sum of term products over the absolute term range
  /// [term_begin, term_end), which must lie inside one polynomial (use
  /// PartitionTerms() for bounds). Summation starts at 0.0 and adds terms in
  /// compiled order, so evaluating a polynomial's full term range is
  /// bit-identical to its EvalRangeWithOverrides() result; a split
  /// polynomial's value is recovered by adding the slices' partials in slice
  /// order (deterministic, but rounding may differ from the unsplit scan in
  /// the last ulp — see BatchOptions::split_min_terms).
  double EvalTermRangeWithOverrides(const Valuation& base,
                                    const VarOverride* overrides,
                                    std::size_t num_overrides,
                                    std::size_t term_begin,
                                    std::size_t term_end) const;

  /// Blocked form of EvalTermRangeWithOverrides(): lane l's partial sum is
  /// written to `partials[l * lane_stride]`. Same bit-identity contract as
  /// EvalRangeBlocked() against the scalar term-range scan.
  void EvalTermRangeBlocked(const Valuation& base, const BlockOverrides& block,
                            std::size_t term_begin, std::size_t term_end,
                            double* partials, std::size_t lane_stride) const;

  /// Returns a copy of this program whose factor ids are translated through
  /// `remap` (ids at or beyond `remap.size()` stay unchanged). The serving
  /// layer uses this to bake the leaf→meta-variable indirection into the
  /// full-provenance program: evaluating the remapped program under a
  /// compressed-side valuation is bit-identical to evaluating the original
  /// under the expanded valuation, without materializing the expansion.
  EvalProgram RemapFactors(const std::vector<VarId>& remap) const;

  /// Splits [0, NumPolys()) into at most `parts` contiguous ranges of
  /// roughly equal evaluation weight (terms + factors). Returns the range
  /// boundaries: a sorted vector starting at 0 and ending at NumPolys(),
  /// with no empty ranges. Used to partition one large program across
  /// threads when there are fewer scenarios than cores.
  std::vector<std::uint32_t> PartitionPolys(std::size_t parts) const;

  /// Splits polynomial `poly`'s term range into at most `parts` contiguous
  /// sub-ranges of roughly equal factor weight. Returns absolute term
  /// bounds into the compiled term arrays: sorted, starting at the poly's
  /// first term and ending one past its last, with no empty ranges. Used by
  /// the term-splitting scheduler fallback when one dominant polynomial
  /// would otherwise pin a whole scenario block to a single thread.
  std::vector<std::uint32_t> PartitionTerms(std::size_t poly,
                                            std::size_t parts) const;

  /// Returns the index of the polynomial whose evaluation weight strictly
  /// exceeds half the program's total weight AND that has at least
  /// `min_terms` terms, or NumPolys() when no polynomial qualifies. The
  /// batch scheduler splits such a polynomial's term range across threads
  /// instead of leaving its whole-poly range on one.
  std::size_t DominantPoly(std::size_t min_terms) const;

  /// Number of compiled polynomials.
  std::size_t NumPolys() const { return poly_starts_.size() - 1; }

  /// Total number of compiled terms (== total monomials of the source set).
  std::size_t NumTerms() const { return coeffs_.size(); }

  /// Largest VarId referenced plus one; valuations must cover this many vars.
  std::size_t MinValuationSize() const { return min_valuation_size_; }

  /// @name Compiled-array export (snapshot serialization).
  /// The four arrays are the program's complete state: feeding them back
  /// through FromParts() yields a program that evaluates bit-identically.
  /// @{
  const std::vector<std::uint32_t>& poly_starts() const {
    return poly_starts_;
  }
  const std::vector<std::uint32_t>& term_starts() const {
    return term_starts_;
  }
  const std::vector<double>& coeffs() const { return coeffs_; }
  const std::vector<VarId>& factors() const { return factors_; }
  /// @}

 private:
  EvalProgram() = default;  // for RemapFactors()

  void EvalUnchecked(const Valuation& valuation, std::vector<double>* out) const;

  // poly_starts_[p] .. poly_starts_[p+1] indexes into coeffs_/term_starts_.
  std::vector<std::uint32_t> poly_starts_;
  // term_starts_[t] .. term_starts_[t+1] indexes into factors_.
  std::vector<std::uint32_t> term_starts_;
  std::vector<double> coeffs_;
  // Variable ids, with exponents expanded (x^3 appears three times).
  std::vector<VarId> factors_;
  std::size_t min_valuation_size_ = 0;
};

/// Memory layout a plan executes a compiled program in. `kAoS` is the
/// compile-time layout of `EvalProgram` itself (the four flattened arrays,
/// allocator-aligned, boundary arrays indexed per term). `kSoA` is the
/// plan-time `EvalImage` re-layout: cache-line-aligned copies of the
/// factor/coeff arrays plus fused sequential count streams, so the blocked
/// kernels walk running cursors instead of re-reading boundary indices.
/// Which layout a plan uses is chosen by `core::PlanCore` the same way
/// `kAuto` picks engine and lane count; the tag travels with the image so
/// the static verifier can detect a plan/image mismatch.
enum class EvalLayout : std::uint8_t {
  kAoS = 0,  ///< EvalProgram's own arrays (no image built).
  kSoA = 1,  ///< Plan-time aligned re-layout (EvalImage).
};

/// Human-readable name of a layout ("AoS" / "SoA"); "?" for corrupt values.
const char* EvalLayoutName(EvalLayout layout);

/// Plan-time structure-of-arrays execution image of an `EvalProgram`.
///
/// The image re-arranges the program for the scenario-blocked kernels:
/// coefficients and factors are copied into 64-byte-aligned arrays, and the
/// per-poly / per-term boundary arrays are augmented with *count* streams
/// (terms per polynomial, factors per term) so the hot loops advance running
/// cursors through four sequential streams instead of indexing boundary
/// arrays per term. The original boundary arrays are kept for random tile
/// entry (a tile starting at poly p seeds its cursors in O(1)). Building an
/// image is a single O(program) pass; `PlanCore` builds it once per plan and
/// caches it, so grid/stream replays pay the re-layout exactly once.
///
/// Bit-identity contract: the image kernels execute the exact operation
/// sequence of `EvalProgram::EvalRangeBlocked()` / `EvalTermRangeBlocked()`
/// (prod = coeff; prod *= value per factor, in compiled order; sum += prod),
/// so per-lane results are bit-identical to the scalar engines — only the
/// memory traffic changes. Optional software prefetch (`prefetch_distance`
/// cache lines ahead of the coeff/factor cursors) is a pure hint and cannot
/// affect results.
///
/// Immutable after Build(); holds no mutable state during evaluation, so one
/// image may be shared by any number of threads concurrently.
class EvalImage {
 public:
  /// Builds the SoA image of `program`. The image holds copies of the
  /// compiled arrays, so it stays valid independently of `program`'s
  /// lifetime (VarIds must stay stable, as for the program itself).
  static EvalImage Build(const EvalProgram& program);

  /// Returns a copy of this image with the layout tag replaced — a
  /// fault-injection hook for verifier tests (a tag that disagrees with the
  /// owning plan must be reported by VerifyPlan); never used on the normal
  /// build path, which always tags `kSoA`.
  EvalImage WithLayoutTag(EvalLayout tag) const;

  /// The image's layout tag (`kSoA` for every image built by Build()).
  EvalLayout layout() const { return layout_; }

  /// Image form of EvalProgram::EvalRangeBlocked(): same arguments, same
  /// bit-identity contract, plus `prefetch_distance` — how many 64-byte
  /// cache lines ahead of the coeff/factor cursors to issue software
  /// prefetches (0 disables prefetching).
  void EvalRangeBlocked(const Valuation& base, const BlockOverrides& block,
                        std::size_t poly_begin, std::size_t poly_end,
                        double* out, std::size_t lane_stride,
                        std::size_t prefetch_distance) const;

  /// Image form of EvalProgram::EvalTermRangeBlocked(): same arguments and
  /// bit-identity contract; `prefetch_distance` as in EvalRangeBlocked().
  void EvalTermRangeBlocked(const Valuation& base, const BlockOverrides& block,
                            std::size_t term_begin, std::size_t term_end,
                            double* partials, std::size_t lane_stride,
                            std::size_t prefetch_distance) const;

  /// Number of polynomials / terms and the valuation-size contract — all
  /// equal to the source program's (the verifier cross-checks them).
  std::size_t NumPolys() const { return poly_starts_.size() - 1; }
  std::size_t NumTerms() const { return coeffs_.size(); }
  std::size_t MinValuationSize() const { return min_valuation_size_; }

  /// @name Re-layout export (static verifier).
  /// The verifier re-derives every array from the source program: the
  /// boundary/coeff/factor arrays must match the program's bitwise, and the
  /// count streams must equal the boundary arrays' first differences.
  /// @{
  const util::AlignedVector<std::uint32_t>& poly_starts() const {
    return poly_starts_;
  }
  const util::AlignedVector<std::uint32_t>& term_starts() const {
    return term_starts_;
  }
  const util::AlignedVector<std::uint32_t>& poly_term_counts() const {
    return poly_term_counts_;
  }
  const util::AlignedVector<std::uint32_t>& term_factor_counts() const {
    return term_factor_counts_;
  }
  const util::AlignedVector<double>& coeffs() const { return coeffs_; }
  const util::AlignedVector<VarId>& factors() const { return factors_; }
  /// @}

 private:
  EvalImage() = default;

  EvalLayout layout_ = EvalLayout::kSoA;
  // Boundary copies for O(1) random tile entry (cursor seeding).
  util::AlignedVector<std::uint32_t> poly_starts_;
  util::AlignedVector<std::uint32_t> term_starts_;
  // Fused sequential streams: poly_term_counts_[p] terms in polynomial p,
  // term_factor_counts_[t] factors in term t — the first differences of the
  // boundary arrays, consumed strictly in order by the kernels.
  util::AlignedVector<std::uint32_t> poly_term_counts_;
  util::AlignedVector<std::uint32_t> term_factor_counts_;
  // Cache-line-aligned copies of the program's coeff/factor arrays.
  util::AlignedVector<double> coeffs_;
  util::AlignedVector<VarId> factors_;
  std::size_t min_valuation_size_ = 0;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_EVAL_PROGRAM_H_
