#ifndef COBRA_PROV_EVAL_PROGRAM_H_
#define COBRA_PROV_EVAL_PROGRAM_H_

#include <cstdint>
#include <vector>

#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "util/status.h"

namespace cobra::prov {

/// A compiled, cache-friendly form of a `PolySet` for repeated valuation.
///
/// The assignment phase of the paper applies many valuations to the same
/// (possibly compressed) provenance. Walking the `Polynomial` object graph
/// for each assignment wastes cache; `EvalProgram` flattens the whole set
/// into three contiguous arrays (term boundaries, coefficients, variable
/// factors with exponents expanded) so one valuation is a single linear
/// scan. The speedups reported in EXPERIMENTS.md are measured with this
/// evaluator for both full and compressed provenance, which makes the
/// full-vs-compressed comparison an apples-to-apples size comparison.
class EvalProgram {
 public:
  /// Compiles `set`. The program remains valid as long as VarIds are stable.
  explicit EvalProgram(const PolySet& set);

  /// Evaluates all polynomials under `valuation`; `out` is resized to the
  /// number of polynomials. Aborts (COBRA_CHECK) when the valuation does not
  /// cover `MinValuationSize()` variables — the hot-path contract for
  /// callers that already guarantee sizing.
  void Eval(const Valuation& valuation, std::vector<double>* out) const;

  /// Like Eval(), but rejects an undersized valuation with
  /// `InvalidArgument` instead of aborting. Use this for externally-supplied
  /// valuations so malformed inputs cannot kill the process. (The batched
  /// scenario engine validates sizes once up front and then stays on the
  /// unchecked hot path.)
  util::Status EvalChecked(const Valuation& valuation,
                           std::vector<double>* out) const;

  /// Number of compiled polynomials.
  std::size_t NumPolys() const { return poly_starts_.size() - 1; }

  /// Total number of compiled terms (== total monomials of the source set).
  std::size_t NumTerms() const { return coeffs_.size(); }

  /// Largest VarId referenced plus one; valuations must cover this many vars.
  std::size_t MinValuationSize() const { return min_valuation_size_; }

 private:
  void EvalUnchecked(const Valuation& valuation, std::vector<double>* out) const;

  // poly_starts_[p] .. poly_starts_[p+1] indexes into coeffs_/term_starts_.
  std::vector<std::uint32_t> poly_starts_;
  // term_starts_[t] .. term_starts_[t+1] indexes into factors_.
  std::vector<std::uint32_t> term_starts_;
  std::vector<double> coeffs_;
  // Variable ids, with exponents expanded (x^3 appears three times).
  std::vector<VarId> factors_;
  std::size_t min_valuation_size_ = 0;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_EVAL_PROGRAM_H_
