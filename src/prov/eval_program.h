#ifndef COBRA_PROV_EVAL_PROGRAM_H_
#define COBRA_PROV_EVAL_PROGRAM_H_

#include <cstdint>
#include <vector>

#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "util/status.h"

namespace cobra::prov {

/// One sparse valuation override: during evaluation, `var` takes `value`
/// instead of its entry in the base valuation. A scenario's override list is
/// small (a handful of meta-variables), sorted by `var`, and free of
/// duplicates — the batched serving path compiles each scenario into one of
/// these lists instead of copying a full-pool `Valuation` per scenario.
struct VarOverride {
  VarId var;
  double value;
};

/// A compiled, cache-friendly form of a `PolySet` for repeated valuation.
///
/// The assignment phase of the paper applies many valuations to the same
/// (possibly compressed) provenance. Walking the `Polynomial` object graph
/// for each assignment wastes cache; `EvalProgram` flattens the whole set
/// into three contiguous arrays (term boundaries, coefficients, variable
/// factors with exponents expanded) so one valuation is a single linear
/// scan. The speedups reported in EXPERIMENTS.md are measured with this
/// evaluator for both full and compressed provenance, which makes the
/// full-vs-compressed comparison an apples-to-apples size comparison.
///
/// An `EvalProgram` is immutable after construction and holds no mutable
/// state during evaluation, so one instance may be shared by any number of
/// threads concurrently.
class EvalProgram {
 public:
  /// Compiles `set`. The program remains valid as long as VarIds are stable.
  explicit EvalProgram(const PolySet& set);

  /// Evaluates all polynomials under `valuation`; `out` is resized to the
  /// number of polynomials. Aborts (COBRA_CHECK) when the valuation does not
  /// cover `MinValuationSize()` variables — the hot-path contract for
  /// callers that already guarantee sizing.
  void Eval(const Valuation& valuation, std::vector<double>* out) const;

  /// Like Eval(), but rejects an undersized valuation with
  /// `InvalidArgument` instead of aborting. Use this for externally-supplied
  /// valuations so malformed inputs cannot kill the process. (The batched
  /// scenario engine validates sizes once up front and then stays on the
  /// unchecked hot path.)
  util::Status EvalChecked(const Valuation& valuation,
                           std::vector<double>* out) const;

  /// Evaluates all polynomials under `base` with `overrides` patched on top:
  /// each factor whose id appears in the override list takes the override
  /// value, everything else reads `base`. The override list must be
  /// duplicate-free (it is scanned linearly; with duplicates the last match
  /// wins). `out` is resized to NumPolys(). Aborts on an undersized base —
  /// same contract as Eval().
  void EvalWithOverrides(const Valuation& base, const VarOverride* overrides,
                         std::size_t num_overrides,
                         std::vector<double>* out) const;

  /// Range form of EvalWithOverrides() for intra-program partitioning:
  /// evaluates polynomials [poly_begin, poly_end) and writes `out[p]` for
  /// exactly those indices (`out` must point at an array of NumPolys()
  /// doubles). Disjoint ranges touch disjoint output slots and share no
  /// mutable state, so concurrent calls on one program are race-free and the
  /// merged result is deterministic regardless of the range schedule.
  void EvalRangeWithOverrides(const Valuation& base,
                              const VarOverride* overrides,
                              std::size_t num_overrides,
                              std::size_t poly_begin, std::size_t poly_end,
                              double* out) const;

  /// Returns a copy of this program whose factor ids are translated through
  /// `remap` (ids at or beyond `remap.size()` stay unchanged). The serving
  /// layer uses this to bake the leaf→meta-variable indirection into the
  /// full-provenance program: evaluating the remapped program under a
  /// compressed-side valuation is bit-identical to evaluating the original
  /// under the expanded valuation, without materializing the expansion.
  EvalProgram RemapFactors(const std::vector<VarId>& remap) const;

  /// Splits [0, NumPolys()) into at most `parts` contiguous ranges of
  /// roughly equal evaluation weight (terms + factors). Returns the range
  /// boundaries: a sorted vector starting at 0 and ending at NumPolys(),
  /// with no empty ranges. Used to partition one large program across
  /// threads when there are fewer scenarios than cores.
  std::vector<std::uint32_t> PartitionPolys(std::size_t parts) const;

  /// Number of compiled polynomials.
  std::size_t NumPolys() const { return poly_starts_.size() - 1; }

  /// Total number of compiled terms (== total monomials of the source set).
  std::size_t NumTerms() const { return coeffs_.size(); }

  /// Largest VarId referenced plus one; valuations must cover this many vars.
  std::size_t MinValuationSize() const { return min_valuation_size_; }

 private:
  EvalProgram() = default;  // for RemapFactors()

  void EvalUnchecked(const Valuation& valuation, std::vector<double>* out) const;

  // poly_starts_[p] .. poly_starts_[p+1] indexes into coeffs_/term_starts_.
  std::vector<std::uint32_t> poly_starts_;
  // term_starts_[t] .. term_starts_[t+1] indexes into factors_.
  std::vector<std::uint32_t> term_starts_;
  std::vector<double> coeffs_;
  // Variable ids, with exponents expanded (x^3 appears three times).
  std::vector<VarId> factors_;
  std::size_t min_valuation_size_ = 0;
};

}  // namespace cobra::prov

#endif  // COBRA_PROV_EVAL_PROGRAM_H_
