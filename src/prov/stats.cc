#include "prov/stats.h"

#include <algorithm>

#include "util/str.h"

namespace cobra::prov {

PolySetStats ComputeStats(const PolySet& set) {
  PolySetStats s;
  s.num_polys = set.size();
  s.num_monomials = set.TotalMonomials();
  s.num_variables = set.NumDistinctVariables();
  for (const Polynomial& p : set.polys()) {
    s.max_degree = std::max(s.max_degree, p.Degree());
    s.max_monomials_in_poly = std::max(s.max_monomials_in_poly, p.NumMonomials());
  }
  s.avg_monomials_per_poly =
      s.num_polys == 0
          ? 0.0
          : static_cast<double>(s.num_monomials) / static_cast<double>(s.num_polys);
  return s;
}

std::string PolySetStats::ToString() const {
  return util::StrFormat(
      "polys=%zu monomials=%zu variables=%zu max_degree=%u avg_mono/poly=%.2f "
      "max_mono/poly=%zu",
      num_polys, num_monomials, num_variables, max_degree,
      avg_monomials_per_poly, max_monomials_in_poly);
}

}  // namespace cobra::prov
