#ifndef COBRA_PROV_PARSER_H_
#define COBRA_PROV_PARSER_H_

#include <string_view>

#include "prov/poly_set.h"
#include "prov/polynomial.h"
#include "prov/variable.h"
#include "util/status.h"

namespace cobra::prov {

/// Parses one polynomial expression, interning variables into `pool`.
///
/// Grammar (whitespace-insensitive):
///
///     poly   := ['-'] term (('+' | '-') term)*
///     term   := factor ('*' factor)*
///     factor := NUMBER | IDENT ('^' UINT)?
///
/// Examples accepted: `208.8 * p1 * m1 + 240 * p1 * m3`, `x^2 * y - 3`,
/// `0`. Identifiers start with a letter or '_' and may contain letters,
/// digits, '_' and '.'.
util::Result<Polynomial> ParsePolynomial(std::string_view text, VarPool* pool);

/// Parses a multi-line document of `label = polynomial` lines into a
/// `PolySet`. Blank lines and lines starting with `#` are ignored.
util::Result<PolySet> ParsePolySet(std::string_view text, VarPool* pool);

}  // namespace cobra::prov

#endif  // COBRA_PROV_PARSER_H_
