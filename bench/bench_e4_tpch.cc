// Experiment E4 — the TPC-H demonstration phase of Section 4.
//
// For each supported TPC-H query (Q1, Q3, Q5, Q6, Q10, plus the
// segment-volume geography variant) this bench runs the query with
// provenance over the in-repo generator (COBRA_E4_SF scale factor,
// default 0.05), compresses under its natural abstraction tree at two
// bounds (50% and 20% of the full size), and reports sizes, retained
// variables and the measured assignment speedup.

#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

void CompressAndReport(const std::string& id, rel::Database* db,
                       const std::string& sql, const std::string& tree_text,
                       std::size_t provenance_agg) {
  util::Timer timer;
  util::Result<rel::sql::QueryResult> result = rel::sql::RunSql(*db, sql);
  if (!result.ok()) {
    std::printf("%-5s FAILED: %s\n", id.c_str(),
                result.status().ToString().c_str());
    return;
  }
  double query_seconds = timer.ElapsedSeconds();
  prov::PolySet provenance = result->Provenance(provenance_agg);
  std::size_t full = provenance.TotalMonomials();
  std::size_t vars = provenance.NumDistinctVariables();

  core::Session session(db->var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(tree_text).CheckOK();

  std::printf("%-5s groups=%-5zu full_size=%-7zu vars=%-4zu query=%.2fs\n",
              id.c_str(), session.full().size(), full, vars, query_seconds);
  for (double fraction : {0.5, 0.2}) {
    std::size_t bound =
        std::max<std::size_t>(1, static_cast<std::size_t>(full * fraction));
    session.SetBound(bound);
    util::Result<core::CompressionReport> report = session.Compress();
    if (!report.ok()) {
      std::printf("      bound=%-7zu compression failed: %s\n", bound,
                  report.status().ToString().c_str());
      continue;
    }
    core::AssignReport assign = session.Assign(/*timing_reps=*/50).ValueOrDie();
    std::printf(
        "      bound=%-7zu size=%-7zu vars=%-4zu feasible=%s "
        "speedup=%3.0f%% solve=%.3fs\n",
        bound, report->compressed_size, report->compressed_variables,
        report->feasible ? "yes" : "no ", assign.timing.SpeedupPercent(),
        report->solve_seconds);
  }
}

void RunE4() {
  data::TpchConfig config;
  config.scale_factor = bench::EnvDouble("COBRA_E4_SF", 0.05);

  bench::Header("E4: TPC-H demonstration (provenance + compression)");
  std::printf("scale factor %.3f (COBRA_E4_SF overrides)\n", config.scale_factor);

  util::Timer timer;
  rel::Database db = data::GenerateTpch(config);
  std::printf("dbgen substitute: %.2fs, lineitem rows=%zu\n",
              timer.ElapsedSeconds(),
              db.GetTable("lineitem").ValueOrDie()->NumRows());

  // Date-parameterized queries share one instrumented database.
  {
    rel::Database dated = data::GenerateTpch(config);
    data::InstrumentTpchByShipMonth(&dated).CheckOK();
    std::printf("\n-- ship-month parameterization, date tree (84 leaves) --\n");
    for (const char* id : {"Q1", "Q3", "Q6", "Q10"}) {
      data::TpchQuerySpec spec = data::TpchQueryById(id).ValueOrDie();
      CompressAndReport(spec.id, &dated, spec.sql, spec.tree_text,
                        spec.provenance_agg);
    }
  }

  // Geography-parameterized queries.
  {
    rel::Database geo = data::GenerateTpch(config);
    data::InstrumentTpchBySupplierNation(&geo).CheckOK();
    std::printf("\n-- supplier-nation parameterization, geography tree --\n");
    data::TpchQuerySpec q5 = data::TpchQueryById("Q5").ValueOrDie();
    CompressAndReport("Q5", &geo, q5.sql, q5.tree_text, q5.provenance_agg);
    CompressAndReport("Q5v", &geo, data::TpchSegmentVolumeQuery(),
                      data::GeographyTreeText(), 0);
  }

  // Brand-parameterized query.
  {
    rel::Database branded = data::GenerateTpch(config);
    data::InstrumentTpchByPartBrand(&branded).CheckOK();
    std::printf("\n-- part-brand parameterization, brand tree --\n");
    CompressAndReport("QB", &branded, data::TpchBrandRevenueQuery(),
                      data::BrandTreeText(), 0);
  }
  std::printf(
      "\nNote: Q5 groups by nation, so each group holds one nation variable\n"
      "and geography abstraction cannot merge across groups (compression\n"
      "saturates); Q5v (volume per market segment) is the compressible\n"
      "variant. Date-tree queries compress along months->quarters->years.\n");
}

}  // namespace

int main() {
  RunE4();
  return 0;
}
