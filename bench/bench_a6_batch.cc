// Ablation A6 — batched multi-scenario assignment (the serving path).
//
// COBRA's value proposition is that one compression serves *many*
// hypothetical scenarios. This bench measures that: on the TPC-H Q6
// workload (ship-month provenance, year->quarter->month tree) it runs N
// what-if scenarios
//
//   (a) sequentially, one Session::Assign() per scenario — each call pays
//       the per-scenario result comparison plus a calibrated
//       assignment-timing measurement (this is what the interactive demo
//       does today, and the bulk of its cost is that timing harness);
//   (b) as N one-scenario AssignBatch() calls — no timing harness, so the
//       contrast with (c) isolates what batching itself buys;
//   (c) in one Session::AssignBatch() sweep — compiled EvalPrograms are
//       cached, every scenario is evaluated exactly once per side, the
//       sweep is thread-parallel, and scenarios are evaluated a block at a
//       time by the scenario-blocked kernel (the default engine);
//
// then re-runs the batch with the scalar sparse and legacy dense-copy
// engines as A/B references, verifies the per-scenario results are
// bit-identical across every path, and reports the speedups. The exit-code
// gate (the ISSUE acceptance criterion) is on (a) vs (c). A
// machine-readable BENCH_a6.json lands next to the human output.
//
// Knobs: COBRA_A6_SCENARIOS (64), COBRA_A6_SF (0.05, TPC-H scale factor),
//        COBRA_A6_THREADS (0 = hardware), COBRA_A6_BOUND_PCT (50).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

/// One scenario per meta-variable (cycling), each nudging that variable by
/// a scenario-specific factor — the "thousands of analysts, one
/// compression" traffic shape.
core::ScenarioSet MakeScenarios(const core::Session& session, std::size_t n) {
  const std::vector<core::MetaVar>& meta = session.meta_vars();
  if (meta.empty()) {
    std::fprintf(stderr, "no meta-variables to perturb (leaf-only cut?)\n");
    std::exit(1);
  }
  core::ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("whatif-" + std::to_string(i)).ValueOrDie();
    s.Set(meta[i % meta.size()].name,
          1.0 + 0.01 * static_cast<double>(i % 40 + 1));
    if (meta.size() > 1) {
      s.Set(meta[(i + 3) % meta.size()].name,
            1.0 - 0.005 * static_cast<double>(i % 20 + 1));
    }
  }
  return set;
}

/// Largest absolute difference between the sequential and batched results,
/// over every scenario, group, and side.
double MaxResultDifference(const std::vector<core::ResultDelta>& sequential,
                           const core::BatchAssignReport& batch) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto& want = sequential[i].rows;
    const auto& got = batch.reports[i].delta.rows;
    if (want.size() != got.size()) return HUGE_VAL;
    for (std::size_t r = 0; r < want.size(); ++r) {
      max_diff = std::max(max_diff, std::fabs(want[r].full - got[r].full));
      max_diff = std::max(max_diff,
                          std::fabs(want[r].compressed - got[r].compressed));
    }
  }
  return max_diff;
}

}  // namespace

int main() {
  const std::size_t num_scenarios = bench::EnvSize("COBRA_A6_SCENARIOS", 64);
  const double scale_factor = bench::EnvDouble("COBRA_A6_SF", 0.05);
  const std::size_t num_threads = bench::EnvSize("COBRA_A6_THREADS", 0);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A6_BOUND_PCT", 50);

  bench::Header("A6: batched multi-scenario assignment (TPC-H Q6)");

  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByShipMonth(&db).CheckOK();
  data::TpchQuerySpec q6 = data::TpchQueryById("Q6").ValueOrDie();
  prov::PolySet provenance =
      rel::sql::RunSql(db, q6.sql).ValueOrDie().Provenance(q6.provenance_agg);
  std::printf("workload: %s at SF %.3g — %zu monomials, %zu variables\n",
              q6.id.c_str(), scale_factor, provenance.TotalMonomials(),
              provenance.NumDistinctVariables());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(q6.tree_text).CheckOK();
  std::size_t bound =
      std::max<std::size_t>(1, session.full().TotalMonomials() * bound_pct / 100);
  session.SetBound(bound);
  core::CompressionReport report = session.Compress().ValueOrDie();
  std::printf("compressed: %zu -> %zu monomials (bound %zu, cut %s)\n",
              report.original_size, report.compressed_size, bound,
              report.cut_description.c_str());

  core::ScenarioSet scenarios = MakeScenarios(session, num_scenarios);

  // (a) Sequential: one Assign() per scenario, defaults restored between
  // scenarios so each one is independent (the semantics AssignBatch gives).
  std::vector<core::ResultDelta> sequential;
  sequential.reserve(num_scenarios);
  const double sequential_seconds = bench::TimeSeconds([&] {
    for (const core::Scenario& scenario : scenarios.scenarios()) {
      session.ResetMetaValues().CheckOK();
      for (const core::Scenario::Delta& delta : scenario.deltas) {
        session.SetMetaValue(delta.var, delta.value).CheckOK();
      }
      sequential.push_back(session.Assign(1).ValueOrDie().delta);
    }
  });
  session.ResetMetaValues().CheckOK();

  core::BatchOptions options;
  options.num_threads = num_threads;
  // Pin the blocked kernel: this bench A/Bs the engines explicitly, so the
  // adaptive kAuto policy must not re-route the "blocked" rows.
  options.sweep = core::BatchOptions::Sweep::kBlocked;

  // (b) N one-scenario batches: same engine, no amortization. The contrast
  // with (c) is the honest measure of batching proper (per-call overhead,
  // shared valuation prep, one sweep instead of N), with the timing-harness
  // cost of (a) out of the picture.
  std::vector<core::ResultDelta> one_at_a_time;
  one_at_a_time.reserve(num_scenarios);
  const double single_seconds = bench::TimeSeconds([&] {
    for (const core::Scenario& scenario : scenarios.scenarios()) {
      core::ScenarioSet single;
      single.Add(scenario);
      one_at_a_time.push_back(session.AssignBatch(single, options)
                                  .ValueOrDie()
                                  .reports[0]
                                  .delta);
    }
  });

  // (c) Batched: one sweep with the default scenario-blocked kernel.
  core::BatchAssignReport batch;
  const double batch_seconds = bench::TimeSeconds([&] {
    batch = session.AssignBatch(scenarios, options).ValueOrDie();
  });

  // (d) Batched with the scalar sparse-delta engine — isolates what the
  // blocked kernel buys over one-program-scan-per-scenario.
  core::BatchOptions sparse = options;
  sparse.sweep = core::BatchOptions::Sweep::kSparseDelta;
  core::BatchAssignReport sparse_batch;
  const double sparse_seconds = bench::TimeSeconds([&] {
    sparse_batch = session.AssignBatch(scenarios, sparse).ValueOrDie();
  });

  // (e) Batched with the legacy dense-copy engine (one full-pool valuation
  // copied per scenario per side) — the A/B baseline for the sparse paths.
  // Q6's month-grouped pool is small, so the contrast here is modest; the
  // high-cardinality bench (bench_a7_highcard) is where the copies dominate.
  core::BatchOptions dense = options;
  dense.sweep = core::BatchOptions::Sweep::kDenseCopy;
  core::BatchAssignReport dense_batch;
  const double dense_seconds = bench::TimeSeconds([&] {
    dense_batch = session.AssignBatch(scenarios, dense).ValueOrDie();
  });

  double max_diff = MaxResultDifference(sequential, batch);
  max_diff = std::max(max_diff, MaxResultDifference(one_at_a_time, batch));
  max_diff = std::max(max_diff, MaxResultDifference(sequential, sparse_batch));
  max_diff = std::max(max_diff, MaxResultDifference(sequential, dense_batch));
  const double speedup = bench::Ratio(sequential_seconds, batch_seconds);
  const double batching_speedup = bench::Ratio(single_seconds, batch_seconds);

  std::printf("\n%-28s %12s %16s\n", "mode", "total (ms)", "per scenario");
  std::printf("%-28s %12.2f %14.2fms\n", "sequential Assign() x N",
              sequential_seconds * 1e3,
              sequential_seconds * 1e3 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus\n", "AssignBatch(1) x N",
              single_seconds * 1e3,
              single_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus\n", "AssignBatch(N) blocked",
              batch_seconds * 1e3,
              batch_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus\n", "AssignBatch(N) sparse scalar",
              sparse_seconds * 1e3,
              sparse_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus\n", "AssignBatch(N) dense-copy",
              dense_seconds * 1e3,
              dense_seconds * 1e6 / static_cast<double>(num_scenarios));
  const double sparse_vs_copy = bench::Ratio(dense_seconds, sparse_seconds);
  const double blocked_vs_sparse = bench::Ratio(sparse_seconds, batch_seconds);
  std::printf(
      "\nscenarios=%zu threads=%zu  speedup vs Assign()=%.1fx  "
      "vs one-at-a-time batches=%.1fx  sparse vs dense-copy=%.2fx  "
      "blocked vs sparse=%.2fx  max |diff|=%g\n",
      num_scenarios, batch.num_threads, speedup, batching_speedup,
      sparse_vs_copy, blocked_vs_sparse, max_diff);
  std::printf("result check: %s\n",
              max_diff == 0.0 ? "IDENTICAL" : "MISMATCH");
  std::printf("\n%s", batch.ToString(2, 3).c_str());

  bench::JsonObject json;
  json.Add("bench", std::string("a6_batch"));
  json.Add("scenarios", num_scenarios);
  json.Add("threads", batch.num_threads);
  json.Add("scale_factor", scale_factor);
  json.Add("sequential_seconds", sequential_seconds);
  json.Add("single_batches_seconds", single_seconds);
  json.Add("blocked_seconds", batch_seconds);
  json.Add("sparse_seconds", sparse_seconds);
  json.Add("dense_seconds", dense_seconds);
  json.Add("speedup_vs_sequential", speedup);
  json.Add("sparse_vs_dense", sparse_vs_copy);
  json.Add("blocked_vs_sparse", blocked_vs_sparse);
  json.Add("max_diff", max_diff);
  json.Add("identical", max_diff == 0.0);
  json.WriteFile("BENCH_a6.json");

  bench::GateSet gates;
  gates.Require("identical", max_diff == 0.0);
  gates.Require("speedup_vs_sequential>=5x", speedup >= 5.0);
  gates.Print();
  return gates.ExitCode();
}
