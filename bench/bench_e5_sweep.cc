// Experiment E5 — the interactive bound sweep of Section 4.
//
// "We will let the audience interactively examine the effect of the bound
// on the query results, provenance size and assignment time." This bench
// sweeps the bound across the feasible range on the telephony workload and
// reports, per bound: compressed size, retained variables, measured
// assignment speedup, and the result error of the *default* meta-
// assignment against the analyst's base values (the information-loss view;
// uniform scenarios are always exact).

#include <cstdio>

#include "bench_util.h"
#include "core/session.h"
#include "data/telephony.h"
#include "rel/sql/planner.h"
#include "util/rng.h"

namespace {

using namespace cobra;

void RunE5() {
  data::TelephonyConfig config;
  config.num_customers = bench::EnvSize("COBRA_E5_CUSTOMERS", 30'000);
  config.num_zips = bench::EnvSize("COBRA_E5_ZIPS", 200);
  config.num_months = 12;

  bench::Header("E5: bound sweep (size / variables / speedup / error)");
  std::printf("customers=%zu zips=%zu months=%zu\n", config.num_customers,
              config.num_zips, config.num_months);

  rel::Database db = data::GenerateTelephony(config);
  data::InstrumentTelephony(&db).CheckOK();
  prov::PolySet provenance =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery())
          .ValueOrDie()
          .Provenance();
  std::size_t full = provenance.TotalMonomials();

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();

  // Non-uniform base values (the analyst's current scenario): plan changes
  // drawn deterministically so the default-assignment error is non-trivial.
  util::Rng rng(123);
  for (const data::PlanInfo& plan : data::DefaultPlans()) {
    session.SetBaseValue(plan.variable, rng.NextDoubleInRange(0.8, 1.2))
        .CheckOK();
  }

  std::printf("\nfull size = %zu monomials\n\n", full);
  std::printf("%-10s %-10s %-8s %-7s %-9s %-12s %-12s\n", "bound", "size",
              "ratio", "vars", "speedup", "max_rel_err", "mean_rel_err");
  // Sweep from the coarsest feasible size to the full size in 9 steps.
  for (int step = 1; step <= 9; ++step) {
    std::size_t bound = full * step / 9;
    if (bound == 0) continue;
    session.SetBound(bound);
    util::Result<core::CompressionReport> report = session.Compress();
    if (!report.ok()) continue;
    core::AssignReport assign =
        session.AssignAgainstBase(/*timing_reps=*/50).ValueOrDie();
    std::printf("%-10zu %-10zu %-8.3f %-7zu %7.0f%%  %10.4f%%  %10.4f%%\n",
                bound, report->compressed_size, report->compression_ratio,
                report->compressed_variables,
                assign.timing.SpeedupPercent(),
                100.0 * assign.delta.max_rel_error,
                100.0 * assign.delta.mean_rel_error);
  }
  std::printf(
      "\nReading: tighter bounds shrink the provenance and speed up\n"
      "assignment, at the cost of degrees of freedom (vars) and of accuracy\n"
      "for non-uniform default scenarios — the trade-off the demo lets the\n"
      "audience explore. Scenarios uniform within every chosen group are\n"
      "always exact (see the session tests).\n");
}

}  // namespace

int main() {
  RunE5();
  return 0;
}
