// Ablation A1 — cut-selection algorithm quality and runtime.
//
// Compares the optimal DP against the greedy bottom-up and level-cut
// baselines (and the brute-force oracle where enumerable) on random
// abstraction trees and polynomials: retained variables at equal bounds,
// and solve time. Quantifies the value of the paper's DP over the
// heuristics DESIGN.md calls out.

#include <cstdio>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/dp_optimal.h"
#include "core/profile.h"
#include "prov/polynomial.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace cobra;

struct Instance {
  prov::VarPool pool;
  core::AbstractionTree tree;
  prov::PolySet polys;
};

/// A random tree with `leaves` leaves and branching factor ~`fanout`, plus
/// polynomials with skewed leaf popularity (Zipf-ish), which is where
/// greedy loses to the DP.
Instance MakeInstance(std::uint64_t seed, std::size_t leaves,
                      std::size_t fanout, std::size_t monomials) {
  Instance inst;
  util::Rng rng(seed);
  core::NodeId root = inst.tree.AddRoot("g0");
  std::vector<core::NodeId> frontier{root};
  std::size_t groups = 1;
  // Grow internal structure.
  while (frontier.size() < leaves / fanout + 1) {
    core::NodeId parent = frontier[rng.NextBelow(frontier.size())];
    frontier.push_back(
        inst.tree.AddChild(parent, "g" + std::to_string(groups++)));
  }
  std::vector<prov::VarId> vars;
  for (std::size_t i = 0; i < leaves; ++i) {
    core::NodeId parent = frontier[rng.NextBelow(frontier.size())];
    core::NodeId leaf =
        inst.tree.AddLeaf(parent, "x" + std::to_string(i), &inst.pool);
    vars.push_back(inst.tree.node(leaf).var);
  }
  // Give childless internal nodes a leaf to keep the tree valid.
  for (core::NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.node(v).children.empty() &&
        inst.tree.node(v).var == prov::kInvalidVar) {
      core::NodeId leaf = inst.tree.AddLeaf(
          v, "x" + std::to_string(vars.size()), &inst.pool);
      vars.push_back(inst.tree.node(leaf).var);
    }
  }
  COBRA_CHECK(inst.tree.Validate().ok());

  std::vector<prov::VarId> residues{inst.pool.Intern("r0"),
                                    inst.pool.Intern("r1"),
                                    inst.pool.Intern("r2"),
                                    inst.pool.Intern("r3")};
  std::vector<prov::Term> terms;
  for (std::size_t i = 0; i < monomials; ++i) {
    // Zipf-ish leaf choice: square the uniform draw.
    double u = rng.NextDouble();
    std::size_t leaf_index =
        static_cast<std::size_t>(u * u * static_cast<double>(vars.size()));
    if (leaf_index >= vars.size()) leaf_index = vars.size() - 1;
    std::vector<prov::VarPower> factors{{vars[leaf_index], 1}};
    factors.push_back({residues[rng.NextBelow(residues.size())], 1});
    if (rng.NextBool(0.5)) {
      factors.push_back({residues[rng.NextBelow(residues.size())], 2});
    }
    terms.push_back({prov::Monomial::FromFactors(std::move(factors)),
                     rng.NextDoubleInRange(1.0, 9.0)});
  }
  inst.polys.Add("P", prov::Polynomial::FromTerms(std::move(terms)));
  return inst;
}

void RunA1() {
  bench::Header("A1: optimal DP vs greedy vs level-cut (quality & runtime)");
  std::printf("%-26s %-8s | %-17s %-17s %-17s\n", "instance", "bound",
              "optimal vars/ms", "greedy vars/ms", "level vars/ms");

  struct Shape {
    std::size_t leaves, fanout, monomials;
  };
  const Shape shapes[] = {{16, 3, 300}, {64, 4, 2000}, {256, 4, 10000},
                          {1024, 6, 40000}};
  double greedy_gap_total = 0, level_gap_total = 0;
  std::size_t gap_count = 0;
  for (const Shape& shape : shapes) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      Instance inst =
          MakeInstance(seed, shape.leaves, shape.fanout, shape.monomials);
      core::TreeProfile profile =
          core::AnalyzeSingleTree(inst.polys, inst.tree, inst.pool)
              .ValueOrDie();
      std::size_t bound = profile.total_monomials / 3;

      util::Timer t1;
      core::CutSolution opt =
          core::OptimalSingleTreeCut(inst.tree, profile, bound).ValueOrDie();
      double opt_ms = t1.ElapsedMillis();
      util::Timer t2;
      core::CutSolution greedy =
          core::GreedyBottomUpCut(inst.tree, profile, bound).ValueOrDie();
      double greedy_ms = t2.ElapsedMillis();
      util::Timer t3;
      core::CutSolution level =
          core::LevelCut(inst.tree, profile, bound).ValueOrDie();
      double level_ms = t3.ElapsedMillis();

      std::printf(
          "L=%-5zu f=%zu m=%-7zu %-8zu | %6zu / %-8.2f %6zu / %-8.2f "
          "%6zu / %-8.2f%s\n",
          shape.leaves, shape.fanout, shape.monomials, bound,
          opt.num_cut_nodes, opt_ms, greedy.num_cut_nodes, greedy_ms,
          level.feasible ? level.num_cut_nodes : 0, level_ms,
          level.feasible ? "" : " (level infeasible)");
      if (opt.feasible && greedy.feasible) {
        greedy_gap_total += static_cast<double>(greedy.num_cut_nodes) /
                            static_cast<double>(opt.num_cut_nodes);
        if (level.feasible) {
          level_gap_total += static_cast<double>(level.num_cut_nodes) /
                             static_cast<double>(opt.num_cut_nodes);
        }
        ++gap_count;
      }
    }
  }
  if (gap_count > 0) {
    std::printf(
        "\naverage retained-variable ratio vs optimal: greedy %.3f, "
        "level %.3f (1.0 = optimal)\n",
        greedy_gap_total / static_cast<double>(gap_count),
        level_gap_total / static_cast<double>(gap_count));
  }

  // Small instances: cross-check all three against the brute-force oracle.
  std::printf("\noracle cross-check (small trees): ");
  std::size_t checked = 0, dp_optimal = 0;
  for (std::uint64_t seed = 10; seed < 20; ++seed) {
    Instance inst = MakeInstance(seed, 10, 3, 200);
    core::TreeProfile profile =
        core::AnalyzeSingleTree(inst.polys, inst.tree, inst.pool).ValueOrDie();
    std::size_t bound = profile.total_monomials / 2;
    core::CutSolution opt =
        core::OptimalSingleTreeCut(inst.tree, profile, bound).ValueOrDie();
    core::CutSolution oracle =
        core::BruteForceCut(inst.tree, profile, bound).ValueOrDie();
    ++checked;
    dp_optimal += opt.num_cut_nodes == oracle.num_cut_nodes &&
                  opt.compressed_size == oracle.compressed_size;
  }
  std::printf("%zu/%zu DP results match the oracle exactly\n", dp_optimal,
              checked);
}

}  // namespace

int main() {
  RunA1();
  return 0;
}
