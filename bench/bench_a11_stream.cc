// Ablation A11 — streaming sweeps: scenario algebra + top-k/threshold
// early exit over a million-scenario space.
//
// A6-A10 all materialize their ScenarioSet up front, so the swept space is
// bounded by memory. This bench sweeps a CartesianSource grid of
// steps x steps scenarios (default 1024 x 1024 = 1,048,576) through
// CompiledSession::AssignStream, which generates, lowers, and sweeps one
// window (BatchOptions::stream_block_scenarios) at a time. It measures and
// gates the three claims the streaming refactor makes:
//
//   (a) bit-identity — the first COBRA_A11_PREFIX streamed rows equal
//       materializing that prefix and running AssignBatch over it, bit for
//       bit (the streamed path is the same sweep kernel, re-chunked);
//   (b) flat memory — the peak-RSS delta of streaming the full space is a
//       window, not the space: materializing the same source must cost
//       more than 2x the streaming delta (gated only when materializing
//       costs >= 16 MiB, so shrunk CI runs don't gate on noise);
//   (c) early exit — a selective kThreshold query (cutoff at the 95th
//       percentile of the observed metric range) must run >= 2x faster
//       than the exhaustive kAll sweep, because pruned blocks skip the
//       expensive full-side program entirely; a kTopK query must skip
//       > 50% of full-side rows.
//
// The workload is the per-order TPC-H Q6 shape from A7/A10 — the
// compressed program is the cheap metric side, the full per-order program
// is the expensive side that pruning avoids. Exits non-zero if any gate
// fails; emits BENCH_a11.json.
//
// Knobs: COBRA_A11_AXIS_STEPS (1024; scenarios = steps^2),
//        COBRA_A11_WINDOW (4096), COBRA_A11_PREFIX (512),
//        COBRA_A11_SF (0.01), COBRA_A11_THREADS (0 = hardware),
//        COBRA_A11_BUCKET (2048), COBRA_A11_BOUND_PCT (20),
//        COBRA_A11_TOPK (16).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "prov/poly_set.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

/// Peak resident set (VmHWM) in bytes from /proc/self/status, or 0 when
/// unavailable (non-Linux); the memory gate is skipped in that case. VmHWM
/// is monotone, so deltas between successive readings attribute peak
/// growth to the phase in between — which is why streaming runs first.
std::size_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

int main() {
  const std::size_t steps = bench::EnvSize("COBRA_A11_AXIS_STEPS", 1024);
  const std::size_t window = bench::EnvSize("COBRA_A11_WINDOW", 4096);
  const std::size_t prefix = bench::EnvSize("COBRA_A11_PREFIX", 512);
  const double scale_factor = bench::EnvDouble("COBRA_A11_SF", 0.01);
  const std::size_t num_threads = bench::EnvSize("COBRA_A11_THREADS", 0);
  const std::size_t bucket_size = bench::EnvSize("COBRA_A11_BUCKET", 2048);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A11_BOUND_PCT", 20);
  const std::size_t topk = bench::EnvSize("COBRA_A11_TOPK", 16);

  bench::Header("A11: streaming sweeps over a generated scenario space");

  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByOrder(&db).CheckOK();
  const std::size_t num_orders = config.NumOrders();

  const char* sql =
      "SELECT l_returnflag, SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19940401 "
      "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24 "
      "GROUP BY l_returnflag";
  prov::PolySet provenance =
      rel::sql::RunSql(db, sql).ValueOrDie().Provenance(0);

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::OrderBucketTreeText(num_orders, bucket_size))
      .CheckOK();
  const std::size_t bound = std::max<std::size_t>(
      1, session.full().TotalMonomials() * bound_pct / 100);
  session.SetBound(bound);
  core::CompressionReport report =
      session.Compress(core::Algorithm::kGreedy).ValueOrDie();
  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();

  const std::vector<core::MetaVar>& meta = snapshot->meta_vars();
  if (meta.size() < 2) {
    std::fprintf(stderr, "need >= 2 meta-variables, got %zu\n", meta.size());
    return 1;
  }
  // Most meta-variables at a deep cut cover orders filtered out by the
  // query and move nothing. Probe the widest merges (most leaves) with one
  // small batch and take the two whose perturbation moves the groups most.
  std::vector<std::size_t> candidates(meta.size());
  for (std::size_t m = 0; m < meta.size(); ++m) candidates[m] = m;
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              return meta[a].leaves.size() > meta[b].leaves.size();
            });
  candidates.resize(std::min<std::size_t>(16, candidates.size()));
  core::ScenarioSet probes;
  probes.Reserve(candidates.size());
  for (std::size_t m : candidates) {
    probes.Add("probe-" + meta[m].name)
        .ValueOrDie()
        .Set(meta[m].name, 2.0);
  }
  core::BatchAssignReport probe_report =
      snapshot->AssignBatch(probes, core::BatchOptions{}).ValueOrDie();
  std::vector<std::pair<double, std::size_t>> impact;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double sum = 0.0;
    for (const auto& row : probe_report.reports[i].delta.rows) {
      sum += std::fabs(row.full);
    }
    impact.emplace_back(sum, candidates[i]);
  }
  std::sort(impact.begin(), impact.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (impact.size() < 2 || impact[1].first == 0.0) {
    std::fprintf(stderr, "fewer than 2 meta-variables move the result\n");
    return 1;
  }
  const core::MetaVar& axis0 = meta[impact[0].second];
  const core::MetaVar& axis1 = meta[impact[1].second];
  // Two axes, symmetric around 1.0: the best metrics sit at the corners of
  // the grid, so top-k/threshold survivors appear both early and late in
  // the stream — pruning must work on a non-monotone metric sequence.
  auto source =
      core::CartesianSource::Create(
          {core::LinSpace(axis0.name, 0.5, 1.5, steps),
           core::LinSpace(axis1.name, 0.5, 1.5, steps)},
          "a11")
          .ValueOrDie();
  const std::size_t total = static_cast<std::size_t>(source->size());
  std::printf(
      "workload: per-order Q6 at SF %.3g — %zu -> %zu monomials, "
      "%zu meta-vars\nspace: %zux%zu grid = %zu scenarios, window %zu\n",
      scale_factor, report.original_size, report.compressed_size,
      meta.size(), steps, steps, total, window);

  core::StreamOptions options;
  options.batch.num_threads = num_threads;
  options.batch.stream_block_scenarios = window;
  // One polynomial's term-slice boundaries change with chunk geometry, and
  // with them the FP summation order; disable splitting so the prefix
  // comparison below can demand bitwise equality.
  options.batch.split_min_terms = std::size_t{1} << 30;

  // (1) Exhaustive kAll stream: the throughput/memory baseline. The
  // consumer captures the first `prefix` rows for the bit-identity check.
  const std::size_t hwm_before_stream = PeakRssBytes();
  std::vector<std::vector<double>> prefix_full;
  std::vector<std::vector<double>> prefix_comp;
  auto capture = [&](const core::StreamBlockView& view) {
    for (std::size_t i = 0;
         i < view.count && view.begin + i < prefix; ++i) {
      prefix_full.emplace_back(view.full + i * view.num_groups,
                               view.full + (i + 1) * view.num_groups);
      prefix_comp.emplace_back(view.compressed + i * view.num_groups,
                               view.compressed + (i + 1) * view.num_groups);
    }
    return true;
  };
  core::SweepSummary all;
  const double all_seconds = bench::TimeSeconds([&] {
    all = snapshot->AssignStream(*source, options, capture).ValueOrDie();
  });
  const std::size_t hwm_after_stream = PeakRssBytes();
  std::printf("\nkAll stream: %.2fs (%.2fus/scenario), engine=%s lanes=%zu "
              "threads=%zu chunks=%llu\n",
              all_seconds, all_seconds * 1e6 / static_cast<double>(total),
              core::SweepName(all.engine), all.block_lanes, all.num_threads,
              static_cast<unsigned long long>(all.chunks));

  // (2) Selective threshold at the 95th percentile of the observed range:
  // nearly every block prunes its full-side sweep.
  core::StreamOptions selective = options;
  selective.query.kind = core::StreamQuery::Kind::kThreshold;
  selective.query.cutoff =
      all.metric_min + 0.95 * (all.metric_max - all.metric_min);
  selective.query.max_entries = 64;
  core::SweepSummary threshold;
  const double threshold_seconds = bench::TimeSeconds([&] {
    threshold = snapshot->AssignStream(*source, selective).ValueOrDie();
  });
  const double threshold_speedup =
      bench::Ratio(all_seconds, threshold_seconds);
  std::printf("threshold:   %.2fs (%.2fx vs kAll) matched=%llu "
              "rows computed=%llu skipped=%llu\n",
              threshold_seconds, threshold_speedup,
              static_cast<unsigned long long>(threshold.matched),
              static_cast<unsigned long long>(threshold.full_rows_computed),
              static_cast<unsigned long long>(threshold.full_rows_skipped));

  // (3) Top-k: keep the k best scenarios of the whole space.
  core::StreamOptions best = options;
  best.query.kind = core::StreamQuery::Kind::kTopK;
  best.query.k = topk;
  core::SweepSummary top;
  const double topk_seconds = bench::TimeSeconds([&] {
    top = snapshot->AssignStream(*source, best).ValueOrDie();
  });
  const double topk_skip_fraction =
      static_cast<double>(top.full_rows_skipped) /
      static_cast<double>(total);
  std::printf("top-%zu:      %.2fs, skipped %.1f%% of full rows\n", topk,
              topk_seconds, topk_skip_fraction * 100.0);
  for (std::size_t i = 0; i < std::min<std::size_t>(3, top.entries.size());
       ++i) {
    std::printf("  #%llu %-12s metric=%.6g\n",
                static_cast<unsigned long long>(top.entries[i].index),
                top.entries[i].name.c_str(), top.entries[i].metric);
  }

  // (4) Bit-identity: materialize the prefix, AssignBatch it, compare.
  core::ScenarioSet prefix_set;
  prefix_set.Reserve(prefix);
  source->Generate(0, std::min<std::uint64_t>(prefix, total), &prefix_set)
      .CheckOK();
  core::BatchAssignReport batch =
      snapshot->AssignBatch(prefix_set, options.batch).ValueOrDie();
  double max_diff = 0.0;
  bool bits_identical = prefix_full.size() == prefix_set.size();
  for (std::size_t i = 0; i < prefix_set.size() && bits_identical; ++i) {
    const auto& rows = batch.reports[i].delta.rows;
    for (std::size_t g = 0; g < rows.size(); ++g) {
      if (!SameBits(prefix_full[i][g], rows[g].full) ||
          !SameBits(prefix_comp[i][g], rows[g].compressed)) {
        bits_identical = false;
      }
      max_diff = std::max(max_diff,
                          std::fabs(prefix_full[i][g] - rows[g].full));
    }
  }
  std::printf("prefix check: %s (%zu rows vs materialized AssignBatch)\n",
              bits_identical ? "IDENTICAL" : "MISMATCH",
              prefix_set.size());

  // (5) Memory: materializing the whole space dwarfs the streaming delta.
  const std::size_t hwm_before_mat = PeakRssBytes();
  std::size_t materialized_size = 0;
  {
    core::ScenarioSet everything = source->Materialize().ValueOrDie();
    materialized_size = everything.size();
  }
  const std::size_t hwm_after_mat = PeakRssBytes();
  const std::size_t stream_delta = hwm_after_stream - hwm_before_stream;
  const std::size_t mat_delta = hwm_after_mat - hwm_before_mat;
  const bool gate_memory = hwm_after_mat > 0 && mat_delta >= (16u << 20);
  const bool memory_flat = !gate_memory || stream_delta * 2 <= mat_delta;
  std::printf("memory: stream delta %.1f MiB vs materialize delta %.1f MiB "
              "(%zu scenarios)%s\n",
              static_cast<double>(stream_delta) / (1 << 20),
              static_cast<double>(mat_delta) / (1 << 20), materialized_size,
              gate_memory ? "" : " [delta too small to gate]");

  bench::GateSet gates;
  gates.Require("identical", bits_identical);
  gates.Require("threshold_speedup>=2x", threshold_speedup >= 2.0);
  gates.Require("topk_skip>50%", topk_skip_fraction > 0.5);
  if (gate_memory) {
    gates.Require("memory_flat", memory_flat);
  } else {
    gates.Skip("memory_flat", "materialize delta under 16 MiB");
  }
  gates.Print();

  bench::JsonObject json;
  json.Add("bench", std::string("a11_stream"));
  json.Add("scenarios", total);
  json.Add("window", window);
  json.Add("prefix", prefix);
  json.Add("scale_factor", scale_factor);
  json.Add("engine", std::string(core::SweepName(all.engine)));
  json.Add("lanes", all.block_lanes);
  json.Add("threads", all.num_threads);
  json.Add("chunks", static_cast<std::size_t>(all.chunks));
  json.Add("monomials_full", snapshot->full_size());
  json.Add("monomials_compressed", snapshot->compressed_size());
  json.Add("source_fingerprint", all.source_fingerprint.ToHex());
  json.Add("all_seconds", all_seconds);
  json.Add("generate_seconds", all.generate_seconds);
  json.Add("plan_seconds", all.plan_seconds);
  json.Add("full_sweep_seconds", all.full_sweep_seconds);
  json.Add("compressed_sweep_seconds", all.compressed_sweep_seconds);
  json.Add("threshold_seconds", threshold_seconds);
  json.Add("threshold_speedup", threshold_speedup);
  json.Add("threshold_matched", static_cast<std::size_t>(threshold.matched));
  json.Add("topk_seconds", topk_seconds);
  json.Add("topk_skip_fraction", topk_skip_fraction);
  json.Add("stream_peak_delta_bytes", stream_delta);
  json.Add("materialize_peak_delta_bytes", mat_delta);
  json.Add("memory_gated", gate_memory);
  json.Add("max_diff", max_diff);
  json.Add("identical", bits_identical);
  json.WriteFile("BENCH_a11.json");

  return gates.ExitCode();
}
