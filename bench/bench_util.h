#ifndef COBRA_BENCH_BENCH_UTIL_H_
#define COBRA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace cobra::bench {

/// Runs `fn` once and returns its wall-clock duration in seconds.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  util::Timer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Runs `fn` `repeats` times and returns the best (minimum) duration —
/// the standard noise-rejection loop for short, cache-warm measurements.
template <typename Fn>
double BestOfSeconds(std::size_t repeats, Fn&& fn) {
  double best = HUGE_VAL;
  for (std::size_t r = 0; r < repeats; ++r) {
    best = std::min(best, TimeSeconds(fn));
  }
  return best;
}

/// `numerator / denominator` with the shared bench convention for a
/// degenerate denominator: HUGE_VAL (rendered as `null` by JsonObject), so
/// a zero-duration baseline reads as "unmeasurably fast", never as a crash.
inline double Ratio(double numerator, double denominator) {
  return denominator > 0.0 ? numerator / denominator : HUGE_VAL;
}

/// Named pass/fail acceptance gates with the shared exit-code contract:
/// every bench returns `gates.ExitCode()` — 0 iff every armed gate passed.
/// Gates may also be skipped with a visible notice (e.g. the multi-core
/// scaling gate on a 1-core CI box); a skipped gate never fails the run
/// but always announces itself so CI logs show what was not proven.
class GateSet {
 public:
  /// Records (and echoes) one gate. Returns `ok` so call sites can branch.
  bool Require(const std::string& name, bool ok) {
    lines_.push_back("gate " + name + ": " + (ok ? "PASS" : "FAIL"));
    all_ok_ = all_ok_ && ok;
    return ok;
  }

  /// Records a gate that cannot be armed in this environment.
  void Skip(const std::string& name, const std::string& reason) {
    lines_.push_back("gate " + name + ": SKIPPED (" + reason + ")");
  }

  /// Prints one line per gate in recording order.
  void Print() const {
    std::printf("\n");
    for (const std::string& line : lines_) {
      std::printf("%s\n", line.c_str());
    }
  }

  int ExitCode() const { return all_ok_ ? 0 : 1; }

 private:
  std::vector<std::string> lines_;
  bool all_ok_ = true;
};

/// Reads a positive integer knob from the environment (scaling overrides
/// for the experiment binaries), falling back to `fallback`.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Reads a double knob from the environment.
inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

/// Prints a section header in the shared bench output style.
inline void Header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Minimal flat JSON object writer for the machine-readable bench outputs
/// (BENCH_a6.json / BENCH_a7.json). Insertion order is preserved; values
/// are numbers, booleans, or strings (no nesting — the CI artifact consumer
/// is a flat key/value reader). Doubles use %.17g so round-tripping is
/// lossless.
class JsonObject {
 public:
  void Add(const std::string& key, double value) {
    // JSON has no inf/nan literals; mismatch sentinels (HUGE_VAL) and
    // division fallbacks must still produce a parseable artifact.
    if (!std::isfinite(value)) {
      fields_.emplace_back(key, "null");
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    fields_.emplace_back(key, std::string(buffer));
  }

  void Add(const std::string& key, std::size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  void Add(const std::string& key, const std::string& value) {
    std::string escaped = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    fields_.emplace_back(key, std::move(escaped));
  }

  std::string ToString() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}\n";
    return out;
  }

  /// Writes the object to `path`; a failure is reported on stderr but is
  /// not fatal (the human-readable output is the bench's primary channel).
  void WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    const std::string text = ToString();
    const bool wrote = std::fwrite(text.data(), 1, text.size(), f) ==
                       text.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace cobra::bench

#endif  // COBRA_BENCH_BENCH_UTIL_H_
