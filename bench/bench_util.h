#ifndef COBRA_BENCH_BENCH_UTIL_H_
#define COBRA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cobra::bench {

/// Reads a positive integer knob from the environment (scaling overrides
/// for the experiment binaries), falling back to `fallback`.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Reads a double knob from the environment.
inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

/// Prints a section header in the shared bench output style.
inline void Header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace cobra::bench

#endif  // COBRA_BENCH_BENCH_UTIL_H_
