// Ablation A4 — the multi-tree extension (Section 4's quarter tree).
//
// The demo describes a month->quarter abstraction tree alongside the plan
// tree. With both trees active every telephony monomial (plan_var *
// month_var) carries one abstractable variable per tree — the NP-hard
// multi-tree setting. This bench runs the greedy multi-tree compressor
// across bounds and reports sizes, retained variables, moves and runtime,
// and cross-checks the reported size against actual substitution.

#include <cstdio>

#include "bench_util.h"
#include "core/multi_tree.h"
#include "data/telephony.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

void RunA4() {
  data::TelephonyConfig config;
  config.num_customers = bench::EnvSize("COBRA_A4_CUSTOMERS", 15'000);
  config.num_zips = bench::EnvSize("COBRA_A4_ZIPS", 100);
  config.num_months = 12;

  bench::Header("A4: multi-tree greedy (plan tree x quarter tree)");
  std::printf("customers=%zu zips=%zu months=%zu\n", config.num_customers,
              config.num_zips, config.num_months);

  rel::Database db = data::GenerateTelephony(config);
  data::InstrumentTelephony(&db).CheckOK();
  prov::PolySet provenance =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery())
          .ValueOrDie()
          .Provenance();
  std::size_t full = provenance.TotalMonomials();

  prov::VarPool* pool = db.mutable_var_pool();
  core::AbstractionTree plan_tree =
      core::ParseTree(data::TelephonyPlanTreeText(), pool).ValueOrDie();
  core::AbstractionTree month_tree =
      core::ParseTree(data::MonthQuarterTreeText(12), pool).ValueOrDie();
  std::vector<core::AbstractionTree> trees{plan_tree, month_tree};

  std::printf("\nfull size = %zu monomials (zips x 11 plans x 12 months)\n\n",
              full);
  std::printf("%-10s %-10s %-8s %-12s %-8s %-10s %-10s\n", "bound", "size",
              "ok", "cut sizes", "moves", "time (s)", "verified");
  for (double fraction : {1.0, 0.6, 0.35, 0.2, 0.1, 0.03}) {
    std::size_t bound = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(full) * fraction));
    util::Timer timer;
    core::MultiTreeSolution solution =
        core::GreedyMultiTreeCut(provenance, trees, bound, *pool).ValueOrDie();
    double seconds = timer.ElapsedSeconds();
    // Cross-check the incremental bookkeeping against real substitution.
    prov::VarPool scratch = *pool;
    core::Abstraction abs =
        core::ApplyMultiTreeCuts(provenance, trees, solution.cuts, &scratch)
            .ValueOrDie();
    std::printf("%-10zu %-10zu %-8s %4zu + %-5zu %-8zu %-10.3f %-10s\n",
                bound, solution.compressed_size,
                solution.feasible ? "yes" : "no",
                solution.cuts[0].size(), solution.cuts[1].size(),
                solution.moves_applied, seconds,
                abs.compressed_size == solution.compressed_size ? "exact"
                                                                : "MISMATCH");
  }
  std::printf(
      "\nReading: with two trees the greedy interleaves plan-group and\n"
      "quarter merges by saving-per-variable; e.g. a quarter merge divides\n"
      "the month dimension by 3 while a plan-family merge divides the plan\n"
      "dimension — the compressor picks whichever buys more per lost\n"
      "degree of freedom at the current state.\n");
}

}  // namespace

int main() {
  RunA4();
  return 0;
}
