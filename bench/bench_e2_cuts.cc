// Experiment E2 — Example 4 / Figure 2 of the paper.
//
// Regenerates the cut table of Example 4: for each of the five named cuts
// S1..S5 of the Figure 2 abstraction tree, the compressed size and number
// of distinct variables on P1 alone and on the full {P1, P2} multiset.
// Micro-benchmarks cut application and enumeration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/apply.h"
#include "core/cut.h"
#include "core/profile.h"
#include "core/tree.h"
#include "data/example_db.h"
#include "prov/parser.h"

namespace {

using namespace cobra;

struct NamedCut {
  const char* name;
  std::vector<std::string> nodes;
};

const std::vector<NamedCut>& PaperCuts() {
  static const std::vector<NamedCut>* kCuts = new std::vector<NamedCut>{
      {"S1", {"Business", "Special", "Standard"}},
      {"S2", {"SB", "e", "f1", "f2", "Y", "v", "Standard"}},
      {"S3", {"b1", "b2", "e", "Special", "Standard"}},
      {"S4", {"SB", "e", "F", "Y", "v", "p1", "p2"}},
      {"S5", {"Plans"}}};
  return *kCuts;
}

void PrintCutTable() {
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(data::kFigure2TreeText, &pool).ValueOrDie();
  prov::PolySet polys =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool).ValueOrDie();

  bench::Header("E2: Example 4 cuts on the Figure 2 tree");
  std::printf("tree has %zu nodes, %zu leaves, %llu cuts\n\n", tree.size(),
              tree.Leaves().size(),
              static_cast<unsigned long long>(tree.CountCuts()));
  std::printf("%-4s %-44s %10s %9s %12s %11s\n", "cut", "nodes",
              "P1 monos", "P1 vars", "total monos", "total vars");
  for (const NamedCut& named : PaperCuts()) {
    prov::VarPool scratch = pool;
    core::Cut cut = core::Cut::FromNames(tree, named.nodes).ValueOrDie();
    core::Abstraction abs =
        core::ApplyCut(polys, tree, cut, &scratch).ValueOrDie();
    std::printf("%-4s %-44s %10zu %9zu %12zu %11zu\n", named.name,
                cut.ToString(tree).c_str(),
                abs.compressed.poly(0).NumMonomials(),
                abs.compressed.poly(0).Variables().size(),
                abs.compressed_size, abs.compressed_variables);
  }
  std::printf(
      "\npaper reference: S1 on P1 -> 4 monomials / 4 variables; "
      "S5 on P1 -> 2 monomials / 3 variables.\n");

  // The compressed S5 polynomial as printed in the paper (with the m1
  // coefficient corrected; see EXPERIMENTS.md).
  prov::VarPool scratch = pool;
  core::Cut s5 = core::Cut::FromNames(tree, {"Plans"}).ValueOrDie();
  core::Abstraction abs =
      core::ApplyCut(polys, tree, s5, &scratch).ValueOrDie();
  std::printf("S5 on P1: %s\n",
              abs.compressed.poly(0).ToString(scratch).c_str());
}

void BM_ApplyCutS1(benchmark::State& state) {
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(data::kFigure2TreeText, &pool).ValueOrDie();
  prov::PolySet polys =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool).ValueOrDie();
  core::Cut s1 =
      core::Cut::FromNames(tree, {"Business", "Special", "Standard"})
          .ValueOrDie();
  for (auto _ : state) {
    prov::VarPool scratch = pool;
    auto abs = core::ApplyCut(polys, tree, s1, &scratch);
    benchmark::DoNotOptimize(abs);
  }
}
BENCHMARK(BM_ApplyCutS1);

void BM_EnumerateFigure2Cuts(benchmark::State& state) {
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(data::kFigure2TreeText, &pool).ValueOrDie();
  for (auto _ : state) {
    auto cuts = core::EnumerateCuts(tree);
    benchmark::DoNotOptimize(cuts);
  }
}
BENCHMARK(BM_EnumerateFigure2Cuts);

void BM_AnalyzeFigure2Profile(benchmark::State& state) {
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(data::kFigure2TreeText, &pool).ValueOrDie();
  prov::PolySet polys =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool).ValueOrDie();
  for (auto _ : state) {
    auto profile = core::AnalyzeSingleTree(polys, tree, pool);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_AnalyzeFigure2Profile);

}  // namespace

int main(int argc, char** argv) {
  PrintCutTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
