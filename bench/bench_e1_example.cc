// Experiment E1 — Example 2 / Figure 1 of the paper.
//
// Regenerates the provenance polynomials P1 and P2 from the Figure 1
// database through the annotated engine and checks them against the
// polynomials printed in the paper, then micro-benchmarks the pipeline
// stages (query evaluation with provenance, polynomial parsing,
// valuation).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "data/example_db.h"
#include "prov/eval_program.h"
#include "prov/parser.h"
#include "rel/sql/planner.h"

namespace {

using namespace cobra;

void PrintReproductionTable() {
  rel::Database db = data::BuildExampleDatabase();
  data::InstrumentExampleDb(&db).CheckOK();
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, data::kExampleRevenueQuery).ValueOrDie();
  prov::PolySet computed = result.Provenance();

  prov::PolySet expected =
      prov::ParsePolySet(data::kExamplePolynomialsText, db.mutable_var_pool())
          .ValueOrDie();

  bench::Header("E1: Example 2 polynomials regenerated from Figure 1");
  std::printf("query: %s\n\n", data::kExampleRevenueQuery);
  for (std::size_t i = 0; i < computed.size(); ++i) {
    std::printf("P%zu (zip %s) = %s\n", i + 1, computed.label(i).c_str(),
                computed.poly(i).ToString(*db.var_pool()).c_str());
  }
  bool p1_ok = computed.poly(computed.FindLabel("10001"))
                   .AlmostEquals(expected.poly(0), 1e-9);
  bool p2_ok = computed.poly(computed.FindLabel("10002"))
                   .AlmostEquals(expected.poly(1), 1e-9);
  std::printf("\npaper match: P1 %s, P2 %s (coefficients exact to 1e-9)\n",
              p1_ok ? "OK" : "MISMATCH", p2_ok ? "OK" : "MISMATCH");
  std::printf("provenance size: %zu monomials, %zu variables\n",
              computed.TotalMonomials(), computed.NumDistinctVariables());
}

void BM_ProvenanceQueryFigure1(benchmark::State& state) {
  rel::Database db = data::BuildExampleDatabase();
  data::InstrumentExampleDb(&db).CheckOK();
  for (auto _ : state) {
    auto result = rel::sql::RunSql(db, data::kExampleRevenueQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ProvenanceQueryFigure1);

void BM_ParseExamplePolynomials(benchmark::State& state) {
  for (auto _ : state) {
    prov::VarPool pool;
    auto set = prov::ParsePolySet(data::kExamplePolynomialsText, &pool);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_ParseExamplePolynomials);

void BM_ValuationOnExample(benchmark::State& state) {
  prov::VarPool pool;
  prov::PolySet set =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool).ValueOrDie();
  prov::EvalProgram program(set);
  prov::Valuation valuation(pool);
  valuation.SetByName(pool, "m3", 0.8).CheckOK();
  std::vector<double> out;
  for (auto _ : state) {
    program.Eval(valuation, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ValuationOnExample);

}  // namespace

int main(int argc, char** argv) {
  PrintReproductionTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
