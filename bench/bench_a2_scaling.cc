// Ablation A2 — scaling of the analysis + DP pipeline.
//
// Measures (a) AnalyzeSingleTree time vs number of monomials at a fixed
// tree, (b) optimal-DP solve time vs number of tree leaves at fixed
// provenance, confirming the polynomial-time behaviour claimed in the
// paper (tree-convolution DP; profile analysis is a linear scan + sort).

#include <cstdio>

#include "bench_util.h"
#include "core/dp_optimal.h"
#include "core/profile.h"
#include "prov/polynomial.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace cobra;

/// Balanced tree with `leaves` leaves and fanout 4.
core::AbstractionTree BalancedTree(std::size_t leaves, prov::VarPool* pool) {
  core::AbstractionTree tree;
  core::NodeId root = tree.AddRoot("root");
  std::vector<core::NodeId> level{root};
  std::size_t width = 1, groups = 0;
  while (width * 4 < leaves) {
    std::vector<core::NodeId> next;
    for (core::NodeId parent : level) {
      for (int i = 0; i < 4; ++i) {
        next.push_back(tree.AddChild(parent, "g" + std::to_string(groups++)));
      }
    }
    level = std::move(next);
    width *= 4;
  }
  std::size_t created = 0;
  while (created < leaves) {
    core::NodeId parent = level[created % level.size()];
    tree.AddLeaf(parent, "x" + std::to_string(created), pool);
    ++created;
  }
  COBRA_CHECK(tree.Validate().ok());
  return tree;
}

prov::PolySet RandomPolys(std::size_t monomials, std::size_t num_leaf_vars,
                          const prov::VarPool& pool, std::uint64_t seed) {
  util::Rng rng(seed);
  (void)pool;
  std::vector<prov::Term> terms;
  terms.reserve(monomials);
  // Exactly `monomials` distinct monomials: leaf (i mod L) times a residue
  // variable indexed by (i / L), so sizes are not capped by duplicate
  // merging. Residue ids live above the leaf ids.
  for (std::size_t i = 0; i < monomials; ++i) {
    prov::VarId leaf = static_cast<prov::VarId>(i % num_leaf_vars);
    prov::VarId residue =
        static_cast<prov::VarId>(num_leaf_vars + i / num_leaf_vars);
    terms.push_back({prov::Monomial::FromFactors({{leaf, 1}, {residue, 1}}),
                     rng.NextDoubleInRange(1.0, 9.0)});
  }
  prov::PolySet set;
  set.Add("P", prov::Polynomial::FromTerms(std::move(terms)));
  return set;
}

void RunA2() {
  bench::Header("A2: scaling of profile analysis and optimal DP");

  std::printf("(a) monomial scaling at 256 leaves\n");
  std::printf("%-12s %-14s %-12s\n", "monomials", "analyze (ms)", "solve (ms)");
  for (std::size_t monomials : {10'000u, 50'000u, 200'000u, 800'000u}) {
    prov::VarPool pool;
    core::AbstractionTree tree = BalancedTree(256, &pool);
    for (int i = 0; i < 64; ++i) pool.Intern("res" + std::to_string(i));
    prov::PolySet polys = RandomPolys(monomials, 256, pool, 7);
    util::Timer t1;
    core::TreeProfile profile =
        core::AnalyzeSingleTree(polys, tree, pool).ValueOrDie();
    double analyze_ms = t1.ElapsedMillis();
    util::Timer t2;
    auto solution = core::OptimalSingleTreeCut(
        tree, profile, profile.total_monomials / 2);
    double solve_ms = t2.ElapsedMillis();
    COBRA_CHECK(solution.ok());
    std::printf("%-12zu %-14.1f %-12.2f\n", polys.TotalMonomials(), analyze_ms,
                solve_ms);
  }

  std::printf("\n(b) leaf scaling at 100k raw monomials\n");
  std::printf("%-10s %-10s %-14s %-12s\n", "leaves", "nodes", "analyze (ms)",
              "solve (ms)");
  for (std::size_t leaves : {64u, 256u, 1024u, 4096u, 16384u}) {
    prov::VarPool pool;
    core::AbstractionTree tree = BalancedTree(leaves, &pool);
    for (int i = 0; i < 64; ++i) pool.Intern("res" + std::to_string(i));
    prov::PolySet polys = RandomPolys(100'000, leaves, pool, 11);
    util::Timer t1;
    core::TreeProfile profile =
        core::AnalyzeSingleTree(polys, tree, pool).ValueOrDie();
    double analyze_ms = t1.ElapsedMillis();
    util::Timer t2;
    auto solution = core::OptimalSingleTreeCut(
        tree, profile, profile.total_monomials / 2);
    double solve_ms = t2.ElapsedMillis();
    COBRA_CHECK(solution.ok());
    std::printf("%-10zu %-10zu %-14.1f %-12.2f\n", leaves, tree.size(),
                analyze_ms, solve_ms);
  }
  std::printf(
      "\nReading: analysis is near-linear in monomials; DP solve cost grows\n"
      "with tree size via bounded (min,+) convolutions — both polynomial,\n"
      "matching the complexity claim of Section 2.\n");
}

}  // namespace

int main() {
  RunA2();
  return 0;
}
