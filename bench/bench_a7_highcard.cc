// Ablation A7 — high-cardinality batched serving (per-order TPC-H).
//
// bench_a6 runs TPC-H Q6 with ship-month provenance: ~84 date variables, so
// the legacy "one full-pool Valuation copy per scenario per side" cost is
// negligible next to the scan. This bench flips that ratio: every lineitem
// is tagged with its *order* variable (tens of thousands of variables at
// bench scale factors) while a Q6-style filter keeps the surviving
// provenance small, so the copy-based sweep is dominated by pool-sized
// copies — memory bandwidth — and the sparse-delta sweep, which touches
// only the surviving monomials plus a handful of overrides per scenario,
// pulls far ahead.
//
// The bench runs N scenarios through one immutable CompiledSession snapshot
//
//   (a) with the legacy dense-copy engine (BatchOptions::Sweep::kDenseCopy);
//   (b) with the scalar sparse-delta engine (kSparseDelta);
//   (c) with the scenario-blocked kernel (kBlocked, the default): one scan
//       of the compiled program serves a whole block of scenario lanes;
//
// verifies (a) == (b) == (c) bit-for-bit for every scenario, spot-checks a
// sample against sequential Session::Assign(), and exits non-zero unless
// the sparse sweep is >= 2x the dense one AND the blocked sweep is >= 2x
// the scalar sparse one (the ISSUE acceptance gates). A machine-readable
// BENCH_a7.json lands next to the human output for cross-PR tracking.
//
// Knobs: COBRA_A7_SCENARIOS (1024), COBRA_A7_SF (0.01, TPC-H scale factor),
//        COBRA_A7_THREADS (0 = hardware), COBRA_A7_BUCKET (128 orders per
//        tree bucket), COBRA_A7_BOUND_PCT (60), COBRA_A7_CHECK (16
//        scenarios cross-checked against sequential Assign()),
//        COBRA_A7_LANES (8, blocked-kernel lane count: 4, 8 or 16),
//        COBRA_A7_MT_THREADS (hardware, floored at 2 — the extra blocked
//        run exercising the multi-threaded tile pool).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

core::ScenarioSet MakeScenarios(const core::Session& session, std::size_t n) {
  const std::vector<core::MetaVar>& meta = session.meta_vars();
  if (meta.empty()) {
    std::fprintf(stderr, "no meta-variables to perturb (leaf-only cut?)\n");
    std::exit(1);
  }
  core::ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("whatif-" + std::to_string(i)).ValueOrDie();
    s.Set(meta[i % meta.size()].name,
          1.0 + 0.01 * static_cast<double>(i % 40 + 1));
    if (meta.size() > 1) {
      s.Set(meta[(i + 7) % meta.size()].name,
            1.0 - 0.005 * static_cast<double>(i % 20 + 1));
    }
  }
  return set;
}

/// Largest absolute per-group difference between two batched reports.
double MaxBatchDifference(const core::BatchAssignReport& a,
                          const core::BatchAssignReport& b) {
  if (a.reports.size() != b.reports.size()) return HUGE_VAL;
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    if (ra.size() != rb.size()) return HUGE_VAL;
    for (std::size_t r = 0; r < ra.size(); ++r) {
      max_diff = std::max(max_diff, std::fabs(ra[r].full - rb[r].full));
      max_diff =
          std::max(max_diff, std::fabs(ra[r].compressed - rb[r].compressed));
    }
  }
  return max_diff;
}

}  // namespace

int main() {
  const std::size_t num_scenarios = bench::EnvSize("COBRA_A7_SCENARIOS", 1024);
  const double scale_factor = bench::EnvDouble("COBRA_A7_SF", 0.01);
  const std::size_t num_threads = bench::EnvSize("COBRA_A7_THREADS", 0);
  const std::size_t bucket_size = bench::EnvSize("COBRA_A7_BUCKET", 128);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A7_BOUND_PCT", 60);
  const std::size_t check = bench::EnvSize("COBRA_A7_CHECK", 16);
  const std::size_t lanes = bench::EnvSize("COBRA_A7_LANES", 8);

  bench::Header("A7: high-cardinality batched serving (per-order TPC-H)");

  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByOrder(&db).CheckOK();
  const std::size_t num_orders = config.NumOrders();

  // Q6's selective filter over per-order-instrumented lineitems: the pool
  // holds one variable per order but only a few percent of lineitems
  // survive, so valuations are huge relative to the provenance that scans.
  const char* sql =
      "SELECT l_returnflag, SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 "
      "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24 "
      "GROUP BY l_returnflag";
  prov::PolySet provenance =
      rel::sql::RunSql(db, sql).ValueOrDie().Provenance(0);
  std::printf(
      "workload: per-order Q6 at SF %.3g — %zu monomials, %zu distinct "
      "variables, pool %zu\n",
      scale_factor, provenance.TotalMonomials(),
      provenance.NumDistinctVariables(), db.var_pool()->size());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::OrderBucketTreeText(num_orders, bucket_size))
      .CheckOK();
  std::size_t bound = std::max<std::size_t>(
      1, session.full().TotalMonomials() * bound_pct / 100);
  session.SetBound(bound);
  // Greedy, not the DP: the order tree has one leaf per order, and cut
  // quality is not what this bench measures.
  core::CompressionReport report =
      session.Compress(core::Algorithm::kGreedy).ValueOrDie();
  std::printf("compressed: %zu -> %zu monomials (bound %zu, %zu meta-vars)\n",
              report.original_size, report.compressed_size, bound,
              session.meta_vars().size());

  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();
  core::ScenarioSet scenarios = MakeScenarios(session, num_scenarios);

  core::BatchOptions dense;
  dense.num_threads = num_threads;
  dense.sweep = core::BatchOptions::Sweep::kDenseCopy;
  core::BatchOptions sparse;
  sparse.num_threads = num_threads;
  sparse.sweep = core::BatchOptions::Sweep::kSparseDelta;
  core::BatchOptions blocked;
  blocked.num_threads = num_threads;
  blocked.sweep = core::BatchOptions::Sweep::kBlocked;
  blocked.block_lanes = lanes;

  // Wall-clock around the whole call: the dense engine's cost is precisely
  // the per-scenario valuation materialization, which happens before its
  // sweep timer starts, and the blocked engine's includes its per-block
  // override-table construction.
  core::BatchAssignReport dense_batch;
  const double dense_seconds = bench::TimeSeconds([&] {
    dense_batch = snapshot->AssignBatch(scenarios, dense).ValueOrDie();
  });
  core::BatchAssignReport sparse_batch;
  const double sparse_seconds = bench::TimeSeconds([&] {
    sparse_batch = snapshot->AssignBatch(scenarios, sparse).ValueOrDie();
  });
  core::BatchAssignReport blocked_batch;
  const double blocked_seconds = bench::TimeSeconds([&] {
    blocked_batch = snapshot->AssignBatch(scenarios, blocked).ValueOrDie();
  });

  // Multi-threaded coverage: the same blocked sweep with threads > 1 drives
  // the work-stealing tile pool (a single-threaded run never spawns it) and
  // must stay bit-identical — the fixed-order partial reduction makes the
  // result schedule-independent. COBRA_A7_MT_THREADS (default: hardware,
  // floored at 2 so single-core hosts still exercise the pool).
  const std::size_t mt_threads = std::max<std::size_t>(
      2, bench::EnvSize("COBRA_A7_MT_THREADS",
                        std::thread::hardware_concurrency()));
  core::BatchOptions blocked_mt = blocked;
  blocked_mt.num_threads = mt_threads;
  core::BatchAssignReport blocked_mt_batch;
  const double blocked_mt_seconds = bench::TimeSeconds([&] {
    blocked_mt_batch = snapshot->AssignBatch(scenarios, blocked_mt).ValueOrDie();
  });

  double max_diff = MaxBatchDifference(dense_batch, sparse_batch);
  max_diff = std::max(max_diff,
                      MaxBatchDifference(sparse_batch, blocked_batch));
  max_diff = std::max(max_diff,
                      MaxBatchDifference(blocked_batch, blocked_mt_batch));

  // Spot-check a sample against the sequential interactive path.
  const std::size_t sample = std::min(check, num_scenarios);
  for (std::size_t i = 0; i < sample; ++i) {
    session.ResetMetaValues().CheckOK();
    for (const core::Scenario::Delta& delta :
         scenarios.scenario(i).deltas) {
      session.SetMetaValue(delta.var, delta.value).CheckOK();
    }
    core::AssignReport want = session.Assign(1).ValueOrDie();
    const auto& got = blocked_batch.reports[i].delta.rows;
    if (got.size() != want.delta.rows.size()) {
      max_diff = HUGE_VAL;
      break;
    }
    for (std::size_t r = 0; r < got.size(); ++r) {
      max_diff = std::max(
          max_diff, std::fabs(got[r].full - want.delta.rows[r].full));
      max_diff = std::max(max_diff, std::fabs(got[r].compressed -
                                              want.delta.rows[r].compressed));
    }
  }
  session.ResetMetaValues().CheckOK();

  const double sparse_vs_dense = bench::Ratio(dense_seconds, sparse_seconds);
  const double blocked_vs_sparse =
      bench::Ratio(sparse_seconds, blocked_seconds);
  std::printf("\n%-28s %12s %16s\n", "mode", "total (ms)", "per scenario");
  std::printf("%-28s %12.2f %14.2fus\n", "dense-copy sweep",
              dense_seconds * 1e3,
              dense_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus\n", "sparse-delta sweep",
              sparse_seconds * 1e3,
              sparse_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus\n", "blocked sweep",
              blocked_seconds * 1e3,
              blocked_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.2f %14.2fus  (threads=%zu)\n", "blocked sweep (mt)",
              blocked_mt_seconds * 1e3,
              blocked_mt_seconds * 1e6 / static_cast<double>(num_scenarios),
              blocked_mt_batch.num_threads);
  std::printf(
      "\nscenarios=%zu threads=%zu lanes=%zu  scenarios/sec: dense=%.0f "
      "sparse=%.0f blocked=%.0f\n"
      "sparse vs copy=%.1fx  blocked vs sparse=%.1fx  max |diff|=%g\n",
      num_scenarios, blocked_batch.num_threads, lanes,
      bench::Ratio(static_cast<double>(num_scenarios), dense_seconds),
      bench::Ratio(static_cast<double>(num_scenarios), sparse_seconds),
      bench::Ratio(static_cast<double>(num_scenarios), blocked_seconds),
      sparse_vs_dense, blocked_vs_sparse, max_diff);
  std::printf("result check: %s (sequential sample: %zu)\n",
              max_diff == 0.0 ? "IDENTICAL" : "MISMATCH", sample);

  bench::JsonObject json;
  json.Add("bench", std::string("a7_highcard"));
  json.Add("scenarios", num_scenarios);
  json.Add("threads", blocked_batch.num_threads);
  json.Add("block_lanes", lanes);
  json.Add("scale_factor", scale_factor);
  json.Add("monomials_full", snapshot->full_size());
  json.Add("monomials_compressed", snapshot->compressed_size());
  json.Add("dense_seconds", dense_seconds);
  json.Add("sparse_seconds", sparse_seconds);
  json.Add("blocked_seconds", blocked_seconds);
  json.Add("threads_mt", blocked_mt_batch.num_threads);
  json.Add("blocked_seconds_mt", blocked_mt_seconds);
  json.Add("sparse_vs_dense", sparse_vs_dense);
  json.Add("blocked_vs_sparse", blocked_vs_sparse);
  json.Add("max_diff", max_diff);
  json.Add("identical", max_diff == 0.0);
  json.WriteFile("BENCH_a7.json");

  bench::GateSet gates;
  gates.Require("identical", max_diff == 0.0);
  gates.Require("sparse_vs_dense>=2x", sparse_vs_dense >= 2.0);
  gates.Require("blocked_vs_sparse>=2x", blocked_vs_sparse >= 2.0);
  gates.Print();
  return gates.ExitCode();
}
