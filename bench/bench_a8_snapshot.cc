// Ablation A8 — serializable serving snapshots (load vs recompile).
//
// COBRA's premise is compress-once / evaluate-many: the compression runs on
// powerful hardware and the artifact ships to weaker machines. Before this
// bench's feature, the *compiled* serving artifact (CompiledSession) was
// per-process — every replica had to re-run compression. A8 measures what
// the snapshot format buys on the per-order TPC-H workload of A7:
//
//   (1) origin cost:   provenance -> Compress() -> Session::Snapshot()
//   (2) save cost:     SaveSnapshot() (serialize + write)
//   (3) replica cost:  LoadSnapshot() (read + parse + rebuild, NO
//                      recompilation)
//
// then verifies that the loaded replica's AssignBatch results are
// bit-identical to the origin snapshot under all three sweep engines
// (kBlocked / kSparseDelta / kDenseCopy), and exits non-zero unless load is
// >= 5x faster than compress+snapshot (the ISSUE acceptance gate). A
// machine-readable BENCH_a8.json lands next to the human output.
//
// Cross-process mode (used by CI): COBRA_A8_MODE=save compresses, writes
// the snapshot to COBRA_A8_PATH, serves the scenario batch and stores the
// results' exact IEEE-754 bit patterns to <path>.expected; a second
// invocation with COBRA_A8_MODE=load reconstructs the session from the file
// alone and fails unless its results match the origin process bit for bit.
//
// Knobs: COBRA_A8_SCENARIOS (256), COBRA_A8_SF (0.01, TPC-H scale factor),
//        COBRA_A8_BUCKET (128 orders per tree bucket), COBRA_A8_BOUND_PCT
//        (60), COBRA_A8_LOADS (5, timed LoadSnapshot repetitions; the
//        minimum is reported), COBRA_A8_PATH (SNAPSHOT_a8.bin),
//        COBRA_A8_MODE (full | save | load).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/compiled_session.h"
#include "core/io.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"
#include "util/csv.h"
#include "util/timer.h"

namespace {

using namespace cobra;

/// Deterministic scenario mix over the snapshot's meta-variables — both the
/// save and the load process generate the identical set, so cross-process
/// comparisons need no scenario shipping.
core::ScenarioSet MakeScenarios(const core::CompiledSession& snapshot,
                                std::size_t n) {
  const std::vector<core::MetaVar>& meta = snapshot.meta_vars();
  if (meta.empty()) {
    std::fprintf(stderr, "no meta-variables to perturb (leaf-only cut?)\n");
    std::exit(1);
  }
  core::ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("whatif-" + std::to_string(i)).ValueOrDie();
    s.Set(meta[i % meta.size()].name,
          1.0 + 0.01 * static_cast<double>(i % 40 + 1));
    if (meta.size() > 1) {
      s.Set(meta[(i + 7) % meta.size()].name,
            1.0 - 0.005 * static_cast<double>(i % 20 + 1));
    }
  }
  return set;
}

/// Renders every result double of `batch` as its exact bit pattern, one
/// hex word per line — the cross-process identity certificate.
std::string ResultBits(const core::BatchAssignReport& batch) {
  std::string out;
  char line[40];  // 16 hex + ' ' + 16 hex + '\n' + NUL = 35 bytes.
  for (const core::AssignReport& report : batch.reports) {
    for (const core::ResultDelta::Row& row : report.delta.rows) {
      std::uint64_t full_bits, compressed_bits;
      std::memcpy(&full_bits, &row.full, sizeof full_bits);
      std::memcpy(&compressed_bits, &row.compressed, sizeof compressed_bits);
      std::snprintf(line, sizeof line, "%016" PRIx64 " %016" PRIx64 "\n",
                    full_bits, compressed_bits);
      out += line;
    }
  }
  return out;
}

/// Largest absolute per-group difference between two batched reports.
double MaxBatchDifference(const core::BatchAssignReport& a,
                          const core::BatchAssignReport& b) {
  if (a.reports.size() != b.reports.size()) return HUGE_VAL;
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    if (ra.size() != rb.size()) return HUGE_VAL;
    for (std::size_t r = 0; r < ra.size(); ++r) {
      max_diff = std::max(max_diff, std::fabs(ra[r].full - rb[r].full));
      max_diff =
          std::max(max_diff, std::fabs(ra[r].compressed - rb[r].compressed));
    }
  }
  return max_diff;
}

core::BatchOptions WithSweep(core::BatchOptions::Sweep sweep) {
  core::BatchOptions options;
  options.sweep = sweep;
  return options;
}

/// Builds the A7-style per-order TPC-H workload, compresses it, and returns
/// the authoring session (its pool stays alive through the shared_ptr).
std::unique_ptr<core::Session> BuildOrigin(double scale_factor,
                                           std::size_t bucket_size,
                                           std::size_t bound_pct,
                                           double* compress_seconds) {
  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByOrder(&db).CheckOK();

  const char* sql =
      "SELECT l_returnflag, SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 "
      "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24 "
      "GROUP BY l_returnflag";
  prov::PolySet provenance =
      rel::sql::RunSql(db, sql).ValueOrDie().Provenance(0);
  std::printf("workload: per-order Q6 at SF %.3g — %zu monomials, pool %zu\n",
              scale_factor, provenance.TotalMonomials(),
              db.var_pool()->size());

  auto session = std::make_unique<core::Session>(db.var_pool());
  session->LoadPolynomials(std::move(provenance));
  session->SetTreeText(
             data::OrderBucketTreeText(config.NumOrders(), bucket_size))
      .CheckOK();
  session->SetBound(std::max<std::size_t>(
      1, session->full().TotalMonomials() * bound_pct / 100));

  // The origin-side cost the snapshot amortizes away: compression plus
  // program compilation (Snapshot() compiles on first call).
  util::Timer timer;
  core::CompressionReport report =
      session->Compress(core::Algorithm::kGreedy).ValueOrDie();
  session->Snapshot().ValueOrDie();
  *compress_seconds = timer.ElapsedSeconds();
  std::printf("compressed: %zu -> %zu monomials (%zu meta-vars)\n",
              report.original_size, report.compressed_size,
              session->meta_vars().size());
  return session;
}

}  // namespace

int main() {
  const std::size_t num_scenarios = bench::EnvSize("COBRA_A8_SCENARIOS", 256);
  const double scale_factor = bench::EnvDouble("COBRA_A8_SF", 0.01);
  const std::size_t bucket_size = bench::EnvSize("COBRA_A8_BUCKET", 128);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A8_BOUND_PCT", 60);
  const std::size_t load_reps = bench::EnvSize("COBRA_A8_LOADS", 5);
  const char* path_env = std::getenv("COBRA_A8_PATH");
  const std::string path =
      path_env != nullptr && *path_env != '\0' ? path_env : "SNAPSHOT_a8.bin";
  const char* mode_env = std::getenv("COBRA_A8_MODE");
  const std::string mode =
      mode_env != nullptr && *mode_env != '\0' ? mode_env : "full";

  if (mode == "load") {
    // Replica process: everything it knows comes from the snapshot file.
    bench::Header("A8: replica load (cross-process)");
    util::Timer timer;
    std::shared_ptr<const core::CompiledSession> replica =
        core::LoadSnapshot(path).ValueOrDie();
    std::printf("loaded %s in %.1fms (pool %zu, %zu -> %zu monomials)\n",
                path.c_str(), timer.ElapsedSeconds() * 1e3,
                replica->pool_size(), replica->full_size(),
                replica->compressed_size());
    core::ScenarioSet scenarios = MakeScenarios(*replica, num_scenarios);
    std::string bits = ResultBits(
        replica->AssignBatch(scenarios).ValueOrDie());
    std::string expected = util::ReadFile(path + ".expected").ValueOrDie();
    const bool identical = bits == expected;
    std::printf("cross-process result check: %s (%zu scenarios)\n",
                identical ? "IDENTICAL" : "MISMATCH", scenarios.size());
    return identical ? 0 : 1;
  }

  bench::Header(mode == "save"
                    ? "A8: origin save (cross-process)"
                    : "A8: snapshot load vs recompile (per-order TPC-H)");

  double compress_seconds = 0.0;
  std::unique_ptr<core::Session> session =
      BuildOrigin(scale_factor, bucket_size, bound_pct, &compress_seconds);
  std::shared_ptr<const core::CompiledSession> origin =
      session->Snapshot().ValueOrDie();
  core::ScenarioSet scenarios = MakeScenarios(*origin, num_scenarios);

  const double save_seconds = bench::TimeSeconds(
      [&] { core::SaveSnapshot(*origin, path).CheckOK(); });
  const std::size_t snapshot_bytes = util::ReadFile(path).ValueOrDie().size();

  if (mode == "save") {
    util::WriteFile(path + ".expected",
                    ResultBits(origin->AssignBatch(scenarios).ValueOrDie()))
        .CheckOK();
    std::printf(
        "saved %s (%zu bytes) + %s.expected; run COBRA_A8_MODE=load next\n",
        path.c_str(), snapshot_bytes, path.c_str());
    return 0;
  }

  // Replica-side load, repeated: min over repetitions isolates the parse +
  // rebuild cost from filesystem-cache warmup noise.
  std::shared_ptr<const core::CompiledSession> replica;
  const double load_seconds =
      bench::BestOfSeconds(std::max<std::size_t>(1, load_reps), [&] {
        replica = core::LoadSnapshot(path).ValueOrDie();
      });

  // Bit-identity between origin and replica sessions (the CI save/load
  // steps additionally cover two separate processes), per sweep engine.
  double max_diff = 0.0;
  for (core::BatchOptions::Sweep sweep :
       {core::BatchOptions::Sweep::kBlocked,
        core::BatchOptions::Sweep::kSparseDelta,
        core::BatchOptions::Sweep::kDenseCopy}) {
    core::BatchAssignReport origin_batch =
        origin->AssignBatch(scenarios, WithSweep(sweep)).ValueOrDie();
    core::BatchAssignReport replica_batch =
        replica->AssignBatch(scenarios, WithSweep(sweep)).ValueOrDie();
    max_diff =
        std::max(max_diff, MaxBatchDifference(origin_batch, replica_batch));
  }

  const double speedup = bench::Ratio(compress_seconds, load_seconds);
  std::printf("\n%-28s %12.2fms\n", "compress + snapshot (origin)",
              compress_seconds * 1e3);
  std::printf("%-28s %12.2fms  (%zu bytes)\n", "save snapshot",
              save_seconds * 1e3, snapshot_bytes);
  std::printf("%-28s %12.2fms  (min of %zu)\n", "load snapshot (replica)",
              load_seconds * 1e3, load_reps);
  std::printf("\nload vs recompile: %.1fx  max |diff| across 3 engines: %g\n",
              speedup, max_diff);
  std::printf("result check: %s\n",
              max_diff == 0.0 ? "IDENTICAL" : "MISMATCH");

  bench::JsonObject json;
  json.Add("bench", std::string("a8_snapshot"));
  json.Add("scenarios", num_scenarios);
  json.Add("scale_factor", scale_factor);
  json.Add("monomials_full", origin->full_size());
  json.Add("monomials_compressed", origin->compressed_size());
  json.Add("pool_size", origin->pool_size());
  json.Add("snapshot_bytes", snapshot_bytes);
  json.Add("compress_seconds", compress_seconds);
  json.Add("save_seconds", save_seconds);
  json.Add("load_seconds", load_seconds);
  json.Add("load_vs_recompile", speedup);
  json.Add("max_diff", max_diff);
  json.Add("identical", max_diff == 0.0);
  json.WriteFile("BENCH_a8.json");

  bench::GateSet gates;
  gates.Require("identical", max_diff == 0.0);
  gates.Require("load_vs_recompile>=5x", speedup >= 5.0);
  gates.Print();
  return gates.ExitCode();
}
