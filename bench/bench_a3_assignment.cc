// Ablation A3 — assignment microbenchmarks.
//
// (a) compiled EvalProgram vs naive polynomial-tree walking, per monomial;
// (b) assignment speedup as a function of compression ratio — the curve
// behind the paper's 47%/79% speedup figures (speedup tracks the monomial
// count because assignment is a linear scan of the compiled program).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "prov/eval_program.h"
#include "prov/polynomial.h"
#include "prov/valuation.h"
#include "util/rng.h"

namespace {

using namespace cobra;

/// Builds a poly set shaped like the telephony provenance: `polys` groups,
/// each with exactly `monos_per_poly` distinct two-variable monomials
/// (a "plan-like" id below 32 and a "month-like" id above it, extended as
/// needed so duplicate merging never caps the size).
prov::PolySet MakeSet(std::size_t polys, std::size_t monos_per_poly,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  constexpr std::size_t kHalf = 32;
  prov::PolySet set;
  for (std::size_t p = 0; p < polys; ++p) {
    std::vector<prov::Term> terms;
    terms.reserve(monos_per_poly);
    for (std::size_t i = 0; i < monos_per_poly; ++i) {
      prov::VarId a = static_cast<prov::VarId>(i % kHalf);
      prov::VarId b = static_cast<prov::VarId>(kHalf + i / kHalf);
      terms.push_back({prov::Monomial::Of(a, b),
                       rng.NextDoubleInRange(1.0, 500.0)});
    }
    set.Add("g" + std::to_string(p),
            prov::Polynomial::FromTerms(std::move(terms)));
  }
  return set;
}

/// Valuation sized for every variable used by `set`.
prov::Valuation ValuationFor(const prov::PolySet& set) {
  std::size_t size = 1;
  for (prov::VarId v : set.AllVariables()) {
    size = std::max<std::size_t>(size, v + 1);
  }
  return prov::Valuation(size);
}

void BM_CompiledEval(benchmark::State& state) {
  std::size_t monomials = static_cast<std::size_t>(state.range(0));
  prov::PolySet set = MakeSet(100, monomials / 100, 3);
  prov::EvalProgram program(set);
  prov::Valuation valuation = ValuationFor(set);
  std::vector<double> out;
  for (auto _ : state) {
    program.Eval(valuation, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.TotalMonomials()));
}
BENCHMARK(BM_CompiledEval)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_NaiveEval(benchmark::State& state) {
  std::size_t monomials = static_cast<std::size_t>(state.range(0));
  prov::PolySet set = MakeSet(100, monomials / 100, 3);
  prov::Valuation valuation = ValuationFor(set);
  for (auto _ : state) {
    double total = 0;
    for (const prov::Polynomial& p : set.polys()) total += p.Eval(valuation);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.TotalMonomials()));
}
BENCHMARK(BM_NaiveEval)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void PrintSpeedupCurve() {
  bench::Header("A3: assignment speedup vs compression ratio");
  std::printf("full set: 1000 polynomials x 132 monomials (telephony shape)\n");
  std::printf("%-8s %-12s %-12s %-10s\n", "ratio", "full (us)", "comp (us)",
              "speedup");
  prov::PolySet full = MakeSet(1000, 132, 5);
  prov::Valuation valuation = ValuationFor(full);
  for (double ratio : {0.8, 0.64, 0.5, 0.27, 0.1, 0.05}) {
    std::size_t keep =
        static_cast<std::size_t>(132 * ratio) > 0
            ? static_cast<std::size_t>(132 * ratio)
            : 1;
    prov::PolySet compressed = MakeSet(1000, keep, 5);
    core::AssignmentTiming timing = core::MeasureAssignment(
        full, compressed, valuation, valuation, /*min_reps=*/20);
    std::printf("%-8.2f %-12.2f %-12.2f %8.0f%%\n", ratio,
                timing.full_seconds * 1e6, timing.compressed_seconds * 1e6,
                timing.SpeedupPercent());
  }
  std::printf(
      "\nThe paper's bounds correspond to ratios 0.64 (47%% reported) and\n"
      "0.27 (79%% reported); the measured curve shows the same monotone\n"
      "shape on this machine.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSpeedupCurve();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
