// Ablation A10 — base-invariant plans: the scenario × base grid sweep.
//
// A9 shows the plan cache amortizing planning across *replays of the same
// call*. This bench amortizes across the other axis: one scenario set
// evaluated under many per-user base valuations — the "same what-if panel,
// different customer defaults" workload. Before the core/overlay split the
// base hash was part of the plan-cache key, so every base change was a full
// cache miss: name→id scenario compilation, engine choice, block tables and
// tile schedules were all redone per base. AssignGrid plans the shared
// PlanCore once and binds only the cheap per-base overlay (pool-sized base
// copy + block-table value rebind) inside the loop, writing cells straight
// into one (base × scenario × group) matrix with no per-scenario report
// materialization.
//
// The bench builds the high-cardinality per-order TPC-H workload (the shape
// where planning is a real fraction of a batch call), then measures
//
//   (a) the naive per-base AssignBatch loop with the plan cache cleared
//       before every call — the pre-split cost model, where a new base
//       could never reuse another base's plan;
//   (b) the same loop warm — today's cost model, where each base core-hits
//       and rebinds an overlay but still materializes per-scenario reports;
//   (c) AssignGrid over the same scenarios × bases;
//
// best-of-R each, verifies every grid cell is bit-identical to the per-base
// AssignBatch reports, and exits non-zero unless the grid is >= 3x the
// naive re-planning loop (the ISSUE acceptance gate). A machine-readable
// BENCH_a10.json lands next to the human output.
//
// Knobs: COBRA_A10_SCENARIOS (1024), COBRA_A10_BASES (64),
//        COBRA_A10_SF (0.01, TPC-H scale factor), COBRA_A10_THREADS
//        (0 = hardware), COBRA_A10_BUCKET (128), COBRA_A10_BOUND_PCT (60),
//        COBRA_A10_DELTAS (12 overrides per scenario), COBRA_A10_LANES (8,
//        blocked-kernel lane count), COBRA_A10_REPS (3).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "prov/valuation.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

/// Scenarios with wide override lists: `deltas` perturbations each — the
/// planning-heavy shape whose re-compilation the grid amortizes away.
core::ScenarioSet MakeScenarios(const core::Session& session, std::size_t n,
                                std::size_t deltas) {
  const std::vector<core::MetaVar>& meta = session.meta_vars();
  if (meta.empty()) {
    std::fprintf(stderr, "no meta-variables to perturb (leaf-only cut?)\n");
    std::exit(1);
  }
  core::ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("grid-" + std::to_string(i)).ValueOrDie();
    for (std::size_t d = 0; d < deltas; ++d) {
      s.Set(meta[(i * 7 + d * 13) % meta.size()].name,
            1.0 + 0.01 * static_cast<double>((i + d) % 40 + 1));
    }
  }
  return set;
}

/// Per-user default valuations: pool-sized, each moving every meta-variable
/// by a distinct per-base factor.
std::vector<prov::Valuation> MakeBases(const core::CompiledSession& snapshot,
                                       std::size_t count) {
  const std::vector<core::MetaVar>& meta = snapshot.meta_vars();
  std::vector<prov::Valuation> bases;
  bases.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    prov::Valuation base(snapshot.pool_size());
    for (std::size_t m = 0; m < meta.size(); ++m) {
      base.Set(meta[m].var,
               1.0 + 0.002 * static_cast<double>((b * 11 + m * 3) % 50 + 1));
    }
    bases.push_back(std::move(base));
  }
  return bases;
}

/// Largest absolute difference between grid cells and a per-base report.
double MaxGridDifference(const core::GridAssignReport& grid, std::size_t b,
                         const core::BatchAssignReport& batch) {
  if (batch.reports.size() != grid.num_scenarios()) return HUGE_VAL;
  double max_diff = 0.0;
  for (std::size_t s = 0; s < grid.num_scenarios(); ++s) {
    const auto& rows = batch.reports[s].delta.rows;
    if (rows.size() != grid.num_groups) return HUGE_VAL;
    for (std::size_t g = 0; g < grid.num_groups; ++g) {
      max_diff = std::max(
          max_diff, std::fabs(grid.full_value(b, s, g) - rows[g].full));
      max_diff =
          std::max(max_diff, std::fabs(grid.compressed_value(b, s, g) -
                                       rows[g].compressed));
    }
  }
  return max_diff;
}

}  // namespace

int main() {
  const std::size_t num_scenarios =
      bench::EnvSize("COBRA_A10_SCENARIOS", 1024);
  const std::size_t num_bases = bench::EnvSize("COBRA_A10_BASES", 64);
  const double scale_factor = bench::EnvDouble("COBRA_A10_SF", 0.01);
  const std::size_t num_threads = bench::EnvSize("COBRA_A10_THREADS", 0);
  const std::size_t bucket_size = bench::EnvSize("COBRA_A10_BUCKET", 128);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A10_BOUND_PCT", 60);
  const std::size_t deltas = bench::EnvSize("COBRA_A10_DELTAS", 12);
  const std::size_t lanes = bench::EnvSize("COBRA_A10_LANES", 8);
  const std::size_t reps =
      std::max<std::size_t>(1, bench::EnvSize("COBRA_A10_REPS", 3));

  bench::Header("A10: scenario x base grid sweeps (base-invariant plans)");

  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByOrder(&db).CheckOK();
  const std::size_t num_orders = config.NumOrders();

  const char* sql =
      "SELECT l_returnflag, SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19940401 "
      "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24 "
      "GROUP BY l_returnflag";
  prov::PolySet provenance =
      rel::sql::RunSql(db, sql).ValueOrDie().Provenance(0);
  std::printf(
      "workload: per-order Q6 at SF %.3g — %zu monomials, pool %zu\n",
      scale_factor, provenance.TotalMonomials(), db.var_pool()->size());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::OrderBucketTreeText(num_orders, bucket_size))
      .CheckOK();
  std::size_t bound = std::max<std::size_t>(
      1, session.full().TotalMonomials() * bound_pct / 100);
  session.SetBound(bound);
  core::CompressionReport report =
      session.Compress(core::Algorithm::kGreedy).ValueOrDie();
  std::printf("compressed: %zu -> %zu monomials (%zu meta-vars), %zu deltas "
              "per scenario, %zu bases\n",
              report.original_size, report.compressed_size,
              session.meta_vars().size(), deltas, num_bases);

  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();
  core::ScenarioSet scenarios = MakeScenarios(session, num_scenarios, deltas);
  std::vector<prov::Valuation> bases = MakeBases(*snapshot, num_bases);

  // Pinned to the blocked kernel (like A7): kAuto's policy is not what this
  // bench measures, and the blocked engine is the serving default for grid
  // workloads — it exercises both halves of the split, the shared skeletons
  // and the per-base value rebinds.
  core::BatchOptions options;
  options.sweep = core::BatchOptions::Sweep::kBlocked;
  options.block_lanes = lanes;
  options.num_threads = num_threads;

  // Bit-identity corpus: one grid, checked cell-by-cell against a warm
  // per-base AssignBatch for every base.
  core::GridAssignReport grid =
      snapshot->AssignGrid(scenarios, bases, options).ValueOrDie();
  double max_diff = 0.0;
  for (std::size_t b = 0; b < num_bases; ++b) {
    core::BatchAssignReport batch =
        snapshot->AssignBatch(scenarios, bases[b], options).ValueOrDie();
    max_diff = std::max(max_diff, MaxGridDifference(grid, b, batch));
  }

  // Best-of-R: naive cold loop (cache cleared per call — the pre-split cost
  // model), naive warm loop (core hits, overlay rebinds, full reports), and
  // the grid.
  double naive_seconds = HUGE_VAL;
  double warm_seconds = HUGE_VAL;
  double grid_seconds = HUGE_VAL;
  for (std::size_t r = 0; r < reps; ++r) {
    naive_seconds = std::min(naive_seconds, bench::TimeSeconds([&] {
      for (const prov::Valuation& base : bases) {
        snapshot->ClearPlanCache();
        snapshot->AssignBatch(scenarios, base, options).ValueOrDie();
      }
    }));

    snapshot->ClearPlanCache();
    snapshot->AssignBatch(scenarios, bases[0], options).ValueOrDie();
    warm_seconds = std::min(warm_seconds, bench::TimeSeconds([&] {
      for (const prov::Valuation& base : bases) {
        snapshot->AssignBatch(scenarios, base, options).ValueOrDie();
      }
    }));

    snapshot->ClearPlanCache();
    core::GridAssignReport timed;
    grid_seconds = std::min(grid_seconds, bench::TimeSeconds([&] {
      timed = snapshot->AssignGrid(scenarios, bases, options).ValueOrDie();
    }));
    if (timed.plan_cache_hit) {
      std::fprintf(stderr, "grid unexpectedly hit a cleared plan cache\n");
      return 1;
    }
  }

  const double grid_vs_naive = bench::Ratio(naive_seconds, grid_seconds);
  const double grid_vs_warm = bench::Ratio(warm_seconds, grid_seconds);
  const double cells = static_cast<double>(grid.cells());

  std::printf("\n%-32s %12s %16s\n", "mode", "total (ms)", "per (s,b) pair");
  std::printf("%-32s %12.2f %14.2fus\n", "naive loop (re-plan per base)",
              naive_seconds * 1e3,
              naive_seconds * 1e6 /
                  static_cast<double>(num_scenarios * num_bases));
  std::printf("%-32s %12.2f %14.2fus\n", "warm loop (core-hit per base)",
              warm_seconds * 1e3,
              warm_seconds * 1e6 /
                  static_cast<double>(num_scenarios * num_bases));
  std::printf("%-32s %12.2f %14.2fus\n", "AssignGrid (plan once)",
              grid_seconds * 1e3,
              grid_seconds * 1e6 /
                  static_cast<double>(num_scenarios * num_bases));
  std::printf(
      "\nscenarios=%zu bases=%zu cells=%.0f threads=%zu engine=%s lanes=%zu\n"
      "grid vs naive=%.2fx  grid vs warm=%.2fx  max |diff|=%g\n",
      num_scenarios, num_bases, cells, grid.num_threads,
      core::SweepName(grid.engine), grid.block_lanes, grid_vs_naive,
      grid_vs_warm, max_diff);
  std::printf("result check: %s (every grid cell vs per-base AssignBatch)\n",
              max_diff == 0.0 ? "IDENTICAL" : "MISMATCH");

  bench::JsonObject json;
  json.Add("bench", std::string("a10_grid"));
  json.Add("scenarios", num_scenarios);
  json.Add("bases", num_bases);
  json.Add("threads", grid.num_threads);
  json.Add("deltas_per_scenario", deltas);
  json.Add("scale_factor", scale_factor);
  json.Add("engine", std::string(core::SweepName(grid.engine)));
  json.Add("lanes", grid.block_lanes);
  json.Add("monomials_full", snapshot->full_size());
  json.Add("monomials_compressed", snapshot->compressed_size());
  json.Add("plan_seconds", grid.plan_seconds);
  json.Add("overlay_seconds", grid.overlay_seconds);
  json.Add("full_sweep_seconds", grid.full_sweep_seconds);
  json.Add("compressed_sweep_seconds", grid.compressed_sweep_seconds);
  json.Add("naive_seconds", naive_seconds);
  json.Add("warm_seconds", warm_seconds);
  json.Add("grid_seconds", grid_seconds);
  json.Add("grid_vs_naive", grid_vs_naive);
  json.Add("grid_vs_warm", grid_vs_warm);
  json.Add("max_diff", max_diff);
  json.Add("identical", max_diff == 0.0);
  json.WriteFile("BENCH_a10.json");

  bench::GateSet gates;
  gates.Require("identical", max_diff == 0.0);
  gates.Require("grid_vs_naive>=3x", grid_vs_naive >= 3.0);
  gates.Print();
  return gates.ExitCode();
}
