// Experiment E3 — the Section 4 headline numbers.
//
// Paper: telephony database with 1,000,000 customers, plan variables from
// the Figure 2 tree and month variables m1..m12; full provenance size
// 139,260 monomials; bound 94,600 -> compressed size 88,620 with 47%
// assignment speedup; bound 38,600 -> 37,980 with 79% speedup.
//
// The default run uses the paper-faithful 1,000,000 customers; the
// polynomial counts depend only on (zip x plan x month) coverage — the
// generator guarantees coverage above ~12k customers — so
// COBRA_E3_CUSTOMERS can be lowered on small machines with identical
// provenance sizes and near-identical speedups.

#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "core/session.h"
#include "data/telephony.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

struct PaperRow {
  std::size_t bound;
  std::size_t paper_size;
  double paper_speedup;
};

void RunE3() {
  data::TelephonyConfig config;
  config.num_customers = bench::EnvSize("COBRA_E3_CUSTOMERS", 1'000'000);
  config.num_zips = 1055;
  config.num_months = 12;

  bench::Header("E3: Section 4 bounds experiment (telephony)");
  std::printf(
      "customers=%zu zips=%zu months=%zu plans=%zu "
      "(COBRA_E3_CUSTOMERS overrides; paper scale = 1000000)\n",
      config.num_customers, config.num_zips, config.num_months,
      data::DefaultPlans().size());

  util::Timer timer;
  rel::Database db = data::GenerateTelephony(config);
  data::InstrumentTelephony(&db).CheckOK();
  std::printf("generate+instrument: %.2fs\n", timer.ElapsedSeconds());

  timer.Reset();
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery()).ValueOrDie();
  prov::PolySet provenance = result.Provenance();
  std::printf("provenance query:    %.2fs\n", timer.ElapsedSeconds());

  std::printf("\nfull provenance size: %zu monomials (paper: 139260)%s\n",
              provenance.TotalMonomials(),
              provenance.TotalMonomials() == 139260 ? "  [exact match]" : "");

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();

  const PaperRow rows[] = {{94'600, 88'620, 47.0}, {38'600, 37'980, 79.0}};
  std::printf(
      "\n%-8s | %-14s %-14s | %-10s %-12s | %-10s %-10s\n", "bound",
      "size (ours)", "size (paper)", "vars", "cut", "speedup", "paper");
  for (const PaperRow& row : rows) {
    session.SetBound(row.bound);
    core::CompressionReport report = session.Compress().ValueOrDie();
    // Scenario: March prices -20% via the meta-variables.
    session.SetMetaValue("m3", 0.8).CheckOK();
    core::AssignReport assign = session.Assign(/*timing_reps=*/20).ValueOrDie();
    std::printf("%-8zu | %-14zu %-14zu | %-10zu %-12zu | %9.0f%% %9.0f%%\n",
                row.bound, report.compressed_size, row.paper_size,
                report.compressed_variables,
                session.abstraction().meta_vars.size(),
                assign.timing.SpeedupPercent(), row.paper_speedup);
    std::printf(
        "         cut: %s\n         solve=%.3fs apply=%.3fs "
        "assignment: full=%.1fus compressed=%.1fus  max_rel_err=%.2g\n",
        report.cut_description.c_str(), report.solve_seconds,
        report.apply_seconds, assign.timing.full_seconds * 1e6,
        assign.timing.compressed_seconds * 1e6, assign.delta.max_rel_error);
  }
  std::printf(
      "\nNote: sizes must match the paper exactly (they are combinatorial);\n"
      "speedups are hardware-dependent — the paper reports 47%% / 79%% on\n"
      "its demo machine, the shape (higher compression -> higher speedup)\n"
      "is what reproduces.\n");
}

}  // namespace

int main() {
  RunE3();
  return 0;
}
