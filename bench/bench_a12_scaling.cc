// Ablation A12 — SoA execution images, 16-lane kernels, and multi-core
// scaling (per-order TPC-H).
//
// PR 9's blocked kernel (the A7/A9 baseline) walks the EvalProgram's
// compile-time AoS arrays at 8 lanes. This bench measures what the
// plan-time re-layout buys on top of it:
//
//   (a) baseline: kBlocked, 8 lanes, AoS arrays, prefetch off — the PR-9
//       kernel, pinned so kAuto's re-fit policy cannot re-route it;
//   (b) soa8:  kBlocked, 8 lanes, SoA execution image (lane-contiguous,
//       cache-line-aligned copies + fused count streams), default
//       software prefetch;
//   (c) soa16: same image, 16-lane kernel — the widest compiled width.
//
// Every configuration must stay bit-identical to the scalar sparse-delta
// engine (the reference semantics), and the best SoA configuration must
// be >= 1.3x the baseline (the ISSUE acceptance gate).
//
// The second half is the multi-core scaling gate: the best configuration
// re-runs at 1, hw/2 and hw threads. When the host has >= 2 hardware
// threads the hw-thread sweep must be >= 1.6x the single-thread one;
// on a 1-core box the gate cannot be armed and is skipped with a visible
// notice (CI greps for it and surfaces a ::notice annotation).
//
// A machine-readable BENCH_a12.json lands next to the human output.
//
// Knobs: COBRA_A12_SCENARIOS (1024), COBRA_A12_SF (0.03, TPC-H scale
//        factor), COBRA_A12_BUCKET (128 orders per tree bucket),
//        COBRA_A12_BOUND_PCT (60), COBRA_A12_DELTAS (32, overrides per
//        scenario — wide unions are where halving the block count pays),
//        COBRA_A12_REPS (11, best-of interleaved timing rounds),
//        COBRA_A12_PREFETCH (8, cache lines ahead for the SoA kernels),
//        COBRA_A12_MIN_SPEEDUP (1.3), COBRA_A12_MIN_MT (1.6).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"

namespace {

using namespace cobra;

core::ScenarioSet MakeScenarios(const core::Session& session, std::size_t n,
                                std::size_t deltas) {
  const std::vector<core::MetaVar>& meta = session.meta_vars();
  if (meta.empty()) {
    std::fprintf(stderr, "no meta-variables to perturb (leaf-only cut?)\n");
    std::exit(1);
  }
  core::ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("whatif-" + std::to_string(i)).ValueOrDie();
    for (std::size_t d = 0; d < std::max<std::size_t>(1, deltas); ++d) {
      s.Set(meta[(i + d * 131) % meta.size()].name,
            1.0 + 0.01 * static_cast<double>((i + d) % 40 + 1));
    }
  }
  return set;
}

/// Bitwise comparison between two batched reports (the sweep contract is
/// bit-identity, not tolerance).
bool BitIdentical(const core::BatchAssignReport& a,
                  const core::BatchAssignReport& b) {
  if (a.reports.size() != b.reports.size()) return false;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    if (ra.size() != rb.size()) return false;
    for (std::size_t r = 0; r < ra.size(); ++r) {
      if (std::memcmp(&ra[r].full, &rb[r].full, sizeof(double)) != 0 ||
          std::memcmp(&ra[r].compressed, &rb[r].compressed,
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t num_scenarios =
      bench::EnvSize("COBRA_A12_SCENARIOS", 1024);
  const double scale_factor = bench::EnvDouble("COBRA_A12_SF", 0.03);
  const std::size_t bucket_size = bench::EnvSize("COBRA_A12_BUCKET", 128);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A12_BOUND_PCT", 60);
  const std::size_t reps = bench::EnvSize("COBRA_A12_REPS", 11);
  const std::size_t deltas = bench::EnvSize("COBRA_A12_DELTAS", 32);
  const std::size_t prefetch = bench::EnvSize("COBRA_A12_PREFETCH", 8);
  const double min_speedup = bench::EnvDouble("COBRA_A12_MIN_SPEEDUP", 1.3);
  const double min_mt = bench::EnvDouble("COBRA_A12_MIN_MT", 1.6);

  bench::Header("A12: SoA images, 16-lane kernels, multi-core scaling");

  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByOrder(&db).CheckOK();
  const std::size_t num_orders = config.NumOrders();

  // The A7 workload: per-order instrumentation (high-cardinality pool),
  // Q6-style filter — the program is large enough that the sweep is a
  // long contiguous scan, which is exactly what the SoA re-layout and the
  // prefetch distance target.
  const char* sql =
      "SELECT l_returnflag, SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 "
      "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24 "
      "GROUP BY l_returnflag";
  prov::PolySet provenance =
      rel::sql::RunSql(db, sql).ValueOrDie().Provenance(0);
  std::printf(
      "workload: per-order Q6 at SF %.3g — %zu monomials, %zu distinct "
      "variables, pool %zu\n",
      scale_factor, provenance.TotalMonomials(),
      provenance.NumDistinctVariables(), db.var_pool()->size());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::OrderBucketTreeText(num_orders, bucket_size))
      .CheckOK();
  session.SetBound(std::max<std::size_t>(
      1, session.full().TotalMonomials() * bound_pct / 100));
  core::CompressionReport report =
      session.Compress(core::Algorithm::kGreedy).ValueOrDie();
  std::printf("compressed: %zu -> %zu monomials (%zu meta-vars)\n",
              report.original_size, report.compressed_size,
              session.meta_vars().size());

  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();
  core::ScenarioSet scenarios = MakeScenarios(session, num_scenarios, deltas);

  // Reference semantics: the scalar sparse-delta engine.
  core::BatchOptions sparse;
  sparse.num_threads = 1;
  sparse.sweep = core::BatchOptions::Sweep::kSparseDelta;
  core::BatchAssignReport reference =
      snapshot->AssignBatch(scenarios, sparse).ValueOrDie();

  struct Config {
    const char* name;
    std::size_t lanes;
    core::BatchOptions::Layout layout;
    std::size_t prefetch_distance;
  };
  const Config configs[] = {
      {"aos8 (PR-9 baseline)", 8, core::BatchOptions::Layout::kAoS, 0},
      {"soa8", 8, core::BatchOptions::Layout::kSoA, prefetch},
      {"soa16", 16, core::BatchOptions::Layout::kSoA, prefetch},
  };

  // The three configurations are timed in interleaved rounds (one rep of
  // each per round, best-of across rounds) rather than three sequential
  // best-of phases: on a shared box, a slow system phase then skews one
  // config's whole measurement and flips the ratio gate spuriously.
  // Interleaving exposes every config to the same noise.
  double seconds[3] = {HUGE_VAL, HUGE_VAL, HUGE_VAL};
  bool identical = true;
  bool config_identical[3] = {true, true, true};
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, reps); ++rep) {
    for (std::size_t c = 0; c < 3; ++c) {
      core::BatchOptions options;
      options.num_threads = 1;
      options.sweep = core::BatchOptions::Sweep::kBlocked;
      options.block_lanes = configs[c].lanes;
      options.layout = configs[c].layout;
      options.prefetch_distance = configs[c].prefetch_distance;
      core::BatchAssignReport batch;
      seconds[c] = std::min(seconds[c], bench::TimeSeconds([&] {
                     batch = snapshot->AssignBatch(scenarios, options)
                                 .ValueOrDie();
                   }));
      const bool same = BitIdentical(reference, batch);
      identical = identical && same;
      config_identical[c] = config_identical[c] && same;
    }
  }
  std::printf("\n%-24s %12s %16s %10s\n", "config", "best (ms)",
              "per scenario", "identical");
  for (std::size_t c = 0; c < 3; ++c) {
    std::printf("%-24s %12.2f %14.2fus %10s\n", configs[c].name,
                seconds[c] * 1e3,
                seconds[c] * 1e6 / static_cast<double>(num_scenarios),
                config_identical[c] ? "yes" : "NO");
  }

  const double soa_best = std::min(seconds[1], seconds[2]);
  const double soa_vs_aos = bench::Ratio(seconds[0], soa_best);
  const std::size_t best_index = seconds[1] <= seconds[2] ? 1 : 2;
  std::printf("\nbest SoA config: %s — %.2fx vs %s\n",
              configs[best_index].name, soa_vs_aos, configs[0].name);

  // Multi-core scaling sweep on the best SoA configuration. The thread
  // counts are 1, hw/2 and hw; duplicates collapse on small hosts.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts = {1};
  if (hw / 2 > 1) thread_counts.push_back(hw / 2);
  if (hw > 1) thread_counts.push_back(hw);
  core::BatchOptions best_options;
  best_options.sweep = core::BatchOptions::Sweep::kBlocked;
  best_options.block_lanes = configs[best_index].lanes;
  best_options.layout = configs[best_index].layout;
  best_options.prefetch_distance = configs[best_index].prefetch_distance;

  std::printf("\n%-24s %12s %16s\n", "threads", "best (ms)", "scenarios/sec");
  double t1_seconds = 0.0;
  double thw_seconds = 0.0;
  for (std::size_t threads : thread_counts) {
    core::BatchOptions options = best_options;
    options.num_threads = threads;
    core::BatchAssignReport batch;
    const double elapsed =
        bench::BestOfSeconds(std::max<std::size_t>(1, reps), [&] {
          batch = snapshot->AssignBatch(scenarios, options).ValueOrDie();
        });
    identical = identical && BitIdentical(reference, batch);
    if (threads == 1) t1_seconds = elapsed;
    if (threads == hw) thw_seconds = elapsed;
    std::printf("%-24zu %12.2f %16.0f\n", threads, elapsed * 1e3,
                bench::Ratio(static_cast<double>(num_scenarios), elapsed));
  }
  const bool mt_gate_armed = hw >= 2;
  const double mt_scaling =
      mt_gate_armed ? bench::Ratio(t1_seconds, thw_seconds) : 0.0;

  bench::JsonObject json;
  json.Add("bench", std::string("a12_scaling"));
  json.Add("scenarios", num_scenarios);
  json.Add("scale_factor", scale_factor);
  json.Add("monomials_full", snapshot->full_size());
  json.Add("monomials_compressed", snapshot->compressed_size());
  json.Add("pool_size", snapshot->pool_size());
  json.Add("prefetch_distance", prefetch);
  json.Add("aos8_seconds", seconds[0]);
  json.Add("soa8_seconds", seconds[1]);
  json.Add("soa16_seconds", seconds[2]);
  json.Add("best_soa_config", std::string(configs[best_index].name));
  json.Add("soa_vs_aos", soa_vs_aos);
  json.Add("hardware_threads", hw);
  json.Add("t1_seconds", t1_seconds);
  json.Add("thw_seconds", thw_seconds);
  json.Add("mt_gate_armed", mt_gate_armed);
  json.Add("mt_scaling", mt_scaling);
  json.Add("identical", identical);
  json.WriteFile("BENCH_a12.json");

  bench::GateSet gates;
  gates.Require("identical", identical);
  gates.Require("soa_vs_aos>=1.3x", soa_vs_aos >= min_speedup);
  if (mt_gate_armed) {
    gates.Require("multi_core_scaling>=1.6x", mt_scaling >= min_mt);
  } else {
    gates.Skip("multi_core_scaling>=1.6x",
               "host has 1 hardware thread; nothing to scale across");
  }
  gates.Print();
  return gates.ExitCode();
}
