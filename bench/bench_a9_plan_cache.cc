// Ablation A9 — plan-once/execute-many: the BatchPlan cache.
//
// COBRA's premise is paying a one-time abstraction cost so that many
// hypothetical scenarios evaluate cheaply. The BatchPlan layer applies the
// same idea to the serving path itself: scenario compilation (name→id
// resolution into sorted override lists), the per-block override-union
// tables, the adaptive engine choice and the tile schedule are *planned
// once* and cached on the CompiledSession keyed by the scenario set's
// content fingerprint, so a serving tier replaying the same scenario set —
// a replica refreshing answers against new defaults, a dashboard polling
// the same what-if panel — skips straight to the sweep.
//
// The bench builds the high-cardinality per-order TPC-H workload (large
// variable pool, small surviving provenance — the shape where planning is
// a real fraction of a batch call), then measures
//
//   (a) cold AssignBatch: plan cache cleared before every call, so each
//       call re-fingerprints, recompiles every scenario, rebuilds block
//       tables and schedules;
//   (b) warm AssignBatch: the same call again with the plan cached — one
//       fingerprint pass plus the sweep;
//
// best-of-R for both, and exits non-zero unless warm is >= 1.5x cold at the
// default 1024 scenarios AND results are bit-identical across
// kAuto/kBlocked/kSparseDelta/kDenseCopy and across cold vs warm plans.
// A machine-readable BENCH_a9.json lands next to the human output.
//
// Knobs: COBRA_A9_SCENARIOS (1024), COBRA_A9_SF (0.01, TPC-H scale factor),
//        COBRA_A9_THREADS (0 = hardware), COBRA_A9_BUCKET (128 orders per
//        tree bucket), COBRA_A9_BOUND_PCT (60), COBRA_A9_DELTAS (12
//        overrides per scenario), COBRA_A9_REPS (5 best-of repetitions),
//        COBRA_A9_MT_THREADS (hardware, floored at 2 — the extra warm run
//        exercising the multi-threaded tile pool).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

namespace {

using namespace cobra;

/// Scenarios with wide override lists: `deltas` perturbations each, cycling
/// through the meta-variables — the planning-heavy shape (every delta is one
/// name→id resolution at plan time).
core::ScenarioSet MakeScenarios(const core::Session& session, std::size_t n,
                                std::size_t deltas) {
  const std::vector<core::MetaVar>& meta = session.meta_vars();
  if (meta.empty()) {
    std::fprintf(stderr, "no meta-variables to perturb (leaf-only cut?)\n");
    std::exit(1);
  }
  core::ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("replay-" + std::to_string(i)).ValueOrDie();
    for (std::size_t d = 0; d < deltas; ++d) {
      s.Set(meta[(i * 7 + d * 13) % meta.size()].name,
            1.0 + 0.01 * static_cast<double>((i + d) % 40 + 1));
    }
  }
  return set;
}

/// Largest absolute per-group difference between two batched reports.
double MaxBatchDifference(const core::BatchAssignReport& a,
                          const core::BatchAssignReport& b) {
  if (a.reports.size() != b.reports.size()) return HUGE_VAL;
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    if (ra.size() != rb.size()) return HUGE_VAL;
    for (std::size_t r = 0; r < ra.size(); ++r) {
      max_diff = std::max(max_diff, std::fabs(ra[r].full - rb[r].full));
      max_diff =
          std::max(max_diff, std::fabs(ra[r].compressed - rb[r].compressed));
    }
  }
  return max_diff;
}

}  // namespace

int main() {
  const std::size_t num_scenarios = bench::EnvSize("COBRA_A9_SCENARIOS", 1024);
  const double scale_factor = bench::EnvDouble("COBRA_A9_SF", 0.01);
  const std::size_t num_threads = bench::EnvSize("COBRA_A9_THREADS", 0);
  const std::size_t bucket_size = bench::EnvSize("COBRA_A9_BUCKET", 128);
  const std::size_t bound_pct = bench::EnvSize("COBRA_A9_BOUND_PCT", 60);
  const std::size_t deltas = bench::EnvSize("COBRA_A9_DELTAS", 12);
  const std::size_t reps = std::max<std::size_t>(
      1, bench::EnvSize("COBRA_A9_REPS", 5));

  bench::Header("A9: plan-once/execute-many (BatchPlan cache)");

  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByOrder(&db).CheckOK();
  const std::size_t num_orders = config.NumOrders();

  const char* sql =
      "SELECT l_returnflag, SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 "
      "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24 "
      "GROUP BY l_returnflag";
  prov::PolySet provenance =
      rel::sql::RunSql(db, sql).ValueOrDie().Provenance(0);
  std::printf(
      "workload: per-order Q6 at SF %.3g — %zu monomials, pool %zu\n",
      scale_factor, provenance.TotalMonomials(), db.var_pool()->size());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::OrderBucketTreeText(num_orders, bucket_size))
      .CheckOK();
  std::size_t bound = std::max<std::size_t>(
      1, session.full().TotalMonomials() * bound_pct / 100);
  session.SetBound(bound);
  core::CompressionReport report =
      session.Compress(core::Algorithm::kGreedy).ValueOrDie();
  std::printf("compressed: %zu -> %zu monomials (%zu meta-vars), %zu deltas "
              "per scenario\n",
              report.original_size, report.compressed_size,
              session.meta_vars().size(), deltas);

  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();
  core::ScenarioSet scenarios = MakeScenarios(session, num_scenarios, deltas);

  core::BatchOptions options;  // Sweep::kAuto — the adaptive default
  options.num_threads = num_threads;

  // Warm-up + bit-identity corpus: one kAuto batch (cold), its replay
  // (warm), and every explicit engine.
  core::BatchAssignReport auto_cold =
      snapshot->AssignBatch(scenarios, options).ValueOrDie();
  core::BatchAssignReport auto_warm =
      snapshot->AssignBatch(scenarios, options).ValueOrDie();
  if (!auto_warm.plan_cache_hit) {
    std::fprintf(stderr, "expected the replay to hit the plan cache\n");
    return 1;
  }
  double max_diff = MaxBatchDifference(auto_cold, auto_warm);
  for (core::BatchOptions::Sweep sweep :
       {core::BatchOptions::Sweep::kBlocked,
        core::BatchOptions::Sweep::kSparseDelta,
        core::BatchOptions::Sweep::kDenseCopy}) {
    core::BatchOptions pinned = options;
    pinned.sweep = sweep;
    core::BatchAssignReport batch =
        snapshot->AssignBatch(scenarios, pinned).ValueOrDie();
    max_diff = std::max(max_diff, MaxBatchDifference(auto_cold, batch));
  }

  // Best-of-R cold (cache cleared before each call) vs warm (cached plan).
  double cold_seconds = HUGE_VAL;
  double warm_seconds = HUGE_VAL;
  for (std::size_t r = 0; r < reps; ++r) {
    snapshot->ClearPlanCache();
    core::BatchAssignReport cold;
    cold_seconds = std::min(cold_seconds, bench::TimeSeconds([&] {
      cold = snapshot->AssignBatch(scenarios, options).ValueOrDie();
    }));
    if (cold.plan_cache_hit) {
      std::fprintf(stderr, "cold call unexpectedly hit the plan cache\n");
      return 1;
    }
    core::BatchAssignReport warm;
    warm_seconds = std::min(warm_seconds, bench::TimeSeconds([&] {
      warm = snapshot->AssignBatch(scenarios, options).ValueOrDie();
    }));
    if (!warm.plan_cache_hit) {
      std::fprintf(stderr, "warm call missed the plan cache\n");
      return 1;
    }
    max_diff = std::max(max_diff, MaxBatchDifference(cold, warm));
  }

  // Multi-threaded coverage: one warm replay with threads > 1 drives the
  // work-stealing tile pool (a single-threaded run never spawns it) and
  // must stay bit-identical — the fixed-order partial reduction makes the
  // result schedule-independent. COBRA_A9_MT_THREADS (default: hardware,
  // floored at 2 so single-core hosts still exercise the pool).
  const std::size_t mt_threads = std::max<std::size_t>(
      2, bench::EnvSize("COBRA_A9_MT_THREADS",
                        std::thread::hardware_concurrency()));
  core::BatchOptions options_mt = options;
  options_mt.num_threads = mt_threads;
  snapshot->AssignBatch(scenarios, options_mt).ValueOrDie();  // plan + warm
  core::BatchAssignReport warm_mt;
  const double warm_mt_seconds = bench::TimeSeconds([&] {
    warm_mt = snapshot->AssignBatch(scenarios, options_mt).ValueOrDie();
  });
  if (!warm_mt.plan_cache_hit) {
    std::fprintf(stderr, "multi-threaded warm call missed the plan cache\n");
    return 1;
  }
  max_diff = std::max(max_diff, MaxBatchDifference(auto_cold, warm_mt));

  const double warm_speedup = bench::Ratio(cold_seconds, warm_seconds);
  const core::CompiledSession::PlanCacheStats stats =
      snapshot->plan_cache_stats();

  std::printf("\n%-28s %12s %16s\n", "mode", "total (ms)", "per scenario");
  std::printf("%-28s %12.3f %14.2fus\n", "cold (plan + execute)",
              cold_seconds * 1e3,
              cold_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.3f %14.2fus\n", "warm (cached plan)",
              warm_seconds * 1e3,
              warm_seconds * 1e6 / static_cast<double>(num_scenarios));
  std::printf("%-28s %12.3f %14.2fus  (threads=%zu)\n", "warm (mt)",
              warm_mt_seconds * 1e3,
              warm_mt_seconds * 1e6 / static_cast<double>(num_scenarios),
              warm_mt.num_threads);
  std::printf(
      "\nscenarios=%zu threads=%zu engine=%s lanes=%zu  warm vs cold=%.2fx\n"
      "plan cache: %zu entries, %llu hits, %llu misses  max |diff|=%g\n",
      num_scenarios, auto_warm.num_threads, core::SweepName(auto_warm.engine),
      auto_warm.block_lanes, warm_speedup, stats.entries,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), max_diff);
  std::printf("result check: %s (kAuto/kBlocked/kSparseDelta/kDenseCopy, "
              "cold vs warm)\n",
              max_diff == 0.0 ? "IDENTICAL" : "MISMATCH");

  bench::JsonObject json;
  json.Add("bench", std::string("a9_plan_cache"));
  json.Add("scenarios", num_scenarios);
  json.Add("threads", auto_warm.num_threads);
  json.Add("deltas_per_scenario", deltas);
  json.Add("scale_factor", scale_factor);
  json.Add("engine", std::string(core::SweepName(auto_warm.engine)));
  json.Add("lanes", auto_warm.block_lanes);
  json.Add("monomials_full", snapshot->full_size());
  json.Add("monomials_compressed", snapshot->compressed_size());
  json.Add("cold_seconds", cold_seconds);
  json.Add("warm_seconds", warm_seconds);
  json.Add("threads_mt", warm_mt.num_threads);
  json.Add("warm_seconds_mt", warm_mt_seconds);
  json.Add("warm_speedup", warm_speedup);
  json.Add("max_diff", max_diff);
  json.Add("identical", max_diff == 0.0);
  json.WriteFile("BENCH_a9.json");

  bench::GateSet gates;
  gates.Require("identical", max_diff == 0.0);
  gates.Require("warm_vs_cold>=1.5x", warm_speedup >= 1.5);
  gates.Print();
  return gates.ExitCode();
}
