// Ablation A5 — the effect of abstraction-tree shape.
//
// The same variables and the same provenance can be organized into
// different ontologies: a flat tree (root over all leaves), a binary
// balanced tree, a wide 2-level tree, or a skewed "caterpillar". Shape
// determines which intermediate groupings exist, and therefore how
// gracefully expressiveness degrades as the bound tightens. This bench
// fixes the provenance (a telephony-shaped workload over 64 variables) and
// sweeps bounds per shape, reporting retained variables.

#include <cstdio>

#include "bench_util.h"
#include "core/dp_optimal.h"
#include "core/profile.h"
#include "prov/polynomial.h"
#include "util/rng.h"

namespace {

using namespace cobra;

constexpr std::size_t kLeaves = 64;

std::vector<std::string> LeafNames() {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kLeaves; ++i) {
    names.push_back("x" + std::to_string(i));
  }
  return names;
}

core::AbstractionTree FlatTree(prov::VarPool* pool) {
  core::AbstractionTree tree;
  core::NodeId root = tree.AddRoot("root");
  for (const std::string& name : LeafNames()) {
    tree.AddLeaf(root, name, pool);
  }
  return tree;
}

core::AbstractionTree BinaryTree(prov::VarPool* pool) {
  core::AbstractionTree tree;
  core::NodeId root = tree.AddRoot("root");
  std::size_t groups = 0;
  // Recursive bisection over the leaf range.
  struct Range {
    core::NodeId parent;
    std::size_t lo, hi;
  };
  std::vector<Range> stack{{root, 0, kLeaves}};
  std::vector<std::string> names = LeafNames();
  while (!stack.empty()) {
    Range r = stack.back();
    stack.pop_back();
    if (r.hi - r.lo == 1) {
      tree.AddLeaf(r.parent, names[r.lo], pool);
      continue;
    }
    std::size_t mid = (r.lo + r.hi) / 2;
    core::NodeId left = tree.AddChild(r.parent, "g" + std::to_string(groups++));
    core::NodeId right = tree.AddChild(r.parent, "g" + std::to_string(groups++));
    stack.push_back({left, r.lo, mid});
    stack.push_back({right, mid, r.hi});
  }
  return tree;
}

core::AbstractionTree WideTree(prov::VarPool* pool, std::size_t fanout) {
  core::AbstractionTree tree;
  core::NodeId root = tree.AddRoot("root");
  std::vector<std::string> names = LeafNames();
  std::size_t groups = 0;
  for (std::size_t start = 0; start < kLeaves; start += fanout) {
    core::NodeId group = tree.AddChild(root, "g" + std::to_string(groups++));
    for (std::size_t i = start; i < std::min(start + fanout, kLeaves); ++i) {
      tree.AddLeaf(group, names[i], pool);
    }
  }
  return tree;
}

core::AbstractionTree CaterpillarTree(prov::VarPool* pool) {
  core::AbstractionTree tree;
  core::NodeId spine = tree.AddRoot("root");
  std::vector<std::string> names = LeafNames();
  for (std::size_t i = 0; i + 1 < kLeaves; ++i) {
    tree.AddLeaf(spine, names[i], pool);
    if (i + 2 < kLeaves) {
      spine = tree.AddChild(spine, "g" + std::to_string(i));
    }
  }
  tree.AddLeaf(spine, names[kLeaves - 1], pool);
  return tree;
}

prov::PolySet MakeProvenance(const prov::VarPool& pool) {
  // Telephony-shaped: every group polynomial holds every (leaf, month)
  // combination. All leaves then have identical residue sets, so every
  // tree node weighs the same and a cut of n nodes always costs n/64 of
  // the full size — which isolates the *shape* effect: what matters is
  // which cut sizes the ontology makes reachable.
  util::Rng rng(99);
  prov::PolySet set;
  std::vector<std::string> names = LeafNames();
  for (std::size_t g = 0; g < 10; ++g) {
    std::vector<prov::Term> terms;
    for (std::size_t i = 0; i < kLeaves; ++i) {
      for (int m = 0; m < 12; ++m) {
        prov::VarId leaf = pool.Find(names[i]);
        prov::VarId month = pool.Find("mo" + std::to_string(m));
        terms.push_back({prov::Monomial::Of(leaf, month),
                         rng.NextDoubleInRange(1.0, 100.0)});
      }
    }
    set.Add("g" + std::to_string(g),
            prov::Polynomial::FromTerms(std::move(terms)));
  }
  return set;
}

void Report(const char* label, const core::AbstractionTree& tree,
            const prov::PolySet& polys, const prov::VarPool& pool) {
  COBRA_CHECK(tree.Validate().ok());
  core::TreeProfile profile =
      core::AnalyzeSingleTree(polys, tree, pool).ValueOrDie();
  std::size_t full = profile.total_monomials;
  std::printf("%-14s nodes=%-5zu cuts=%-10llu |", label, tree.size(),
              static_cast<unsigned long long>(tree.CountCuts()));
  for (double fraction : {0.75, 0.5, 0.25, 0.1}) {
    std::size_t bound =
        static_cast<std::size_t>(static_cast<double>(full) * fraction);
    core::CutSolution s =
        core::OptimalSingleTreeCut(tree, profile, bound).ValueOrDie();
    std::printf("  %4zu%s", s.feasible ? s.num_cut_nodes : 0,
                s.feasible ? "" : "*");
  }
  std::printf("\n");
}

void RunA5() {
  bench::Header("A5: abstraction-tree shape vs retained variables");
  std::printf(
      "fixed provenance: 10 groups x (64 leaf vars x 12 months)\n"
      "columns: retained variables at bound = 75%% / 50%% / 25%% / 10%% of "
      "full size (* = infeasible)\n\n");

  // Each shape gets its own pool so inner-node names cannot collide.
  {
    prov::VarPool pool;
    for (int m = 0; m < 12; ++m) pool.Intern("mo" + std::to_string(m));
    core::AbstractionTree tree = FlatTree(&pool);
    Report("flat", tree, MakeProvenance(pool), pool);
  }
  {
    prov::VarPool pool;
    for (int m = 0; m < 12; ++m) pool.Intern("mo" + std::to_string(m));
    core::AbstractionTree tree = BinaryTree(&pool);
    Report("binary", tree, MakeProvenance(pool), pool);
  }
  {
    prov::VarPool pool;
    for (int m = 0; m < 12; ++m) pool.Intern("mo" + std::to_string(m));
    core::AbstractionTree tree = WideTree(&pool, 8);
    Report("wide(8)", tree, MakeProvenance(pool), pool);
  }
  {
    prov::VarPool pool;
    for (int m = 0; m < 12; ++m) pool.Intern("mo" + std::to_string(m));
    core::AbstractionTree tree = CaterpillarTree(&pool);
    Report("caterpillar", tree, MakeProvenance(pool), pool);
  }

  std::printf(
      "\nReading: a flat tree is all-or-nothing (64 variables or 1); the\n"
      "wide 2-level tree only reaches sizes of the form 64-7a; binary and\n"
      "caterpillar trees reach (almost) every size, so they track the bound\n"
      "tightly. The ontology determines how gracefully expressiveness\n"
      "degrades — why the paper builds tree construction into the demo\n"
      "workflow.\n");
}

}  // namespace

int main() {
  RunA5();
  return 0;
}
