// Tests for rel fundamentals: Value, Schema, Column, Table, AnnotPool,
// Database.

#include <gtest/gtest.h>

#include "prov/parser.h"
#include "rel/annot.h"
#include "rel/database.h"
#include "rel/schema.h"
#include "rel/table.h"
#include "rel/value.h"

namespace cobra::rel {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(std::int64_t{5}).type(), Type::kInt64);
  EXPECT_EQ(Value(2.5).type(), Type::kDouble);
  EXPECT_EQ(Value("hi").type(), Type::kString);
  EXPECT_EQ(Value(std::int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{5}).AsDouble(), 5.0);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(std::int64_t{2}), Value(2.0));
  EXPECT_FALSE(Value(std::int64_t{2}) == Value(2.5));
  EXPECT_FALSE(Value("2") == Value(std::int64_t{2}));
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_LT(Value(1.5), Value(std::int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(std::int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(2.0).ToString(), "2");
  EXPECT_EQ(Value("x").ToString(), "x");
}

TEST(ValueTest, HashConsistentWithinType) {
  EXPECT_EQ(Value(std::int64_t{7}).Hash(), Value(std::int64_t{7}).Hash());
  EXPECT_EQ(Value("s").Hash(), Value("s").Hash());
  EXPECT_NE(Value(std::int64_t{7}).Hash(), Value(std::int64_t{8}).Hash());
}

// ---------- Schema ----------

TEST(SchemaTest, ResolveUnqualifiedAndQualified) {
  Schema s("Cust", {{"ID", Type::kInt64}, {"Zip", Type::kInt64}});
  EXPECT_EQ(s.Resolve("ID").ValueOrDie(), 0u);
  EXPECT_EQ(s.Resolve("Cust.Zip").ValueOrDie(), 1u);
  EXPECT_FALSE(s.Resolve("Other.ID").ok());
  EXPECT_FALSE(s.Resolve("Nope").ok());
}

TEST(SchemaTest, ResolveIsCaseInsensitive) {
  Schema s("Cust", {{"ID", Type::kInt64}});
  EXPECT_TRUE(s.Resolve("id").ok());
  EXPECT_TRUE(s.Resolve("cust.id").ok());
}

TEST(SchemaTest, AmbiguousUnqualifiedFails) {
  Schema joined = Schema::Concat(
      Schema("A", {{"K", Type::kInt64}}), Schema("B", {{"K", Type::kInt64}}));
  EXPECT_FALSE(joined.Resolve("K").ok());
  EXPECT_EQ(joined.Resolve("A.K").ValueOrDie(), 0u);
  EXPECT_EQ(joined.Resolve("B.K").ValueOrDie(), 1u);
}

TEST(SchemaTest, ConcatKeepsQualifiers) {
  Schema joined = Schema::Concat(Schema("A", {{"X", Type::kInt64}}),
                                 Schema("B", {{"Y", Type::kDouble}}));
  EXPECT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined.QualifiedName(0), "A.X");
  EXPECT_EQ(joined.QualifiedName(1), "B.Y");
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s("T", {{"A", Type::kInt64}, {"B", Type::kString}});
  EXPECT_EQ(s.ToString(), "(T.A INT64, T.B STRING)");
}

// ---------- Column / Table ----------

TEST(TableTest, AppendAndGetRows) {
  Table t(Schema("T", {{"A", Type::kInt64},
                       {"B", Type::kDouble},
                       {"C", Type::kString}}));
  t.AppendRow({Value(std::int64_t{1}), Value(1.5), Value("one")});
  t.AppendRow({Value(std::int64_t{2}), Value(2.5), Value("two")});
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Get(1, 0).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(t.Get(0, 1).AsDouble(), 1.5);
  EXPECT_EQ(t.Get(1, 2).AsString(), "two");
  EXPECT_EQ(t.GetRow(0).size(), 3u);
}

TEST(TableTest, ColumnarDirectAppend) {
  Table t(Schema("T", {{"A", Type::kInt64}}));
  t.mutable_column(0)->MutableInts()->assign({1, 2, 3});
  t.CommitAppendedRows(3);
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.column(0).GetInt64(2), 3);
}

TEST(TableTest, IntColumnPromotesToDoubleOnAppend) {
  Table t(Schema("T", {{"D", Type::kDouble}}));
  t.AppendRow({Value(std::int64_t{3})});
  EXPECT_DOUBLE_EQ(t.Get(0, 0).AsDouble(), 3.0);
}

TEST(TableTest, ToStringTruncates) {
  Table t(Schema("T", {{"A", Type::kInt64}}));
  for (std::int64_t i = 0; i < 30; ++i) t.AppendRow({Value(i)});
  std::string s = t.ToString(5);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

// ---------- AnnotPool ----------

class AnnotPoolTest : public ::testing::Test {
 protected:
  prov::Polynomial Parse(const char* text) {
    return prov::ParsePolynomial(text, &vars_).ValueOrDie();
  }
  prov::VarPool vars_;
  AnnotPool pool_;
};

TEST_F(AnnotPoolTest, IdZeroIsOne) {
  EXPECT_EQ(pool_.Get(AnnotPool::kOne), Parse("1"));
}

TEST_F(AnnotPoolTest, InternDeduplicates) {
  AnnotId a = pool_.Intern(Parse("x * y"));
  AnnotId b = pool_.Intern(Parse("y * x"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, pool_.Intern(Parse("x")));
}

TEST_F(AnnotPoolTest, ProductMemoizedAndCorrect) {
  AnnotId x = pool_.InternVar(vars_.Intern("x"));
  AnnotId y = pool_.InternVar(vars_.Intern("y"));
  AnnotId xy = pool_.Product(x, y);
  EXPECT_EQ(pool_.Get(xy), Parse("x * y"));
  EXPECT_EQ(pool_.Product(y, x), xy);          // commutes via canonical key
  EXPECT_EQ(pool_.Product(x, AnnotPool::kOne), x);  // identity fast path
  EXPECT_EQ(pool_.Product(AnnotPool::kOne, y), y);
}

TEST_F(AnnotPoolTest, SumCorrect) {
  AnnotId x = pool_.InternVar(vars_.Intern("x"));
  AnnotId y = pool_.InternVar(vars_.Intern("y"));
  EXPECT_EQ(pool_.Get(pool_.Sum(x, y)), Parse("x + y"));
  EXPECT_EQ(pool_.Get(pool_.Sum(x, x)), Parse("2 * x"));
}

// ---------- Database ----------

TEST(DatabaseTest, AddAndGetTables) {
  Database db;
  Table t(Schema("T", {{"A", Type::kInt64}}));
  t.AppendRow({Value(std::int64_t{1})});
  ASSERT_TRUE(db.AddTable("T", std::move(t)).ok());
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_FALSE(db.HasTable("U"));
  const AnnotatedTable* at = db.GetTable("T").ValueOrDie();
  EXPECT_EQ(at->NumRows(), 1u);
  EXPECT_EQ(at->annots[0], AnnotPool::kOne);
  EXPECT_FALSE(db.GetTable("U").ok());
}

TEST(DatabaseTest, RejectsDuplicateNames) {
  Database db;
  ASSERT_TRUE(db.AddTable("T", Table(Schema("T", {{"A", Type::kInt64}}))).ok());
  EXPECT_FALSE(db.AddTable("T", Table(Schema("T", {{"A", Type::kInt64}}))).ok());
}

TEST(DatabaseTest, RejectsForeignPoolAnnotatedTable) {
  Database db1, db2;
  Table t(Schema("T", {{"A", Type::kInt64}}));
  AnnotatedTable at = AnnotatedTable::FromTable(std::move(t), db2.annot_pool());
  EXPECT_FALSE(db1.AddAnnotatedTable("T", std::move(at)).ok());
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  db.AddTable("b", Table(Schema("b", {{"A", Type::kInt64}}))).CheckOK();
  db.AddTable("a", Table(Schema("a", {{"A", Type::kInt64}}))).CheckOK();
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace cobra::rel
