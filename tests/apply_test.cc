// Tests for ApplyCut: substitution, meta-variable bookkeeping, merging,
// and the paper's default meta-valuation (average of abstracted values).

#include "core/apply.h"

#include <gtest/gtest.h>

#include "data/example_db.h"
#include "prov/parser.h"

namespace cobra::core {
namespace {

class ApplyTest : public ::testing::Test {
 protected:
  void Load() {
    tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    polys_ = prov::ParsePolySet(data::kExamplePolynomialsText, &pool_)
                 .ValueOrDie();
  }

  prov::Polynomial Parse(const char* text) {
    return prov::ParsePolynomial(text, &pool_).ValueOrDie();
  }

  prov::VarPool pool_;
  AbstractionTree tree_;
  prov::PolySet polys_;
};

TEST_F(ApplyTest, Example4CutS1OnP1) {
  Load();
  Cut s1 = Cut::FromNames(tree_, {"Business", "Special", "Standard"})
               .ValueOrDie();
  Abstraction abs = ApplyCut(polys_, tree_, s1, &pool_).ValueOrDie();
  // Paper: P1 under S1 (St=Standard, Sp=Special):
  // 208.8*St*m1 + 240*St*m3 + 245.3*Sp*m1 + 211.15*Sp*m3.
  const prov::Polynomial& p1 = abs.compressed.poly(0);
  EXPECT_EQ(p1.NumMonomials(), 4u);
  EXPECT_TRUE(p1.AlmostEquals(
      Parse("208.8 * Standard * m1 + 240 * Standard * m3 + "
            "245.3 * Special * m1 + 211.15 * Special * m3"),
      1e-9));
  EXPECT_EQ(p1.Variables().size(), 4u);  // St, Sp, m1, m3
}

TEST_F(ApplyTest, Example4CutS5CollapsesToTwoMonomials) {
  Load();
  Cut s5 = Cut::FromNames(tree_, {"Plans"}).ValueOrDie();
  Abstraction abs = ApplyCut(polys_, tree_, s5, &pool_).ValueOrDie();
  const prov::Polynomial& p1 = abs.compressed.poly(0);
  // Paper prints 466.1*Plans*m1 + 451.15*Plans*m3 (two monomials, three
  // variables). The m1 coefficient as printed is a typo: the P1 m1
  // coefficients sum to 208.8+127.4+75.9+42 = 454.1 (the m3 figure 451.15
  // is exact). See EXPERIMENTS.md.
  EXPECT_EQ(p1.NumMonomials(), 2u);
  EXPECT_TRUE(p1.AlmostEquals(
      Parse("454.1 * Plans * m1 + 451.15 * Plans * m3"), 1e-9));
  EXPECT_EQ(p1.Variables().size(), 3u);
}

TEST_F(ApplyTest, LeafCutIsIdentity) {
  Load();
  Abstraction abs =
      ApplyCut(polys_, tree_, Cut::Leaves(tree_), &pool_).ValueOrDie();
  EXPECT_EQ(abs.compressed.poly(0), polys_.poly(0));
  EXPECT_EQ(abs.compressed.poly(1), polys_.poly(1));
  EXPECT_EQ(abs.compressed_size, 14u);
  // Leaf meta-vars keep their original variables.
  for (const MetaVar& mv : abs.meta_vars) {
    EXPECT_EQ(mv.leaves.size(), 1u);
    EXPECT_EQ(mv.var, mv.leaves[0]);
  }
}

TEST_F(ApplyTest, MetaVarBookkeeping) {
  Load();
  Cut s1 = Cut::FromNames(tree_, {"Business", "Special", "Standard"})
               .ValueOrDie();
  Abstraction abs = ApplyCut(polys_, tree_, s1, &pool_).ValueOrDie();
  ASSERT_EQ(abs.meta_vars.size(), 3u);
  // Cut nodes are sorted by id; find "Business".
  const MetaVar* business = nullptr;
  for (const MetaVar& mv : abs.meta_vars) {
    if (mv.name == "Business") business = &mv;
  }
  ASSERT_NE(business, nullptr);
  EXPECT_EQ(business->leaves.size(), 3u);  // b1, b2, e
  EXPECT_EQ(pool_.Name(business->var), "Business");
  // Mapping sends b1 to the Business meta-variable.
  EXPECT_EQ(abs.mapping[pool_.Find("b1")], business->var);
  // Off-tree variables map to themselves.
  EXPECT_EQ(abs.mapping[pool_.Find("m1")], pool_.Find("m1"));
}

TEST_F(ApplyTest, InvalidCutRejected) {
  Load();
  Cut bad({tree_.FindByName("Business")});
  EXPECT_FALSE(ApplyCut(polys_, tree_, bad, &pool_).ok());
}

TEST_F(ApplyTest, DefaultMetaValuationAveragesLeaves) {
  Load();
  Cut s1 = Cut::FromNames(tree_, {"Business", "Special", "Standard"})
               .ValueOrDie();
  Abstraction abs = ApplyCut(polys_, tree_, s1, &pool_).ValueOrDie();

  prov::Valuation base(pool_);
  base.SetByName(pool_, "b1", 2.0).CheckOK();
  base.SetByName(pool_, "b2", 4.0).CheckOK();
  base.SetByName(pool_, "e", 6.0).CheckOK();
  base.SetByName(pool_, "m1", 0.5).CheckOK();

  prov::Valuation defaults = abs.DefaultMetaValuation(base);
  // Business = avg(2, 4, 6) = 4.
  EXPECT_DOUBLE_EQ(defaults.Get(pool_.Find("Business")), 4.0);
  // Special = avg of six 1.0 defaults = 1.
  EXPECT_DOUBLE_EQ(defaults.Get(pool_.Find("Special")), 1.0);
  // Off-tree variables keep their base value.
  EXPECT_DOUBLE_EQ(defaults.Get(pool_.Find("m1")), 0.5);
}

TEST_F(ApplyTest, CompressedEvalEqualsFullEvalUnderExpansion) {
  Load();
  Cut s1 = Cut::FromNames(tree_, {"Business", "Special", "Standard"})
               .ValueOrDie();
  Abstraction abs = ApplyCut(polys_, tree_, s1, &pool_).ValueOrDie();
  // Assign meta values; expand to leaves; both sides must agree exactly —
  // compression loses granularity, not correctness, for uniform scenarios.
  prov::Valuation meta(pool_.size());
  meta.SetByName(pool_, "Business", 1.10).CheckOK();
  meta.SetByName(pool_, "Special", 0.90).CheckOK();
  meta.SetByName(pool_, "Standard", 1.25).CheckOK();
  meta.SetByName(pool_, "m3", 0.80).CheckOK();
  prov::Valuation full = meta;
  for (const MetaVar& mv : abs.meta_vars) {
    for (prov::VarId leaf : mv.leaves) full.Set(leaf, meta.Get(mv.var));
  }
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    EXPECT_NEAR(polys_.poly(i).Eval(full), abs.compressed.poly(i).Eval(meta),
                1e-9);
  }
}

}  // namespace
}  // namespace cobra::core
