// Tests for ScenarioSet and the batched assignment engine: AssignBatch over
// N scenarios must be result-identical to N sequential Assign() calls, on
// both the full and the compressed provenance, in single- and multi-tree
// mode, and regardless of the thread count.

#include <gtest/gtest.h>

#include <vector>

#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "data/telephony.h"
#include "prov/parser.h"

namespace cobra::core {
namespace {

class AssignBatchTest : public ::testing::Test {
 protected:
  void Load(Session* session) {
    session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
    session->SetTreeText(data::kFigure2TreeText).CheckOK();
  }

  /// Builds `n` scenarios that each perturb one or two of the session's
  /// meta-variables by a scenario-specific factor.
  ScenarioSet MakeScenarios(const Session& session, std::size_t n) {
    const std::vector<MetaVar>& meta = session.meta_vars();
    EXPECT_FALSE(meta.empty());
    ScenarioSet set;
    for (std::size_t i = 0; i < n; ++i) {
      auto s = set.Add("scenario-" + std::to_string(i)).ValueOrDie();
      s.Set(meta[i % meta.size()].name, 1.0 + 0.05 * static_cast<double>(i + 1));
      if (meta.size() > 1) {
        s.Set(meta[(i + 1) % meta.size()].name,
              1.0 - 0.02 * static_cast<double>(i + 1));
      }
    }
    return set;
  }

  /// Runs each scenario through the sequential path: reset to defaults,
  /// apply the deltas, Assign(). Returns the per-scenario deltas.
  std::vector<ResultDelta> SequentialDeltas(Session* session,
                                            const ScenarioSet& scenarios) {
    std::vector<ResultDelta> deltas;
    for (const Scenario& scenario : scenarios.scenarios()) {
      session->ResetMetaValues().CheckOK();
      for (const Scenario::Delta& delta : scenario.deltas) {
        session->SetMetaValue(delta.var, delta.value).CheckOK();
      }
      deltas.push_back(session->Assign(1).ValueOrDie().delta);
    }
    session->ResetMetaValues().CheckOK();
    return deltas;
  }

  void ExpectIdentical(const std::vector<ResultDelta>& sequential,
                       const BatchAssignReport& batch) {
    ASSERT_EQ(batch.reports.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      const ResultDelta& want = sequential[i];
      const ResultDelta& got = batch.reports[i].delta;
      ASSERT_EQ(got.rows.size(), want.rows.size()) << "scenario " << i;
      for (std::size_t r = 0; r < want.rows.size(); ++r) {
        EXPECT_EQ(got.rows[r].label, want.rows[r].label);
        EXPECT_DOUBLE_EQ(got.rows[r].full, want.rows[r].full)
            << "scenario " << i << " row " << r;
        EXPECT_DOUBLE_EQ(got.rows[r].compressed, want.rows[r].compressed)
            << "scenario " << i << " row " << r;
      }
      EXPECT_DOUBLE_EQ(got.max_abs_error, want.max_abs_error);
      EXPECT_DOUBLE_EQ(got.max_rel_error, want.max_rel_error);
    }
  }
};

TEST_F(AssignBatchTest, MatchesSequentialAssignSingleTree) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();

  ScenarioSet scenarios = MakeScenarios(session, 8);
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);
  BatchAssignReport batch = session.AssignBatch(scenarios).ValueOrDie();

  EXPECT_EQ(batch.scenario_names.size(), 8u);
  EXPECT_EQ(batch.scenario_names[0], "scenario-0");
  EXPECT_GE(batch.num_threads, 1u);
  ExpectIdentical(sequential, batch);
  // Sizes mirror the single-scenario report.
  EXPECT_EQ(batch.reports[0].full_size, session.full().TotalMonomials());
  EXPECT_EQ(batch.reports[0].compressed_size,
            session.compressed().TotalMonomials());
}

TEST_F(AssignBatchTest, MatchesSequentialAssignMultiTree) {
  Session session;
  std::string text = "P = ";
  int c = 1;
  for (const char* plan : {"b1", "b2", "e", "p1"}) {
    for (int m = 1; m <= 6; ++m) {
      if (c > 1) text += " + ";
      text += std::to_string(c++) + " * " + plan + " * m" + std::to_string(m);
    }
  }
  text += "\n";
  session.LoadPolynomialsText(text).CheckOK();
  std::vector<AbstractionTree> trees;
  trees.push_back(
      ParseTree(data::kFigure2TreeText, session.mutable_pool()).ValueOrDie());
  trees.push_back(
      ParseTree(data::MonthQuarterTreeText(6), session.mutable_pool())
          .ValueOrDie());
  session.SetTrees(std::move(trees)).CheckOK();
  session.SetBound(8);
  session.Compress().ValueOrDie();

  ScenarioSet scenarios = MakeScenarios(session, 5);
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);
  BatchAssignReport batch = session.AssignBatch(scenarios).ValueOrDie();
  ExpectIdentical(sequential, batch);
}

TEST_F(AssignBatchTest, ThreadCountDoesNotChangeResults) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(session, 7);

  BatchOptions one;
  one.num_threads = 1;
  BatchOptions four;
  four.num_threads = 4;
  four.sweep = BatchOptions::Sweep::kSparseDelta;  // 7 scalar tasks
  BatchOptions blocks;
  blocks.num_threads = 4;
  blocks.sweep = BatchOptions::Sweep::kBlocked;  // pin: kAuto may pick sparse
  blocks.block_lanes = 4;  // 7 scenarios -> 2 blocked tiles
  BatchAssignReport a = session.AssignBatch(scenarios, one).ValueOrDie();
  BatchAssignReport b = session.AssignBatch(scenarios, four).ValueOrDie();
  BatchAssignReport c = session.AssignBatch(scenarios, blocks).ValueOrDie();
  EXPECT_EQ(a.num_threads, 1u);
  EXPECT_EQ(b.num_threads, 4u);  // clamped to 7 scenario tasks, 4 < 7
  EXPECT_EQ(c.num_threads, 2u);  // clamped to 2 scenario blocks
  ASSERT_EQ(a.reports.size(), b.reports.size());
  ASSERT_EQ(a.reports.size(), c.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    const auto& rc = c.reports[i].delta.rows;
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_EQ(ra.size(), rc.size());
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].full, rb[r].full);
      EXPECT_EQ(ra[r].compressed, rb[r].compressed);
      EXPECT_EQ(ra[r].full, rc[r].full);
      EXPECT_EQ(ra[r].compressed, rc[r].compressed);
    }
  }
}

TEST_F(AssignBatchTest, BatchLeavesSessionMetaValuationUntouched) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  std::vector<double> before = session.meta_valuation().values();

  ScenarioSet scenarios = MakeScenarios(session, 4);
  session.AssignBatch(scenarios).ValueOrDie();
  EXPECT_EQ(session.meta_valuation().values(), before);
}

TEST_F(AssignBatchTest, UnknownVariableNamesTheScenario) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();

  ScenarioSet scenarios;
  scenarios.Add("bad-scenario").ValueOrDie().Set("no_such_var", 2.0);
  util::Result<BatchAssignReport> result = session.AssignBatch(scenarios);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("bad-scenario"),
            std::string::npos);
}

TEST_F(AssignBatchTest, PreconditionsEnforced) {
  Session session;
  ScenarioSet scenarios;
  scenarios.Add("s");
  EXPECT_EQ(session.AssignBatch(scenarios).status().code(),
            util::StatusCode::kFailedPrecondition);

  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  EXPECT_EQ(session.AssignBatch(ScenarioSet()).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(AssignBatchTest, RecompressionRefreshesCachedPrograms) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(session, 3);
  BatchAssignReport loose = session.AssignBatch(scenarios).ValueOrDie();

  // Recompress under a tighter bound: the cached compressed program must be
  // rebuilt, and the new reports must reflect the smaller size.
  session.SetBound(4);
  session.Compress().ValueOrDie();
  ScenarioSet tighter = MakeScenarios(session, 3);
  BatchAssignReport tight = session.AssignBatch(tighter).ValueOrDie();
  EXPECT_LT(tight.reports[0].compressed_size, loose.reports[0].compressed_size);
  EXPECT_EQ(tight.reports[0].compressed_size,
            session.compressed().TotalMonomials());

  // And sequential Assign() agrees with the batch after the swap too.
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, tighter);
  ExpectIdentical(sequential, tight);
}

// The blocked kernel only exists at the compile-time lane widths 4, 8 and
// 16: any other `block_lanes` (0 would divide by zero in the block count,
// 24 exceeds kMaxLanes) must be rejected up front with InvalidArgument, and
// all accepted widths must keep producing sequential-identical results.
TEST_F(AssignBatchTest, BlockLanesOutsideSupportedWidthsRejected) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(session, 5);

  for (std::size_t lanes : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{5}, std::size_t{12},
                            std::size_t{24}}) {
    BatchOptions options;
    options.sweep = BatchOptions::Sweep::kBlocked;
    options.block_lanes = lanes;
    util::Result<BatchAssignReport> result =
        session.AssignBatch(scenarios, options);
    ASSERT_FALSE(result.ok()) << "block_lanes=" << lanes;
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("block_lanes"),
              std::string::npos);
  }

  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);
  for (std::size_t lanes :
       {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    BatchOptions options;
    options.sweep = BatchOptions::Sweep::kBlocked;
    options.block_lanes = lanes;
    util::Result<BatchAssignReport> result =
        session.AssignBatch(scenarios, options);
    ASSERT_TRUE(result.ok()) << "block_lanes=" << lanes;
    ExpectIdentical(sequential, *result);
  }

  // The knob is a blocked-kernel parameter: the scalar engines ignore it.
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kSparseDelta, BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions options;
    options.sweep = sweep;
    options.block_lanes = 3;
    EXPECT_TRUE(session.AssignBatch(scenarios, options).ok());
  }
}

TEST_F(AssignBatchTest, DuplicateScenarioNamesRejectedAtAddTime) {
  // Duplicates are now refused at the authoring seam, before any planning:
  // the set stays duplicate-free by construction.
  ScenarioSet scenarios;
  scenarios.Add("twin").ValueOrDie().Set("Business", 1.1);
  scenarios.Add("other").ValueOrDie().Set("Business", 0.9);
  util::Result<ScenarioSet::Handle> dup = scenarios.Add("twin");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("twin"), std::string::npos);
  EXPECT_EQ(scenarios.size(), 2u);

  // The Scenario overload enforces the same invariant.
  util::Result<ScenarioSet::Handle> dup2 =
      scenarios.Add(Scenario{"other", {{"Business", 1.2}}});
  ASSERT_FALSE(dup2.ok());
  EXPECT_EQ(dup2.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(scenarios.size(), 2u);
}

// The old Add(std::string) returned a Scenario& into the backing vector,
// which the next Add() could dangle. The handle resolves through the set,
// so chaining Set() after later Add() calls must land on the right
// scenario.
TEST_F(AssignBatchTest, AddHandleStaysValidAcrossLaterAdds) {
  ScenarioSet set;
  auto first = set.Add("first").ValueOrDie();
  // Force reallocation of the scenario vector.
  for (int i = 0; i < 100; ++i) {
    set.Add("filler-" + std::to_string(i)).ValueOrDie().Set("Business", 1.0);
  }
  first.Set("Business", 1.25).Set("Special", 0.75);

  ASSERT_EQ(set.scenario(0).name, "first");
  ASSERT_EQ(set.scenario(0).deltas.size(), 2u);
  EXPECT_EQ(set.scenario(0).deltas[0].var, "Business");
  EXPECT_DOUBLE_EQ(set.scenario(0).deltas[0].value, 1.25);
  EXPECT_EQ(set.scenario(0).deltas[1].var, "Special");
  EXPECT_DOUBLE_EQ(set.scenario(0).deltas[1].value, 0.75);
  EXPECT_EQ(first.index(), 0u);
}

TEST_F(AssignBatchTest, DenseCopySweepMatchesSparseBitForBit) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(session, 9);
  // A repeated delta on one variable: last value must win in both engines.
  scenarios.Add("repeat").ValueOrDie().Set("Business", 1.4).Set("Business", 0.6);

  BatchOptions sparse;
  sparse.sweep = BatchOptions::Sweep::kSparseDelta;
  BatchOptions dense;
  dense.sweep = BatchOptions::Sweep::kDenseCopy;
  BatchAssignReport a = session.AssignBatch(scenarios, sparse).ValueOrDie();
  BatchAssignReport b = session.AssignBatch(scenarios, dense).ValueOrDie();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].full, rb[r].full) << "scenario " << i << " row " << r;
      EXPECT_EQ(ra[r].compressed, rb[r].compressed)
          << "scenario " << i << " row " << r;
    }
  }
}

TEST_F(AssignBatchTest, IntraProgramPartitioningDoesNotChangeResults) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  // Fewer scenarios than threads forces the program to be split into
  // polynomial ranges; partition_min_terms=1 makes even the tiny example
  // program partitionable.
  ScenarioSet scenarios = MakeScenarios(session, 2);

  BatchOptions serial;
  serial.num_threads = 1;
  BatchOptions partitioned;
  partitioned.num_threads = 8;
  partitioned.partition_min_terms = 1;
  BatchAssignReport a = session.AssignBatch(scenarios, serial).ValueOrDie();
  BatchAssignReport b =
      session.AssignBatch(scenarios, partitioned).ValueOrDie();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].full, rb[r].full);
      EXPECT_EQ(ra[r].compressed, rb[r].compressed);
    }
  }
}

TEST_F(AssignBatchTest, ReportRendersSummary) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(session, 4);
  BatchAssignReport batch = session.AssignBatch(scenarios).ValueOrDie();
  std::string text = batch.ToString(2, 2);
  EXPECT_NE(text.find("4 scenarios"), std::string::npos);
  EXPECT_NE(text.find("scenario-0"), std::string::npos);
  EXPECT_NE(text.find("more scenarios"), std::string::npos);
}

}  // namespace
}  // namespace cobra::core
