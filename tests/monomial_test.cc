// Unit tests for prov::Monomial: canonical form, arithmetic, mapping.

#include "prov/monomial.h"

#include <gtest/gtest.h>

#include "prov/variable.h"

namespace cobra::prov {
namespace {

class MonomialTest : public ::testing::Test {
 protected:
  VarPool pool_;
  VarId x_ = pool_.Intern("x");
  VarId y_ = pool_.Intern("y");
  VarId z_ = pool_.Intern("z");
};

TEST_F(MonomialTest, DefaultIsConstantOne) {
  Monomial m;
  EXPECT_TRUE(m.IsConstant());
  EXPECT_EQ(m.Degree(), 0u);
  EXPECT_EQ(m.NumVars(), 0u);
  EXPECT_EQ(m.ToString(pool_), "1");
}

TEST_F(MonomialTest, FromFactorsSortsAndMerges) {
  Monomial m = Monomial::FromFactors({{y_, 1}, {x_, 2}, {y_, 3}});
  ASSERT_EQ(m.NumVars(), 2u);
  EXPECT_EQ(m.powers()[0].var, x_);
  EXPECT_EQ(m.powers()[0].exp, 2u);
  EXPECT_EQ(m.powers()[1].var, y_);
  EXPECT_EQ(m.powers()[1].exp, 4u);
}

TEST_F(MonomialTest, FromFactorsDropsZeroExponents) {
  Monomial m = Monomial::FromFactors({{x_, 0}, {y_, 1}});
  EXPECT_EQ(m.NumVars(), 1u);
  EXPECT_EQ(m.ExponentOf(x_), 0u);
  EXPECT_EQ(m.ExponentOf(y_), 1u);
}

TEST_F(MonomialTest, EqualityIsStructural) {
  EXPECT_EQ(Monomial::Of(x_, y_), Monomial::Of(y_, x_));
  EXPECT_FALSE(Monomial::Of(x_) == Monomial::Of(y_));
  EXPECT_FALSE(Monomial::Of(x_) ==
               Monomial::FromFactors({{x_, 2}}));
}

TEST_F(MonomialTest, TimesAddsExponents) {
  Monomial a = Monomial::Of(x_, y_);
  Monomial b = Monomial::FromFactors({{y_, 1}, {z_, 2}});
  Monomial p = a.Times(b);
  EXPECT_EQ(p.ExponentOf(x_), 1u);
  EXPECT_EQ(p.ExponentOf(y_), 2u);
  EXPECT_EQ(p.ExponentOf(z_), 2u);
  EXPECT_EQ(p.Degree(), 5u);
}

TEST_F(MonomialTest, TimesWithConstantIsIdentity) {
  Monomial a = Monomial::Of(x_);
  EXPECT_EQ(a.Times(Monomial()), a);
  EXPECT_EQ(Monomial().Times(a), a);
}

TEST_F(MonomialTest, TimesIsCommutative) {
  Monomial a = Monomial::FromFactors({{x_, 2}, {y_, 1}});
  Monomial b = Monomial::FromFactors({{y_, 2}, {z_, 3}});
  EXPECT_EQ(a.Times(b), b.Times(a));
}

TEST_F(MonomialTest, WithoutRemovesVariable) {
  Monomial m = Monomial::FromFactors({{x_, 2}, {y_, 1}});
  Monomial r = m.Without(x_);
  EXPECT_EQ(r, Monomial::Of(y_));
  EXPECT_EQ(m.Without(z_), m);
  EXPECT_EQ(Monomial::Of(x_).Without(x_), Monomial());
}

TEST_F(MonomialTest, MapVarsRenames) {
  std::vector<VarId> mapping{z_, y_, z_};  // x->z, y->y, z->z
  Monomial m = Monomial::Of(x_, y_);
  Monomial mapped = m.MapVars(mapping);
  EXPECT_EQ(mapped, Monomial::Of(z_, y_));
}

TEST_F(MonomialTest, MapVarsMergesCollidingExponents) {
  std::vector<VarId> mapping{z_, z_, z_};  // everything -> z
  Monomial m = Monomial::FromFactors({{x_, 2}, {y_, 3}});
  Monomial mapped = m.MapVars(mapping);
  EXPECT_EQ(mapped.NumVars(), 1u);
  EXPECT_EQ(mapped.ExponentOf(z_), 5u);
}

TEST_F(MonomialTest, EvalMultipliesPowers) {
  std::vector<double> values{2.0, 3.0, 5.0};
  Monomial m = Monomial::FromFactors({{x_, 2}, {y_, 1}});
  EXPECT_DOUBLE_EQ(m.Eval(values), 4.0 * 3.0);
  EXPECT_DOUBLE_EQ(Monomial().Eval(values), 1.0);
}

TEST_F(MonomialTest, HashConsistentWithEquality) {
  Monomial a = Monomial::FromFactors({{x_, 1}, {y_, 2}});
  Monomial b = Monomial::FromFactors({{y_, 2}, {x_, 1}});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(Monomial::Of(x_).Hash(), Monomial::Of(y_).Hash());
}

TEST_F(MonomialTest, ToStringShowsExponents) {
  Monomial m = Monomial::FromFactors({{x_, 2}, {y_, 1}});
  EXPECT_EQ(m.ToString(pool_), "x^2 * y");
}

TEST_F(MonomialTest, OrderingIsTotalAndConsistent) {
  Monomial a = Monomial::Of(x_);
  Monomial b = Monomial::Of(y_);
  Monomial c = Monomial::Of(x_, y_);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
  // Transitivity spot-check on three distinct monomials.
  std::vector<Monomial> all{a, b, c, Monomial()};
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_FALSE(all[i + 1] < all[i]);
  }
}

TEST_F(MonomialTest, ExponentOfMissingVarIsZero) {
  EXPECT_EQ(Monomial::Of(x_).ExponentOf(y_), 0u);
  EXPECT_EQ(Monomial().ExponentOf(x_), 0u);
}

}  // namespace
}  // namespace cobra::prov
